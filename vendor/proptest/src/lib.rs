//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal drop-in implementing exactly the surface
//! the test suites use: the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, `Strategy` with `prop_map`, integer
//! range and tuple strategies, `any::<bool|u64>()`, `proptest::bool::ANY`,
//! `proptest::collection::vec`, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs in the
//!   message; the values are already small because the strategies draw from
//!   narrow ranges.
//! * **Deterministic generation.** Each test derives its RNG seed from its
//!   own name, so runs are reproducible in CI. `.proptest-regressions`
//!   seed files are proptest-internal RNG states and cannot be replayed
//!   here; regression cases from those files are pinned as explicit
//!   deterministic `#[test]`s next to the properties instead.

pub mod strategy {
    use std::fmt::Debug;
    use std::ops::Range;

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Debug + Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;

    /// Types with a canonical whole-domain strategy, reached via
    /// [`crate::arbitrary::any`].
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::BoolStrategy;

        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    /// Whole-domain strategy for unsigned integers.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyInt<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyInt<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = AnyInt<$t>;

                fn arbitrary() -> Self::Strategy {
                    AnyInt(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform strategy over `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    /// Mirrors `proptest::bool::ANY`.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use std::fmt::Debug;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; mirrors `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single sampled case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// SplitMix64 stream seeded from the test name: deterministic across
    /// runs, decorrelated across tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an identifying string (the test name).
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next value of the stream.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Property-test entry point; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", ::core::stringify!($name)
            ));
            let mut executed = 0u32;
            // Rejections (prop_assume!) do not count toward `cases`, but do
            // bound total work: give up after 10x the case budget.
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(10);
            while executed < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let describe = || {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(::core::stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&::std::format!("{:?}", &$arg));
                        s.push_str(", ");
                    )+
                    s.truncate(s.len().saturating_sub(2));
                    s
                };
                let inputs = describe();
                let result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "proptest property failed: {}\n  minimal failing input not shrunk; sampled inputs: {}",
                            msg, inputs
                        );
                    }
                }
            }
            ::std::assert!(
                executed >= config.cases.min(1),
                "every sampled input was rejected by prop_assume!"
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects the current case when its input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_map_compose(p in (1u64..10, 1u64..10).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=81).contains(&p));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(1u64..64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (1..64).contains(x)));
        }

        #[test]
        fn bool_any_samples(b in crate::bool::ANY, c in any::<bool>()) {
            // Exercise both strategies end to end; any sampled value is
            // acceptable, the assertions just consume them.
            prop_assert_eq!(b, b);
            prop_assert_eq!(c, c);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        let s = 1u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest property failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u64..4) {
                prop_assert!(x > 100, "x={} is never > 100", x);
            }
        }
        inner();
    }
}
