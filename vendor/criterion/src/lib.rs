//! Offline vendored subset of the `criterion` API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal drop-in. It keeps the `criterion_group!` /
//! `criterion_main!` / `bench_function` surface compiling and produces
//! simple wall-clock timings (median of a fixed-iteration loop) instead of
//! criterion's statistical analysis — good enough to compare orders of
//! magnitude, which is all the paper reproduction needs from `cargo bench`.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work; mirrors `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry and runner; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibrate the iteration count to roughly 10ms per sample.
        let mut calib = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut calib);
        let per_iter = calib.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX)
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!("{name:<48} median {median:>12.2?}/iter ({iters} iters x {} samples)", self.sample_size);
        self
    }
}

/// Declares a benchmark group; mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main`; mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("test/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    criterion_group!(
        name = group;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    #[test]
    fn group_runs() {
        group();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
