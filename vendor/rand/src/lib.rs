//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal drop-in covering exactly the surface the
//! searchers use: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, and `Rng::gen_bool`. The generator is SplitMix64 — statistically
//! fine for seeding genetic searches, not cryptographic, and intentionally
//! deterministic per seed (the searchers rely on seeded reproducibility).

use std::ops::Range;

/// Marker trait mirroring `rand::SeedableRng` for the subset we need.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 bits of mantissa — the standard uniform-double construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush for this use. Stands in for
    /// `rand::rngs::StdRng` (which is only reached through `seed_from_u64`
    /// in this workspace, so the exact stream does not matter — only
    /// determinism per seed does).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                // Avoid the all-zero fixed point and decorrelate tiny seeds.
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
