//! Quickstart: one-shot principle-based dataflow optimization.
//!
//! Reproduces the paper's §III-A worked example — the BERT matmul
//! `A[1024,768] × B[768,768]` in a 512 KiB buffer — and then a fusion
//! decision on the attention pair it motivates.
//!
//! Run with `cargo run -p fusecu --example quickstart`.

use fusecu::prelude::*;

fn main() {
    // ----- intra-operator: Principles 1-3 -------------------------------
    let mm = MatMul::new(1024, 768, 768);
    let buffer = 512 * 1024; // elements (INT8 => bytes)

    println!("operator: {mm}");
    println!(
        "buffer:   {} KiB  ->  regime: {}",
        buffer / 1024,
        BufferRegime::classify(mm, buffer)
    );

    let best = fusecu::optimize(mm, buffer);
    println!("optimal dataflow: {best}");
    println!(
        "  class {:?}; K untiled: {}; B accessed {}x its footprint",
        best.class(),
        best.tiling().is_untiled(mm, MmDim::K),
        best.ma().of(Operand::Rhs) / mm.tensor_elems(Operand::Rhs),
    );
    println!(
        "  total MA {} elements vs ideal {} ({}x)",
        best.total_ma(),
        mm.ideal_ma(),
        best.total_ma() as f64 / mm.ideal_ma() as f64
    );

    // ----- inter-operator: Principle 4 ----------------------------------
    let pair = FusedPair::try_new(MatMul::new(1024, 64, 1024), MatMul::new(1024, 1024, 64))
        .expect("attention shapes chain");
    let decision = fusecu::decide(&CostModel::paper(), pair, buffer);
    println!();
    println!("fusion candidate: {pair}");
    println!(
        "  operator classes: {:?} / {:?}  (same NRA: {})",
        decision.producer_class(),
        decision.consumer_class(),
        decision.same_nra()
    );
    println!(
        "  unfused MA {} vs fused MA {:?}  ->  profitable: {}, saving {} elements",
        decision.unfused_ma(),
        decision.fused().map(|f| f.total_ma()),
        decision.profitable(),
        decision.saved_ma()
    );
}
