//! Autoregressive decode: the paper's evaluation covers prefill; this
//! extension runs one decode step (a single query token against a KV
//! cache) through the same pipeline. Decode collapses every matmul to a
//! skinny shape, the regime where flexible stationaries and the
//! wide/narrow fabric reshapes matter most — and where fused attention
//! avoids spilling the per-token score vector.
//!
//! Run with `cargo run -p fusecu --example decode_phase -- [context-len]`.

use fusecu::pipeline::evaluation_model;
use fusecu::prelude::*;

fn main() {
    let context: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    let cfg = zoo::llama2();
    let graph = cfg.build_decode_graph(context);
    let spec = ArraySpec::paper_default();
    let model = evaluation_model();

    println!("model: {cfg}");
    println!("decode step against a {context}-token KV cache\n");
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "platform", "MA (elements)", "norm. MA", "speedup vs TPU"
    );
    let tpu = evaluate_graph(&spec, Platform::Tpuv4i, &model, &graph);
    for p in Platform::ALL {
        let perf = evaluate_graph(&spec, p, &model, &graph);
        println!(
            "{:<10} {:>14} {:>14.3} {:>13.2}x",
            p.name(),
            perf.total_ma(),
            perf.total_ma() as f64 / tpu.total_ma() as f64,
            tpu.total_cycles() as f64 / perf.total_cycles() as f64
        );
    }

    // The per-head decode attention pair and its fusion decision.
    let dh = cfg.head_dim();
    let pair = FusedPair::try_new(
        MatMul::new(1, dh, context),
        MatMul::new(1, context, dh),
    )
    .expect("decode attention chains");
    let d = fusecu::decide(&CostModel::paper(), pair, spec.buffer_elems);
    println!();
    println!(
        "per-head decode attention {pair}: classes {:?}/{:?}, fuse = {}, saves {} elements/head",
        d.producer_class(),
        d.consumer_class(),
        d.profitable(),
        d.saved_ma()
    );
}
