//! The principles beyond matmul: arbitrary tensor operators as loop nests
//! (§III-B's closing generalization), demonstrated on batched matmul and
//! MTTKRP with the rank-N einsum cost model.
//!
//! Run with `cargo run -p fusecu --example einsum_operators`.

use fusecu::dataflow::einsum::EinsumSpec;
use fusecu::prelude::*;

fn main() {
    let model = CostModel::paper();

    // --- batched matmul: joint scheduling reuses the shared weight -------
    let (b, m, k, l) = (16u64, 64u64, 48u64, 32u64);
    let bs = 2_048u64;
    let spec = EinsumSpec::batched_matmul(b, m, k, l);
    println!("operator: {spec}   (batch {b})");
    let (nest, joint) = spec
        .optimize_exhaustive(&model, bs)
        .expect("buffer feasible");
    let per_batch = fusecu::optimize(MatMul::new(m, k, l), bs).total_ma() * b;
    println!(
        "  joint 4-dim schedule: MA = {joint} (weight streamed {}x)",
        nest.reload_multiplier(&spec, &spec.tensors()[1])
    );
    println!("  {b} independent matmuls: MA = {per_batch}");
    println!(
        "  joint reuse saves {:.1}%\n",
        100.0 * (1.0 - joint as f64 / per_batch as f64)
    );
    assert!(joint < per_batch);

    // --- MTTKRP: a 4-dim three-input contraction --------------------------
    let spec = EinsumSpec::mttkrp(128, 64, 32, 16);
    println!("operator: {spec}");
    for bs in [64u64, 1_024, 16_384] {
        let (nest, ma) = spec.optimize_exhaustive(&model, bs).expect("feasible");
        let candidates = spec.principle_candidates(&model, bs);
        let principle_best = candidates.iter().map(|(_, ma)| *ma).min().unwrap_or(u64::MAX);
        println!(
            "  buffer {bs:>6}: oracle MA = {ma:>8} ({:.2}x ideal), generalized-P1 = {principle_best:>8}, tiles {:?}",
            ma as f64 / spec.ideal_ma() as f64,
            nest.tiles
        );
    }
    println!("\n(the same trailing-window reuse analysis scores every operator;");
    println!(" the matmul model of the paper is its 3-dimensional special case)");
}
