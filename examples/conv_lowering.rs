//! Beyond matmul: the principles on convolutions (§III-B's note that all
//! tensor operators expressible as loop nests share the derivation).
//! Lowers ResNet-style convolutions through im2col and optimizes each with
//! the same one-shot principles, cross-checked against the search oracle.
//!
//! Run with `cargo run -p fusecu --example conv_lowering`.

use fusecu::ir::Conv2d;
use fusecu::prelude::*;

fn main() {
    // A small 24 KiB buffer keeps the layers spread across regimes.
    let buffer = 24 * 1024;
    let model = CostModel::paper();
    let oracle = ExhaustiveSearch::new(model);

    // A ResNet-50-flavored ladder at batch 8.
    let layers = [
        ("conv1 7x7/2", Conv2d {
            batch: 8,
            in_channels: 3,
            height: 224,
            width: 224,
            out_channels: 64,
            kernel_h: 7,
            kernel_w: 7,
            stride: 2,
            padding: 3,
        }),
        ("res2 3x3", Conv2d::same(8, 64, 56, 64, 3)),
        ("res3 3x3", Conv2d::same(8, 128, 28, 128, 3)),
        ("res4 1x1", Conv2d::same(8, 256, 14, 1024, 1)),
        ("res5 3x3", Conv2d::same(8, 512, 7, 512, 3)),
    ];

    println!("buffer: {} KiB\n", buffer / 1024);
    println!(
        "{:<12} {:>22} {:>9} {:>12} {:>10} {:>9}",
        "layer", "im2col matmul", "regime", "class", "MA/ideal", "= oracle"
    );
    for (name, conv) in layers {
        let mm = conv.to_matmul().expect("non-degenerate layer");
        let best = fusecu::optimize(mm, buffer);
        let searched = oracle.optimize(mm, buffer).best().total_ma();
        println!(
            "{:<12} {:>8}x{:<5}x{:<6} {:>9} {:>12} {:>9.3}x {:>9}",
            name,
            mm.m(),
            mm.k(),
            mm.l(),
            BufferRegime::classify(mm, buffer).to_string(),
            best.class().map(|c| c.to_string()).unwrap_or_default(),
            best.total_ma() as f64 / mm.ideal_ma() as f64,
            if best.total_ma() == searched { "yes" } else { "NO" }
        );
        assert_eq!(best.total_ma(), searched, "{name}: principles must match search");
    }
    println!("\nevery lowered convolution optimizes one-shot to the searched optimum");
}
