//! Walk one matmul through the four buffer regimes of §III-A4, watching
//! the optimal dataflow shift from Single-NRA through Two-NRA to the
//! Three-NRA communication lower bound — and verify each point against the
//! exhaustive search oracle.
//!
//! Run with `cargo run -p fusecu --example buffer_regimes`.

use fusecu::prelude::*;

fn main() {
    let mm = MatMul::new(2048, 256, 2048);
    let model = CostModel::paper();
    let oracle = ExhaustiveSearch::new(model);
    let dmin = mm.min_dim();

    println!("operator: {mm}");
    println!(
        "Dmin = {dmin}; regime boundaries: Dmin^2/4 = {}, Dmin^2/2 = {}, Tensor_min = {}",
        dmin * dmin / 4,
        dmin * dmin / 2,
        mm.min_tensor_elems()
    );
    println!();
    println!(
        "{:>12} {:>8} {:>12} {:>14} {:>10} {:>10}",
        "buffer", "regime", "class", "total MA", "vs ideal", "== oracle"
    );

    for shift in 10..=23 {
        let bs = 1u64 << shift;
        let best = fusecu::optimize(mm, bs);
        let regime = BufferRegime::classify(mm, bs);
        let searched = oracle.optimize(mm, bs).best().total_ma();
        println!(
            "{:>9} KiB {:>8} {:>12} {:>14} {:>9.2}x {:>10}",
            bs / 1024,
            regime.to_string(),
            best.class().map(|c| c.to_string()).unwrap_or_default(),
            best.total_ma(),
            best.total_ma() as f64 / mm.ideal_ma() as f64,
            if best.total_ma() == searched { "yes" } else { "NO" },
        );
        assert!(
            regime.admits(best.class().expect("optimum always classifies")),
            "regime table violated at {bs}"
        );
    }
    println!();
    println!(
        "the dataflow shifts Single-NRA -> Two-NRA inside (Dmin^2/4, ~Dmin^2/2] and reaches \
         the lower bound {} once the smallest tensor fits",
        mm.ideal_ma()
    );
}
