//! Fusing attention on FuseCU, end to end: plan the fusion with
//! Principle 4, map it onto the fabric, and *execute* a scaled-down head on
//! the cycle-level simulator to show the intermediate score matrix never
//! touches memory.
//!
//! Run with `cargo run -p fusecu --example attention_fusion`.

use fusecu::fusion::planner::plan_chain;
use fusecu::prelude::*;
use fusecu::sim::{fusion as sim_fusion, Matrix};

fn main() {
    // One BERT attention head at batch 16: (Q Kᵀ) · V per head.
    let chain = MmChain::try_new(vec![
        MatMul::new(1024, 64, 1024), // scores = Q x K^T
        MatMul::new(1024, 1024, 64), // out = softmax(scores) x V
    ])
    .expect("attention chain shapes agree");
    let buffer = 512 * 1024;

    println!("chain: {chain}");
    let plan = plan_chain(&CostModel::paper(), &chain, buffer);
    println!("plan:\n{plan}");
    println!(
        "score matrix kept out of memory: {} elements per head\n",
        chain.intermediate_elems(0)
    );

    // The same fused pair on the architecture model: mapping choice and
    // per-head cycles on the FuseCU fabric.
    let pair = FusedPair::try_new(chain.mm(0), chain.mm(1)).expect("chain invariant");
    let fused = fusecu::fusion::optimize_pair(&CostModel::paper(), pair, buffer)
        .expect("fused dataflow fits");
    let spec = ArraySpec::paper_default();
    let perf = fusecu::arch::fused::FusedPerf::score(&spec, fused, 192);
    println!(
        "FuseCU mapping: {} across {} pipeline(s); {} cycles for 192 heads",
        perf.mapping(),
        perf.pipelines(),
        perf.cycles()
    );

    // Execute a scaled-down head (seq 12, head dim 4) bit-exactly on the
    // simulated XS-PE fabric with column fusion: producer half streams
    // score columns straight into the consumer half.
    let n = 12;
    let q = Matrix::pseudo_random(12, 4, 1);
    let k_t = Matrix::pseudo_random(4, 12, 2);
    let v = Matrix::pseudo_random(12, 4, 3);
    let run = sim_fusion::column_fusion(n, &q, &k_t, &v);
    let golden = q.matmul(&k_t).matmul(&v);
    assert_eq!(run.out, golden, "simulated fused attention must be exact");
    println!(
        "\nsimulated 12x4x12x4 head: column fusion, {} cycles, {} intermediate elements \
         crossed the inter-CU wires (0 through memory); result == golden",
        run.cycles, run.intermediate_elems
    );
}
