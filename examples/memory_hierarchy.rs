//! Two-level dataflow: applying the principles at both the buffer and the
//! PE-register level (§IV-B), including the `D_min < 2N` un-tiling bound
//! that sizes FuseCU's reconfigurable fabric.
//!
//! Run with `cargo run -p fusecu --example memory_hierarchy`.

use fusecu::dataflow::hierarchy::{optimize_two_level, untiling_bound};
use fusecu::dataflow::principles::try_optimize_with;
use fusecu::prelude::*;

fn main() {
    let mm = MatMul::new(1024, 768, 768);
    let model = CostModel::paper();
    let n = 128u64; // fabric edge
    let buffer = 512 * 1024;
    let registers = n * n; // the paper's "BS corresponds to the register size"

    println!("operator: {mm}");
    println!("buffer {} KiB, registers {} (= {n}x{n} PEs)\n", buffer / 1024, registers);

    let df = optimize_two_level(&model, mm, buffer, registers).expect("capacities feasible");
    println!("two-level dataflow: {df}");
    println!(
        "  DRAM  <-> buffer : {} elements  ({:.2}x the operand footprints)",
        df.dram_ma().total(),
        df.dram_ma().total() as f64 / mm.ideal_ma() as f64
    );
    println!(
        "  buffer <-> PEs   : {} elements  ({:.2}x)",
        df.buffer_ma().total(),
        df.buffer_ma().total() as f64 / mm.ideal_ma() as f64
    );

    // The §IV-B bound: with N² registers, untiling a dimension at the PE
    // level is only optimal below 2N = 256.
    println!("\nuntiling bound for N = {n}: dimensions below {}", untiling_bound(n));
    println!(
        "{:>8} {:>14} {:>12}",
        "Dmin", "register class", "K untiled?"
    );
    for dmin in [32u64, 64, 128, 255, 256, 512] {
        let tile = MatMul::new(512, dmin, 512);
        let inner = try_optimize_with(&model, tile, registers).expect("registers >= 3");
        println!(
            "{:>8} {:>14} {:>12}",
            dmin,
            inner
                .class()
                .map(|c| c.to_string())
                .unwrap_or_default(),
            inner.tiling().is_untiled(tile, MmDim::K)
        );
    }
    println!("\n(untiled register dataflows vanish as Dmin crosses 2N — the reason");
    println!(" FuseCU's square/narrow/wide reshapes only ever need a 2N edge)");
}
