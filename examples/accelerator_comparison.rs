//! Compare the five platforms on one transformer model — a single Fig 10
//! column, with an adjustable buffer size.
//!
//! Run with `cargo run -p fusecu --example accelerator_comparison -- [model] [buffer-KiB]`
//! where `model` is one of `bert`, `gpt2`, `blenderbot`, `xlm`, `deberta`,
//! `llama2`, `albert` (default `bert`) and `buffer-KiB` defaults to 512.

use fusecu::pipeline::compare_platforms_at;
use fusecu::prelude::*;

fn pick_model(name: &str) -> TransformerConfig {
    match name {
        "bert" => zoo::bert(),
        "gpt2" => zoo::gpt2(),
        "blenderbot" => zoo::blenderbot(),
        "xlm" => zoo::xlm(),
        "deberta" => zoo::deberta_v2(),
        "llama2" => zoo::llama2(),
        "albert" => zoo::albert(),
        other => {
            eprintln!("unknown model '{other}', using bert");
            zoo::bert()
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let model = pick_model(args.get(1).map(String::as_str).unwrap_or("bert"));
    let buffer_kib: u64 = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);
    let spec = ArraySpec::tpuv4i_with_buffer(buffer_kib * 1024);

    println!("model: {model}");
    println!("fabric: {spec}");
    println!();

    let row = compare_platforms_at(&model, &spec);
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>14}",
        "platform", "MA (elements)", "norm. MA", "utilization", "speedup vs TPU"
    );
    for p in Platform::ALL {
        println!(
            "{:<10} {:>14} {:>14.3} {:>12.3} {:>14.2}x",
            p.name(),
            row.perf(p).total_ma(),
            row.normalized_ma(p),
            row.utilization(p),
            row.speedup(p, Platform::Tpuv4i)
        );
    }
    println!();
    let fused = row.perf(Platform::FuseCu);
    println!(
        "FuseCU executed {} fused pairs ({:?})",
        fused.fused_steps(),
        fused.fused_mappings()
    );
}
