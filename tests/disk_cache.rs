//! End-to-end behavior of [`DiskCacheSession`] against its own process'
//! global memo caches. A single #[test] keeps the global cache counters
//! deterministic (integration-test binaries get a fresh process, so the
//! caches start empty here regardless of what other test binaries do).

use std::fs;
use std::path::{Path, PathBuf};

use fusecu::pipeline::{validate_buffer_sweep_with, DiskCacheSession};
use fusecu::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("disk-cache").join(name);
    // The tmp dir persists across `cargo test` invocations; start fresh so
    // the cold-start assertions below hold on reruns too.
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn session_lifecycle_cold_save_and_recovery() {
    let dir = tmp("session");

    // Cold start: nothing on disk yet.
    let mut session = DiskCacheSession::at(dir.clone());
    assert_eq!(session.loaded(), 0);

    // Touch every cache the session persists: the sweep fills the
    // dataflow cache, the platform comparison fills the operator,
    // fused-pair, and chain-plan caches.
    let mm = MatMul::new(512, 384, 384);
    let points = validate_buffer_sweep_with(mm, &[64 * 1024, 512 * 1024], Parallelism::Serial);
    assert_eq!(points.len(), 2);
    let row = compare_platforms(&zoo::blenderbot());
    assert!(row.speedup(Platform::FuseCu, Platform::Tpuv4i) > 1.0);

    let saved = session.save().unwrap();
    assert!(saved > 0, "a non-trivial run must persist entries");
    for file in ["dataflow.cache", "operators.cache", "plans.cache"] {
        let text = fs::read_to_string(dir.join(file)).unwrap();
        assert!(text.starts_with("fusecu-cache v1\n"), "{file} lacks the magic");
        assert!(text.contains("fingerprint "), "{file} lacks a fingerprint");
    }
    let summary = session.summary();
    assert!(summary.contains("overall hit rate"), "summary: {summary}");
    assert!(summary.contains(&format!("{}", dir.display())));

    // A second session over the same directory re-reads the files; every
    // entry already lives in this process' caches, so nothing new is
    // inserted — and nothing errors.
    let warm = DiskCacheSession::at(dir.clone());
    assert_eq!(warm.loaded(), 0);

    // Corrupt and stale files are cold starts, not errors.
    let dataflow = dir.join("dataflow.cache");
    let good = fs::read_to_string(&dataflow).unwrap();
    fs::write(&dataflow, good.replacen("fingerprint ", "fingerprint stale-", 1)).unwrap();
    let stale = DiskCacheSession::at(dir.clone());
    assert_eq!(stale.loaded(), 0);
    fs::write(&dataflow, "garbage\n").unwrap();
    let corrupt = DiskCacheSession::at(dir.clone());
    assert_eq!(corrupt.loaded(), 0);

    // A disabled session never touches the disk.
    let mut off = DiskCacheSession::disabled();
    assert_eq!(off.loaded(), 0);
    assert_eq!(off.save().unwrap(), 0);
    assert!(off.summary().contains("disabled"));
    assert!(off.summary().contains("overall hit rate"));
}
