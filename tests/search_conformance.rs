//! Differential conformance: every searcher's winning mapping, replayed on
//! the cycle-level simulator, must (a) compute the exact product and
//! (b) measure exactly the traffic the searcher reported as its cost.
//!
//! This closes the loop the other direction from `simulator_integration`:
//! there, hand-picked nests prove the model matches the machine; here, the
//! *optimizers' own winners* — principle-based, exhaustive, and genetic,
//! under both the analytical and the simulated fitness backend — are the
//! nests under test, across a grid of shapes and buffer sizes. A searcher
//! that returned an infeasible or mis-costed mapping fails loudly.
//!
//! The grid kept in the default run is sized for CI; the `#[ignore]`d
//! heavy variants sweep larger shapes in release mode (see the CI
//! workflow's simulator-conformance step).

use fusecu::prelude::*;
use fusecu_dataflow::principles;
use fusecu_search::GeneticConfig;
use fusecu_fusion::{optimize_pair, ExtTensor, FusedPair};
use fusecu_sim::driver::{execute_fused_nest, execute_nest};
use fusecu_sim::Matrix;

/// The paper's per-visit accounting — the one the drivers reproduce
/// exactly, making "measured == reported" an equality, not a bound.
const MODEL: CostModel = CostModel {
    partial_sums: PartialSumPolicy::PerVisit,
};

const BACKENDS: [Fitness; 2] = [Fitness::Analytical, Fitness::Simulated];

/// Replays `df`'s nest over pseudo-random operands and asserts exact
/// output and exact agreement between measured and reported traffic.
fn assert_nest_conformant(df: &Dataflow, bs: u64, label: &str) {
    let mm = df.mm();
    assert!(
        df.buffer_elems() <= bs,
        "{label}: winner footprint {} exceeds buffer {bs}",
        df.buffer_elems()
    );
    let a = Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, 0xC0FF_EE01);
    let b = Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, 0xC0FF_EE02);
    let run = execute_nest(&a, &b, mm, df.nest());
    assert_eq!(run.out, a.matmul(&b), "{label}: replayed product is wrong");
    assert_eq!(
        run.measured,
        df.ma(),
        "{label}: measured traffic disagrees with the reported cost"
    );
}

/// The fused analogue: replay the fused winner and require the exact chain
/// product plus per-tensor traffic agreement.
fn assert_fused_conformant(fused: &FusedDataflow, pair: FusedPair, bs: u64, label: &str) {
    use fusecu_fusion::FusedDim::{K, L, M, N};
    assert!(
        fused.footprint() <= bs,
        "{label}: fused footprint {} exceeds buffer {bs}",
        fused.footprint()
    );
    let d_of = |t| pair.dim(t) as usize;
    let a = Matrix::pseudo_random(d_of(M), d_of(K), 0xC0FF_EE03);
    let b = Matrix::pseudo_random(d_of(K), d_of(L), 0xC0FF_EE04);
    let d = Matrix::pseudo_random(d_of(L), d_of(N), 0xC0FF_EE05);
    let run = execute_fused_nest(&a, &b, &d, &pair, fused.nest());
    assert_eq!(
        run.out,
        a.matmul(&b).matmul(&d),
        "{label}: replayed chain output is wrong"
    );
    let predicted = fused.nest().evaluate(&MODEL, &pair);
    for (i, t) in ExtTensor::ALL.iter().enumerate() {
        assert_eq!(
            run.measured[i],
            predicted.of(*t),
            "{label}: tensor {t} measured traffic disagrees"
        );
    }
    let total: u64 = run.measured.iter().sum();
    assert_eq!(
        total,
        fused.total_ma(),
        "{label}: total measured traffic disagrees with the reported cost"
    );
}

/// A faster GA for the conformance grid: same algorithm, fewer rounds.
fn grid_ga_config() -> GeneticConfig {
    GeneticConfig {
        population: 24,
        generations: 20,
        ..GeneticConfig::default()
    }
}

fn single_op_grid(shapes: &[MatMul], buffers: &[u64]) {
    for &mm in shapes {
        for &bs in buffers {
            // Principle-based winner (one per point; no fitness backend —
            // the principles never search).
            let principled = principles::optimize_with(&MODEL, mm, bs);
            assert_nest_conformant(&principled, bs, &format!("principles {mm} bs={bs}"));
            for fitness in BACKENDS {
                let label = |who: &str| format!("{who}[{fitness:?}] {mm} bs={bs}");
                let ex = ExhaustiveSearch::new(MODEL)
                    .with_fitness(fitness)
                    .optimize(mm, bs);
                assert_nest_conformant(&ex.best(), bs, &label("exhaustive"));
                let ga = GeneticSearch::with_config(MODEL, grid_ga_config())
                    .with_fitness(fitness)
                    .optimize(mm, bs)
                    .expect("grid buffers all feasible");
                assert_nest_conformant(&ga.best(), bs, &label("genetic"));
                // Searchers never report a cheaper cost than the oracle.
                assert!(
                    ga.best().total_ma() >= ex.best().total_ma(),
                    "{}: GA beat the oracle",
                    label("genetic")
                );
            }
        }
    }
}

fn fused_grid(pairs: &[FusedPair], buffers: &[u64]) {
    for &pair in pairs {
        for &bs in buffers {
            if let Some(closed) = optimize_pair(&MODEL, pair, bs) {
                assert_fused_conformant(&closed, pair, bs, &format!("closed-form {pair} bs={bs}"));
            }
            for fitness in BACKENDS {
                let label = |who: &str| format!("{who}[{fitness:?}] {pair} bs={bs}");
                if let Some((fx, _)) = FusedExhaustive::new(MODEL)
                    .with_fitness(fitness)
                    .optimize(pair, bs)
                {
                    assert_fused_conformant(&fx, pair, bs, &label("fused-exhaustive"));
                }
                if let Some((fg, _)) = FusedGenetic::with_config(MODEL, grid_ga_config())
                    .with_fitness(fitness)
                    .optimize(pair, bs)
                {
                    assert_fused_conformant(&fg, pair, bs, &label("fused-genetic"));
                }
            }
        }
    }
}

#[test]
fn every_searchers_winner_replays_exactly() {
    let shapes = [
        MatMul::new(12, 10, 8),
        MatMul::new(9, 14, 6),
        MatMul::new(16, 8, 12),
        MatMul::new(7, 7, 7),
    ];
    let buffers = [8u64, 64, 512, 4_096];
    single_op_grid(&shapes, &buffers);
}

#[test]
fn every_fused_searchers_winner_replays_exactly() {
    let pairs = [
        FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap(),
        FusedPair::try_new(MatMul::new(12, 8, 10), MatMul::new(12, 10, 6)).unwrap(),
    ];
    let buffers = [16u64, 200, 2_000];
    fused_grid(&pairs, &buffers);
}

#[test]
fn tiny_buffers_still_conform() {
    // Near the feasibility floor the winners degenerate to unit-ish tiles;
    // the replay contract must hold there too.
    single_op_grid(&[MatMul::new(6, 5, 4)], &[3, 4, 6]);
    let pair = FusedPair::try_new(MatMul::new(6, 4, 8), MatMul::new(6, 8, 4)).unwrap();
    fused_grid(&[pair], &[4, 8]);
}

// --- heavy variants: release-mode CI step only (`cargo test -- --ignored`) ---

#[test]
#[ignore = "heavy: release-mode CI conformance step"]
fn heavy_single_op_conformance() {
    let shapes = [
        MatMul::new(64, 48, 56),
        MatMul::new(96, 32, 80),
        MatMul::new(33, 65, 47),
        MatMul::new(128, 24, 72),
        MatMul::new(51, 51, 51),
    ];
    let buffers = [32u64, 256, 1_024, 16_384, 262_144];
    single_op_grid(&shapes, &buffers);
}

#[test]
#[ignore = "heavy: release-mode CI conformance step"]
fn heavy_fused_conformance() {
    let pairs = [
        FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16)).unwrap(),
        FusedPair::try_new(MatMul::new(48, 16, 32), MatMul::new(48, 32, 24)).unwrap(),
        FusedPair::try_new(MatMul::new(40, 36, 20), MatMul::new(40, 20, 44)).unwrap(),
        FusedPair::try_new(MatMul::new(27, 45, 18), MatMul::new(27, 18, 33)).unwrap(),
    ];
    let buffers = [64u64, 512, 2_048, 65_536];
    fused_grid(&pairs, &buffers);
}

#[test]
#[ignore = "heavy: release-mode CI conformance step"]
fn heavy_default_ga_conformance() {
    // The full default GA configuration (64×60), simulated fitness, on a
    // mid-size shape — the exact workload the parallel-by-default scoring
    // exists for.
    let mm = MatMul::new(48, 40, 32);
    for bs in [256u64, 8_192] {
        let ga = GeneticSearch::new(MODEL)
            .with_fitness(Fitness::Simulated)
            .optimize(mm, bs)
            .expect("feasible");
        assert_nest_conformant(&ga.best(), bs, &format!("default GA {mm} bs={bs}"));
    }
}

#[test]
#[ignore = "heavy: release-mode CI conformance step"]
fn heavy_macro_tier_ga_agrees_with_every_mode() {
    // The same deterministic default GA under all three simulated
    // backends — per-cycle Full, wavefront FullMacro, and the closed-form
    // TrafficOnly — must elect the *same* winner at the same cost (the
    // engines score byte-identically, and the search is seeded), and that
    // winner must replay conformantly. This is the end-to-end proof that
    // swapping the macro-step tier onto the hot path changes throughput
    // only, never the search outcome.
    use fusecu_sim::SimMode;
    let mm = MatMul::new(48, 40, 32);
    for bs in [256u64, 8_192] {
        let best_of = |mode: SimMode| {
            GeneticSearch::new(MODEL)
                .with_fitness(Fitness::Simulated)
                .with_sim_mode(mode)
                .optimize(mm, bs)
                .expect("feasible")
                .best()
        };
        let oracle = best_of(SimMode::Full);
        for mode in [SimMode::FullMacro, SimMode::TrafficOnly] {
            let winner = best_of(mode);
            assert_eq!(
                (winner.nest(), winner.total_ma()),
                (oracle.nest(), oracle.total_ma()),
                "{mode:?} GA winner diverged from the per-cycle oracle at bs={bs}"
            );
        }
        assert_nest_conformant(&oracle, bs, &format!("macro-tier GA {mm} bs={bs}"));
    }
    let pair = FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16)).unwrap();
    for bs in [512u64, 4_096] {
        let best_of = |mode: SimMode| {
            FusedGenetic::new(MODEL)
                .with_fitness(Fitness::Simulated)
                .with_sim_mode(mode)
                .optimize(pair, bs)
                .expect("feasible")
                .0
        };
        let oracle = best_of(SimMode::Full);
        for mode in [SimMode::FullMacro, SimMode::TrafficOnly] {
            let winner = best_of(mode);
            assert_eq!(
                (winner.nest(), winner.total_ma()),
                (oracle.nest(), oracle.total_ma()),
                "fused {mode:?} GA winner diverged from the per-cycle oracle at bs={bs}"
            );
        }
        assert_fused_conformant(&oracle, pair, bs, &format!("macro-tier fused GA {pair} bs={bs}"));
    }
}
