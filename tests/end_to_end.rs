//! End-to-end integration: the full pipeline from Table II hyper-parameters
//! through graph construction, per-platform dataflow optimization, fusion
//! planning, and the cycle model — asserting the structural relationships
//! every figure relies on.

use fusecu::pipeline::{compare_platforms, compare_platforms_at};
use fusecu::prelude::*;

#[test]
fn every_model_evaluates_on_every_platform() {
    for cfg in zoo::all() {
        let row = compare_platforms(&cfg);
        for p in Platform::ALL {
            let perf = row.perf(p);
            assert!(perf.total_ma() > 0, "{}: {p} zero MA", cfg.name);
            assert!(perf.total_cycles() > 0, "{}: {p} zero cycles", cfg.name);
            let util = row.utilization(p);
            assert!(
                util > 0.0 && util <= 1.0,
                "{}: {p} utilization {util}",
                cfg.name
            );
        }
        // MACs are an invariant of the model, not the platform.
        let macs = row.perf(Platform::Tpuv4i).total_macs();
        for p in Platform::ALL {
            assert_eq!(row.perf(p).total_macs(), macs, "{}", cfg.name);
        }
    }
}

#[test]
fn platform_space_containment_orders_memory_access() {
    // UnfCU's dataflow space contains Gemmini's, which contains TPUv4i's;
    // FuseCU's contains UnfCU's. MA must be ordered accordingly on every
    // model (Planaria's WS-only space is not comparable to Gemmini's).
    for cfg in zoo::all() {
        let row = compare_platforms(&cfg);
        let ma = |p: Platform| row.perf(p).total_ma();
        assert!(ma(Platform::Gemmini) <= ma(Platform::Tpuv4i), "{}", cfg.name);
        assert!(ma(Platform::UnfCu) <= ma(Platform::Gemmini), "{}", cfg.name);
        assert!(ma(Platform::UnfCu) <= ma(Platform::Planaria), "{}", cfg.name);
        assert!(ma(Platform::FuseCu) <= ma(Platform::UnfCu), "{}", cfg.name);
    }
}

#[test]
fn only_fusecu_fuses_and_it_always_finds_pairs() {
    for cfg in zoo::all() {
        let row = compare_platforms(&cfg);
        for p in Platform::ALL {
            let steps = row.perf(p).fused_steps();
            if p == Platform::FuseCu {
                assert!(steps >= 1, "{}: FuseCU found no profitable fusion", cfg.name);
            } else {
                assert_eq!(steps, 0, "{}: {p} must not fuse", cfg.name);
            }
        }
    }
}

#[test]
fn graphs_have_expected_structure() {
    for cfg in zoo::all() {
        let g = cfg.build_graph();
        assert_eq!(g.node_count(), 10, "{}", cfg.name);
        let chains = g.mm_chains();
        // Two fusable chains (attention, FFN) + four solo projections.
        assert_eq!(chains.len(), 6, "{}", cfg.name);
        let fusable = chains.iter().filter(|(ids, ..)| ids.len() == 2).count();
        assert_eq!(fusable, 2, "{}", cfg.name);
        // Attention chain instance count = batch x heads.
        let (_, _, count) = chains
            .iter()
            .find(|(_, ch, _)| ch.len() == 2 && ch.mm(0).k() == cfg.head_dim())
            .expect("attention chain");
        assert_eq!(*count, cfg.batch * cfg.heads, "{}", cfg.name);
    }
}

#[test]
fn buffer_sweep_is_monotone_for_flexible_platforms() {
    // More buffer never hurts a platform with free tiling.
    let cfg = zoo::blenderbot();
    let mut last_ma = u64::MAX;
    for kib in [64u64, 256, 1024, 4096, 16_384] {
        let spec = ArraySpec::tpuv4i_with_buffer(kib * 1024);
        let row = compare_platforms_at(&cfg, &spec);
        let ma = row.perf(Platform::FuseCu).total_ma();
        assert!(ma <= last_ma, "buffer {kib} KiB regressed: {ma} > {last_ma}");
        last_ma = ma;
    }
}

#[test]
fn huge_buffers_converge_to_the_fused_floor() {
    // With a giant buffer every matmul reaches Three-NRA and fusion only
    // removes intermediate traffic; FuseCU's total approaches the sum of
    // fused chain lower bounds.
    let cfg = zoo::blenderbot();
    let spec = ArraySpec::tpuv4i_with_buffer(256 * 1024 * 1024);
    let row = compare_platforms_at(&cfg, &spec);
    let floor: u64 = cfg
        .build_graph()
        .mm_chains()
        .iter()
        .map(|(_, chain, count)| chain.fused_ideal_ma() * count)
        .sum();
    let fuse = row.perf(Platform::FuseCu).total_ma();
    assert!(fuse >= floor);
    assert!(
        (fuse as f64) < 1.05 * floor as f64,
        "FuseCU {fuse} should approach the fused floor {floor}"
    );
}

#[test]
fn cross_attention_and_decode_graphs_evaluate_consistently() {
    let spec = ArraySpec::paper_default();
    let model = fusecu::pipeline::evaluation_model();
    let cfg = zoo::blenderbot();
    for graph in [
        cfg.build_cross_attention_graph(512),
        cfg.build_decode_graph(2048),
    ] {
        let tpu = evaluate_graph(&spec, Platform::Tpuv4i, &model, &graph);
        let fuse = evaluate_graph(&spec, Platform::FuseCu, &model, &graph);
        assert!(fuse.total_ma() <= tpu.total_ma());
        assert!(fuse.total_cycles() <= tpu.total_cycles());
        assert_eq!(fuse.total_macs(), tpu.total_macs());
    }
    // Cross-attention offers three fusable chains; FuseCU uses them.
    let xg = cfg.build_cross_attention_graph(512);
    let fuse = evaluate_graph(&spec, Platform::FuseCu, &model, &xg);
    assert!(fuse.fused_steps() >= 2, "got {}", fuse.fused_steps());
}

#[test]
fn area_model_consistent_with_architecture_claims() {
    let b = fusecu::rtl::fig12_breakdown(128, 4);
    assert!((0.10..=0.14).contains(&b.overhead_ratio()));
    assert!(b.interconnect_share() < 0.001);
    // The claimed "no buffer/register additions": arithmetic census equal.
    let base = fusecu::rtl::designs::tpu_like(128, 4).cell_census();
    let fuse = fusecu::rtl::designs::fusecu(128, 4).cell_census();
    assert_eq!(base["mult8"], fuse["mult8"]);
    assert_eq!(base["add32"], fuse["add32"]);
}
