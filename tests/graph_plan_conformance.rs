//! Whole-graph fusion-plan conformance: replay `plan_chain` winners
//! end-to-end on the simulator drivers.
//!
//! `search_conformance` proves each *individual* winner (solo nest or
//! fused pair) replays exactly. This suite closes the remaining gap: a
//! whole [`ChainPlan`] — the DP partition of a real model's matmul chain
//! into solo and fused steps — is executed step by step, threading each
//! step's output matrix into the next step's left operand, and must
//! (a) produce the exact chain product and (b) measure, step by step and
//! in total, exactly the traffic the planner reported as the plan's cost.
//!
//! The light tests cover synthetic chains in the default CI run; the
//! `#[ignore]`d release gate replays the attention chains of two Table II
//! zoo models (Blenderbot and BERT) at their real prefill shapes.

use fusecu_dataflow::{CostModel, PartialSumPolicy};
use fusecu_fusion::{plan_chain, ChainPlan, ChainStep};
use fusecu_ir::{MatMul, MmChain};
use fusecu_models::zoo;
use fusecu_sim::driver::{execute_fused_nest, execute_nest};
use fusecu_sim::Matrix;

/// The paper's per-visit accounting — the one the drivers reproduce
/// exactly, making "measured == reported" an equality, not a bound.
const MODEL: CostModel = CostModel {
    partial_sums: PartialSumPolicy::PerVisit,
};

const SEED: u64 = 0x9A7_F1A9;

/// Replays every step of `plan` over pseudo-random operands, threading the
/// intermediates through, and asserts the exact chain product plus exact
/// per-step and total traffic agreement with the planner's report.
fn assert_plan_replays_exactly(chain: &MmChain, plan: &ChainPlan, label: &str) {
    let x0 = Matrix::pseudo_random(
        chain.mm(0).m() as usize,
        chain.mm(0).k() as usize,
        SEED,
    );
    let weights: Vec<Matrix> = (0..chain.len())
        .map(|i| {
            let mm = chain.mm(i);
            Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, SEED + 1 + i as u64)
        })
        .collect();
    let mut golden = x0.clone();
    for w in &weights {
        golden = golden.matmul(w);
    }

    let covered: usize = plan.steps().iter().map(ChainStep::width).sum();
    assert_eq!(covered, chain.len(), "{label}: plan must cover the chain");

    let mut current = x0;
    let mut measured_total = 0u64;
    for step in plan.steps() {
        match step {
            ChainStep::Solo { index, dataflow } => {
                let run = execute_nest(&current, &weights[*index], chain.mm(*index), dataflow.nest());
                assert_eq!(
                    run.measured,
                    dataflow.ma(),
                    "{label}: solo step mm{index} measured traffic disagrees"
                );
                measured_total += run.measured.total();
                current = run.out;
            }
            ChainStep::Pair { index, fused } => {
                let pair = fused.pair();
                let run = execute_fused_nest(
                    &current,
                    &weights[*index],
                    &weights[*index + 1],
                    &pair,
                    fused.nest(),
                );
                let total: u64 = run.measured.iter().sum();
                assert_eq!(
                    total,
                    fused.total_ma(),
                    "{label}: fused step mm{index}+mm{} measured traffic disagrees",
                    *index + 1
                );
                measured_total += total;
                current = run.out;
            }
        }
    }
    assert_eq!(current, golden, "{label}: end-to-end chain product is wrong");
    assert_eq!(
        measured_total,
        plan.total_ma(),
        "{label}: summed step traffic disagrees with the plan's reported total"
    );
}

fn plan_and_replay(chain: &MmChain, bs: u64, label: &str) -> ChainPlan {
    let plan = plan_chain(&MODEL, chain, bs);
    assert_plan_replays_exactly(chain, &plan, &format!("{label} bs={bs}"));
    plan
}

/// The attention chain (`qk^T → pv`) of a zoo model's prefill graph: the
/// chain with the fewest MACs (the FFN chain dwarfs it at every Table II
/// shape).
fn attention_chain(config: &fusecu_models::TransformerConfig) -> MmChain {
    let graph = config.build_graph();
    let macs = |c: &MmChain| -> u64 { (0..c.len()).map(|i| c.mm(i).macs()).sum() };
    graph
        .mm_chains()
        .into_iter()
        .map(|(_, chain, _)| chain)
        .filter(|c| c.len() == 2)
        .min_by_key(macs)
        .expect("prefill graph always has the attention chain")
}

#[test]
fn synthetic_chain_plans_replay_exactly() {
    // A 3-matmul chain where, depending on the buffer, the plan mixes
    // fused pairs and solo tails — both step kinds replay through.
    let chain = MmChain::try_new(vec![
        MatMul::new(24, 8, 48),  // big intermediate: fusion candidate
        MatMul::new(24, 48, 8),
        MatMul::new(24, 8, 6),
    ])
    .unwrap();
    let mut solo_steps = 0;
    let mut fused_steps = 0;
    for bs in [16u64, 256, 4_096, 65_536] {
        let plan = plan_and_replay(&chain, bs, "synthetic");
        for step in plan.steps() {
            match step {
                ChainStep::Solo { .. } => solo_steps += 1,
                ChainStep::Pair { .. } => fused_steps += 1,
            }
        }
    }
    assert!(solo_steps > 0, "grid never exercised a solo step");
    assert!(fused_steps > 0, "grid never exercised a fused step");
}

#[test]
fn two_matmul_attention_shape_plan_replays_exactly() {
    // A miniature attention chain (seq 32, head dim 8) — the same shape
    // family as the zoo gate below, small enough for debug-mode CI.
    let chain = MmChain::try_new(vec![MatMul::new(32, 8, 32), MatMul::new(32, 32, 8)]).unwrap();
    for bs in [32u64, 512, 8_192] {
        plan_and_replay(&chain, bs, "mini-attention");
    }
}

// --- release gate: real Table II attention chains (`cargo test -- --ignored`) ---

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn blenderbot_attention_plan_replays_exactly() {
    // Blenderbot prefill attention: qk^T (256×64×256) → pv (256×256×64).
    let chain = attention_chain(&zoo::blenderbot());
    assert_eq!(chain.len(), 2);
    let plan = plan_and_replay(&chain, 64 * 1024, "Blenderbot attention");
    assert_eq!(
        plan.fused_pair_count(),
        1,
        "the attention pair must fuse at a 64K buffer"
    );
}

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn bert_attention_plan_replays_exactly() {
    // BERT prefill attention: qk^T (1024×64×1024) → pv (1024×1024×64).
    let chain = attention_chain(&zoo::bert());
    assert_eq!(chain.len(), 2);
    let plan = plan_and_replay(&chain, 64 * 1024, "BERT attention");
    assert_eq!(
        plan.fused_pair_count(),
        1,
        "the attention pair must fuse at a 64K buffer"
    );
}
