//! Whole-graph fusion-plan conformance: replay `plan_chain` winners
//! end-to-end on the simulator drivers.
//!
//! `search_conformance` proves each *individual* winner (solo nest or
//! fused pair) replays exactly. This suite closes the remaining gap: a
//! whole [`ChainPlan`] — the DP partition of a real model's matmul chain
//! into solo and fused steps — is executed step by step, threading each
//! step's output matrix into the next step's left operand, and must
//! (a) produce the exact chain product and (b) measure, step by step and
//! in total, exactly the traffic the planner reported as the plan's cost.
//!
//! The light tests cover synthetic chains in the default CI run; the
//! `#[ignore]`d release gate replays the attention chains of two Table II
//! zoo models (Blenderbot and BERT) at their real prefill shapes.

use std::collections::HashMap;

use fusecu_dataflow::{CostModel, PartialSumPolicy};
use fusecu_fusion::{
    plan_chain, plan_graph, try_plan_dag_with, try_plan_graph_chained, ChainPlan, ChainStep,
    GraphPlan, GraphStep, PlannerConfig,
};
use fusecu_ir::{MatMul, MmChain, NodeId, OpGraph};
use fusecu_models::zoo;
use fusecu_sim::driver::{execute_fused_chain, execute_fused_nest, execute_nest};
use fusecu_sim::Matrix;

/// The paper's per-visit accounting — the one the drivers reproduce
/// exactly, making "measured == reported" an equality, not a bound.
const MODEL: CostModel = CostModel {
    partial_sums: PartialSumPolicy::PerVisit,
};

const SEED: u64 = 0x9A7_F1A9;

/// Replays every step of `plan` over pseudo-random operands, threading the
/// intermediates through, and asserts the exact chain product plus exact
/// per-step and total traffic agreement with the planner's report.
fn assert_plan_replays_exactly(chain: &MmChain, plan: &ChainPlan, label: &str) {
    let x0 = Matrix::pseudo_random(
        chain.mm(0).m() as usize,
        chain.mm(0).k() as usize,
        SEED,
    );
    let weights: Vec<Matrix> = (0..chain.len())
        .map(|i| {
            let mm = chain.mm(i);
            Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, SEED + 1 + i as u64)
        })
        .collect();
    let mut golden = x0.clone();
    for w in &weights {
        golden = golden.matmul(w);
    }

    let covered: usize = plan.steps().iter().map(ChainStep::width).sum();
    assert_eq!(covered, chain.len(), "{label}: plan must cover the chain");

    let mut current = x0;
    let mut measured_total = 0u64;
    for step in plan.steps() {
        match step {
            ChainStep::Solo { index, dataflow } => {
                let run = execute_nest(&current, &weights[*index], chain.mm(*index), dataflow.nest());
                assert_eq!(
                    run.measured,
                    dataflow.ma(),
                    "{label}: solo step mm{index} measured traffic disagrees"
                );
                measured_total += run.measured.total();
                current = run.out;
            }
            ChainStep::Pair { index, fused } => {
                let pair = fused.pair();
                let run = execute_fused_nest(
                    &current,
                    &weights[*index],
                    &weights[*index + 1],
                    &pair,
                    fused.nest(),
                );
                let total: u64 = run.measured.iter().sum();
                assert_eq!(
                    total,
                    fused.total_ma(),
                    "{label}: fused step mm{index}+mm{} measured traffic disagrees",
                    *index + 1
                );
                measured_total += total;
                current = run.out;
            }
        }
    }
    assert_eq!(current, golden, "{label}: end-to-end chain product is wrong");
    assert_eq!(
        measured_total,
        plan.total_ma(),
        "{label}: summed step traffic disagrees with the plan's reported total"
    );
}

fn plan_and_replay(chain: &MmChain, bs: u64, label: &str) -> ChainPlan {
    let plan = plan_chain(&MODEL, chain, bs);
    assert_plan_replays_exactly(chain, &plan, &format!("{label} bs={bs}"));
    plan
}

/// The attention chain (`qk^T → pv`) of a zoo model's prefill graph: the
/// chain with the fewest MACs (the FFN chain dwarfs it at every Table II
/// shape).
fn attention_chain(config: &fusecu_models::TransformerConfig) -> MmChain {
    let graph = config.build_graph();
    let macs = |c: &MmChain| -> u64 { (0..c.len()).map(|i| c.mm(i).macs()).sum() };
    graph
        .mm_chains()
        .into_iter()
        .map(|(_, chain, _)| chain)
        .filter(|c| c.len() == 2)
        .min_by_key(macs)
        .expect("prefill graph always has the attention chain")
}

#[test]
fn synthetic_chain_plans_replay_exactly() {
    // A 3-matmul chain where, depending on the buffer, the plan mixes
    // fused pairs and solo tails — both step kinds replay through.
    let chain = MmChain::try_new(vec![
        MatMul::new(24, 8, 48),  // big intermediate: fusion candidate
        MatMul::new(24, 48, 8),
        MatMul::new(24, 8, 6),
    ])
    .unwrap();
    let mut solo_steps = 0;
    let mut fused_steps = 0;
    for bs in [16u64, 256, 4_096, 65_536] {
        let plan = plan_and_replay(&chain, bs, "synthetic");
        for step in plan.steps() {
            match step {
                ChainStep::Solo { .. } => solo_steps += 1,
                ChainStep::Pair { .. } => fused_steps += 1,
            }
        }
    }
    assert!(solo_steps > 0, "grid never exercised a solo step");
    assert!(fused_steps > 0, "grid never exercised a fused step");
}

#[test]
fn two_matmul_attention_shape_plan_replays_exactly() {
    // A miniature attention chain (seq 32, head dim 8) — the same shape
    // family as the zoo gate below, small enough for debug-mode CI.
    let chain = MmChain::try_new(vec![MatMul::new(32, 8, 32), MatMul::new(32, 32, 8)]).unwrap();
    for bs in [32u64, 512, 8_192] {
        plan_and_replay(&chain, bs, "mini-attention");
    }
}

// --- whole-graph DAG plans ---

/// Replays every step of a whole-graph fusion plan on the simulator — one
/// instance per step, threading a producer's output matrix into its
/// consumer's left operand wherever the graph names a unique feeding
/// producer — and asserts per-step measured traffic equals the planner's
/// report, per-step products are exact, and the count-weighted sum equals
/// the plan's total.
fn assert_graph_plan_replays_exactly(graph: &OpGraph, plan: &GraphPlan, label: &str) {
    let dag = graph.mm_dag();
    // consumer → producer, kept only where the feeder is unambiguous (at a
    // fan-in site the residual add mixes values the simulator doesn't
    // model, so those consumers get fresh pseudo-random operands).
    let mut feeder: HashMap<NodeId, NodeId> = HashMap::new();
    let mut ambiguous: Vec<NodeId> = Vec::new();
    for l in dag.links() {
        let p = dag.mms()[l.producer].0;
        let c = dag.mms()[l.consumer].0;
        if feeder.insert(c, p).is_some() {
            ambiguous.push(c);
        }
    }
    for c in &ambiguous {
        feeder.remove(c);
    }

    let covered: usize = plan.steps().iter().map(GraphStep::width).sum();
    assert_eq!(
        covered,
        graph.matmuls().count(),
        "{label}: plan must cover every matmul"
    );

    let mut outputs: HashMap<NodeId, Matrix> = HashMap::new();
    let input_for = |outputs: &HashMap<NodeId, Matrix>, node: NodeId, mm: MatMul, seed: u64| {
        match feeder.get(&node).and_then(|p| outputs.get(p)) {
            Some(fed) => fed.clone(),
            None => Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, seed),
        }
    };

    let mut measured_total = 0u64;
    for (si, step) in plan.steps().iter().enumerate() {
        let seed = SEED + 101 * si as u64;
        match step {
            GraphStep::Solo {
                node,
                count,
                dataflow,
            } => {
                let name = &graph.node(*node).name;
                let mm = graph
                    .node(*node)
                    .kind
                    .as_matmul()
                    .expect("solo step covers a matmul node");
                let x = input_for(&outputs, *node, mm, seed);
                let w = Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, seed + 1);
                let run = execute_nest(&x, &w, mm, dataflow.nest());
                assert_eq!(
                    run.measured,
                    dataflow.ma(),
                    "{label}: solo step {name} measured traffic disagrees"
                );
                assert_eq!(run.out, x.matmul(&w), "{label}: solo step {name} product");
                measured_total += run.measured.total() * count;
                outputs.insert(*node, run.out);
            }
            GraphStep::Fused {
                producer,
                consumer,
                count,
                fused,
            } => {
                let pname = &graph.node(*producer).name;
                let cname = &graph.node(*consumer).name;
                let pair = fused.pair();
                let (pmm, cmm) = (pair.producer(), pair.consumer());
                let x = input_for(&outputs, *producer, pmm, seed);
                let w1 = Matrix::pseudo_random(pmm.k() as usize, pmm.l() as usize, seed + 1);
                let w2 = Matrix::pseudo_random(cmm.k() as usize, cmm.l() as usize, seed + 2);
                let run = execute_fused_nest(&x, &w1, &w2, &pair, fused.nest());
                let total: u64 = run.measured.iter().sum();
                assert_eq!(
                    total,
                    fused.total_ma(),
                    "{label}: fused step {pname}+{cname} measured traffic disagrees"
                );
                assert_eq!(
                    run.out,
                    x.matmul(&w1).matmul(&w2),
                    "{label}: fused step {pname}+{cname} product"
                );
                measured_total += total * count;
                outputs.insert(*consumer, run.out);
            }
            GraphStep::FusedChain {
                nodes,
                count,
                chain,
            } => {
                let head = nodes[0];
                let tail = *nodes.last().expect("chains are non-empty");
                let names: Vec<&str> = nodes
                    .iter()
                    .map(|n| graph.node(*n).name.as_str())
                    .collect();
                let path = names.join("+");
                let fc = chain.chain();
                let x = input_for(&outputs, head, fc.mm(0), seed);
                let ws: Vec<Matrix> = (0..fc.depth())
                    .map(|i| {
                        Matrix::pseudo_random(
                            fc.col(i) as usize,
                            fc.col(i + 1) as usize,
                            seed + 1 + i as u64,
                        )
                    })
                    .collect();
                let run = execute_fused_chain(&x, &ws, fc, chain.nest());
                let total: u64 = run.measured.iter().sum();
                assert_eq!(
                    total,
                    chain.total_ma(),
                    "{label}: chain step {path} measured traffic disagrees"
                );
                let golden = ws.iter().fold(x, |acc, w| acc.matmul(w));
                assert_eq!(run.out, golden, "{label}: chain step {path} product");
                measured_total += total * count;
                outputs.insert(tail, run.out);
            }
        }
    }
    assert_eq!(
        measured_total,
        plan.total_ma(),
        "{label}: count-weighted step traffic disagrees with the plan total"
    );
}

/// The branchy attention block of a zoo model — per-head projections
/// through `out_proj`, without the FFN — the release-gate slice of
/// [`fusecu_models::TransformerConfig::build_branchy_graph`] that keeps a
/// full-shape replay tractable.
fn attention_block_graph(c: &fusecu_models::TransformerConfig) -> OpGraph {
    let (s, h, dh) = (c.seq_len, c.hidden, c.head_dim());
    let per_head = c.batch * c.heads;
    let mut g = OpGraph::new();
    let norm = g.add_elementwise("input_norm", c.tokens() * h, 1);
    let mut projs = [norm; 3];
    for (slot, name) in projs.iter_mut().zip(["q_proj", "k_proj", "v_proj"]) {
        *slot = g.add_matmul(name, MatMul::new(s, h, dh), per_head);
        g.connect(norm, *slot);
    }
    let qk = g.add_matmul("qk^T", MatMul::new(s, dh, s), per_head);
    let sm = g.add_softmax("softmax", s, s, per_head);
    let pv = g.add_matmul("pv", MatMul::new(s, s, dh), per_head);
    let out = g.add_matmul("out_proj", MatMul::new(s, dh, h), per_head);
    g.connect(projs[0], qk);
    g.connect(qk, sm);
    g.connect(sm, pv);
    g.connect(pv, out);
    g
}

#[test]
fn fan_in_regression_dag_plan_beats_chains_and_replays() {
    // At a 1 Ki buffer the wide producer (k = 64) saves 8 448 MA when
    // fused against the consumer; the narrow one (k = 32) only 5 376. The
    // structural chain chooser claims `narrow` on both insertion orders.
    const BS: u64 = 1024;
    let graph = zoo::fan_in_regression_graph();
    let plan = plan_graph(&MODEL, &graph, BS);
    let chained = try_plan_graph_chained(&MODEL, &graph, BS).expect("chain fallback plans");
    assert!(
        plan.total_ma() < chained.total_ma(),
        "DAG matching must strictly beat chain claiming: {} vs {}",
        plan.total_ma(),
        chained.total_ma()
    );
    let fused_producer_k = plan
        .steps()
        .iter()
        .find_map(|s| match s {
            GraphStep::Fused { fused, .. } => Some(fused.pair().producer().k()),
            GraphStep::Solo { .. } | GraphStep::FusedChain { .. } => None,
        })
        .expect("the winning plan fuses one pair");
    assert_eq!(fused_producer_k, 64, "the wide producer wins the fan-in");

    // Insertion order must not matter to the DAG planner.
    let mirrored_graph = zoo::fan_in_regression_graph_mirrored();
    let mirrored = plan_graph(&MODEL, &mirrored_graph, BS);
    assert_eq!(plan.total_ma(), mirrored.total_ma());

    assert_graph_plan_replays_exactly(&graph, &plan, "fan-in regression");
    assert_graph_plan_replays_exactly(&mirrored_graph, &mirrored, "fan-in regression (mirrored)");
}

#[test]
fn mini_attention_branchy_plans_replay_exactly() {
    // Whole-model DAG plan over the branchy mini-attention layer: Q/K/V
    // fan-out, the four-matmul Q path, the count-blocked residual link,
    // and the FFN chain — replayed end to end at several buffer sizes.
    let graph = zoo::mini_attention().build_branchy_graph();
    let mut fused_seen = 0;
    for bs in [64u64, 512, 8 * 1024] {
        let plan = plan_graph(&MODEL, &graph, bs);
        let chained = try_plan_graph_chained(&MODEL, &graph, bs).expect("chain fallback plans");
        assert!(plan.total_ma() <= chained.total_ma());
        fused_seen += plan.fused_step_count();
        assert_graph_plan_replays_exactly(&graph, &plan, &format!("mini-attention bs={bs}"));
    }
    assert!(fused_seen > 0, "buffer grid never exercised a fused step");
}

#[test]
fn zoo_dag_plans_never_worse_than_chain_decomposition() {
    // Acceptance gate: on every Table II entry — prefill and branchy
    // per-head views — the fusion-depth dominance chain holds:
    // depth-aware DAG plan ≤ pairs-only DAG matching ≤ greedy chain
    // decomposition.
    let pairs_only = PlannerConfig::pairs_only();
    for c in zoo::all() {
        for (graph, kind) in [(c.build_graph(), "prefill"), (c.build_branchy_graph(), "branchy")] {
            for bs in [4 * 1024u64, 64 * 1024] {
                let dag = plan_graph(&MODEL, &graph, bs);
                let pairwise = try_plan_dag_with(&pairs_only, &MODEL, &graph.mm_dag(), bs)
                    .expect("pairs-only planner plans");
                let chained =
                    try_plan_graph_chained(&MODEL, &graph, bs).expect("chain fallback plans");
                assert!(
                    dag.total_ma() <= pairwise.total_ma(),
                    "{} {kind} bs={bs}: DAG-with-depth {} > pairwise {}",
                    c.name,
                    dag.total_ma(),
                    pairwise.total_ma()
                );
                assert!(
                    pairwise.total_ma() <= chained.total_ma(),
                    "{} {kind} bs={bs}: pairwise {} > chained {}",
                    c.name,
                    pairwise.total_ma(),
                    chained.total_ma()
                );
            }
        }
    }
}

/// The pinned mini-attention depth regression (satellite of the k-ary
/// planner): the depth-aware plan fuses the whole four-matmul Q path
/// (`q_proj → qk^T → pv → out_proj`) into one chain priced at its
/// external lower bound, strictly beating the best pairwise matching by a
/// pinned MA delta — and the chain replays byte-exactly on the simulator.
/// Shared by the debug test and the release-mode `#[ignore]` gate.
fn assert_mini_attention_depth_plan_is_pinned() {
    const BS: u64 = 4 * 1024;
    let graph = zoo::mini_attention().build_branchy_graph();
    let deep = plan_graph(&MODEL, &graph, BS);
    let pairs = try_plan_dag_with(&PlannerConfig::pairs_only(), &MODEL, &graph.mm_dag(), BS)
        .expect("pairs-only planner plans");

    // The Q path fuses end to end; nothing deeper exists in the layer.
    assert_eq!(deep.max_fusion_depth(), 4);
    let (nodes, chain) = deep
        .steps()
        .iter()
        .find_map(|s| match s {
            GraphStep::FusedChain { nodes, chain, .. } => Some((nodes, chain)),
            _ => None,
        })
        .expect("the depth plan holds exactly one fused chain");
    let names: Vec<&str> = nodes.iter().map(|n| graph.node(*n).name.as_str()).collect();
    assert_eq!(names, ["q_proj", "qk^T", "pv", "out_proj"]);

    // The chain reaches its external-tensor lower bound: every interior
    // intermediate (Q, scores, context) stays on chip.
    assert_eq!(chain.total_ma(), 1_408);
    assert_eq!(chain.total_ma(), chain.chain().external_ideal_ma());

    // Pinned totals: two head instances of the chain save 768 MA each
    // over the best pairwise matching (which can only fuse qk^T+pv).
    assert_eq!(deep.total_ma(), 7_424);
    assert_eq!(pairs.total_ma(), 8_960);
    assert_eq!(pairs.total_ma() - deep.total_ma(), 1_536);
    assert!(
        deep.total_ma() < pairs.total_ma(),
        "depth-aware plan must strictly beat the pair matching"
    );

    // Byte-verified by simulator replay, not just priced.
    assert_graph_plan_replays_exactly(&graph, &deep, "mini-attention depth pin");
}

#[test]
fn mini_attention_depth_plan_beats_pair_matching_pinned() {
    assert_mini_attention_depth_plan_is_pinned();
}

// --- release gate: real Table II attention chains (`cargo test -- --ignored`) ---

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn mini_attention_depth_plan_pinned_release_gate() {
    // The same pinned depth regression, re-run in the release-mode gate:
    // optimizer settings must not change the planned structure, the
    // pinned totals, or the replayed traffic.
    assert_mini_attention_depth_plan_is_pinned();
}

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn blenderbot_attention_plan_replays_exactly() {
    // Blenderbot prefill attention: qk^T (256×64×256) → pv (256×256×64).
    let chain = attention_chain(&zoo::blenderbot());
    assert_eq!(chain.len(), 2);
    let plan = plan_and_replay(&chain, 64 * 1024, "Blenderbot attention");
    assert_eq!(
        plan.fused_pair_count(),
        1,
        "the attention pair must fuse at a 64K buffer"
    );
}

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn bert_attention_plan_replays_exactly() {
    // BERT prefill attention: qk^T (1024×64×1024) → pv (1024×1024×64).
    let chain = attention_chain(&zoo::bert());
    assert_eq!(chain.len(), 2);
    let plan = plan_and_replay(&chain, 64 * 1024, "BERT attention");
    assert_eq!(
        plan.fused_pair_count(),
        1,
        "the attention pair must fuse at a 64K buffer"
    );
}

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn blenderbot_branchy_attention_graph_plan_replays_exactly() {
    // The full branchy attention block at Blenderbot's prefill shapes:
    // per-head projections (256×1024×64), qk^T, pv, out_proj.
    let graph = attention_block_graph(&zoo::blenderbot());
    let plan = plan_graph(&MODEL, &graph, 64 * 1024);
    assert!(
        plan.fused_step_count() >= 1,
        "the attention block must fuse at a 64K buffer"
    );
    let chained = try_plan_graph_chained(&MODEL, &graph, 64 * 1024).expect("chain fallback plans");
    assert!(plan.total_ma() <= chained.total_ma());
    assert_graph_plan_replays_exactly(&graph, &plan, "Blenderbot branchy attention");
}

#[test]
#[ignore = "heavy: release-mode CI whole-graph conformance gate"]
fn bert_branchy_attention_graph_plan_replays_exactly() {
    // The full branchy attention block at BERT's prefill shapes:
    // per-head projections (1024×768×64), qk^T, pv, out_proj.
    let graph = attention_block_graph(&zoo::bert());
    let plan = plan_graph(&MODEL, &graph, 64 * 1024);
    assert!(
        plan.fused_step_count() >= 1,
        "the attention block must fuse at a 64K buffer"
    );
    let chained = try_plan_graph_chained(&MODEL, &graph, 64 * 1024).expect("chain fallback plans");
    assert!(plan.total_ma() <= chained.total_ma());
    assert_graph_plan_replays_exactly(&graph, &plan, "BERT branchy attention");
}

