//! Crash-safety and concurrency of the incremental snapshot path behind
//! `fusecu-serve`: entries flushed by [`DiskCacheSession::flush`] survive
//! a panic plus SIGKILL-style death (Drop never runs), and concurrent
//! save/load over one cache file never observes a torn or
//! checksum-failing snapshot thanks to writer-unique temp files and
//! atomic renames.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use fusecu::pipeline::DiskCacheSession;
use fusecu_dataflow::persist::{fingerprint, CacheFile};
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;
use fusecu_search::DataflowCache;

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("serve-session")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The daemon's crash contract: what `flush()` wrote stays written even
/// when the process later panics mid-interval and dies without running
/// destructors.
#[test]
fn flush_persists_through_panic_and_kill() {
    let dir = tmp("flush-crash");
    let mut session = DiskCacheSession::at(dir.clone());
    assert_eq!(session.loaded(), 0);

    // Shapes unique to this test so shared-process cache state cannot
    // satisfy the assertions by accident.
    let model = CostModel::paper();
    let early: Vec<MatMul> = (0..5).map(|i| MatMul::new(601 + i, 97, 83)).collect();
    for &mm in &early {
        DataflowCache::global().principle(&model, mm, 1 << 16);
    }
    assert!(session.dirty_entries() >= early.len(), "new entries are dirty");
    let flushed = session.flush().unwrap();
    assert!(flushed >= early.len(), "flush writes the dirty entries");
    assert_eq!(session.dirty_entries(), 0);
    // An all-hits interval has nothing to write.
    assert_eq!(session.flush().unwrap(), 0);

    // More work lands, then the serving thread panics before the next
    // snapshot — and the process dies without Drop (mem::forget below is
    // this test's stand-in for SIGKILL).
    let late = MatMul::new(907, 89, 79);
    let panicked = std::panic::catch_unwind(move || {
        DataflowCache::global().principle(&model, late, 1 << 16);
        panic!("worker died mid-interval");
    });
    assert!(panicked.is_err());
    assert!(session.dirty_entries() >= 1, "the late entry is dirty");
    std::mem::forget(session);

    // A fresh process' view: the flushed entries load and answer as hits;
    // the never-flushed late entry is cold.
    let fresh = DataflowCache::new();
    let loaded = fresh.load_from(&dir.join("dataflow.cache"));
    assert!(
        loaded >= early.len(),
        "flushed entries must survive the crash, loaded {loaded}"
    );
    let before = fresh.stats();
    for &mm in &early {
        fresh.principle(&model, mm, 1 << 16);
    }
    let warm = fresh.stats().since(before);
    assert_eq!((warm.hits, warm.misses), (early.len() as u64, 0));
    let before = fresh.stats();
    fresh.principle(&model, late, 1 << 16);
    assert_eq!(fresh.stats().since(before).misses, 1, "late entry was lost with the crash");
}

/// Two sessions' processes racing on one cache directory: a writer
/// snapshotting repeatedly while a reader preloads in a loop. The
/// temp-file + rename discipline (unique temp name per writer) means the
/// reader sees a complete snapshot every single time — never a torn file,
/// never a checksum failure, even with a second writer interleaving.
#[test]
fn concurrent_save_and_load_never_tear() {
    let dir = tmp("torn");
    let path = dir.join("shared.cache");
    let fp = fingerprint();

    // Two distinct, internally-consistent snapshots: every record of
    // snapshot `tag` carries the tag, so a blend of the two is detectable.
    let snapshot = |tag: u64| {
        let mut file = CacheFile::new();
        let records: Vec<Vec<u64>> = (0..64).map(|i| vec![tag, i, tag ^ i]).collect();
        file.push_section("records", records);
        file
    };
    snapshot(1).save_with(&path, &fp).unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for tag in [1u64, 2] {
            let (path, fp, stop) = (&path, &fp, &stop);
            scope.spawn(move || {
                let file = snapshot(tag);
                while !stop.load(Ordering::Relaxed) {
                    file.save_with(path, fp).unwrap();
                }
            });
        }
        let mut seen = [false; 2];
        for _ in 0..500 {
            let file = CacheFile::load_with(&path, &fp)
                .expect("a reader must always see a complete, checksummed file");
            let records = file.section("records");
            assert_eq!(records.len(), 64, "no partial section");
            let tag = records[0][0];
            assert!(tag == 1 || tag == 2);
            for (i, rec) in records.iter().enumerate() {
                assert_eq!(
                    rec.as_slice(),
                    &[tag, i as u64, tag ^ i as u64],
                    "blended snapshot observed"
                );
            }
            seen[tag as usize - 1] = true;
        }
        stop.store(true, Ordering::Relaxed);
        assert!(seen[0] || seen[1]);
    });

    // No temp files left behind once the writers are done.
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
}
