//! Serve-protocol conformance: every request variant round-trips through
//! its canonical wire encoding byte-identically, malformed lines are
//! rejected with an error response (never a panic, never daemon death),
//! and batch answers are byte-identical to serial answers.

use proptest::prelude::*;

use fusecu::server::{ParseError, Request, Server};
use fusecu_search::Parallelism;

fn model_token(rw: bool) -> &'static str {
    if rw {
        "rw"
    } else {
        "paper"
    }
}

const ORDERS: [&str; 6] = ["mkl", "mlk", "kml", "klm", "lmk", "lkm"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `optimize-op` bodies round-trip: parse -> canonical -> parse is the
    /// identity and the canonical encoding reproduces the input bytes.
    #[test]
    fn optimize_op_round_trips(
        m in 1u64..4096,
        k in 1u64..4096,
        l in 1u64..4096,
        bs in 3u64..10_000_000,
        rw in any::<bool>(),
    ) {
        let body = format!("optimize-op {m} {k} {l} {bs} {}", model_token(rw));
        let req = Request::parse(&body).expect("valid body");
        prop_assert_eq!(&req.canonical(), &body);
        prop_assert_eq!(Request::parse(&req.canonical()).expect("canonical parses"), req);
    }

    /// `score` bodies round-trip across every loop order and in-range
    /// tiling.
    #[test]
    fn score_round_trips(
        m in 1u64..1024,
        k in 1u64..1024,
        l in 1u64..1024,
        order_ix in 0u64..6,
        seed in any::<u64>(),
        rw in any::<bool>(),
    ) {
        let (tm, tk, tl) = (1 + seed % m, 1 + (seed >> 16) % k, 1 + (seed >> 32) % l);
        let body = format!(
            "score {m} {k} {l} {} {tm} {tk} {tl} {}",
            ORDERS[order_ix as usize],
            model_token(rw)
        );
        let req = Request::parse(&body).expect("valid body");
        prop_assert_eq!(&req.canonical(), &body);
        prop_assert_eq!(Request::parse(&req.canonical()).expect("canonical parses"), req);
    }

    /// `plan-chain` bodies round-trip: chains built left-to-right so every
    /// producer/consumer pair composes.
    #[test]
    fn plan_chain_round_trips(
        m in 1u64..512,
        k0 in 1u64..512,
        dims in proptest::collection::vec(1u64..512, 1..5),
        bs in 3u64..10_000_000,
        rw in any::<bool>(),
    ) {
        let mut body = format!("plan-chain {bs} {} {}", model_token(rw), dims.len());
        let mut k = k0;
        for &l in &dims {
            body.push_str(&format!(" {m} {k} {l}"));
            k = l;
        }
        let req = Request::parse(&body).expect("valid body");
        prop_assert_eq!(&req.canonical(), &body);
        prop_assert_eq!(Request::parse(&req.canonical()).expect("canonical parses"), req);
    }

    /// `plan-graph` bodies round-trip on generated two-chain DAGs with a
    /// shared producer (the smallest graph exercising both node and link
    /// encodings).
    #[test]
    fn plan_graph_round_trips(
        m in 1u64..256,
        k in 1u64..256,
        mid in 1u64..256,
        l1 in 1u64..256,
        l2 in 1u64..256,
        count in 1u64..32,
        bs in 3u64..10_000_000,
        rw in any::<bool>(),
    ) {
        // Node 0 feeds nodes 1 and 2: consumer m/k must equal producer m/l.
        let body = format!(
            "plan-graph {bs} {} 3 0 {m} {k} {mid} {count} 1 {m} {mid} {l1} {count} 2 {m} {mid} {l2} {count} 2 0 1 0 2",
            model_token(rw)
        );
        let req = Request::parse(&body).expect("valid body");
        prop_assert_eq!(&req.canonical(), &body);
        prop_assert_eq!(Request::parse(&req.canonical()).expect("canonical parses"), req);
    }

    /// Arbitrary junk never panics the parser: it either parses (and then
    /// must round-trip) or yields a typed error.
    #[test]
    fn arbitrary_lines_never_panic(
        junk in proptest::collection::vec(any::<u64>(), 1..12),
        verb_ix in 0u64..8,
    ) {
        let verb = [
            "ping", "optimize-op", "plan-chain", "plan-graph", "score",
            "", "quantum-leap", "optimize-op\u{7}",
        ][verb_ix as usize];
        let mut body = verb.to_string();
        for j in &junk {
            body.push_str(&format!(" {j}"));
        }
        match Request::parse(&body) {
            Ok(req) => {
                prop_assert_eq!(Request::parse(&req.canonical()).expect("canonical parses"), req);
            }
            Err(e) => {
                // The wire code is stable and non-empty.
                prop_assert!(!e.code().is_empty());
            }
        }
    }
}

#[test]
fn error_codes_are_specific() {
    for (body, want) in [
        ("", ParseError::Empty),
        ("frobnicate 1 2", ParseError::BadVerb),
        ("optimize-op 8 8", ParseError::BadToken),
        ("optimize-op 0 8 8 1024 paper", ParseError::BadRange),
        ("optimize-op 8 8 8 2 paper", ParseError::BadRange),
        ("optimize-op 8 8 8 1024 quantum", ParseError::BadModel),
        ("score 8 8 8 mmm 1 1 1 paper", ParseError::BadOrder),
        ("plan-chain 1024 paper 2 8 8 8 9 9 9", ParseError::BadChain),
        ("plan-graph 1024 paper 1 0 8 8 8 1 1 0 0", ParseError::BadGraph),
        ("plan-chain 1024 paper 100", ParseError::TooLarge),
        ("ping pong", ParseError::BadToken),
    ] {
        assert_eq!(Request::parse(body).unwrap_err(), want, "{body:?}");
    }
}

/// The server survives a firehose of malformed lines interleaved with
/// valid ones, and the valid ones still answer correctly afterwards.
#[test]
fn malformed_flood_leaves_server_alive() {
    let server = Server::new(Parallelism::Serial);
    let lines: Vec<String> = (0..200)
        .map(|i| match i % 4 {
            0 => format!("{i} optimize-op {} {} {} 32768 paper", 1 + i, 2 + i, 3 + i),
            1 => format!("{i} optimize-op what is this"),
            2 => format!("{i} plan-graph 1024 paper 999999999999999999999"),
            _ => format!("{i} \u{0}\u{1}\u{2}"),
        })
        .collect();
    let responses = server.answer_batch(&lines);
    assert_eq!(responses.len(), lines.len());
    for (line, resp) in lines.iter().zip(&responses) {
        let serial = Server::new(Parallelism::Serial).answer_line(line);
        assert_eq!(resp, &serial, "batch and serial answers must agree");
        if line.contains("32768") {
            assert!(resp.contains(" ok ma "), "{resp}");
        } else {
            assert!(resp.contains(" err "), "{resp}");
        }
    }
}
