//! Golden regression pins for the Table II transformer zoo.
//!
//! Every figure in the paper normalizes against TPUv4i at the default
//! architecture point, so a silent drift in its per-workload total memory
//! access would skew *all* reported ratios while every relative test still
//! passed. These tests pin the absolute numbers — TPUv4i (the baseline)
//! and FuseCU (the headline) — under the read-write evaluation accounting
//! at [`ArraySpec::paper_default`].
//!
//! If a deliberate model change moves these values, re-derive them with
//! `evaluate_graph` and update the constants in the same commit that
//! changes the model, stating why in the commit message. They are values
//! computed by this repository's own cost model, not numbers copied from
//! the paper (which reports normalized ratios only).

use fusecu::pipeline::evaluation_model;
use fusecu::prelude::*;

/// `(model name, TPUv4i total MA, FuseCU total MA)` at the paper-default
/// array spec, read-write partial-sum accounting, prefill graphs.
const GOLDEN: [(&str, u64, u64); 7] = [
    ("BERT", 1_479_278_592, 441_188_352),
    ("GPT-2", 3_756_785_664, 875_298_816),
    ("Blenderbot", 511_705_088, 205_520_896),
    ("XLM", 7_600_078_848, 2_751_463_424),
    ("DeBERTa-v2", 4_834_983_936, 1_635_778_560),
    ("LLaMA2", 106_474_504_192, 32_848_740_352),
    ("ALBERT", 30_601_641_984, 10_133_438_464),
];

#[test]
fn table2_zoo_total_ma_is_pinned() {
    let spec = ArraySpec::paper_default();
    let cost = evaluation_model();
    let models = zoo::all();
    assert_eq!(models.len(), GOLDEN.len(), "zoo gained or lost a model");
    for (model, &(name, tpu_ma, fusecu_ma)) in models.iter().zip(GOLDEN.iter()) {
        assert_eq!(model.name, name, "zoo order changed");
        let graph = model.build_graph();
        let tpu = evaluate_graph(&spec, Platform::Tpuv4i, &cost, &graph);
        assert_eq!(
            tpu.total_ma(),
            tpu_ma,
            "{name}: TPUv4i total MA drifted from the golden pin"
        );
        let fuse = evaluate_graph(&spec, Platform::FuseCu, &cost, &graph);
        assert_eq!(
            fuse.total_ma(),
            fusecu_ma,
            "{name}: FuseCU total MA drifted from the golden pin"
        );
    }
}

#[test]
fn golden_pins_preserve_the_headline_ordering() {
    // Redundant with the figures, but cheap: the pinned numbers themselves
    // must show FuseCU strictly below the TPUv4i baseline on every model.
    for &(name, tpu_ma, fusecu_ma) in &GOLDEN {
        assert!(
            fusecu_ma < tpu_ma,
            "{name}: pinned FuseCU MA must undercut TPUv4i"
        );
        // And the reduction is substantial (the paper reports ~63% mean
        // savings; no single model should fall under 20%).
        assert!(
            (fusecu_ma as f64) < 0.8 * tpu_ma as f64,
            "{name}: pinned reduction implausibly small"
        );
    }
}
