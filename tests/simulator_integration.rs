//! Simulator ↔ analytical-model integration: dataflows chosen by the
//! optimizers are *executed* on the cycle-level fabric simulator, and the
//! measured traffic and results must agree with the models bit-exactly.

use proptest::prelude::*;

use fusecu::prelude::*;
use fusecu::sim::driver::{execute_nest, execute_on_cu};
use fusecu::sim::{fusion, Matrix};
use fusecu_dataflow::principles::try_optimize_with;

/// The optimizer's chosen nest, replayed in execution, measures exactly the
/// traffic the optimizer predicted — for every regime.
#[test]
fn optimized_dataflows_measure_their_predicted_traffic() {
    let model = CostModel::paper();
    let mm = MatMul::new(24, 18, 30);
    let a = Matrix::pseudo_random(24, 18, 1);
    let b = Matrix::pseudo_random(18, 30, 2);
    for bs in [8u64, 40, 120, 480, 2_000] {
        let df = try_optimize_with(&model, mm, bs).expect("feasible");
        let run = execute_nest(&a, &b, mm, df.nest());
        assert_eq!(run.out, a.matmul(&b), "bs={bs}");
        assert_eq!(
            run.measured.total(),
            df.total_ma(),
            "bs={bs}: measured traffic diverges from the model"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random nests replayed in execution agree with the cost model.
    #[test]
    fn random_nests_measure_model_traffic(
        m in 1usize..16,
        k in 1usize..16,
        l in 1usize..16,
        tm in 1u64..20,
        tk in 1u64..20,
        tl in 1u64..20,
        order_idx in 0usize..6,
    ) {
        let mm = MatMul::new(m as u64, k as u64, l as u64);
        let a = Matrix::pseudo_random(m, k, 7);
        let b = Matrix::pseudo_random(k, l, 8);
        let nest = LoopNest::new(LoopNest::orders()[order_idx], Tiling::new(tm, tk, tl));
        let run = execute_nest(&a, &b, mm, &nest);
        prop_assert_eq!(run.out, a.matmul(&b));
        prop_assert_eq!(run.measured, CostModel::paper().evaluate(mm, &nest));
    }

    /// The systolic fabric computes any shape exactly under any stationary.
    #[test]
    fn systolic_execution_is_exact(
        m in 1usize..12,
        k in 1usize..12,
        l in 1usize..12,
        n in 2usize..8,
        seed in 0u64..1_000,
    ) {
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let golden = a.matmul(&b);
        for stationary in [Stationary::Ws, Stationary::Os, Stationary::Is] {
            let (out, cycles) = execute_on_cu(&a, &b, stationary, n);
            prop_assert_eq!(&out, &golden, "{} n={}", stationary, n);
            prop_assert!(cycles > 0);
        }
    }

    /// Fused mappings are exact for any chainable shapes that fit.
    #[test]
    fn fused_mappings_are_exact(
        m in 1usize..8,
        k in 1usize..8,
        l in 1usize..8,
        nn in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let n = 8;
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let d = Matrix::pseudo_random(l, nn, seed + 2);
        let golden = a.matmul(&b).matmul(&d);
        prop_assert_eq!(fusion::tile_fusion(n, &a, &b, &d).out, golden.clone());
        prop_assert_eq!(fusion::column_fusion(n, &a, &b, &d).out, golden);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reshaped four-CU fabric computes exactly like a monolithic
    /// array for any stationary tile that fits its logical extent.
    #[test]
    fn fabric_shapes_are_exact(
        n in 2usize..6,
        m in 1usize..12,
        seed in 0u64..1_000,
        shape_idx in 0usize..3,
    ) {
        use fusecu::sim::{FabricShape, FuseCuFabric};
        let shape = FabricShape::ALL[shape_idx];
        let (rows, cols) = shape.logical(n);
        let k = 1 + (seed as usize % rows);
        let l = 1 + ((seed as usize / 7) % cols);
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let mut fabric = FuseCuFabric::new(n, shape, Stationary::Ws);
        prop_assert_eq!(fabric.run_ws(&a, &b).out, a.matmul(&b));
    }

    /// Wide and narrow column fusion stay exact across random shapes that
    /// fit their respective 2-CU group extents.
    #[test]
    fn group_column_fusion_is_exact(
        n in 3usize..6,
        l in 1usize..14,
        seed in 0u64..1_000,
    ) {
        use fusecu::sim::fabric::{narrow_column_fusion, wide_column_fusion};
        // Wide: K, N up to 2N; M up to N.
        let (m, k, nn) = (
            1 + (seed as usize % n),
            1 + (seed as usize % (2 * n)),
            1 + ((seed as usize / 3) % (2 * n)),
        );
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let d = Matrix::pseudo_random(l, nn, seed + 2);
        let golden = a.matmul(&b).matmul(&d);
        prop_assert_eq!(wide_column_fusion(n, &a, &b, &d).out, golden.clone());
        // Narrow: M up to 2N; K, N up to N.
        let (m2, k2, nn2) = (
            1 + (seed as usize % (2 * n)),
            1 + (seed as usize % n),
            1 + ((seed as usize / 3) % n),
        );
        let a2 = Matrix::pseudo_random(m2, k2, seed + 3);
        let b2 = Matrix::pseudo_random(k2, l, seed + 4);
        let d2 = Matrix::pseudo_random(l, nn2, seed + 5);
        prop_assert_eq!(
            narrow_column_fusion(n, &a2, &b2, &d2).out,
            a2.matmul(&b2).matmul(&d2)
        );
    }

    /// The fused-nest replay agrees with the fused cost model for random
    /// nests — the inter-operator twin of `execute_nest`'s proof.
    #[test]
    fn random_fused_nests_measure_model_traffic(
        m in 1usize..10,
        k in 1usize..10,
        l in 1usize..10,
        nn in 1usize..10,
        tm in 1u64..12, tk in 1u64..12, tl in 1u64..12, tn in 1u64..12,
        outer_is_m in proptest::bool::ANY,
    ) {
        use fusecu::sim::driver::execute_fused_nest;
        use fusecu_fusion::{ExtTensor, FusedNest, FusedTiling};
        let pair = FusedPair::try_new(
            MatMul::new(m as u64, k as u64, l as u64),
            MatMul::new(m as u64, l as u64, nn as u64),
        )
        .expect("chained by construction");
        let a = Matrix::pseudo_random(m, k, 7);
        let b = Matrix::pseudo_random(k, l, 8);
        let d = Matrix::pseudo_random(l, nn, 9);
        let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
        let run = execute_fused_nest(&a, &b, &d, &pair, &nest);
        prop_assert_eq!(run.out, a.matmul(&b).matmul(&d));
        let predicted = nest.evaluate(&CostModel::paper(), &pair);
        for (i, t) in ExtTensor::ALL.iter().enumerate() {
            prop_assert_eq!(run.measured[i], predicted.of(*t), "{}", t);
        }
    }
}

/// The architecture model's preferred fused mapping executes correctly on
/// the simulated fabric (scaled down): the planner, the mapping chooser,
/// and the RTL-level fabric agree end to end.
#[test]
fn planned_fusion_executes_on_the_fabric() {
    // A miniature attention head: seq 12, head dim 4, on a 12-PE fabric.
    let producer = MatMul::new(12, 4, 12);
    let consumer = MatMul::new(12, 12, 4);
    let pair = FusedPair::try_new(producer, consumer).unwrap();
    let decision = fusecu::decide(&CostModel::paper(), pair, 256);
    assert!(decision.profitable(), "mini attention must fuse");

    let q = Matrix::pseudo_random(12, 4, 11);
    let kt = Matrix::pseudo_random(4, 12, 12);
    let v = Matrix::pseudo_random(12, 4, 13);
    let golden = q.matmul(&kt).matmul(&v);
    let run = fusion::column_fusion(12, &q, &kt, &v);
    assert_eq!(run.out, golden);
    assert_eq!(run.intermediate_elems, 12 * 12);
}

/// Cycle counts from the simulator corroborate the analytical fill/drain
/// shape of the cycle model: streaming depth plus ~2N overhead.
#[test]
fn simulated_cycles_match_fill_drain_model() {
    let n = 8usize;
    let mut cu = fusecu::sim::CuArray::new(n, Stationary::Ws);
    for m in [4usize, 16, 64] {
        let a = Matrix::pseudo_random(m, n, 3);
        let b = Matrix::pseudo_random(n, n, 4);
        let r = cu.run_ws(&a, &b);
        // Analytical: d3 + a + b = m + 2n, within a small constant.
        let analytic = (m + 2 * n) as u64;
        assert!(
            r.cycles >= analytic && r.cycles <= analytic + 4,
            "m={m}: simulated {} vs analytic {analytic}",
            r.cycles
        );
    }
}
