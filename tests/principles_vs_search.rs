//! The Fig 9 theorem at integration scope: across randomized shapes and
//! buffer sizes, the one-shot principle optimizers exactly match the
//! exhaustive search oracles — intra-operator and fused — and Principle 4's
//! profitability rule holds.

use proptest::prelude::*;

use fusecu::dataflow::principles::try_optimize_with;
use fusecu::prelude::*;
use fusecu_fusion::optimize_pair;
use fusecu_search::fused_exhaustive::FusedExhaustive;

fn model() -> CostModel {
    CostModel::paper()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Principles 1-3 reach the global optimum of the loop-nest model.
    #[test]
    fn principles_equal_exhaustive_oracle(
        m in 1u64..128,
        k in 1u64..128,
        l in 1u64..128,
        bs in 3u64..30_000,
    ) {
        let mm = MatMul::new(m, k, l);
        let principled = try_optimize_with(&model(), mm, bs).expect("bs >= 3");
        let searched = ExhaustiveSearch::new(model()).optimize(mm, bs);
        prop_assert_eq!(
            principled.total_ma(),
            searched.best().total_ma(),
            "mm={} bs={}", mm, bs
        );
        prop_assert!(principled.buffer_elems() <= bs);
        prop_assert!(principled.total_ma() >= mm.ideal_ma());
    }

    /// The fused closed forms reach the fused-space optimum.
    #[test]
    fn fused_closed_forms_equal_fused_oracle(
        m in 1u64..48,
        k in 1u64..48,
        l in 1u64..48,
        n in 1u64..48,
        bs in 3u64..10_000,
    ) {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n))
            .expect("shapes chain by construction");
        let principled = optimize_pair(&model(), pair, bs).map(|d| d.total_ma());
        let searched = FusedExhaustive::new(model())
            .optimize(pair, bs)
            .map(|(d, _)| d.total_ma());
        prop_assert_eq!(principled, searched, "pair={} bs={}", pair, bs);
    }

    /// The genetic (DAT-style) searcher never beats the principles — the
    /// directional half of Fig 9's comparison.
    #[test]
    fn genetic_never_beats_principles(
        m in 1u64..160,
        k in 1u64..160,
        l in 1u64..160,
        bs in 3u64..60_000,
    ) {
        let mm = MatMul::new(m, k, l);
        let principled = try_optimize_with(&model(), mm, bs).expect("bs >= 3");
        let ga = GeneticSearch::new(model()).optimize(mm, bs).expect("bs >= 3");
        prop_assert!(ga.best().total_ma() >= principled.total_ma());
    }

    /// Same-NRA symmetric pairs fuse profitably (Principle 4, positive
    /// direction). Symmetric pairs guarantee identical per-op classes.
    #[test]
    fn symmetric_same_nra_pairs_fuse_profitably(
        m in 8u64..128,
        k in 8u64..128,
        l in 8u64..128,
        bs_shift in 6u32..20,
    ) {
        let bs = 1u64 << bs_shift;
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, k))
            .expect("symmetric pair chains");
        let d = fusecu::decide(&model(), pair, bs);
        if d.same_nra() && d.fused().is_some() {
            prop_assert!(
                d.profitable(),
                "same-NRA pair {} at bs={} classes {:?} must profit",
                pair, bs, (d.producer_class(), d.consumer_class())
            );
        }
    }

    /// For Dmin-dominated shapes (the derivation's regime) the table's
    /// prediction is admitted outright, no tolerance needed.
    #[test]
    fn regime_table_exact_for_dominated_shapes(
        dmin in 2u64..64,
        factor in 4u64..12,
        bs in 3u64..100_000,
    ) {
        let big = dmin * factor;
        let mm = MatMul::new(big, dmin, big);
        let best = try_optimize_with(&model(), mm, bs).expect("bs >= 3");
        let class = best.class().expect("optimum always classifies");
        prop_assert!(
            BufferRegime::classify(mm, bs).admits(class),
            "mm={} bs={} class={}", mm, bs, class
        );
    }

    /// The regime table admits the observed optimal class everywhere.
    #[test]
    fn regime_table_admits_the_optimum(
        m in 1u64..400,
        k in 1u64..400,
        l in 1u64..400,
        bs in 3u64..200_000,
    ) {
        let mm = MatMul::new(m, k, l);
        let best = try_optimize_with(&model(), mm, bs).expect("bs >= 3");
        let class = best.class().expect("optimum always classifies");
        prop_assert!(
            fusecu::dataflow::regime::prediction_holds(&model(), mm, bs, 1.12),
            "mm={} bs={} class={}", mm, bs, class
        );
    }
}

/// Recorded shrunk input from `principles_vs_search.proptest-regressions`
/// for `principles_equal_exhaustive_oracle`, pinned as a deterministic
/// test: the seed file's cc-hash encodes proptest-internal RNG state and
/// cannot be replayed portably, so the concrete input is checked here.
/// Historically the principle optimizer's stationary sweep lost to the
/// oracle on this skewed shape near the Two/Three boundary.
#[test]
fn regression_oracle_match_at_183_337_113_bs20680() {
    let mm = MatMul::new(183, 337, 113);
    let bs = 20_680;
    let principled = try_optimize_with(&model(), mm, bs).expect("bs >= 3");
    let searched = ExhaustiveSearch::new(model()).optimize(mm, bs);
    assert_eq!(
        principled.total_ma(),
        searched.best().total_ma(),
        "principled {} vs searched {}",
        principled,
        searched.best()
    );
    assert!(principled.buffer_elems() <= bs);
}

/// Deterministic spot-check of the paper's §III-A example (kept out of
/// proptest so the exact numbers appear in failures).
#[test]
fn bert_worked_example_is_exact() {
    let mm = MatMul::new(1024, 768, 768);
    let df = fusecu::optimize(mm, 512 * 1024);
    assert_eq!(df.class(), Some(NraClass::Two));
    assert_eq!(df.ma().of(Operand::Rhs), 2 * 768 * 768);
    assert_eq!(df.total_ma(), 2 * 1024 * 768 + 2 * 768 * 768);
    let searched = ExhaustiveSearch::new(CostModel::paper()).optimize(mm, 512 * 1024);
    assert_eq!(searched.best().total_ma(), df.total_ma());
}
