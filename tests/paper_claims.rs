//! The paper's headline numbers, asserted as reproduction bands.
//!
//! Absolute agreement with the authors' testbed is not expected (their
//! cost model internals differ); these tests pin the *shape* of every
//! result — who wins, by roughly what factor, and where the crossovers
//! fall — with tolerances recorded in EXPERIMENTS.md.

use fusecu::pipeline::{compare_platforms, sequence_sweep, suite_means, PlatformRow};
use fusecu::prelude::*;

fn rows() -> Vec<PlatformRow> {
    zoo::all().iter().map(compare_platforms).collect()
}

fn mean_ma(means: &[(Platform, f64, f64, f64)], p: Platform) -> f64 {
    means.iter().find(|(q, ..)| *q == p).unwrap().1
}

fn mean_speedup(means: &[(Platform, f64, f64, f64)], p: Platform) -> f64 {
    means.iter().find(|(q, ..)| *q == p).unwrap().3
}

#[test]
fn fig10_memory_access_savings() {
    let means = suite_means(&rows());
    let fuse = mean_ma(&means, Platform::FuseCu);
    let unf = mean_ma(&means, Platform::UnfCu);

    // Paper: FuseCU saves 63.6% vs TPUv4i, 62.4% vs Gemmini, 38.7% vs
    // Planaria. Accept ±10 percentage points.
    let save = |base: f64| 1.0 - fuse / base;
    assert!(
        (0.53..=0.74).contains(&save(mean_ma(&means, Platform::Tpuv4i))),
        "FuseCU vs TPUv4i saving {:.3}",
        save(mean_ma(&means, Platform::Tpuv4i))
    );
    assert!(
        (0.52..=0.73).contains(&save(mean_ma(&means, Platform::Gemmini))),
        "FuseCU vs Gemmini saving {:.3}",
        save(mean_ma(&means, Platform::Gemmini))
    );
    assert!(
        (0.28..=0.49).contains(&save(mean_ma(&means, Platform::Planaria))),
        "FuseCU vs Planaria saving {:.3}",
        save(mean_ma(&means, Platform::Planaria))
    );

    // Paper: UnfCU saves 42.6% vs TPUv4i and only 4.5% vs Planaria — the
    // ablation showing fusion (not flexibility alone) drives the headline.
    let unf_save_tpu = 1.0 - unf / mean_ma(&means, Platform::Tpuv4i);
    let unf_save_pla = 1.0 - unf / mean_ma(&means, Platform::Planaria);
    assert!(
        (0.32..=0.53).contains(&unf_save_tpu),
        "UnfCU vs TPUv4i saving {unf_save_tpu:.3}"
    );
    assert!(
        (-0.05..=0.15).contains(&unf_save_pla),
        "UnfCU vs Planaria saving {unf_save_pla:.3}"
    );
}

#[test]
fn fig10_speedups() {
    let means = suite_means(&rows());
    let fuse = mean_speedup(&means, Platform::FuseCu);
    // Paper: 1.33x vs TPUv4i, 1.25x vs Gemmini, 1.14x vs Planaria.
    let vs_tpu = fuse / mean_speedup(&means, Platform::Tpuv4i);
    let vs_gem = fuse / mean_speedup(&means, Platform::Gemmini);
    let vs_pla = fuse / mean_speedup(&means, Platform::Planaria);
    assert!((1.20..=1.46).contains(&vs_tpu), "vs TPUv4i {vs_tpu:.3}");
    assert!((1.12..=1.40).contains(&vs_gem), "vs Gemmini {vs_gem:.3}");
    assert!((1.04..=1.25).contains(&vs_pla), "vs Planaria {vs_pla:.3}");
}

#[test]
fn fig10_utilization_ordering() {
    // The line chart's qualitative content: FuseCU utilizes the fabric
    // best on average; the rigid WS baseline worst.
    let means = suite_means(&rows());
    let util = |p: Platform| means.iter().find(|(q, ..)| *q == p).unwrap().2;
    assert!(util(Platform::FuseCu) > util(Platform::Planaria));
    assert!(util(Platform::FuseCu) > util(Platform::UnfCu));
    assert!(util(Platform::Planaria) > util(Platform::Tpuv4i));
    assert!(util(Platform::FuseCu) > 0.9, "{}", util(Platform::FuseCu));
}

#[test]
fn fig9_principles_match_search_on_paper_shapes() {
    // Fig 9's claim over the paper's buffer range on evaluation-relevant
    // matmuls: zero mismatches between principles and the oracle.
    use fusecu::pipeline::{fig9_buffer_sizes, validate_buffer_sweep};
    for mm in [
        MatMul::new(1024, 768, 768),
        MatMul::new(1024, 64, 1024),
        MatMul::new(4096, 1024, 4096),
    ] {
        for p in validate_buffer_sweep(mm, &fig9_buffer_sizes()) {
            assert_eq!(
                p.principle_ma, p.exhaustive.0,
                "{mm} at {} elements",
                p.buffer
            );
        }
    }
}

#[test]
fn fig11_llama2_long_sequences() {
    // Paper: robust across lengths; greater MA reduction for longer
    // sequences. Measure the fusion-specific gain (FuseCU vs UnfCU).
    let sweep = sequence_sweep(&[256, 1024, 4096, 16_384]);
    let gains: Vec<f64> = sweep
        .iter()
        .map(|(_, r)| 1.0 - r.normalized_ma(Platform::FuseCu) / r.normalized_ma(Platform::UnfCu))
        .collect();
    for w in gains.windows(2) {
        assert!(w[1] > w[0], "fusion gain must grow with seq: {gains:?}");
    }
    // Robustness: FuseCU stays fastest at every length.
    for (s, row) in &sweep {
        assert!(
            row.speedup(Platform::FuseCu, Platform::Tpuv4i) > 1.0,
            "seq {s}"
        );
        assert!(row.normalized_ma(Platform::FuseCu) < 0.7, "seq {s}");
    }
}

#[test]
fn energy_saving_tracks_the_dram_share() {
    // §I's motivation quantified: with platform-invariant MACs, FuseCU's
    // energy saving equals its MA saving scaled by the DRAM energy share.
    let e = EnergyModel::nm28();
    let rows = rows();
    let tpu: f64 = rows.iter().map(|r| e.graph_energy_uj(r.perf(Platform::Tpuv4i))).sum();
    let fuse: f64 = rows.iter().map(|r| e.graph_energy_uj(r.perf(Platform::FuseCu))).sum();
    let saving = 1.0 - fuse / tpu;
    assert!((0.20..=0.55).contains(&saving), "energy saving {saving:.3}");
}

#[test]
fn fig12_area_overheads() {
    let b = fusecu::rtl::fig12_breakdown(128, 4);
    // Paper: 12.0% total overhead; interconnect + control < 0.1%.
    assert!(
        (0.10..=0.14).contains(&b.overhead_ratio()),
        "overhead {:.4}",
        b.overhead_ratio()
    );
    assert!(
        b.interconnect_share() < 0.001,
        "interconnect {:.5}",
        b.interconnect_share()
    );
}
