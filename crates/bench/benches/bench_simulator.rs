//! Criterion benchmarks for the cycle-level fabric simulator: throughput of
//! the systolic dataflows and of the fused mappings.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fusecu::sim::{fusion, CuArray, Matrix};
use fusecu_arch::Stationary;

fn bench_single_tile(c: &mut Criterion) {
    let n = 16;
    let a = Matrix::pseudo_random(n, n, 1);
    let b = Matrix::pseudo_random(n, n, 2);
    let mut cu = CuArray::new(n, Stationary::Ws);
    c.bench_function("sim/ws_16x16_tile", |bch| {
        bch.iter(|| cu.run_ws(black_box(&a), black_box(&b)))
    });
    c.bench_function("sim/os_16x16_tile", |bch| {
        bch.iter(|| cu.run_os(black_box(&a), black_box(&b)))
    });
    c.bench_function("sim/is_16x16_tile", |bch| {
        bch.iter(|| cu.run_is(black_box(&a), black_box(&b)))
    });
}

fn bench_fused(c: &mut Criterion) {
    let n = 16;
    let a = Matrix::pseudo_random(n, n, 3);
    let b = Matrix::pseudo_random(n, n, 4);
    let d = Matrix::pseudo_random(n, n, 5);
    c.bench_function("sim/tile_fusion_16", |bch| {
        bch.iter(|| fusion::tile_fusion(n, black_box(&a), black_box(&b), black_box(&d)))
    });
    c.bench_function("sim/column_fusion_16", |bch| {
        bch.iter(|| fusion::column_fusion(n, black_box(&a), black_box(&b), black_box(&d)))
    });
}

fn bench_tiled_driver(c: &mut Criterion) {
    let a = Matrix::pseudo_random(48, 32, 6);
    let b = Matrix::pseudo_random(32, 40, 7);
    c.bench_function("sim/tiled_matmul_48x32x40_on_8x8", |bch| {
        bch.iter(|| {
            fusecu::sim::driver::execute_on_cu(
                black_box(&a),
                black_box(&b),
                Stationary::Ws,
                8,
            )
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    use fusecu::sim::{fabric, FabricShape, FuseCuFabric};
    let n = 8;
    let a = Matrix::pseudo_random(12, 8, 8);
    let b = Matrix::pseudo_random(8, 24, 9);
    c.bench_function("sim/fabric_wide_ws_8x32", |bch| {
        bch.iter(|| {
            let mut f = FuseCuFabric::new(n, FabricShape::Wide, Stationary::Ws);
            f.run_ws(black_box(&a), black_box(&b))
        })
    });
    let fa = Matrix::pseudo_random(14, 6, 10);
    let fb = Matrix::pseudo_random(6, 14, 11);
    let fd = Matrix::pseudo_random(14, 9, 12);
    c.bench_function("sim/fabric_tile_fusion_square_8", |bch| {
        bch.iter(|| {
            fabric::fabric_tile_fusion(n, FabricShape::Square, black_box(&fa), black_box(&fb), black_box(&fd))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_single_tile, bench_fused, bench_tiled_driver, bench_fabric
);
criterion_main!(benches);
