//! Criterion benchmarks for the optimizers: the quantitative backing for
//! the paper's "one-shot analytical vs time-consuming DSE" claim (§I) and
//! the Fig 9 speed comparison.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use fusecu::dataflow::principles;
use fusecu::prelude::*;
use fusecu_fusion::optimize_pair;

fn bert_mm() -> MatMul {
    MatMul::new(1024, 768, 768)
}

fn attention_pair() -> FusedPair {
    FusedPair::try_new(MatMul::new(1024, 64, 1024), MatMul::new(1024, 1024, 64))
        .expect("attention shapes chain")
}

fn bench_principles(c: &mut Criterion) {
    let model = CostModel::paper();
    let mm = bert_mm();
    c.bench_function("principles/intra_op_optimize", |b| {
        b.iter(|| principles::optimize_with(&model, black_box(mm), black_box(512 * 1024)))
    });
    let pair = attention_pair();
    c.bench_function("principles/fused_pair_optimize", |b| {
        b.iter(|| optimize_pair(&model, black_box(pair), black_box(512 * 1024)))
    });
}

fn bench_searchers(c: &mut Criterion) {
    let model = CostModel::paper();
    let mm = bert_mm();
    let oracle = ExhaustiveSearch::new(model);
    c.bench_function("search/exhaustive_oracle", |b| {
        b.iter(|| oracle.optimize(black_box(mm), black_box(512 * 1024)))
    });
    let ga = GeneticSearch::new(model);
    c.bench_function("search/genetic_dat_style", |b| {
        b.iter(|| ga.optimize(black_box(mm), black_box(512 * 1024)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let blenderbot = zoo::blenderbot();
    c.bench_function("pipeline/fig10_model_evaluation", |b| {
        b.iter(|| fusecu::pipeline::compare_platforms(black_box(&blenderbot)))
    });
    let graph = blenderbot.build_graph();
    let model = fusecu::pipeline::evaluation_model();
    let spec = ArraySpec::paper_default();
    c.bench_function("pipeline/fusecu_graph_evaluation", |b| {
        b.iter(|| evaluate_graph(&spec, Platform::FuseCu, &model, black_box(&graph)))
    });
}

fn bench_generalizations(c: &mut Criterion) {
    use fusecu::dataflow::einsum::EinsumSpec;
    use fusecu::dataflow::hierarchy::optimize_two_level;
    let model = CostModel::paper();
    c.bench_function("principles/two_level_optimize", |b| {
        b.iter(|| {
            optimize_two_level(
                &model,
                black_box(MatMul::new(1024, 768, 768)),
                black_box(512 * 1024),
                black_box(128 * 128),
            )
        })
    });
    let spec = EinsumSpec::batched_matmul(8, 32, 24, 16);
    c.bench_function("einsum/rank4_exhaustive", |b| {
        b.iter(|| spec.optimize_exhaustive(&model, black_box(1_000)))
    });
    c.bench_function("einsum/rank4_principles", |b| {
        b.iter(|| spec.principle_candidates(&model, black_box(1_000)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_principles, bench_searchers, bench_pipeline, bench_generalizations
);
criterion_main!(benches);
