//! Regenerates Tables I–III of the paper.
//!
//! Run with `cargo run -p fusecu-bench --bin tables`. Pass
//! `--no-disk-cache` to skip the persistent cache in `target/fusecu-cache/`.

use fusecu::prelude::*;
use fusecu_bench::header;

fn table_i() {
    header("Table I: summary of the SOTA dataflow optimizers");
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "feature", "DAT-class (search)", "this work", "fusion medium"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "full tiling+scheduling space", "yes", "yes", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "tiling+scheduling scheme", "searching-based", "principle-based", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "mapping scheme", "fixed patterns", "principle-based", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "fusion medium", "memory", "compute unit", "-"
    );
}

fn table_ii() {
    header("Table II: transformer model parameters (batch 16)");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "model", "heads", "seq length", "hidden", "ffn hidden"
    );
    for cfg in zoo::all() {
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>12}",
            cfg.name, cfg.heads, cfg.seq_len, cfg.hidden, cfg.ffn_hidden
        );
    }
    println!("(LLaMA2 additionally swept over sequence lengths 256 - 16K in Fig 11)");
}

fn table_iii() {
    header("Table III: spatial architecture attributes");
    println!(
        "{:<10} {:>18} {:>14} {:>14}",
        "platform", "stationary flex.", "tiling flex.", "tensor fusion"
    );
    for p in Platform::ALL {
        let (name, stat, tiling, fusion) = p.table_iii_row();
        println!(
            "{:<10} {:>18} {:>14} {:>14}",
            name,
            stat,
            tiling,
            if fusion { "yes" } else { "no" }
        );
    }
}

/// Supplementary to Table II: the principle-optimal single-operator
/// dataflow of each model's attention projection at the default 512 KiB
/// buffer, computed through the parallel sweep engine. Several models
/// share a projection shape, so the shared dataflow cache answers the
/// repeats without re-optimizing — the logged hit count shows it.
fn table_ii_dataflows(parallelism: Parallelism) {
    header("Table II (suppl.): principle-optimal projection dataflow (512 KiB buffer)");
    let configs = zoo::all();
    let shapes: Vec<MatMul> = configs
        .iter()
        .map(|cfg| MatMul::new(cfg.seq_len, cfg.hidden, cfg.hidden))
        .collect();
    let buffer = 512 * 1024;
    let engine = SweepEngine::new(CostModel::paper()).with_parallelism(parallelism);
    println!(
        "{:<12} {:>22} {:>8} {:>14} {:>14}",
        "model", "projection", "class", "MA/ideal", "search evals"
    );
    let outcomes = engine.sweep(&shapes, &[buffer]);
    for ((cfg, mm), outcome) in configs.iter().zip(&shapes).zip(&outcomes) {
        println!(
            "{:<12} {:>22} {:>8} {:>14.4} {:>14}",
            cfg.name,
            mm.to_string(),
            outcome
                .principle
                .class()
                .map(|c| c.to_string())
                .unwrap_or_default(),
            outcome.principle.total_ma() as f64 / mm.ideal_ma() as f64,
            outcome.exhaustive.evaluations() + outcome.genetic.evaluations(),
        );
    }
    println!("dataflow cache: {}", engine.cache().stats());
}

/// Supplementary: whole-graph DAG fusion planning vs greedy chain
/// decomposition, per Table II model on the branchy per-head layer graph
/// (Q/K/V fan-out and residual expressed as edges), plus the pinned
/// fan-in regression graph. The depth-aware path cover is never worse
/// than the pairwise matching, which is never worse than the chain
/// decomposition; the depth histogram shows how many fused steps the
/// plan executes at each width (solo, pair, triple, ...).
fn table_dag_fusion() {
    header("Suppl.: DAG fusion planning vs chain decomposition (512 Ki-elem buffer)");
    let model = CostModel::paper();
    println!(
        "{:<18} {:>10} {:>13} {:>13} {:>13} {:>8} {:>6} {:>14}",
        "workload", "buffer", "chained MA", "pairwise MA", "DAG MA", "saved", "depth", "width hist"
    );
    let row = |name: &str, graph: &OpGraph, buffer: u64| {
        let chained =
            try_plan_graph_chained(&model, graph, buffer).expect("chain fallback plans");
        let pairwise =
            try_plan_dag_with(&PlannerConfig::pairs_only(), &model, &graph.mm_dag(), buffer)
                .expect("pairwise matching plans the zoo");
        let plan =
            try_plan_graph_cached(&model, graph, buffer).expect("DAG planner plans the zoo");
        assert!(
            plan.total_ma() <= pairwise.total_ma() && pairwise.total_ma() <= chained.total_ma(),
            "{name}: fusion depth regressed"
        );
        let hist = plan
            .depth_histogram()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/");
        println!(
            "{:<18} {:>10} {:>13} {:>13} {:>13} {:>8} {:>6} {:>14}",
            name,
            buffer,
            chained.total_ma(),
            pairwise.total_ma(),
            plan.total_ma(),
            chained.total_ma() - plan.total_ma(),
            plan.max_fusion_depth(),
            hist
        );
    };
    let buffer = 512 * 1024;
    for cfg in zoo::all() {
        row(&cfg.name, &cfg.build_branchy_graph(), buffer);
    }
    // The fan-in regression DAG only differentiates at a small buffer.
    row("fan-in regress.", &zoo::fan_in_regression_graph(), 1024);
}

fn main() {
    let cache = DiskCacheSession::from_args();
    let parallelism = Parallelism::from_args();
    table_i();
    table_ii();
    table_iii();
    table_ii_dataflows(parallelism);
    table_dag_fusion();
    println!("{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
