//! Regenerates Tables I–III of the paper.
//!
//! Run with `cargo run -p fusecu-bench --bin tables`.

use fusecu::prelude::*;
use fusecu_bench::header;

fn table_i() {
    header("Table I: summary of the SOTA dataflow optimizers");
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "feature", "DAT-class (search)", "this work", "fusion medium"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "full tiling+scheduling space", "yes", "yes", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "tiling+scheduling scheme", "searching-based", "principle-based", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "mapping scheme", "fixed patterns", "principle-based", "-"
    );
    println!(
        "{:<28} {:<18} {:<18} {:<14}",
        "fusion medium", "memory", "compute unit", "-"
    );
}

fn table_ii() {
    header("Table II: transformer model parameters (batch 16)");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "model", "heads", "seq length", "hidden", "ffn hidden"
    );
    for cfg in zoo::all() {
        println!(
            "{:<12} {:>8} {:>12} {:>12} {:>12}",
            cfg.name, cfg.heads, cfg.seq_len, cfg.hidden, cfg.ffn_hidden
        );
    }
    println!("(LLaMA2 additionally swept over sequence lengths 256 - 16K in Fig 11)");
}

fn table_iii() {
    header("Table III: spatial architecture attributes");
    println!(
        "{:<10} {:>18} {:>14} {:>14}",
        "platform", "stationary flex.", "tiling flex.", "tensor fusion"
    );
    for p in Platform::ALL {
        let (name, stat, tiling, fusion) = p.table_iii_row();
        println!(
            "{:<10} {:>18} {:>14} {:>14}",
            name,
            stat,
            tiling,
            if fusion { "yes" } else { "no" }
        );
    }
}

fn main() {
    table_i();
    table_ii();
    table_iii();
}
