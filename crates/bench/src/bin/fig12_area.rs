//! Fig 12: FuseCU area breakdown and overheads at 28 nm.
//!
//! Run with `cargo run --release -p fusecu-bench --bin fig12_area`.

use fusecu_bench::{header, write_csv};
use fusecu_rtl::{designs, fig12_breakdown};

fn main() {
    header("Fig 12: FuseCU area breakdown (128x128x4, 28 nm)");
    let b = fig12_breakdown(128, 4);
    println!("{b}");

    header("Flattened cell census (baseline vs FuseCU)");
    let base = designs::tpu_like(128, 4);
    let fuse = designs::fusecu(128, 4);
    let base_census = base.cell_census();
    let fuse_census = fuse.cell_census();
    println!("{:<16} {:>16} {:>16}", "cell", "TPUv4i-like", "FuseCU");
    for (cell, count) in &fuse_census {
        println!(
            "{:<16} {:>16} {:>16}",
            cell,
            base_census.get(cell).copied().unwrap_or(0),
            count
        );
    }
    println!();
    println!(
        "arithmetic unchanged: multipliers {} == {}, adders {} == {}",
        base_census["mult8"], fuse_census["mult8"], base_census["add32"], fuse_census["add32"]
    );
    println!(
        "total area: {:.2} mm2 -> {:.2} mm2 (+{:.1}%)",
        base.area_um2() / 1e6,
        fuse.area_um2() / 1e6,
        100.0 * b.overhead_ratio()
    );
    let rows = vec![
        vec!["base_logic".to_string(), format!("{:.0}", b.base_um2)],
        vec!["xs_pe_logic".to_string(), format!("{:.0}", b.xs_pe_logic_um2)],
        vec!["resize_interconnect".to_string(), format!("{:.0}", b.interconnect_um2)],
        vec!["fusion_control".to_string(), format!("{:.0}", b.control_um2)],
    ];
    if let Ok(path) = write_csv("fig12_area", &["component", "area_um2"], &rows) {
        println!("data written to {}", path.display());
    }
}
