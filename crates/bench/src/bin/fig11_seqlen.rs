//! Fig 11: LLaMA2 under different sequence lengths (256 – 16 K).
//!
//! Run with `cargo run --release -p fusecu-bench --bin fig11_seqlen`.
//! Pass `--serial` to disable the parallel evaluation engine and
//! `--no-disk-cache` to skip the persistent cache in `target/fusecu-cache/`.

use fusecu::pipeline::sequence_sweep_with;
use fusecu::prelude::*;
use fusecu_bench::{header, write_csv};

fn main() {
    let cache = DiskCacheSession::from_args();
    let parallelism = Parallelism::from_args();
    header("Fig 11: LLaMA2 normalized memory access | utilization vs sequence length");
    print!("{:<10}", "seq len");
    for p in Platform::ALL {
        print!(" {:>14}", p.name());
    }
    println!("  {:>12}", "fusion gain");

    let sweep = sequence_sweep_with(&zoo::fig11_seq_lengths(), parallelism);
    for (s, row) in &sweep {
        print!("{:<10}", s);
        for p in Platform::ALL {
            print!(
                "   {:>5.3}|{:<5.3}",
                row.normalized_ma(p),
                row.utilization(p)
            );
        }
        // The fusion-specific saving relative to the unfused twin design.
        let gain = 1.0 - row.normalized_ma(Platform::FuseCu) / row.normalized_ma(Platform::UnfCu);
        println!("  {:>11.1}%", 100.0 * gain);
    }
    println!();
    println!(
        "paper: robust across lengths, with greater memory-access reduction at longer sequences"
    );
    let mut csv_rows = Vec::new();
    for (s, row) in &sweep {
        for p in Platform::ALL {
            csv_rows.push(vec![
                s.to_string(),
                p.name().to_string(),
                format!("{:.6}", row.normalized_ma(p)),
                format!("{:.6}", row.utilization(p)),
            ]);
        }
    }
    if let Ok(path) = write_csv(
        "fig11_seqlen",
        &["seq_len", "platform", "normalized_ma", "utilization"],
        &csv_rows,
    ) {
        println!("data written to {}", path.display());
    }
    println!(
        "operator cache: {} (attention shapes recur across sequence lengths)",
        fusecu::arch::op_cache_stats()
    );
    println!("{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
