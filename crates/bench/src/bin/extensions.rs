//! Beyond the paper's evaluation: the extension experiments this
//! reproduction adds — autoregressive decode, the two-level memory
//! hierarchy with the §IV-B un-tiling bound, and convolution lowering.
//!
//! Run with `cargo run --release -p fusecu-bench --bin extensions`. Pass
//! `--no-disk-cache` to skip the persistent cache in `target/fusecu-cache/`.

use fusecu::dataflow::hierarchy::{optimize_two_level, untiling_bound};
use fusecu::dataflow::principles::try_optimize_with;
use fusecu::ir::Conv2d;
use fusecu::pipeline::compare_platforms_decode_with;
use fusecu::prelude::*;
use fusecu_bench::{header, write_csv};

fn decode_sweep() {
    let parallelism = Parallelism::from_args();
    header("Extension 1: LLaMA2 autoregressive decode vs KV-cache length");
    println!(
        "{:<10} {:>14} {:>14} {:>16}",
        "context", "TPUv4i util", "FuseCU util", "FuseCU speedup"
    );
    let mut rows = Vec::new();
    for context in [512u64, 2048, 8192, 32_768] {
        let row = compare_platforms_decode_with(&zoo::llama2(), context, parallelism);
        let spd = row.speedup(Platform::FuseCu, Platform::Tpuv4i);
        println!(
            "{:<10} {:>14.4} {:>14.4} {:>15.2}x",
            context,
            row.utilization(Platform::Tpuv4i),
            row.utilization(Platform::FuseCu),
            spd
        );
        rows.push(vec![
            context.to_string(),
            format!("{:.6}", row.utilization(Platform::Tpuv4i)),
            format!("{:.6}", row.utilization(Platform::FuseCu)),
            format!("{:.6}", spd),
        ]);
    }
    if let Ok(path) = write_csv(
        "ext_decode",
        &["context", "tpu_util", "fusecu_util", "fusecu_speedup"],
        &rows,
    ) {
        println!("data written to {}", path.display());
    }
    println!("(decode collapses to skinny matmuls; everyone is memory-bound,");
    println!(" flexible fabrics lose less utilization)");
}

fn hierarchy_bound() {
    header("Extension 2: register-level principles and the 2N un-tiling bound");
    let model = CostModel::paper();
    let n = 128u64;
    println!("fabric edge N = {n}; bound = {}", untiling_bound(n));
    println!("{:>8} {:>14} {:>12}", "Dmin", "register class", "untiled?");
    for dmin in [32u64, 64, 128, 192, 255, 256, 384, 512] {
        let tile = MatMul::new(512, dmin, 512);
        let inner = try_optimize_with(&model, tile, n * n).expect("registers feasible");
        println!(
            "{:>8} {:>14} {:>12}",
            dmin,
            inner.class().map(|c| c.to_string()).unwrap_or_default(),
            inner.tiling().is_untiled(tile, MmDim::K)
        );
    }

    // Both traffic levels for the paper's worked example.
    let mm = MatMul::new(1024, 768, 768);
    let df = optimize_two_level(&model, mm, 512 * 1024, n * n).expect("capacities feasible");
    println!();
    println!(
        "BERT projection two-level plan: DRAM<->buffer {} elems, buffer<->PEs {} elems",
        df.dram_ma().total(),
        df.buffer_ma().total()
    );
}

fn conv_regimes() {
    header("Extension 3: principles on im2col-lowered convolutions (24 KiB buffer)");
    let buffer = 24 * 1024;
    let model = CostModel::paper();
    let oracle = ExhaustiveSearch::new(model);
    let layers = [
        ("res2 3x3", Conv2d::same(8, 64, 56, 64, 3)),
        ("res3 3x3", Conv2d::same(8, 128, 28, 128, 3)),
        ("res4 1x1", Conv2d::same(8, 256, 14, 1024, 1)),
        ("res5 3x3", Conv2d::same(8, 512, 7, 512, 3)),
    ];
    println!(
        "{:<10} {:>9} {:>12} {:>10} {:>9}",
        "layer", "regime", "class", "MA/ideal", "= oracle"
    );
    for (name, conv) in layers {
        let mm = conv.to_matmul().expect("valid layer");
        let best = fusecu::optimize(mm, buffer);
        let searched = oracle.optimize(mm, buffer).best().total_ma();
        assert_eq!(best.total_ma(), searched, "{name}");
        println!(
            "{:<10} {:>9} {:>12} {:>9.3}x {:>9}",
            name,
            BufferRegime::classify(mm, buffer).to_string(),
            best.class().map(|c| c.to_string()).unwrap_or_default(),
            best.total_ma() as f64 / mm.ideal_ma() as f64,
            "yes"
        );
    }
}

fn main() {
    let cache = DiskCacheSession::from_args();
    decode_sweep();
    hierarchy_bound();
    conv_regimes();
    println!(
        "\noperator cache: {}",
        fusecu::arch::op_cache_stats()
    );
    println!("{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
