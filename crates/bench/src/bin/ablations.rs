//! Ablation studies for the calibration decisions recorded in DESIGN.md
//! §5.1: buffer-size sensitivity, effective-bandwidth sensitivity, and the
//! partial-sum accounting policy. These quantify how robust the Fig 10
//! headline (FuseCU's saving and speedup over TPUv4i) is to each knob.
//!
//! Run with `cargo run --release -p fusecu-bench --bin ablations`.
//! Pass `--serial` to disable the parallel evaluation engine and
//! `--no-disk-cache` to skip the persistent cache in `target/fusecu-cache/`.

use fusecu::pipeline::{compare_suite_with, suite_means, PlatformRow};
use fusecu::prelude::*;
use fusecu_arch::evaluate_graph;
use fusecu_bench::{header, pct};

fn headline(spec: &ArraySpec) -> (f64, f64) {
    let rows: Vec<PlatformRow> = compare_suite_with(&zoo::all(), spec, Parallelism::from_args());
    let means = suite_means(&rows);
    let ma = |p: Platform| means.iter().find(|(q, ..)| *q == p).unwrap().1;
    let spd = |p: Platform| means.iter().find(|(q, ..)| *q == p).unwrap().3;
    (
        1.0 - ma(Platform::FuseCu) / ma(Platform::Tpuv4i),
        spd(Platform::FuseCu) / spd(Platform::Tpuv4i),
    )
}

fn buffer_sweep() {
    header("Ablation 1: buffer size vs the Fig 10 headline (BW = 448 elem/cy)");
    println!(
        "{:>12} {:>22} {:>22}",
        "buffer", "FuseCU MA saving", "FuseCU speedup vs TPU"
    );
    for kib in [64u64, 128, 256, 512, 1024, 4096, 16_384] {
        let spec = ArraySpec::tpuv4i_with_buffer(kib * 1024);
        let (saving, speedup) = headline(&spec);
        println!("{:>9} KiB {:>22} {:>21.2}x", kib, pct(saving), speedup);
    }
    println!("(paper point: 63.6% saving, 1.33x; reproduction default 512 KiB)");
}

fn bandwidth_sweep() {
    header("Ablation 2: effective DRAM bandwidth vs the headline (buffer = 512 KiB)");
    println!(
        "{:>14} {:>22} {:>22}",
        "elems/cycle", "FuseCU MA saving", "FuseCU speedup vs TPU"
    );
    for bw in [256u64, 384, 448, 512, 768, 1024] {
        let mut spec = ArraySpec::paper_default();
        spec.bw_elems_per_cycle = bw;
        let (saving, speedup) = headline(&spec);
        println!("{:>14} {:>22} {:>21.2}x", bw, pct(saving), speedup);
    }
    println!("(the speedup spread is the whole effect: the MA-first objective picks");
    println!(" the same tiling at every bandwidth, so the MA saving is flat)");
}

fn policy_ablation() {
    header("Ablation 3: partial-sum accounting policy (per-model normalized MA)");
    let spec = ArraySpec::paper_default();
    println!(
        "{:<12} {:>24} {:>24}",
        "model", "per-visit (paper eqs)", "read-write (physical)"
    );
    for cfg in zoo::all() {
        let g = cfg.build_graph();
        let nm = |model: &CostModel| {
            let tpu = evaluate_graph(&spec, Platform::Tpuv4i, model, &g).total_ma() as f64;
            let fuse = evaluate_graph(&spec, Platform::FuseCu, model, &g).total_ma() as f64;
            fuse / tpu
        };
        println!(
            "{:<12} {:>24.3} {:>24.3}",
            cfg.name,
            nm(&CostModel::paper()),
            nm(&CostModel::read_write())
        );
    }
    println!("(the evaluation default charges spilled partials read+write)");
}

fn fused_mapping_ablation() {
    header("Ablation 4: forced fused mapping (attention pair, 192 heads)");
    let spec = ArraySpec::paper_default();
    let pair = FusedPair::try_new(MatMul::new(1024, 64, 1024), MatMul::new(1024, 1024, 64))
        .expect("attention shapes");
    let Some(fused) =
        fusecu::fusion::optimize_pair(&CostModel::read_write(), pair, spec.buffer_elems)
    else {
        println!(
            "(buffer of {} elements cannot hold any fused tile; ablation skipped)",
            spec.buffer_elems
        );
        return;
    };
    println!(
        "{:>22} {:>14} {:>14}",
        "mapping x CU group", "cycles/head", "note"
    );
    for cus in [1u64, 2, 4] {
        let c = fusecu::arch::fused::tile_fusion_cycles(&spec, &fused, cus);
        println!("{:>17} x{cus}CU {:>14} {:>14}", "tile", c, "");
    }
    for half in [1u64, 2] {
        let c = fusecu::arch::fused::column_fusion_cycles(&spec, &fused, half);
        println!("{:>15} x{half}+{half}CU {:>14} {:>14}", "column", c, "");
    }
    let best = fusecu::arch::fused::FusedPerf::score(&spec, fused, 192);
    println!(
        "chosen: {} on {} pipeline(s), {} compute cycles for all heads",
        best.mapping(),
        best.pipelines(),
        best.compute_cycles()
    );
}

fn main() {
    let cache = DiskCacheSession::from_args();
    buffer_sweep();
    bandwidth_sweep();
    policy_ablation();
    fused_mapping_ablation();
    println!(
        "\noperator cache: {} (grid points shared across ablation axes)",
        fusecu::arch::op_cache_stats()
    );
    println!("{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
