//! Fig 9: validating the optimality of the four principles.
//!
//! Sweeps buffer sizes from 32 KiB to 32 MiB on representative transformer
//! matmuls and compares the principle-optimized memory access ("the line")
//! against the searching-based baseline ("the points"): an exhaustive
//! oracle and a DAT-style genetic searcher. Also reports the search effort
//! each approach spends, substantiating the one-shot claim of §I.
//!
//! Run with `cargo run --release -p fusecu-bench --bin fig09_validate`.
//! Pass `--serial` to disable the parallel sweep engine (output is
//! byte-identical either way) or `--threads N` to pin the worker count.
//! Results persist across runs in `target/fusecu-cache/`; pass
//! `--no-disk-cache` for a cold run.

use std::time::Instant;

use fusecu::pipeline::{fig9_buffer_sizes, scaling_curve, validate_buffer_sweep_with};
use fusecu::prelude::*;
use fusecu_bench::{header, write_csv};

fn sweep(name: &str, mm: MatMul, parallelism: Parallelism) {
    header(&format!(
        "Fig 9 [{name}]: normalized memory access vs buffer size ({mm})"
    ));
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10} {:>12} {:>8}",
        "buffer", "principles", "exhaustive", "genetic(DAT)", "optimal?", "search evals", "GA gap"
    );
    let ideal = mm.ideal_ma() as f64;
    let t0 = Instant::now();
    let points = validate_buffer_sweep_with(mm, &fig9_buffer_sizes(), parallelism);
    let elapsed = t0.elapsed();
    for p in &points {
        println!(
            "{:>9} KiB {:>12.4} {:>12.4} {:>12.4} {:>10} {:>12} {:>7.2}%",
            p.buffer / 1024,
            p.principle_ma as f64 / ideal,
            p.exhaustive.0 as f64 / ideal,
            p.genetic.0 as f64 / ideal,
            if p.principles_optimal() { "yes" } else { "NO" },
            p.exhaustive.1 + p.genetic.1,
            100.0 * (p.genetic.0 as f64 / p.exhaustive.0 as f64 - 1.0),
        );
    }
    let misses = points.iter().filter(|p| !p.principles_optimal()).count();
    println!("principle-vs-search mismatches: {misses} (paper: none; DAT occasionally worse)");
    println!(
        "sweep wall-clock: {elapsed:.2?} on {} worker(s); dataflow cache: {}",
        parallelism.workers(),
        DataflowCache::global().stats()
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.buffer.to_string(),
                p.principle_ma.to_string(),
                p.exhaustive.0.to_string(),
                p.genetic.0.to_string(),
            ]
        })
        .collect();
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    if let Ok(path) = write_csv(
        &format!("fig09_{slug}"),
        &["buffer_elems", "principle_ma", "exhaustive_ma", "genetic_ma"],
        &rows,
    ) {
        println!("data written to {}", path.display());
    }
}

fn timing(mm: MatMul) {
    header("Optimization time: one-shot principles vs searching-based DSE");
    let model = CostModel::paper();
    let bs = 512 * 1024;

    let t0 = Instant::now();
    let mut acc = 0u64;
    const REPS: u32 = 1_000;
    for _ in 0..REPS {
        acc = acc.wrapping_add(
            fusecu::dataflow::principles::optimize_with(&model, mm, bs).total_ma(),
        );
    }
    let principle_time = t0.elapsed() / REPS;

    let t0 = Instant::now();
    let ex = ExhaustiveSearch::new(model).optimize(mm, bs);
    let exhaustive_time = t0.elapsed();

    let t0 = Instant::now();
    let ga = GeneticSearch::new(model).optimize(mm, bs).expect("feasible");
    let genetic_time = t0.elapsed();

    println!("principles : {principle_time:>12?} per optimization (result {acc:x<0.0?})");
    println!(
        "exhaustive : {exhaustive_time:>12?} ({} evaluations)",
        ex.evaluations()
    );
    println!(
        "genetic    : {genetic_time:>12?} ({} evaluations)",
        ga.evaluations()
    );
    println!(
        "speedup    : {:.0}x vs exhaustive, {:.0}x vs genetic",
        exhaustive_time.as_secs_f64() / principle_time.as_secs_f64(),
        genetic_time.as_secs_f64() / principle_time.as_secs_f64()
    );
}

fn scaling(mm: MatMul) {
    header("Parallel sweep scaling: Fig 9 sweep wall-clock vs worker count");
    // Each worker count reruns the whole sweep from a cold per-run cache,
    // so the curve measures compute, not hits left by the previous point.
    let worker_counts = [1usize, 2, 4, 8];
    let points = scaling_curve(mm, &fig9_buffer_sizes(), &worker_counts);
    println!(
        "{:>8} {:>12} {:>10} {:>18}",
        "workers", "wall-clock", "speedup", "outcome digest"
    );
    let base = points[0].seconds;
    for p in &points {
        println!(
            "{:>8} {:>11.3}s {:>9.2}x {:>18}",
            p.workers,
            p.seconds,
            base / p.seconds,
            format!("{:016x}", p.digest),
        );
    }
    assert!(
        points.iter().all(|p| p.digest == points[0].digest),
        "scaling runs diverged: every worker count must compute identical outcomes"
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workers.to_string(),
                format!("{:.6}", p.seconds),
                format!("{:016x}", p.digest),
            ]
        })
        .collect();
    if let Ok(path) = write_csv("fig09_scaling", &["workers", "seconds", "digest"], &rows) {
        println!("data written to {}", path.display());
    }
}

fn main() {
    let cache = DiskCacheSession::from_args();
    let parallelism = Parallelism::from_args();
    // Representative matmuls drawn from the evaluated models: a BERT
    // projection, a per-head attention score matmul, and an XLM FFN slab.
    sweep("BERT projection", MatMul::new(1024, 768, 768), parallelism);
    sweep("attention QK^T", MatMul::new(1024, 64, 1024), parallelism);
    sweep("XLM FFN", MatMul::new(16384, 2048, 8192), parallelism);
    timing(MatMul::new(1024, 768, 768));
    scaling(MatMul::new(1024, 768, 768));
    println!("\n{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
