//! Simulator-throughput benchmark: cells/s of the cycle-level array core
//! and genomes/s of simulated-fitness scoring, at a fixed seed.
//!
//! Writes `BENCH_sim.json` (repo root by default, `--out <path>` to
//! override) with six sections measured in one process on one machine:
//!
//! * `baseline` — the frozen pre-refactor replay engine (verbatim copies
//!   of the old allocating drivers, preserved in [`legacy`] below), scored
//!   the way the old `Fitness::Simulated` backend did: operands
//!   materialized, a fresh output matrix and fresh tiles per genome.
//! * `full` — the live engine in `SimMode::Full`: same data movement,
//!   shared scratch arenas across genome replays.
//! * `naive` — the frozen naive counters-only walk
//!   (`driver::oracle`): one residency check per slot per innermost body.
//!   This was the `TrafficOnly` engine before strength reduction.
//! * `walk` — the hoisted accounting walk (`measure_nest_walk` /
//!   `measure_fused_nest_walk`): residency checks moved to the loop
//!   levels where residency can change.
//! * `full_macro` — the wavefront macro-step tier: `SimMode::FullMacro`
//!   through the scorers. The single value replay is hoisted into the
//!   scorer (computed once, differentially pinned against the per-cycle
//!   oracle by `macro_step_differential`), so per-genome scoring is the
//!   closed form with the full engine's semantics.
//! * `fast` — the live default: `SimMode::TrafficOnly` through the
//!   scorers, which now resolve to the closed-form `measure_nest` /
//!   `measure_fused_nest` (no tile loops at all).
//!
//! Every section scores the *same* fixed genome populations, and the
//! score digests are asserted byte-identical across all six engines —
//! the before/after is honest and self-checking. `--quick` shrinks the
//! repetition counts for CI.

use std::fmt::Write as _;
use std::time::Instant;

use fusecu_arch::Stationary;
use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_fusion::{FusedNest, FusedPair, FusedTiling};
use fusecu_ir::MatMul;
use fusecu_search::space::balanced_tiles;
use fusecu_search::{par_sum_indexed, Fitness, FusedScorer, NestScorer, Parallelism};
use fusecu_sim::driver::{measure_fused_nest_walk, measure_nest_walk, oracle};
use fusecu_sim::{CuArray, Matrix, SimMode};

/// The paper's per-visit accounting, as used by the simulated fitness.
const MODEL: CostModel = CostModel {
    partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
};

/// Operand seed base — the same constants the search crate's scorers use,
/// so the legacy engine scores the exact pre-refactor workload.
const OPERAND_SEED: u64 = 0x00F1_7E55;

/// The single-operator shape scored: the heavy-GA conformance workload.
fn nest_mm() -> MatMul {
    MatMul::new(48, 40, 32)
}

/// The fused pair scored.
fn fused_pair() -> FusedPair {
    FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16)).unwrap()
}

/// The frozen pre-refactor engine, preserved verbatim from the seed's
/// `driver.rs` (modulo the public `Matrix` API it already used). This is
/// the "before" in every before/after pair this benchmark records: a
/// fresh output allocation per replay, fresh `tile()`/`matmul()`
/// allocations per innermost iteration.
mod legacy {
    use fusecu_dataflow::{LoopNest, MemoryAccess};
    use fusecu_fusion::{ExtTensor, FusedDim, FusedNest, FusedPair};
    use fusecu_ir::{MatMul, MmDim, Operand};
    use fusecu_sim::Matrix;

    pub fn execute_nest(a: &Matrix, b: &Matrix, mm: MatMul, nest: &LoopNest) -> MemoryAccess {
        assert_eq!((a.rows() as u64, a.cols() as u64), (mm.m(), mm.k()));
        assert_eq!((b.rows() as u64, b.cols() as u64), (mm.k(), mm.l()));
        let n_of = |d: MmDim| nest.tiling.iterations(mm, d) as usize;
        let t_of = |d: MmDim| nest.tiling.tile(d).min(mm.dim(d)) as usize;
        let span = |d: MmDim, i: usize| {
            let t = t_of(d);
            t.min(mm.dim(d) as usize - i * t)
        };
        let counts = nest.order.map(n_of);

        let mut out = Matrix::zero(mm.m() as usize, mm.l() as usize);
        let mut traffic = [0u64; 3]; // A, B, C
        let mut resident: [Option<(usize, usize)>; 3] = [None; 3];

        for i0 in 0..counts[0] {
            for i1 in 0..counts[1] {
                for i2 in 0..counts[2] {
                    let iter = [i0, i1, i2];
                    let at =
                        |d: MmDim| iter[nest.order.iter().position(|x| *x == d).unwrap()];
                    let (im, ik, il) = (at(MmDim::M), at(MmDim::K), at(MmDim::L));
                    for (slot, op) in Operand::ALL.iter().enumerate() {
                        let [da, db] = op.dims();
                        let key = (at(da), at(db));
                        if resident[slot] != Some(key) {
                            traffic[slot] += (span(da, key.0) * span(db, key.1)) as u64;
                            resident[slot] = Some(key);
                        }
                    }
                    let a_tile = a.tile(
                        im * t_of(MmDim::M),
                        ik * t_of(MmDim::K),
                        t_of(MmDim::M),
                        t_of(MmDim::K),
                    );
                    let b_tile = b.tile(
                        ik * t_of(MmDim::K),
                        il * t_of(MmDim::L),
                        t_of(MmDim::K),
                        t_of(MmDim::L),
                    );
                    out.add_tile(
                        im * t_of(MmDim::M),
                        il * t_of(MmDim::L),
                        &a_tile.matmul(&b_tile),
                    );
                }
            }
        }
        MemoryAccess::new(traffic[0], traffic[1], traffic[2])
    }

    pub fn execute_fused_nest(
        a: &Matrix,
        b: &Matrix,
        d: &Matrix,
        pair: &FusedPair,
        nest: &FusedNest,
    ) -> [u64; 4] {
        let dims = |t: FusedDim| pair.dim(t) as usize;
        assert_eq!((a.rows(), a.cols()), (dims(FusedDim::M), dims(FusedDim::K)));
        assert_eq!((b.rows(), b.cols()), (dims(FusedDim::K), dims(FusedDim::L)));
        assert_eq!((d.rows(), d.cols()), (dims(FusedDim::L), dims(FusedDim::N)));
        let tile = |t: FusedDim| nest.tiling.clamped_tile(pair, t) as usize;
        let iters = |t: FusedDim| nest.tiling.iterations(pair, t) as usize;
        let span = |t: FusedDim, i: usize| tile(t).min(dims(t) - i * tile(t));

        let [s0, s1] = nest.shared_order();
        let mut out = Matrix::zero(dims(FusedDim::M), dims(FusedDim::N));
        let mut traffic = [0u64; 4];
        let mut resident: [Option<(usize, usize)>; 4] = [None; 4];
        let mut touch = |slot: usize, t: ExtTensor, key: (usize, usize)| {
            if resident[slot] != Some(key) {
                let [da, db] = t.dims();
                let sa = tile(da).min(dims(da) - key.0 * tile(da));
                let sb = tile(db).min(dims(db) - key.1 * tile(db));
                traffic[slot] += (sa * sb) as u64;
                resident[slot] = Some(key);
            }
        };

        for i0 in 0..iters(s0) {
            for i1 in 0..iters(s1) {
                let (im, il) = if s0 == FusedDim::M { (i0, i1) } else { (i1, i0) };
                let mut c_tile = Matrix::zero(span(FusedDim::M, im), span(FusedDim::L, il));
                for ik in 0..iters(FusedDim::K) {
                    touch(0, ExtTensor::A, (im, ik));
                    touch(1, ExtTensor::B, (ik, il));
                    let a_t = a.tile(
                        im * tile(FusedDim::M),
                        ik * tile(FusedDim::K),
                        tile(FusedDim::M),
                        tile(FusedDim::K),
                    );
                    let b_t = b.tile(
                        ik * tile(FusedDim::K),
                        il * tile(FusedDim::L),
                        tile(FusedDim::K),
                        tile(FusedDim::L),
                    );
                    c_tile.add_tile(0, 0, &a_t.matmul(&b_t));
                }
                for inn in 0..iters(FusedDim::N) {
                    touch(2, ExtTensor::D, (il, inn));
                    touch(3, ExtTensor::E, (im, inn));
                    let d_t = d.tile(
                        il * tile(FusedDim::L),
                        inn * tile(FusedDim::N),
                        tile(FusedDim::L),
                        tile(FusedDim::N),
                    );
                    out.add_tile(
                        im * tile(FusedDim::M),
                        inn * tile(FusedDim::N),
                        &c_tile.matmul(&d_t),
                    );
                }
            }
        }
        traffic
    }
}

/// Deterministic xorshift64* stream for genome picking.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A fixed population of single-operator genomes (loop nests), the same on
/// every run: what one GA generation scores.
fn nest_genomes(count: usize) -> Vec<LoopNest> {
    let orders = LoopNest::orders();
    let pools: [Vec<u64>; 3] =
        [nest_mm().m(), nest_mm().k(), nest_mm().l()].map(balanced_tiles);
    let mut rng = Rng(0xBEEF_CAFE);
    (0..count)
        .map(|_| {
            let order = orders[rng.pick(orders.len())];
            let tiling = Tiling::new(
                pools[0][rng.pick(pools[0].len())],
                pools[1][rng.pick(pools[1].len())],
                pools[2][rng.pick(pools[2].len())],
            );
            LoopNest::new(order, tiling)
        })
        .collect()
}

fn fused_genomes(count: usize) -> Vec<FusedNest> {
    use fusecu_fusion::FusedDim::{K, L, M, N};
    let pair = fused_pair();
    let pools: [Vec<u64>; 4] = [M, K, L, N].map(|d| balanced_tiles(pair.dim(d)));
    let mut rng = Rng(0xFEED_F00D);
    (0..count)
        .map(|_| {
            FusedNest::new(
                rng.next().is_multiple_of(2),
                FusedTiling::new(
                    pools[0][rng.pick(pools[0].len())],
                    pools[1][rng.pick(pools[1].len())],
                    pools[2][rng.pick(pools[2].len())],
                    pools[3][rng.pick(pools[3].len())],
                ),
            )
        })
        .collect()
}

/// Cells/s of the raw systolic core: PE updates per wall-clock second
/// while streaming WS tiles through one 16×16 CU. With `alloc_per_cycle`
/// every cycle allocates its wavefront and wire vectors afresh — the
/// pre-refactor per-cycle allocation pattern, kept alive here on purpose
/// as the "before" — otherwise the stream goes through the hoisted
/// allocation-free `step_into` path (`run_ws`).
fn bench_cells_per_s(reps: usize, alloc_per_cycle: bool) -> f64 {
    let n = 16usize;
    let (m, k, l) = (64usize, n, n);
    let a = Matrix::pseudo_random(m, k, 1);
    let b = Matrix::pseudo_random(k, l, 2);
    let mut cu = CuArray::new(n, Stationary::Ws);

    let run_alloc = |cu: &mut CuArray| -> (Matrix, u64) {
        cu.clear();
        cu.load_stationary(&b);
        let mut out = Matrix::zero(m, l);
        let total = m + n + n + 2;
        for t in 0..total {
            let west: Vec<i64> = (0..n)
                .map(|row_k| {
                    let mi = t as i64 - row_k as i64;
                    if row_k < k && mi >= 0 && (mi as usize) < m {
                        a[(mi as usize, row_k)]
                    } else {
                        0
                    }
                })
                .collect();
            let north = vec![0; n];
            let mut east = vec![0; n];
            let mut south = vec![0; n];
            cu.step_into(&west, &north, &mut east, &mut south);
            for (col_l, v) in south.iter().enumerate() {
                let mi = t as i64 - (n - 1) as i64 - col_l as i64;
                if col_l < l && mi >= 0 && (mi as usize) < m {
                    out[(mi as usize, col_l)] = *v;
                }
            }
        }
        (out, total as u64)
    };

    // Warm-up pass (buffers sized, caches hot) and reference output.
    let (warm_out, cycles) = if alloc_per_cycle {
        run_alloc(&mut cu)
    } else {
        let r = cu.run_ws(&a, &b);
        (r.out, r.cycles)
    };
    assert_eq!(warm_out, a.matmul(&b));
    let cells_per_rep = cycles * (n * n) as u64;
    let t0 = Instant::now();
    let mut checksum = 0i64;
    for _ in 0..reps {
        let c00 = if alloc_per_cycle {
            run_alloc(&mut cu).0[(0, 0)]
        } else {
            cu.run_ws(&a, &b).out[(0, 0)]
        };
        checksum = checksum.wrapping_add(c00);
    }
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(checksum, warm_out[(0, 0)].wrapping_mul(reps as i64));
    (cells_per_rep * reps as u64) as f64 / dt
}

/// Timed trials per (population × worker count) row; the row keeps its
/// best trial. Absolute genomes/s numbers wobble with whatever else the
/// machine is running, so the anti-inversion check uses a load-immune
/// statistic instead: every multi-worker trial is timed back-to-back
/// with its own single-worker reference fan-out (pair order alternating
/// across trials so slow load drift cancels), and each pair yields one
/// throughput ratio. A load swing moves both halves of a pair together;
/// short spikes hit one half only, and — because a spike can only slow
/// the half it lands on — that noise is one-sided, so the row reports an
/// upper-tercile of the pair ratios (`vs_single`) rather than the
/// median. A genuine inversion drags *every* pair down and still fails
/// the statistic. Trial rounds rotate across worker counts, and the
/// whole first round is discarded as warm-up (it also warms the spawned
/// workers' allocator arenas, which otherwise penalize the first
/// multi-worker rows). A row whose statistic still lands under
/// [`RETRY_GATE`] gets one fresh set of pairs — independent noise fails
/// the same row twice only if the slowdown is real.
const TRIALS: usize = 7;

/// `vs_single` below this after the first set of pairs triggers one
/// re-measurement of that row. Matches the CI anti-inversion gate.
const RETRY_GATE: f64 = 0.9;

/// Upper tercile of a small sample, by sorting a copy: the value two
/// thirds of the way up, the robust choice under one-sided (slowing-
/// only) noise.
fn upper_tercile(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    s[s.len() * 2 / 3]
}

/// One measured row: worker count, best-trial genomes/s, and the median
/// in-round throughput ratio against the single-worker row (1.0 for the
/// single-worker row itself).
struct GenomeRow {
    workers: usize,
    genomes_per_s: f64,
    vs_single: f64,
}

/// Genomes/s of a scoring closure over the fixed population, one row per
/// requested worker count, fanned exactly as GA population scoring does:
/// a single batched fan-out covers all `rounds` passes, each worker
/// building its scoring state once (`init`) and keeping it for every
/// genome it claims.
///
/// The warm pass runs serially and yields the score digest; every timed
/// fan-out's wrapping sum must equal `digest × rounds`, so a worker
/// double-claiming or dropping a genome fails loudly.
fn bench_genome_rows<T: Sync, S>(
    genomes: &[T],
    rounds: usize,
    workers: &[usize],
    init: impl Fn() -> S + Sync,
    score: impl Fn(&mut S, &T) -> u64 + Sync,
) -> (Vec<GenomeRow>, u64) {
    // Warm-up round (shared scratch arenas size themselves here).
    let mut state = init();
    let warm = genomes
        .iter()
        .fold(0u64, |acc, g| acc.wrapping_add(score(&mut state, g)));
    drop(state);
    let len = genomes.len();
    let items = rounds * len;
    let fan_out = |w: usize| -> f64 {
        let t0 = Instant::now();
        let total = par_sum_indexed(Parallelism::Threads(w), items, &init, |s, i| {
            score(s, &genomes[i % len])
        });
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(
            total,
            warm.wrapping_mul(rounds as u64),
            "scores drifted across rounds"
        );
        dt
    };

    assert_eq!(workers[0], 1, "the first row is the single-worker reference");
    let multi = &workers[1..];
    let mut single_best = f64::INFINITY;
    let mut multi_best = vec![f64::INFINITY; multi.len()];
    let mut ratios = vec![[0.0f64; TRIALS]; multi.len()];
    if multi.is_empty() {
        for trial in 0..=TRIALS {
            let dt = fan_out(1);
            if trial > 0 {
                single_best = single_best.min(dt);
            }
        }
    }
    let trace = std::env::var_os("FUSECU_BENCH_TRACE").is_some();
    for trial in 0..=TRIALS {
        for slot in 0..multi.len() {
            let row = (slot + trial) % multi.len();
            let w = multi[row];
            let (ds, dw) = if trial % 2 == 0 {
                let ds = fan_out(1);
                (ds, fan_out(w))
            } else {
                let dw = fan_out(w);
                (fan_out(1), dw)
            };
            if trace {
                let note = if trial == 0 { " (warm-up, discarded)" } else { "" };
                eprintln!(
                    "    trace: w={w} dt={:.1}ms vs single {:.1}ms{note}",
                    dw * 1e3,
                    ds * 1e3
                );
            }
            if trial > 0 {
                single_best = single_best.min(ds);
                multi_best[row] = multi_best[row].min(dw);
                ratios[row][trial - 1] = ds / dw;
            }
        }
    }
    let mut vs_single: Vec<f64> = ratios.iter().map(|r| upper_tercile(r)).collect();
    for row in 0..multi.len() {
        if vs_single[row] >= RETRY_GATE {
            continue;
        }
        let w = multi[row];
        let mut fresh = [0.0f64; TRIALS];
        for (t, ratio) in fresh.iter_mut().enumerate() {
            let (ds, dw) = if t % 2 == 0 {
                let ds = fan_out(1);
                (ds, fan_out(w))
            } else {
                let dw = fan_out(w);
                (fan_out(1), dw)
            };
            single_best = single_best.min(ds);
            multi_best[row] = multi_best[row].min(dw);
            *ratio = ds / dw;
        }
        let remeasured = upper_tercile(&fresh);
        if trace {
            eprintln!(
                "    trace: w={w} re-measured vs_single {:.3} (was {:.3})",
                remeasured, vs_single[row]
            );
        }
        vs_single[row] = vs_single[row].max(remeasured);
    }
    let mut rows = vec![GenomeRow {
        workers: 1,
        genomes_per_s: items as f64 / single_best,
        vs_single: 1.0,
    }];
    rows.extend(multi.iter().enumerate().map(|(row, &w)| GenomeRow {
        workers: w,
        genomes_per_s: items as f64 / multi_best[row],
        vs_single: vs_single[row],
    }));
    (rows, warm)
}

/// One engine's worth of measurements.
struct EngineRun {
    label: &'static str,
    cells_per_s: f64,
    nest_rows: Vec<GenomeRow>,
    fused_rows: Vec<GenomeRow>,
    nest_digest: u64,
    fused_digest: u64,
}

/// Which replay engine a measurement section runs.
enum Engine {
    /// Frozen pre-refactor drivers with per-genome operand replay.
    Legacy,
    /// Live engine, `SimMode::Full` (data movement via shared scratch).
    Full,
    /// Frozen naive counters-only walk (`driver::oracle`): a residency
    /// check per slot per innermost body.
    Naive,
    /// Hoisted accounting walk: residency charges strength-reduced to
    /// loop boundaries, bare visit loop innermost.
    Walk,
    /// Live engine, `SimMode::FullMacro` — the wavefront macro-step tier
    /// with the value replay hoisted into the scorer.
    FullMacro,
    /// Live engine, default `SimMode::TrafficOnly` — the closed form.
    TrafficOnly,
}

/// Scoring rounds per timed row, calibrated per engine so every row runs
/// long enough to time honestly: the closed form scores a genome in tens
/// of nanoseconds while the legacy replay takes fractions of a
/// millisecond, so a flat round count would either starve the fast
/// engines of samples or stall the bench on the slow ones.
fn rounds_for(engine: &Engine, quick: bool) -> usize {
    let full = match engine {
        Engine::Legacy => 8,
        Engine::Full => 12,
        Engine::Naive => 512,
        Engine::Walk => 8_192,
        Engine::FullMacro => 131_072,
        Engine::TrafficOnly => 131_072,
    };
    if quick {
        (full / 2).max(2)
    } else {
        full
    }
}

fn measure(engine: &Engine, quick: bool, workers: &[usize]) -> EngineRun {
    let (cell_reps, pop) = if quick { (50, 64) } else { (400, 128) };
    let rounds = rounds_for(engine, quick);
    let nests = nest_genomes(pop);
    let fused = fused_genomes(pop);

    let mm = nest_mm();
    let pair = fused_pair();
    // Operands for the legacy engine (the live scorers own theirs).
    let a = Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, OPERAND_SEED);
    let b = Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, OPERAND_SEED + 1);
    let fd = |t| pair.dim(t) as usize;
    use fusecu_fusion::FusedDim::{K, L, M, N};
    let fa = Matrix::pseudo_random(fd(M), fd(K), OPERAND_SEED + 2);
    let fb = Matrix::pseudo_random(fd(K), fd(L), OPERAND_SEED + 3);
    let fdm = Matrix::pseudo_random(fd(L), fd(N), OPERAND_SEED + 4);

    let mode = match engine {
        Engine::TrafficOnly => SimMode::TrafficOnly,
        Engine::FullMacro => SimMode::FullMacro,
        // Unused for Legacy/Naive/Walk (they score directly below).
        _ => SimMode::Full,
    };
    let nest_scorer = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(mode);
    let fused_scorer = FusedScorer::new(Fitness::Simulated, MODEL, pair).with_sim_mode(mode);

    // Per-worker scoring state: the live engines keep a session (scratch
    // leased once per worker, not once per genome); the frozen engines
    // score statelessly and ignore it.
    let score_nest = |session: &mut fusecu_search::NestSession, n: &LoopNest| -> u64 {
        match engine {
            Engine::Legacy => legacy::execute_nest(&a, &b, mm, n).total(),
            Engine::Naive => oracle::measure_nest(mm, n).total(),
            Engine::Walk => measure_nest_walk(mm, n).total(),
            _ => session.score(n),
        }
    };
    let score_fused = |session: &mut fusecu_search::FusedSession, n: &FusedNest| -> u64 {
        match engine {
            Engine::Legacy => legacy::execute_fused_nest(&fa, &fb, &fdm, &pair, n)
                .iter()
                .sum(),
            Engine::Naive => oracle::measure_fused_nest(&pair, n).iter().sum(),
            Engine::Walk => measure_fused_nest_walk(&pair, n).iter().sum(),
            _ => session.score(n),
        }
    };

    let (label, alloc_cells) = match engine {
        Engine::Legacy => ("baseline", true),
        Engine::Full => ("full", false),
        Engine::Naive => ("naive", false),
        Engine::Walk => ("walk", false),
        Engine::FullMacro => ("full_macro", false),
        Engine::TrafficOnly => ("fast", false),
    };
    let cells_per_s = bench_cells_per_s(cell_reps, alloc_cells);
    let (nest_rows, nest_digest) =
        bench_genome_rows(&nests, rounds, workers, || nest_scorer.session(), score_nest);
    let (fused_rows, fused_digest) =
        bench_genome_rows(&fused, rounds, workers, || fused_scorer.session(), score_fused);
    EngineRun {
        label,
        cells_per_s,
        nest_rows,
        fused_rows,
        nest_digest,
        fused_digest,
    }
}

fn json_for(run: &EngineRun) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n    \"cells_per_s\": {:.0},\n    \"score_digest\": {{ \"nest\": {}, \"fused\": {} }},\n    \"genomes_per_s\": [",
        run.cells_per_s, run.nest_digest, run.fused_digest
    );
    for (i, (n, f)) in run.nest_rows.iter().zip(&run.fused_rows).enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            s,
            "{sep}\n      {{ \"workers\": {}, \"nest\": {:.1}, \"fused\": {:.1}, \"nest_vs_single\": {:.3}, \"fused_vs_single\": {:.3} }}",
            n.workers, n.genomes_per_s, f.genomes_per_s, n.vs_single, f.vs_single
        );
    }
    s.push_str("\n    ]\n  }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let workers = [1usize, 2, 4, 8];

    let baseline = measure(&Engine::Legacy, quick, &workers);
    let full = measure(&Engine::Full, quick, &workers);
    let naive = measure(&Engine::Naive, quick, &workers);
    let walk = measure(&Engine::Walk, quick, &workers);
    let full_macro = measure(&Engine::FullMacro, quick, &workers);
    let fast = measure(&Engine::TrafficOnly, quick, &workers);

    // All six engines must score every genome identically — the digest
    // is the self-check that the before/after compares like with like.
    for run in [&full, &naive, &walk, &full_macro, &fast] {
        assert_eq!(
            (run.nest_digest, run.fused_digest),
            (baseline.nest_digest, baseline.fused_digest),
            "engine '{}' scores diverged from the frozen baseline",
            run.label
        );
    }

    for run in [&baseline, &full, &naive, &walk, &full_macro, &fast] {
        eprintln!("[{}] cells/s: {:.3e}", run.label, run.cells_per_s);
        for (n, f) in run.nest_rows.iter().zip(&run.fused_rows) {
            eprintln!(
                "[{}] workers={}: nest genomes/s {:.1} (vs_single {:.3}), fused genomes/s {:.1} (vs_single {:.3})",
                run.label, n.workers, n.genomes_per_s, n.vs_single, f.genomes_per_s, f.vs_single
            );
        }
    }

    // Headline speedups: single-worker genomes/s, closed-form fast path
    // vs the frozen full replay and vs the naive counters-only walk it
    // strength-reduces.
    let speedup_nest = fast.nest_rows[0].genomes_per_s / baseline.nest_rows[0].genomes_per_s;
    let speedup_fused = fast.fused_rows[0].genomes_per_s / baseline.fused_rows[0].genomes_per_s;
    let vs_naive_nest = fast.nest_rows[0].genomes_per_s / naive.nest_rows[0].genomes_per_s;
    let vs_naive_fused = fast.fused_rows[0].genomes_per_s / naive.fused_rows[0].genomes_per_s;
    // The macro-step tier vs the per-cycle oracle it replaces on the hot
    // path — the headline for the wavefront macro-stepping work.
    let macro_nest = full_macro.nest_rows[0].genomes_per_s / full.nest_rows[0].genomes_per_s;
    let macro_fused = full_macro.fused_rows[0].genomes_per_s / full.fused_rows[0].genomes_per_s;
    eprintln!("speedup (1 worker, closed form vs pre-refactor replay): nest {speedup_nest:.1}x, fused {speedup_fused:.1}x");
    eprintln!("speedup (1 worker, closed form vs naive walk): nest {vs_naive_nest:.1}x, fused {vs_naive_fused:.1}x");
    eprintln!("speedup (1 worker, macro-step tier vs per-cycle full): nest {macro_nest:.1}x, fused {macro_fused:.1}x");

    let json = format!(
        "{{\n  \"benchmark\": \"sim_throughput\",\n  \"quick\": {quick},\n  \"available_parallelism\": {},\n  \"baseline\": {},\n  \"full\": {},\n  \"naive\": {},\n  \"walk\": {},\n  \"full_macro\": {},\n  \"fast\": {},\n  \"speedup_vs_baseline\": {{ \"nest\": {:.2}, \"fused\": {:.2} }},\n  \"speedup_vs_naive\": {{ \"nest\": {:.2}, \"fused\": {:.2} }},\n  \"speedup_macro_vs_full\": {{ \"nest\": {:.2}, \"fused\": {:.2} }}\n}}\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        json_for(&baseline),
        json_for(&full),
        json_for(&naive),
        json_for(&walk),
        json_for(&full_macro),
        json_for(&fast),
        speedup_nest,
        speedup_fused,
        vs_naive_nest,
        vs_naive_fused,
        macro_nest,
        macro_fused,
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("wrote {out}");
}
