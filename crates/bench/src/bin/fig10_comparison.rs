//! Fig 10: normalized memory access (bars) and utilization (lines) of the
//! five platforms across the seven Table II models.
//!
//! Run with `cargo run --release -p fusecu-bench --bin fig10_comparison`.
//! Pass `--serial` to disable the parallel evaluation engine and
//! `--no-disk-cache` to skip the persistent cache in `target/fusecu-cache/`.

use fusecu::pipeline::{compare_suite_with, suite_means, PlatformRow};
use fusecu::prelude::*;
use fusecu_bench::{header, pct, write_csv};

fn main() {
    let cache = DiskCacheSession::from_args();
    let parallelism = Parallelism::from_args();
    header("Fig 10: normalized memory access | utilization, per model");
    print!("{:<12}", "model");
    for p in Platform::ALL {
        print!(" {:>14}", p.name());
    }
    println!();

    let rows: Vec<PlatformRow> =
        compare_suite_with(&zoo::all(), &ArraySpec::paper_default(), parallelism);
    for row in &rows {
        print!("{:<12}", row.model.name);
        for p in Platform::ALL {
            print!(
                "   {:>5.3}|{:<5.3}",
                row.normalized_ma(p),
                row.utilization(p)
            );
        }
        println!();
    }

    let mut csv_rows = Vec::new();
    for row in &rows {
        for p in Platform::ALL {
            csv_rows.push(vec![
                row.model.name.clone(),
                p.name().to_string(),
                format!("{:.6}", row.normalized_ma(p)),
                format!("{:.6}", row.utilization(p)),
                format!("{:.6}", row.speedup(p, Platform::Tpuv4i)),
            ]);
        }
    }
    if let Ok(path) = write_csv(
        "fig10_comparison",
        &["model", "platform", "normalized_ma", "utilization", "speedup_vs_tpu"],
        &csv_rows,
    ) {
        println!("\ndata written to {}", path.display());
    }

    header("Fig 10 means and headline comparisons");
    let means = suite_means(&rows);
    println!(
        "{:<10} {:>14} {:>12} {:>16}",
        "platform", "norm. MA", "utilization", "speedup vs TPU"
    );
    for (p, ma, util, spd) in &means {
        println!("{:<10} {:>14.3} {:>12.3} {:>16.3}", p.name(), ma, util, spd);
    }

    let ma_of = |p: Platform| means.iter().find(|(q, ..)| *q == p).unwrap().1;
    let spd_of = |p: Platform| means.iter().find(|(q, ..)| *q == p).unwrap().3;
    let fuse = ma_of(Platform::FuseCu);
    let unf = ma_of(Platform::UnfCu);

    println!();
    println!("FuseCU data-movement saving:");
    println!(
        "  vs TPUv4i   {}  (paper: 63.6%)",
        pct(1.0 - fuse / ma_of(Platform::Tpuv4i))
    );
    println!(
        "  vs Gemmini  {}  (paper: 62.4%)",
        pct(1.0 - fuse / ma_of(Platform::Gemmini))
    );
    println!(
        "  vs Planaria {}  (paper: 38.7%)",
        pct(1.0 - fuse / ma_of(Platform::Planaria))
    );
    println!("UnfCU data-movement saving:");
    println!(
        "  vs TPUv4i   {}  (paper: 42.6%)",
        pct(1.0 - unf / ma_of(Platform::Tpuv4i))
    );
    println!(
        "  vs Gemmini  {}  (paper: 41.0%)",
        pct(1.0 - unf / ma_of(Platform::Gemmini))
    );
    println!(
        "  vs Planaria {}  (paper: 4.5%)",
        pct(1.0 - unf / ma_of(Platform::Planaria))
    );
    // Energy (extension): MACs are platform-invariant, so all savings come
    // from the eliminated memory traffic.
    let e = fusecu::arch::EnergyModel::nm28();
    let energy = |p: Platform| -> f64 {
        rows.iter().map(|r| e.graph_energy_uj(r.perf(p))).sum()
    };
    println!("FuseCU energy saving (15 pJ/B DRAM, 0.1 pJ/MAC):");
    println!(
        "  vs TPUv4i   {}   (dram share of TPUv4i: {})",
        pct(1.0 - energy(Platform::FuseCu) / energy(Platform::Tpuv4i)),
        pct(rows
            .iter()
            .map(|r| e.dram_share(r.perf(Platform::Tpuv4i)))
            .sum::<f64>()
            / rows.len() as f64)
    );
    println!("FuseCU speedup:");
    println!(
        "  vs TPUv4i   {:.2}x (paper: 1.33x)",
        spd_of(Platform::FuseCu) / spd_of(Platform::Tpuv4i)
    );
    println!(
        "  vs Gemmini  {:.2}x (paper: 1.25x)",
        spd_of(Platform::FuseCu) / spd_of(Platform::Gemmini)
    );
    println!(
        "  vs Planaria {:.2}x (paper: 1.14x)",
        spd_of(Platform::FuseCu) / spd_of(Platform::Planaria)
    );
    println!(
        "\noperator cache: {} (shapes repeated across layers and models are optimized once)",
        fusecu::arch::op_cache_stats()
    );
    println!("{}", cache.summary());
    if std::env::args().any(|a| a == "--stats-json") {
        println!("{}", cache.stats_json());
    }
}
