//! Serve-mode stress harness: QPS and tail latency of the `fusecu-serve`
//! request path, cold versus warm, with the byte-identity self-checks the
//! daemon's contract promises.
//!
//! Writes `BENCH_serve.json` (repo root by default, `--out <path>` to
//! override) from one process on one machine:
//!
//! * `cold` — the per-process baseline: every memo cache evicted before
//!   each sampled query, answered directly (no daemon), the cost a fresh
//!   CLI invocation pays per query;
//! * `pass1` — the same full mix replayed once through the batching
//!   front-end against cold caches (caching and in-batch dedup active);
//! * `warm` — the mix replayed again at 1/2/4/8 client threads with a
//!   pipeline depth of 32 per client, per-request latencies recorded and
//!   reduced to p50/p99/p999.
//!
//! The mix is duplicate-heavy on purpose — zoo-derived graph/chain/op
//! queries plus seeded-LCG random shapes, each appearing in adjacent
//! bursts and across repetitions — the service workload where batching
//! and deduplication earn their keep.
//!
//! Self-checked gates (asserted here, re-checked from the JSON by CI):
//! every warm response byte-identical to the serial pass-1 response and
//! to a direct non-daemon evaluation; second-pass cache hit rate >= 90%;
//! batch dedup factor > 1; warm QPS >= 10x the cold-per-process baseline.
//! `--quick` shrinks the mix for CI.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fusecu::server::{spawn_frontend, BatchConfig, Server, Submission};
use fusecu_search::{CacheStats, DataflowCache, Parallelism};

/// Pipelined requests kept in flight per client thread.
const DEPTH: usize = 32;

/// A client's pipelined requests awaiting replies: send time, the
/// reply channel, and the line's index in the mix.
type Inflight = VecDeque<(Instant, Receiver<String>, usize)>;

/// What each client thread brings home: its request latencies, its
/// mismatch count, and its (line index, response) pairs.
type ClientTally = (Vec<u64>, usize, Vec<(usize, String)>);

/// Aggregate hit/miss counters over every process-wide memo cache.
fn all_cache_stats() -> CacheStats {
    DataflowCache::global()
        .stats()
        .plus(fusecu_arch::op_cache_stats())
        .plus(fusecu_fusion::optimizer::pair_cache_stats())
        .plus(fusecu_fusion::planner::plan_cache_stats())
        .plus(fusecu_fusion::chain::chain_cache_stats())
        .plus(fusecu_fusion::graph_planner::graph_cache_stats())
}

/// Drops every entry from every process-wide memo cache (counters kept):
/// the state a fresh process starts from.
fn evict_all_caches() {
    DataflowCache::global().evict_all();
    fusecu_arch::op_cache_evict_all();
    fusecu_fusion::optimizer::pair_cache_evict_all();
    fusecu_fusion::planner::plan_cache_evict_all();
    fusecu_fusion::chain::chain_cache_evict_all();
    fusecu_fusion::graph_planner::graph_cache_evict_all();
}

/// Deterministic LCG step (no external RNG; the mix must be identical
/// across runs and machines).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn pick(state: &mut u64, n: u64) -> u64 {
    lcg(state) % n
}

/// The distinct request bodies of the stress mix: zoo-derived graph,
/// chain, and operator queries plus seeded random shapes.
fn unique_queries(quick: bool) -> Vec<String> {
    let buffers = [1u64 << 19, 1u64 << 22];
    let models = ["paper", "rw"];
    let mut q: Vec<String> = Vec::new();

    let zoo = fusecu_models::zoo::all();
    let zoo_take = if quick { 2 } else { 4 };
    for config in zoo.iter().take(zoo_take) {
        let graph = config.build_graph();
        let dag = graph.mm_dag();
        for &bs in &buffers {
            for &model in &models {
                if dag.mms().len() <= fusecu::server::MAX_GRAPH_NODES
                    && dag.links().len() <= fusecu::server::MAX_GRAPH_LINKS
                {
                    let mut s = format!("plan-graph {bs} {model} {}", dag.mms().len());
                    for (id, mm, count) in dag.mms() {
                        let _ = write!(s, " {} {} {} {} {count}", id.0, mm.m(), mm.k(), mm.l());
                    }
                    let _ = write!(s, " {}", dag.links().len());
                    for link in dag.links() {
                        let _ = write!(s, " {} {}", link.producer, link.consumer);
                    }
                    q.push(s);
                }
            }
        }
        for (_, chain, _) in graph.mm_chains() {
            if chain.mms().len() < 2 || chain.mms().len() > fusecu::server::MAX_CHAIN_OPS {
                continue;
            }
            for &bs in &buffers {
                let mut s = format!("plan-chain {bs} rw {}", chain.mms().len());
                for mm in chain.mms() {
                    let _ = write!(s, " {} {} {}", mm.m(), mm.k(), mm.l());
                }
                q.push(s);
            }
        }
        for (_, mm, _) in dag.mms() {
            for &bs in &buffers {
                for &model in &models {
                    q.push(format!(
                        "optimize-op {} {} {} {bs} {model}",
                        mm.m(),
                        mm.k(),
                        mm.l()
                    ));
                }
            }
        }
    }

    // Seeded random small shapes: scores (pure evaluation) and operator
    // optimizations off the zoo grid.
    let mut state = 0x00F1_7E55_5EED_u64;
    let orders = ["mkl", "mlk", "kml", "klm", "lmk", "lkm"];
    let random = if quick { 24 } else { 96 };
    for _ in 0..random {
        let m = 1 + pick(&mut state, 512);
        let k = 1 + pick(&mut state, 512);
        let l = 1 + pick(&mut state, 512);
        match pick(&mut state, 3) {
            0 => {
                let order = orders[pick(&mut state, 6) as usize];
                let tm = 1 + pick(&mut state, m);
                let tk = 1 + pick(&mut state, k);
                let tl = 1 + pick(&mut state, l);
                q.push(format!("score {m} {k} {l} {order} {tm} {tk} {tl} rw"));
            }
            1 => q.push(format!(
                "optimize-op {m} {k} {l} {} paper",
                buffers[pick(&mut state, 2) as usize]
            )),
            _ => q.push(format!(
                "plan-chain {} paper 2 {m} {k} {l} {m} {l} {k}",
                buffers[pick(&mut state, 2) as usize]
            )),
        }
    }
    q
}

/// One pass of the mix: every unique query in adjacent bursts (in-flight
/// duplicates for the deduper), repeated to the target length, ids = the
/// global line index.
fn build_mix(uniques: &[String], quick: bool) -> Vec<String> {
    let (burst, reps) = if quick { (2, 8) } else { (2, 40) };
    let mut lines = Vec::with_capacity(uniques.len() * burst * reps);
    let mut id = 0usize;
    for rep in 0..reps {
        // Vary the traversal start per repetition so batches mix shapes.
        let offset = (rep * 7) % uniques.len();
        for i in 0..uniques.len() {
            let body = &uniques[(offset + i) % uniques.len()];
            for _ in 0..burst {
                lines.push(format!("{id} {body}"));
                id += 1;
            }
        }
    }
    lines
}

/// Result of one daemon replay.
struct RunResult {
    seconds: f64,
    latencies_us: Vec<u64>,
    mismatches: usize,
    responses: Vec<String>,
}

/// Replays `lines` through the batching front-end with `clients` threads,
/// `DEPTH`-deep pipelining each, recording per-request latency. When
/// `expected` is given, every response is compared byte-for-byte against
/// `expected[global line index]`. Responses are returned indexed by line.
fn replay(sink: &Sender<Submission>, lines: &[String], clients: usize, expected: Option<&[String]>) -> RunResult {
    let chunk = lines.len().div_ceil(clients);
    let t0 = Instant::now();
    let per_client: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let slice_start = (c * chunk).min(lines.len());
                let slice_end = ((c + 1) * chunk).min(lines.len());
                let slice = &lines[slice_start..slice_end];
                let sink = sink.clone();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(slice.len());
                    let mut mismatches = 0usize;
                    let mut responses: Vec<(usize, String)> = Vec::with_capacity(slice.len());
                    let mut inflight: Inflight = VecDeque::with_capacity(DEPTH);
                    let mut drain = |inflight: &mut Inflight| {
                        let (sent, rx, idx) = inflight.pop_front().expect("inflight");
                        let resp = rx.recv().expect("response");
                        latencies.push(sent.elapsed().as_micros() as u64);
                        if let Some(want) = expected {
                            if want[idx] != resp {
                                mismatches += 1;
                            }
                        }
                        responses.push((idx, resp));
                    };
                    for (i, line) in slice.iter().enumerate() {
                        if inflight.len() == DEPTH {
                            drain(&mut inflight);
                        }
                        let (tx, rx) = channel();
                        let sent = Instant::now();
                        sink.send(Submission {
                            line: line.clone(),
                            reply: tx,
                        })
                        .expect("daemon alive");
                        inflight.push_back((sent, rx, slice_start + i));
                    }
                    while !inflight.is_empty() {
                        drain(&mut inflight);
                    }
                    (latencies, mismatches, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let seconds = t0.elapsed().as_secs_f64();

    let mut latencies_us = Vec::with_capacity(lines.len());
    let mut mismatches = 0;
    let mut responses = vec![String::new(); lines.len()];
    for (lat, mm, resp) in per_client {
        latencies_us.extend(lat);
        mismatches += mm;
        for (idx, r) in resp {
            responses[idx] = r;
        }
    }
    latencies_us.sort_unstable();
    RunResult {
        seconds,
        latencies_us,
        mismatches,
        responses,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let uniques = unique_queries(quick);
    let mix = build_mix(&uniques, quick);
    eprintln!(
        "[mix] {} unique queries, {} lines per pass",
        uniques.len(),
        mix.len()
    );

    // --- Phase A: cold-per-process baseline. Every cache evicted before
    // each sampled query; answered directly, no daemon. This is the cost
    // a one-query CLI process pays, sampled across the mix.
    let cold_server = Server::new(Parallelism::Serial);
    let cold_samples = if quick { 40 } else { 120 };
    let stride = (mix.len() / cold_samples).max(1);
    let sampled: Vec<&String> = mix.iter().step_by(stride).take(cold_samples).collect();
    let t0 = Instant::now();
    let cold_responses: Vec<(usize, String)> = sampled
        .iter()
        .enumerate()
        .map(|(i, line)| {
            evict_all_caches();
            (i * stride, cold_server.answer_line(line))
        })
        .collect();
    let cold_seconds = t0.elapsed().as_secs_f64();
    let cold_qps = sampled.len() as f64 / cold_seconds;
    eprintln!(
        "[cold] {} sampled queries in {cold_seconds:.2}s -> {cold_qps:.1} qps (per-process baseline)",
        sampled.len()
    );

    // --- Daemon: one server + batching front-end, shared by every phase.
    evict_all_caches();
    let server = Arc::new(Server::new(Parallelism::Auto));
    let cfg = BatchConfig {
        window: Duration::from_micros(200),
        max_batch: 1024,
    };
    let (sink, frontend) = spawn_frontend(Arc::clone(&server), cfg);

    // --- Phase B: pass 1, cold caches but batching + dedup + memoization
    // active. Its responses become the serial reference every later run
    // must match byte-for-byte.
    let before1 = all_cache_stats();
    let pass1 = replay(&sink, &mix, 1, None);
    let d1 = all_cache_stats().since(before1);
    let pass1_qps = mix.len() as f64 / pass1.seconds;
    eprintln!(
        "[pass1] {} lines in {:.2}s -> {pass1_qps:.1} qps, cache {:.1}% hits",
        mix.len(),
        pass1.seconds,
        100.0 * d1.hit_rate()
    );

    // --- Phase C: warm replays at 1/2/4/8 client threads. The first run
    // is "pass 2": its cache-hit rate is the warm-cache gate.
    let mut warm_rows = String::new();
    let mut warm_mismatches = 0usize;
    let mut pass2_hit_rate = 0.0;
    let mut warm_qps_1 = 0.0;
    for (i, &clients) in [1usize, 2, 4, 8].iter().enumerate() {
        let before = all_cache_stats();
        let run = replay(&sink, &mix, clients, Some(&pass1.responses));
        let delta = all_cache_stats().since(before);
        let qps = mix.len() as f64 / run.seconds;
        let (p50, p99, p999) = (
            percentile(&run.latencies_us, 0.50),
            percentile(&run.latencies_us, 0.99),
            percentile(&run.latencies_us, 0.999),
        );
        if i == 0 {
            pass2_hit_rate = delta.hit_rate();
            warm_qps_1 = qps;
        }
        warm_mismatches += run.mismatches;
        eprintln!(
            "[warm] clients={clients}: {qps:.1} qps, p50 {p50}us p99 {p99}us p999 {p999}us, {:.1}% hits, {} mismatches",
            100.0 * delta.hit_rate(),
            run.mismatches
        );
        if !warm_rows.is_empty() {
            warm_rows.push_str(",\n    ");
        }
        let _ = write!(
            warm_rows,
            "{{ \"clients\": {clients}, \"qps\": {qps:.1}, \"p50_us\": {p50}, \"p99_us\": {p99}, \"p999_us\": {p999}, \"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {} }}",
            delta.hit_rate(),
            delta.hits,
            delta.misses
        );
    }

    // --- Byte-identity: daemon responses vs direct (non-daemon) serial
    // evaluation, and the cold-phase responses vs the same reference.
    let direct = Server::new(Parallelism::Serial);
    let direct_mismatches = mix
        .iter()
        .enumerate()
        .filter(|(i, line)| direct.answer_line(line) != pass1.responses[*i])
        .count();
    let cold_mismatches = cold_responses
        .iter()
        .filter(|(idx, resp)| *resp != pass1.responses[*idx])
        .count();

    drop(sink);
    frontend.join().expect("frontend thread");

    let stats = server.stats();
    let deduped = stats.deduped.load(Ordering::Relaxed);
    let computed = stats.computed.load(Ordering::Relaxed);
    let dedup_factor = (deduped + computed) as f64 / computed.max(1) as f64;
    let speedup = warm_qps_1 / cold_qps;
    eprintln!(
        "[dedup] {deduped} deduplicated / {computed} computed -> factor {dedup_factor:.2}"
    );
    eprintln!(
        "[identity] warm {warm_mismatches}, direct {direct_mismatches}, cold {cold_mismatches} mismatches"
    );
    eprintln!("[speedup] warm {warm_qps_1:.1} qps vs cold {cold_qps:.1} qps -> {speedup:.1}x");

    let gates = [
        ("warm_hit_rate_ok", pass2_hit_rate >= 0.90),
        ("dedup_ok", dedup_factor > 1.0),
        (
            "identical_ok",
            warm_mismatches == 0 && direct_mismatches == 0 && cold_mismatches == 0,
        ),
        ("speedup_ok", speedup >= 10.0),
    ];

    let json = format!(
        "{{\n  \"benchmark\": \"serve_stress\",\n  \"quick\": {quick},\n  \"available_parallelism\": {},\n  \"mix\": {{ \"unique\": {}, \"lines_per_pass\": {}, \"batch_window_us\": 200, \"pipeline_depth\": {DEPTH} }},\n  \"cold\": {{ \"sampled\": {}, \"seconds\": {cold_seconds:.3}, \"qps\": {cold_qps:.1} }},\n  \"pass1\": {{ \"qps\": {pass1_qps:.1}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},\n  \"warm\": [\n    {warm_rows}\n  ],\n  \"pass2_hit_rate\": {pass2_hit_rate:.4},\n  \"dedup\": {{ \"requests\": {}, \"deduped\": {deduped}, \"computed\": {computed}, \"factor\": {dedup_factor:.3} }},\n  \"identity\": {{ \"warm_mismatches\": {warm_mismatches}, \"direct_mismatches\": {direct_mismatches}, \"cold_mismatches\": {cold_mismatches} }},\n  \"speedup_warm_vs_cold\": {speedup:.2},\n  \"gates\": {{ {} }}\n}}\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        uniques.len(),
        mix.len(),
        sampled.len(),
        d1.hits,
        d1.misses,
        d1.hit_rate(),
        stats.requests.load(Ordering::Relaxed),
        gates
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("wrote {out}");

    for (name, ok) in gates {
        assert!(ok, "gate failed: {name}");
    }
}
