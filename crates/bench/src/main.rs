//! Runs every table/figure regeneration in sequence.
//!
//! `cargo run --release -p fusecu-bench` — or run the individual binaries
//! `tables`, `fig09_validate`, `fig10_comparison`, `fig11_seqlen`,
//! `fig12_area`.

use std::process::Command;

fn main() {
    let bins = [
        "tables",
        "fig09_validate",
        "fig10_comparison",
        "fig11_seqlen",
        "fig12_area",
        "ablations",
        "extensions",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin directory");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} exited with {status}");
    }
}
