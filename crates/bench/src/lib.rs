//! Shared helpers for the figure/table regeneration binaries: console
//! formatting and CSV emission (one data file per figure, ready for any
//! plotting tool).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Writes a CSV data file under `target/figures/`, creating the directory
/// as needed, and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or writing.
pub fn write_csv(
    name: &str,
    columns: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", columns.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let path = write_csv(
            "unit_test_fixture",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .expect("writable target dir");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.636), "63.6%");
    }
}
