//! The Fig 9 CSV contract: the parallel sweep engine and the `--serial`
//! escape hatch must emit byte-identical data files.

use fusecu::pipeline::{fig9_buffer_sizes, scaling_curve, validate_buffer_sweep_with, SweepPoint};
use fusecu::prelude::*;
use fusecu_bench::write_csv;

fn fig9_rows(points: &[SweepPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.buffer.to_string(),
                p.principle_ma.to_string(),
                p.exhaustive.0.to_string(),
                p.genetic.0.to_string(),
            ]
        })
        .collect()
}

#[test]
fn fig09_csv_is_byte_identical_serial_vs_parallel() {
    // The exact shape and columns of the fig09_validate binary's
    // `fig09_bert_projection.csv`.
    let mm = MatMul::new(1024, 768, 768);
    let buffers = fig9_buffer_sizes();
    let columns = ["buffer_elems", "principle_ma", "exhaustive_ma", "genetic_ma"];

    let serial = validate_buffer_sweep_with(mm, &buffers, Parallelism::Serial);
    let parallel = validate_buffer_sweep_with(mm, &buffers, Parallelism::Threads(4));

    let serial_path =
        write_csv("test_fig09_serial", &columns, &fig9_rows(&serial)).expect("writable target");
    let parallel_path =
        write_csv("test_fig09_parallel", &columns, &fig9_rows(&parallel)).expect("writable target");

    let serial_bytes = std::fs::read(&serial_path).unwrap();
    let parallel_bytes = std::fs::read(&parallel_path).unwrap();
    assert!(!serial_bytes.is_empty());
    assert_eq!(
        serial_bytes, parallel_bytes,
        "serial and parallel sweeps must serialize identically"
    );
    let _ = std::fs::remove_file(serial_path);
    let _ = std::fs::remove_file(parallel_path);
}

#[test]
fn scaling_csv_digest_column_is_deterministic() {
    // The fig09_scaling.csv contract: the `seconds` column is a timing and
    // may vary, but `workers` and `digest` must be byte-identical across
    // runs — and the digest identical across worker counts within a run.
    let mm = MatMul::new(128, 96, 64);
    let buffers = [256u64, 4_096, 65_536];
    let stable = |points: &[ScalingPoint]| -> Vec<(usize, u64)> {
        points.iter().map(|p| (p.workers, p.digest)).collect()
    };
    let a = scaling_curve(mm, &buffers, &[1, 2, 4, 8]);
    assert!(a.iter().all(|p| p.digest == a[0].digest), "{a:?}");
    let b = scaling_curve(mm, &buffers, &[1, 2, 4, 8]);
    assert_eq!(stable(&a), stable(&b), "rerun must reproduce the digest column");
}
