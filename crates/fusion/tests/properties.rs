//! Property tests for the fused-nest model, the Principle 4 decision, and
//! the chain planner.

use proptest::prelude::*;

use fusecu_dataflow::CostModel;
use fusecu_fusion::planner::{plan_chain, ChainStep};
use fusecu_fusion::{decide, optimize_pair, ExtTensor, FusedNest, FusedPair, FusedTiling};
use fusecu_ir::{MatMul, MmChain};

fn model() -> CostModel {
    CostModel::paper()
}

fn arb_pair() -> impl Strategy<Value = FusedPair> {
    (1u64..128, 1u64..128, 1u64..128, 1u64..128).prop_map(|(m, k, l, n)| {
        FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n))
            .expect("shapes chain by construction")
    })
}

fn arb_nest() -> impl Strategy<Value = FusedNest> {
    (
        any::<bool>(),
        1u64..160,
        1u64..160,
        1u64..160,
        1u64..160,
    )
        .prop_map(|(o, tm, tk, tl, tn)| FusedNest::new(o, FusedTiling::new(tm, tk, tl, tn)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fused external traffic is bounded below by the external footprints
    /// (the fused communication lower bound) for every nest.
    #[test]
    fn fused_traffic_at_least_external_footprints(pair in arb_pair(), nest in arb_nest()) {
        let ma = nest.evaluate(&model(), &pair);
        for t in ExtTensor::ALL {
            prop_assert!(ma.of(t) >= pair.tensor_elems(t), "{t}");
        }
        prop_assert!(ma.total() >= pair.external_ideal_ma());
    }

    /// The footprint is monotone in every tile size *while the loop
    /// structure is unchanged*. Crossing an untiled threshold can release
    /// a persistent tensor from double-counting and legitimately shrink
    /// the footprint (a shape the optimizer's sweep enumerates explicitly,
    /// so bisection never needs to cross it).
    #[test]
    fn footprint_monotone_within_a_loop_structure(
        pair in arb_pair(),
        nest in arb_nest(),
        dim_idx in 0usize..4,
        grow in 1u64..64,
    ) {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        let dim = [M, K, L, N][dim_idx];
        let bigger = FusedNest::new(
            nest.outer_is_m,
            nest.tiling.with(dim, nest.tiling.tile(dim) + grow),
        );
        // Only compare when every dimension keeps its tiled/untiled status.
        let structure_unchanged = [M, K, L, N].iter().all(|d| {
            (nest.tiling.iterations(&pair, *d) == 1)
                == (bigger.tiling.iterations(&pair, *d) == 1)
        });
        prop_assume!(structure_unchanged);
        prop_assert!(
            bigger.footprint(&pair) >= nest.footprint(&pair),
            "footprint shrank when T_{dim} grew"
        );
    }

    /// Growing a tile never increases any external tensor's traffic.
    #[test]
    fn traffic_nonincreasing_in_tiles(
        pair in arb_pair(),
        nest in arb_nest(),
        dim_idx in 0usize..4,
        grow in 1u64..64,
    ) {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        let dim = [M, K, L, N][dim_idx];
        let bigger = FusedNest::new(
            nest.outer_is_m,
            nest.tiling.with(dim, nest.tiling.tile(dim) + grow),
        );
        let before = nest.evaluate(&model(), &pair);
        let after = bigger.evaluate(&model(), &pair);
        for t in ExtTensor::ALL {
            prop_assert!(after.of(t) <= before.of(t), "{t} grew with larger T_{dim}");
        }
    }

    /// Each operator of a fused nest has between 1 and 3 non-redundant
    /// tensors (the intermediate always counts).
    #[test]
    fn per_op_nra_counts_are_valid(pair in arb_pair(), nest in arb_nest()) {
        let (p, c) = nest.op_nra_counts(&pair);
        prop_assert!((1..=3).contains(&p));
        prop_assert!((1..=3).contains(&c));
    }

    /// The decision's best execution never exceeds the unfused optimum, and
    /// profitability implies a strictly better fused dataflow.
    #[test]
    fn decision_is_consistent(pair in arb_pair(), bs in 3u64..50_000) {
        let d = decide(&model(), pair, bs);
        prop_assert!(d.best_ma() <= d.unfused_ma());
        if d.profitable() {
            let f = d.fused().expect("profitable implies fused exists");
            prop_assert!(f.total_ma() < d.unfused_ma());
            prop_assert_eq!(d.saved_ma(), d.unfused_ma() - f.total_ma());
            prop_assert!(f.footprint() <= bs);
        }
    }

    /// The fused optimum is monotone in buffer size.
    #[test]
    fn fused_optimum_monotone_in_buffer(pair in arb_pair(), bs in 3u64..30_000, extra in 0u64..30_000) {
        let small = optimize_pair(&model(), pair, bs).map(|f| f.total_ma());
        let large = optimize_pair(&model(), pair, bs + extra).map(|f| f.total_ma());
        if let (Some(s), Some(l)) = (small, large) {
            prop_assert!(l <= s);
        }
    }

    /// Chain plans cover every matmul exactly once and their reported total
    /// equals the sum of their steps.
    #[test]
    fn chain_plans_partition_the_chain(
        m in 1u64..64,
        dims in proptest::collection::vec(1u64..64, 2..6),
        bs in 16u64..20_000,
    ) {
        // Build a chain m x dims[0] x dims[1] x ... (each consecutive pair
        // chains by construction).
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(m, w[0], w[1]))
            .collect();
        prop_assume!(!mms.is_empty());
        let chain = MmChain::try_new(mms).expect("constructed to chain");
        let plan = plan_chain(&model(), &chain, bs);
        let covered: usize = plan.steps().iter().map(ChainStep::width).sum();
        prop_assert_eq!(covered, chain.len());
        let step_total: u64 = plan.steps().iter().map(ChainStep::ma).sum();
        prop_assert_eq!(step_total, plan.total_ma());
        // Fusing never loses to all-solo.
        let solo: u64 = (0..chain.len())
            .map(|i| {
                fusecu_dataflow::principles::try_optimize_with(&model(), chain.mm(i), bs)
                    .unwrap()
                    .total_ma()
            })
            .sum();
        prop_assert!(plan.total_ma() <= solo);
    }
}
