//! The k-ary fused matmul chain and its depth-parametric cost model.
//!
//! [`crate::pair`] covers exactly two fused matmuls; this module
//! generalizes the fused loop-nest model to a chain of `k ≥ 2` matmuls
//! `Y_0 = X × W_0`, `Y_i = Y_{i-1} × W_i`, sharing one row dimension `M`:
//!
//! ```text
//! for (m tiles of size T_M)                        // single shared loop
//!   phase 0:   for c_0 tiles { Y_0 panel += X_tile × W_0 rows }
//!   phase i:   for c_i tiles { Y_i panel += Y_{i-1} panel × W_i rows }
//!   phase k-1: for c_k tiles { O_tile = Y_{k-2} panel × W_{k-1} cols }
//! ```
//!
//! Every interior intermediate `Y_i` is held as a full-width row panel
//! `[T_M, c_{i+1}]`, resident simultaneously across the whole phase
//! sequence, so none of them ever touches memory — the k-ary extension of
//! the pair model's memory-silent `C`. The externals are the chain input
//! `X[M, c_0]`, the weights `W_i[c_i, c_{i+1}]`, and the output
//! `O[M, c_k]`; their traffic follows the same trailing-window reuse
//! analysis as [`crate::nest::FusedNest`], and at `k = 2` the model
//! coincides term for term with the pair model's untiled-`L` slice
//! (`T_L = L`), which the tests pin.
//!
//! The same MA-first objective applies: [`optimize_chain`] minimizes total
//! external memory access, breaking ties toward the smaller footprint, over
//! the closed-form candidate family (binary phase tilings crossed with the
//! bisected maximal `T_M`).

use std::fmt;
use std::sync::OnceLock;

use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};
use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;

use crate::optimizer::{balance, max_feasible};

/// Error building a fused chain from incompatible matmuls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainFusionError {
    /// Fewer than two matmuls.
    TooShort,
    /// A matmul's row dimension differs from the chain's shared `M`.
    RowMismatch {
        /// Index of the offending matmul.
        index: usize,
    },
    /// A matmul's reduction dimension differs from its producer's output
    /// columns.
    ShapeMismatch {
        /// Index of the offending (consumer) matmul.
        index: usize,
    },
}

impl fmt::Display for ChainFusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainFusionError::TooShort => write!(f, "a fused chain needs at least two matmuls"),
            ChainFusionError::RowMismatch { index } => {
                write!(f, "matmul {index} does not share the chain's row dimension")
            }
            ChainFusionError::ShapeMismatch { index } => {
                write!(f, "matmul {index} cannot read its producer's output")
            }
        }
    }
}

impl std::error::Error for ChainFusionError {}

/// A validated chain of `k ≥ 2` matmuls `mm_i = [M, c_i] × [c_i, c_{i+1}]`
/// sharing the row dimension `M`, with every interior intermediate
/// memory-silent when fused.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FusedChain {
    m: u64,
    /// The column trail `c_0 … c_k` (`k + 1` entries).
    dims: Vec<u64>,
}

impl FusedChain {
    /// Validates a matmul sequence as a fusable chain: at least two
    /// matmuls, all sharing `M`, each reading its predecessor's output
    /// (`mm_{i+1}.k == mm_i.l`).
    pub fn try_new(mms: &[MatMul]) -> Result<FusedChain, ChainFusionError> {
        if mms.len() < 2 {
            return Err(ChainFusionError::TooShort);
        }
        let m = mms[0].m();
        let mut dims = Vec::with_capacity(mms.len() + 1);
        dims.push(mms[0].k());
        for (i, mm) in mms.iter().enumerate() {
            if mm.m() != m {
                return Err(ChainFusionError::RowMismatch { index: i });
            }
            if mm.k() != dims[i] {
                return Err(ChainFusionError::ShapeMismatch { index: i });
            }
            dims.push(mm.l());
        }
        Ok(FusedChain { m, dims })
    }

    /// Number of matmuls in the chain (`k`).
    pub fn depth(&self) -> usize {
        self.dims.len() - 1
    }

    /// The shared row dimension `M`.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Column dimension `c_i` (`i ∈ 0..=k`).
    pub fn col(&self, i: usize) -> u64 {
        self.dims[i]
    }

    /// The `i`-th matmul `[M, c_i] × [c_i, c_{i+1}]`.
    pub fn mm(&self, i: usize) -> MatMul {
        MatMul::new(self.m, self.dims[i], self.dims[i + 1])
    }

    /// Elements of the weight `W_i[c_i, c_{i+1}]`.
    pub fn weight_elems(&self, i: usize) -> u64 {
        self.dims[i] * self.dims[i + 1]
    }

    /// Elements of all interior intermediates `Y_0 … Y_{k-2}` combined.
    pub fn interior_elems(&self) -> u64 {
        self.dims[1..self.depth()].iter().map(|c| self.m * c).sum()
    }

    /// The infinite-buffer fused lower bound: every external tensor
    /// streamed exactly once.
    pub fn external_ideal_ma(&self) -> u64 {
        let k = self.depth();
        let weights: u64 = (0..k).map(|i| self.weight_elems(i)).sum();
        self.m * self.dims[0] + weights + self.m * self.dims[k]
    }

    /// The infinite-buffer unfused bound: the external bound plus a write
    /// and a re-read of every interior intermediate.
    pub fn unfused_ideal_ma(&self) -> u64 {
        self.external_ideal_ma() + 2 * self.interior_elems()
    }

    /// Total multiply-accumulates of the chain.
    pub fn macs(&self) -> u64 {
        (0..self.depth()).map(|i| self.m * self.weight_elems(i)).sum()
    }
}

impl fmt::Display for FusedChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain[{}; {}", self.depth(), self.m)?;
        for c in &self.dims {
            write!(f, "x{c}")?;
        }
        write!(f, "]")
    }
}

/// A chain loop nest: the shared `M` tile plus one tile size per phase.
///
/// Phase `i < k-1` tiles its reduction dimension `c_i` (the rows of `W_i`
/// streamed into the resident `Y_i` panel); the final phase `k-1` tiles the
/// output dimension `c_k` (the columns of `W_{k-1}` and of `O`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChainNest {
    /// Shared `M` tile size.
    pub t_m: u64,
    /// Per-phase tile sizes (`k` entries).
    pub phase_tiles: Vec<u64>,
}

impl ChainNest {
    /// Creates a chain nest.
    ///
    /// # Panics
    ///
    /// Panics if any tile size is zero.
    pub fn new(t_m: u64, phase_tiles: Vec<u64>) -> ChainNest {
        assert!(
            t_m > 0 && phase_tiles.iter().all(|&t| t > 0),
            "tile sizes must be non-zero"
        );
        ChainNest { t_m, phase_tiles }
    }

    /// The dimension phase `i` tiles: `c_i` for reduction phases, `c_k`
    /// for the final output phase.
    pub fn phase_dim(chain: &FusedChain, i: usize) -> u64 {
        if i + 1 == chain.depth() {
            chain.col(chain.depth())
        } else {
            chain.col(i)
        }
    }

    /// Clamped shared tile size.
    pub fn clamped_t_m(&self, chain: &FusedChain) -> u64 {
        self.t_m.min(chain.m())
    }

    /// Clamped tile size of phase `i`.
    pub fn clamped_phase_tile(&self, chain: &FusedChain, i: usize) -> u64 {
        self.phase_tiles[i].min(Self::phase_dim(chain, i))
    }

    /// Iteration count of the shared `M` loop.
    pub fn m_iterations(&self, chain: &FusedChain) -> u64 {
        chain.m().div_ceil(self.clamped_t_m(chain))
    }

    /// Iteration count of phase `i`'s tile loop.
    pub fn phase_iterations(&self, chain: &FusedChain, i: usize) -> u64 {
        Self::phase_dim(chain, i).div_ceil(self.clamped_phase_tile(chain, i))
    }

    /// Reload multiplier of the weight `W_i`: its tiles change inside
    /// phase `i`, so a multi-iteration phase re-streams the whole weight
    /// on every shared `M` iteration; a single-iteration phase keeps it
    /// resident (one load) — exactly the pair model's trailing-window rule
    /// applied to the sequence `[M loop, phase-i loop]`.
    pub fn weight_multiplier(&self, chain: &FusedChain, i: usize) -> u64 {
        if self.phase_iterations(chain, i) > 1 {
            self.m_iterations(chain)
        } else {
            1
        }
    }

    /// Whether `W_i` must stay resident across the other phases (counted
    /// persistently in the footprint): a single-tile phase under an
    /// iterating `M` loop, mirroring the pair model's persistence of `B`
    /// and `D`.
    pub fn weight_is_persistent(&self, chain: &FusedChain, i: usize) -> bool {
        self.phase_iterations(chain, i) == 1 && self.m_iterations(chain) > 1
    }

    /// Memory access of the chain input `X[M, c_0]`: its tile key changes
    /// with every `(m, c_0)` index, so it is streamed exactly once.
    pub fn x_ma(&self, chain: &FusedChain) -> u64 {
        chain.m() * chain.col(0)
    }

    /// Memory access of the weight `W_i`.
    pub fn weight_ma(&self, chain: &FusedChain, i: usize) -> u64 {
        chain.weight_elems(i) * self.weight_multiplier(chain, i)
    }

    /// Memory access of the output `O[M, c_k]`. Every `O` tile is written
    /// once from a fully reduced panel, so its reload multiplier is 1 and
    /// the read-write partial-sum policy charges the same as per-visit
    /// (`2·1 − 1 = 1`).
    pub fn out_ma(&self, _model: &CostModel, chain: &FusedChain) -> u64 {
        chain.m() * chain.col(chain.depth())
    }

    /// Full external-tensor memory access.
    pub fn evaluate(&self, model: &CostModel, chain: &FusedChain) -> ChainMa {
        let k = chain.depth();
        let mut per = Vec::with_capacity(k + 2);
        per.push(self.x_ma(chain));
        for i in 0..k {
            per.push(self.weight_ma(chain, i));
        }
        per.push(self.out_ma(model, chain));
        ChainMa { per }
    }

    /// Buffer footprint: every interior panel `[T_M, c_{i+1}]` resident
    /// simultaneously, every persistent weight in full, plus the largest
    /// phase's transient tiles.
    pub fn footprint(&self, chain: &FusedChain) -> u64 {
        let k = chain.depth();
        let t_m = self.clamped_t_m(chain);
        let panels: u64 = chain.dims[1..k].iter().map(|c| t_m * c).sum();
        let mut persistent = 0u64;
        let mut max_trans = 0u64;
        for i in 0..k {
            let tile = self.clamped_phase_tile(chain, i);
            let w_tile = if i + 1 == k {
                chain.col(k - 1) * tile // W_{k-1} column tile
            } else {
                tile * chain.col(i + 1) // W_i row tile
            };
            let mut trans = 0u64;
            if self.weight_is_persistent(chain, i) {
                persistent += chain.weight_elems(i);
            } else {
                trans += w_tile;
            }
            if i == 0 {
                trans += t_m * tile; // X tile
            }
            if i + 1 == k {
                trans += t_m * tile; // O tile
            }
            max_trans = max_trans.max(trans);
        }
        panels + persistent + max_trans
    }

    /// Whether the nest fits in a buffer of `bs` elements.
    pub fn fits(&self, chain: &FusedChain, bs: u64) -> bool {
        self.footprint(chain) <= bs
    }
}

impl fmt::Display for ChainNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shared m={} ; phases", self.t_m)?;
        for t in &self.phase_tiles {
            write!(f, " {t}")?;
        }
        Ok(())
    }
}

/// Per-tensor and total memory access of a chain dataflow, in elements:
/// slot 0 is `X`, slots `1..=k` are the weights, slot `k+1` is `O`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChainMa {
    per: Vec<u64>,
}

impl ChainMa {
    /// Traffic of the chain input `X`.
    pub fn of_x(&self) -> u64 {
        self.per[0]
    }

    /// Traffic of the weight `W_i`.
    pub fn of_weight(&self, i: usize) -> u64 {
        self.per[1 + i]
    }

    /// Traffic of the output `O`.
    pub fn of_out(&self) -> u64 {
        *self.per.last().expect("a chain has at least 4 tensors")
    }

    /// Per-tensor traffic in slot order (`X, W_0 … W_{k-1}, O`).
    pub fn per_tensor(&self) -> &[u64] {
        &self.per
    }

    /// Total external traffic (the interior panels contribute zero).
    pub fn total(&self) -> u64 {
        self.per.iter().sum()
    }
}

impl fmt::Display for ChainMa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MA(X)={} MA(W)={:?} MA(O)={} total={}",
            self.of_x(),
            &self.per[1..self.per.len() - 1],
            self.of_out(),
            self.total()
        )
    }
}

/// A scored chain dataflow — the k-ary analogue of
/// [`crate::nest::FusedDataflow`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedChainDataflow {
    chain: FusedChain,
    nest: ChainNest,
    ma: ChainMa,
    footprint: u64,
}

impl FusedChainDataflow {
    /// Scores a nest for a chain under a cost model.
    pub fn score(model: &CostModel, chain: FusedChain, nest: ChainNest) -> FusedChainDataflow {
        let ma = nest.evaluate(model, &chain);
        let footprint = nest.footprint(&chain);
        FusedChainDataflow {
            chain,
            nest,
            ma,
            footprint,
        }
    }

    /// The fused chain.
    pub fn chain(&self) -> &FusedChain {
        &self.chain
    }

    /// The chain nest.
    pub fn nest(&self) -> &ChainNest {
        &self.nest
    }

    /// The memory-access breakdown.
    pub fn ma(&self) -> &ChainMa {
        &self.ma
    }

    /// Total external memory access.
    pub fn total_ma(&self) -> u64 {
        self.ma.total()
    }

    /// Buffer footprint in elements.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }
}

impl fmt::Display for FusedChainDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | buf={}",
            self.chain, self.nest, self.ma, self.footprint
        )
    }
}

/// Every closed-form chain candidate that fits the buffer.
///
/// Weight traffic depends only on whether each phase loop iterates, so
/// intermediate phase tiles are dominated: each phase is either streamed
/// at width 1 or held untiled — `2^k` binary combinations. Per
/// combination the footprint is nondecreasing in `T_M` below `M` (the
/// persistence flags are constant there), so the maximal feasible `T_M`
/// is found by bisection, with `T_M = M` handled by the bisection's
/// fast path (the footprint can dip there when persistent weights stop
/// being double-counted).
pub fn chain_candidates(model: &CostModel, chain: &FusedChain, bs: u64) -> Vec<FusedChainDataflow> {
    let k = chain.depth();
    let m = chain.m();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << k.min(16)) {
        let tiles: Vec<u64> = (0..k)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    ChainNest::phase_dim(chain, i)
                } else {
                    1
                }
            })
            .collect();
        let build = |t_m: u64| ChainNest::new(t_m, tiles.clone());
        let Some(t_m) = max_feasible(m, |t| build(t).fits(chain, bs)) else {
            continue;
        };
        let nest = build(balance(m, t_m));
        debug_assert!(nest.fits(chain, bs));
        out.push(FusedChainDataflow::score(model, chain.clone(), nest));
    }
    out
}

/// The closed-form chain optimum, or `None` when no chain nest fits the
/// buffer. Same objective as the pair optimizer: minimum total memory
/// access, ties broken toward the smaller footprint.
pub fn optimize_chain(model: &CostModel, chain: &FusedChain, bs: u64) -> Option<FusedChainDataflow> {
    chain_candidates(model, chain, bs).into_iter().min_by(|x, y| {
        x.total_ma()
            .cmp(&y.total_ma())
            .then_with(|| x.footprint().cmp(&y.footprint()))
    })
}

/// The memoization key of one chain optimization.
pub type ChainFusionKey = (FusedChain, u64, CostModel);

fn chain_cache() -> &'static MemoCache<ChainFusionKey, Option<FusedChainDataflow>> {
    static CACHE: OnceLock<MemoCache<ChainFusionKey, Option<FusedChainDataflow>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`optimize_chain`]: the graph planner re-prices the same
/// sub-paths across components, buffer sweeps, and ablation grids.
pub fn optimize_chain_cached(
    model: &CostModel,
    chain: &FusedChain,
    bs: u64,
) -> Option<FusedChainDataflow> {
    chain_cache().get_or_compute((chain.clone(), bs, *model), || {
        optimize_chain(model, chain, bs)
    })
}

/// Hit/miss counters of the process-wide chain-optimum cache.
pub fn chain_cache_stats() -> CacheStats {
    chain_cache().stats()
}

/// Per-section counters of the process-wide chain-optimum cache, for
/// machine-readable stats (`--stats-json`, the serve daemon). Unlike the
/// other sections this cache is in-memory only (chain optima are cheap
/// to rebuild from the persisted graph plans), so `entries` always
/// starts at zero in a fresh process.
pub fn chain_cache_counters() -> SectionCounters {
    chain_cache().counters("chains")
}

/// Drops every chain-optimum cache entry, keeping the hit/miss counters
/// and counting the drops as evictions. Returns the number evicted.
pub fn chain_cache_evict_all() -> usize {
    chain_cache().evict_all()
}

/// Drops all chain-optimum cache entries and resets its counters — for
/// tests and the stress harness's cold-start-per-process baseline.
pub fn chain_cache_clear() {
    chain_cache().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nest::{FusedNest, FusedTiling};
    use crate::pair::{ExtTensor, FusedPair};

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn chain(m: u64, dims: &[u64]) -> FusedChain {
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(m, w[0], w[1]))
            .collect();
        FusedChain::try_new(&mms).unwrap()
    }

    #[test]
    fn validation_rejects_incompatible_sequences() {
        assert_eq!(
            FusedChain::try_new(&[MatMul::new(8, 4, 8)]),
            Err(ChainFusionError::TooShort)
        );
        assert_eq!(
            FusedChain::try_new(&[MatMul::new(8, 4, 8), MatMul::new(9, 8, 4)]),
            Err(ChainFusionError::RowMismatch { index: 1 })
        );
        assert_eq!(
            FusedChain::try_new(&[MatMul::new(8, 4, 8), MatMul::new(8, 6, 4)]),
            Err(ChainFusionError::ShapeMismatch { index: 1 })
        );
        let c = chain(8, &[4, 8, 4, 16]);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.mm(1), MatMul::new(8, 8, 4));
    }

    #[test]
    fn ideal_bounds_match_hand_count() {
        let c = chain(24, &[8, 24, 8, 16]);
        // X + W_0 + W_1 + W_2 + O.
        let ext = 24 * 8 + 8 * 24 + 24 * 8 + 8 * 16 + 24 * 16;
        assert_eq!(c.external_ideal_ma(), ext);
        // Interior Y_0[24,24] and Y_1[24,8], each written and re-read.
        assert_eq!(c.interior_elems(), 24 * 24 + 24 * 8);
        assert_eq!(c.unfused_ideal_ma(), ext + 2 * (24 * 24 + 24 * 8));
        assert_eq!(c.macs(), 24 * (8 * 24 + 24 * 8 + 8 * 16));
    }

    /// At `k = 2` the chain schedule is exactly the pair model's
    /// `T_L = L` slice: same traffic per tensor, same footprint,
    /// including the persistence rules — the subsumption invariant the
    /// tentpole relies on.
    #[test]
    fn depth_two_matches_pair_model_at_full_width() {
        let shapes = [(24u64, 8u64, 24u64, 8u64), (7, 5, 9, 4), (64, 8, 64, 8)];
        for (m, k, l, n) in shapes {
            let c = chain(m, &[k, l, n]);
            let p = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
            for model in [CostModel::paper(), CostModel::read_write()] {
                for t_m in [1, 3, m.div_ceil(2), m] {
                    for t_k in [1, 2, k] {
                        for t_n in [1, 3, n] {
                            let cn = ChainNest::new(t_m, vec![t_k, t_n]);
                            let pn = FusedNest::new(true, FusedTiling::new(t_m, t_k, l, t_n));
                            let cma = cn.evaluate(&model, &c);
                            let pma = pn.evaluate(&model, &p);
                            let label = format!("m={m} k={k} l={l} n={n} nest={cn}");
                            assert_eq!(cma.of_x(), pma.of(ExtTensor::A), "{label}");
                            assert_eq!(cma.of_weight(0), pma.of(ExtTensor::B), "{label}");
                            assert_eq!(cma.of_weight(1), pma.of(ExtTensor::D), "{label}");
                            assert_eq!(cma.of_out(), pma.of(ExtTensor::E), "{label}");
                            assert_eq!(cn.footprint(&c), pn.footprint(&p), "{label}");
                        }
                    }
                }
            }
        }
    }

    /// Literal simulation of the chain schedule: one resident tile per
    /// external tensor, charging an edge-clamped tile load on every key
    /// change — the same residency discipline as the pair model's
    /// simulation test.
    fn simulate(chain: &FusedChain, nest: &ChainNest) -> Vec<u64> {
        let k = chain.depth();
        let m = chain.m();
        let t_m = nest.clamped_t_m(chain) as usize;
        let n_m = nest.m_iterations(chain) as usize;
        let span = |dim: u64, tile: usize, i: usize| tile.min(dim as usize - i * tile);
        let mut traffic = vec![0u64; k + 2];
        let mut resident: Vec<Option<(usize, usize)>> = vec![None; k + 2];
        for im in 0..n_m {
            let sm = span(m, t_m, im);
            for phase in 0..k {
                let tile = nest.clamped_phase_tile(chain, phase) as usize;
                let dim = ChainNest::phase_dim(chain, phase);
                let iters = nest.phase_iterations(chain, phase) as usize;
                for it in 0..iters {
                    let sp = span(dim, tile, it);
                    if phase == 0 {
                        // X tile [t_m, t_0], key (im, it).
                        if resident[0] != Some((im, it)) {
                            traffic[0] += (sm * sp) as u64;
                            resident[0] = Some((im, it));
                        }
                    }
                    // Weight tile: rows for reduction phases, columns for
                    // the final phase; key is the phase index alone.
                    let w_span = if phase + 1 == k {
                        chain.col(k - 1) as usize * sp
                    } else {
                        sp * chain.col(phase + 1) as usize
                    };
                    if resident[1 + phase] != Some((0, it)) {
                        traffic[1 + phase] += w_span as u64;
                        resident[1 + phase] = Some((0, it));
                    }
                    if phase + 1 == k {
                        // O tile [t_m, t_out], written once per key.
                        let slot = k + 1;
                        if resident[slot] != Some((im, it)) {
                            traffic[slot] += (sm * sp) as u64;
                            resident[slot] = Some((im, it));
                        }
                    }
                }
            }
        }
        traffic
    }

    #[test]
    fn analytical_ma_matches_loop_simulation() {
        let chains = [
            chain(7, &[5, 9, 4]),
            chain(12, &[4, 4, 10, 6]),
            chain(24, &[8, 24, 8, 16]),
            chain(5, &[13, 3, 6, 2, 7]),
        ];
        for c in &chains {
            let k = c.depth();
            for t_m in [1u64, 2, 3, 5, 24] {
                for mask in 0u64..(1 << k) {
                    let tiles: Vec<u64> = (0..k)
                        .map(|i| {
                            let d = ChainNest::phase_dim(c, i);
                            if mask & (1 << i) != 0 {
                                d
                            } else {
                                1 + (i as u64 % 2) // widths 1 and 2
                            }
                        })
                        .collect();
                    let nest = ChainNest::new(t_m, tiles);
                    let ma = nest.evaluate(&MODEL, c);
                    assert_eq!(
                        ma.per_tensor(),
                        simulate(c, &nest),
                        "chain={c} nest={nest}"
                    );
                }
            }
        }
    }

    #[test]
    fn huge_buffer_reaches_external_lower_bound() {
        let c = chain(24, &[8, 24, 8, 16]);
        let f = optimize_chain(&MODEL, &c, 1 << 20).unwrap();
        assert_eq!(f.total_ma(), c.external_ideal_ma());
        assert_eq!(f.nest().m_iterations(&c), 1);
    }

    #[test]
    fn optimum_respects_buffer_and_lower_bound() {
        let c = chain(64, &[16, 48, 16, 32]);
        let mut last = u64::MAX;
        for bs in [64u64, 256, 2_048, 16_384, 1 << 20] {
            if let Some(f) = optimize_chain(&MODEL, &c, bs) {
                assert!(f.footprint() <= bs, "bs={bs}");
                assert!(f.total_ma() >= c.external_ideal_ma(), "bs={bs}");
                assert!(f.total_ma() <= last, "bs={bs}: optimum must be monotone");
                last = f.total_ma();
            }
        }
        assert_eq!(last, c.external_ideal_ma());
    }

    #[test]
    fn tiny_buffer_returns_none() {
        // The smallest depth-3 nest holds two unit-width interior panels
        // plus a unit transient set; below that nothing fits.
        let c = chain(64, &[16, 48, 16, 32]);
        assert!(optimize_chain(&MODEL, &c, 3).is_none());
        assert!(optimize_chain(&MODEL, &c, 1 << 20).is_some());
    }

    #[test]
    fn cached_chain_optimum_matches_direct() {
        let c = chain(24, &[8, 24, 8, 16]);
        for bs in [3u64, 512, 1 << 20] {
            assert_eq!(
                optimize_chain_cached(&MODEL, &c, bs),
                optimize_chain(&MODEL, &c, bs),
                "bs={bs}"
            );
        }
    }

    #[test]
    fn display_renders() {
        let c = chain(24, &[8, 24, 8, 16]);
        let f = optimize_chain(&MODEL, &c, 1 << 20).unwrap();
        let s = f.to_string();
        assert!(s.contains("chain[3;") && s.contains("buf="), "{s}");
    }
}
