//! # fusecu-fusion — inter-operator dataflow and Principle 4
//!
//! Reproduces §III-B of the paper: operator fusion at the dataflow level.
//!
//! * [`pair`] — a validated producer/consumer matmul pair
//!   `E[M,N] = (A[M,K] × B[K,L]) × D[L,N]` with its four *external* tensors
//!   (the intermediate `C[M,L]` never touches memory when fused);
//! * [`nest`] — the fused loop-nest cost model: shared outer loops over the
//!   intermediate's dimensions, a producer phase (the `K` reduction) and a
//!   consumer phase (the `N` sweep) per shared iteration. All five Fig 4
//!   fusion patterns are points of this space;
//! * [`optimizer`] — the closed-form fused optimum and the
//!   [`optimizer::FusionDecision`] implementing **Principle 4**: only fuse
//!   operators whose optimal intra-dataflows share the same NRA class;
//! * [`planner`] — dynamic programming over matmul chains, fusing exactly
//!   the profitable pairs;
//! * [`chain`] — the depth-parametric k-ary fused cost model: a chain of
//!   `k` matmuls executes as one unit with every interior intermediate
//!   panel resident on chip, generalizing the pair nest (depth 2 is
//!   bit-identical to [`nest`] at full intermediate width);
//! * [`graph_planner`] — whole-graph fusion structure: a depth-weighted
//!   vertex-disjoint path cover over the fusable-link DAG, correct at
//!   fan-in/fan-out sites where greedy chain decomposition drops
//!   candidates, degrading to the pair matching (and ultimately to solo
//!   execution) when deeper fusion never wins.
//!
//! ```
//! use fusecu_ir::{MatMul, MmChain};
//! use fusecu_dataflow::CostModel;
//! use fusecu_fusion::planner::plan_chain;
//!
//! // One attention head (seq 1024, head dim 64): (Q·Kᵀ)·V fuses, removing
//! // the 1M-element score matrix from memory.
//! let chain = MmChain::try_new(vec![
//!     MatMul::new(1024, 64, 1024),
//!     MatMul::new(1024, 1024, 64),
//! ])?;
//! let plan = plan_chain(&CostModel::paper(), &chain, 64 * 1024);
//! assert!(plan.fused_pair_count() >= 1);
//! # Ok::<(), fusecu_ir::ChainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod graph_planner;
pub mod nest;
pub mod optimizer;
pub mod pair;
pub mod planner;

pub use chain::{
    optimize_chain, optimize_chain_cached, ChainFusionError, ChainFusionKey, ChainMa, ChainNest,
    FusedChain, FusedChainDataflow,
};
pub use graph_planner::{
    min_ma_chains, plan_graph, try_plan_dag, try_plan_dag_cached, try_plan_dag_with,
    try_plan_graph, try_plan_graph_cached, try_plan_graph_chained, GraphKey, GraphPlan, GraphStep,
    PlannerConfig,
};
pub use nest::{FusedDataflow, FusedMa, FusedNest, FusedTiling};
pub use optimizer::{
    decide, optimize_pair, optimize_pair_cached, try_decide, FusionDecision, PairKey,
};
pub use pair::{ExtTensor, FusedDim, FusedPair, PairError};
pub use planner::{plan_chain, plan_chain_cached, try_plan_chain, ChainPlan, ChainStep, PlanKey};
