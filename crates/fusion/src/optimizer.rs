//! Closed-form fused-dataflow optimization and the Principle 4 decision.
//!
//! Like the intra-operator principles, the fused optimum needs no search:
//! the candidate set is a constant-size family of tiling *policies* (square
//! shared tiles, column-streamed intermediate in either orientation, one or
//! both shared dimensions untiled), each crossed with the two binary phase
//! tilings (`T_K ∈ {1, K}`, `T_N ∈ {1, N}` — intermediate values only waste
//! buffer, since producer/consumer traffic depends solely on whether the
//! phase loop is untiled). The only remaining free scalar per policy is the
//! shared tile edge, maximized by bisection on the monotone buffer
//! footprint.
//!
//! [`decide`] compares the fused optimum with the sum of the per-operator
//! optima and reports **Principle 4**'s prediction: fusion is profitable
//! exactly when both operators' optimal intra-dataflows share an NRA class.

use std::sync::OnceLock;

use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};
use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, NraClass};

use crate::nest::{FusedDataflow, FusedNest, FusedTiling};
use crate::pair::{FusedDim, FusedPair};

/// Largest `s ∈ [1, hi]` with `feasible(s)`, assuming monotone feasibility.
/// Returns `None` when even `s = 1` fails.
pub(crate) fn max_feasible(hi: u64, feasible: impl Fn(u64) -> bool) -> Option<u64> {
    let hi = hi.max(1);
    if !feasible(1) {
        return None;
    }
    if feasible(hi) {
        return Some(hi);
    }
    let (mut lo, mut hi) = (1u64, hi);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Balances one shared tile: smallest even tile with the same iteration
/// count.
pub(crate) fn balance(dim_size: u64, tile: u64) -> u64 {
    let t = tile.min(dim_size);
    dim_size.div_ceil(dim_size.div_ceil(t))
}

/// Every closed-form fused candidate that fits the buffer.
///
/// Structure is enumerated exactly (two shared-loop orders, the two useful
/// phase tilings each for `K` and `N`); the intermediate-tile split is
/// swept losslessly: `T_M` runs over its balanced representatives and the
/// maximal feasible `T_L` is derived by bisection on the monotone buffer
/// footprint. Any optimal `(T_M, T_L)` is dominated by the candidate at
/// `T_M`'s representative (same `M` iteration count, no larger footprint)
/// with the derived `T_L` (memory access is non-increasing in `T_L`), so
/// the family contains the fused optimum — which `fusecu-search`'s fused
/// oracle confirms by enumeration.
pub fn candidates(model: &CostModel, pair: FusedPair, bs: u64) -> Vec<FusedDataflow> {
    let k = pair.dim(FusedDim::K);
    let n = pair.dim(FusedDim::N);
    let l = pair.dim(FusedDim::L);
    let mut out = Vec::new();
    for outer_is_m in [true, false] {
        for t_k in [1, k] {
            for t_n in [1, n] {
                for t_m in fusecu_dataflow::tiling::balanced_tiles(pair.dim(FusedDim::M)) {
                    let build = |t_l: u64| {
                        FusedNest::new(outer_is_m, FusedTiling::new(t_m, t_k, t_l, t_n))
                    };
                    // Footprint is nondecreasing in T_M; once even T_L = 1
                    // fails, larger T_M cannot recover.
                    if !build(1).fits(&pair, bs) {
                        break;
                    }
                    let t_l = max_feasible(l, |t_l| build(t_l).fits(&pair, bs))
                        .expect("T_L = 1 verified feasible above");
                    let nest = build(balance(l, t_l));
                    debug_assert!(nest.fits(&pair, bs));
                    out.push(FusedDataflow::score(model, pair, nest));
                    // The footprint can dip at the untiled boundary (a
                    // persistent tensor stops being double-counted), making
                    // the feasible T_L set non-contiguous; probe T_L = L
                    // explicitly so bisection cannot miss it.
                    if t_l < l {
                        let full = build(l);
                        if full.fits(&pair, bs) {
                            out.push(FusedDataflow::score(model, pair, full));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The closed-form fused optimum for a pair, or `None` when no fused
/// dataflow fits the buffer.
pub fn optimize_pair(model: &CostModel, pair: FusedPair, bs: u64) -> Option<FusedDataflow> {
    candidates(model, pair, bs).into_iter().min_by(|x, y| {
        x.total_ma()
            .cmp(&y.total_ma())
            .then_with(|| x.footprint().cmp(&y.footprint()))
    })
}

/// The memoization key of one fused-pair optimization: everything the
/// answer depends on, and nothing else.
pub type PairKey = (FusedPair, u64, CostModel);

fn pair_cache() -> &'static MemoCache<PairKey, Option<FusedDataflow>> {
    static CACHE: OnceLock<MemoCache<PairKey, Option<FusedDataflow>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`optimize_pair`]: the ablation grids re-optimize identical
/// pairs across every spec that shares a buffer size, and the chain
/// planner revisits the same adjacent pairs across chains.
pub fn optimize_pair_cached(model: &CostModel, pair: FusedPair, bs: u64) -> Option<FusedDataflow> {
    pair_cache().get_or_compute((pair, bs, *model), || optimize_pair(model, pair, bs))
}

/// Per-section counters of the process-wide fused-pair cache, for
/// machine-readable stats (`--stats-json`, the serve daemon).
pub fn pair_cache_counters() -> SectionCounters {
    pair_cache().counters("pairs")
}

/// Drops every fused-pair cache entry, keeping the hit/miss counters and
/// counting the drops as evictions. Returns the number evicted.
pub fn pair_cache_evict_all() -> usize {
    pair_cache().evict_all()
}

/// Drops all fused-pair cache entries and resets its counters — for
/// tests and the stress harness's cold-start-per-process baseline.
pub fn pair_cache_clear() {
    pair_cache().clear();
}

/// Hit/miss counters of the process-wide fused-pair cache.
pub fn pair_cache_stats() -> CacheStats {
    pair_cache().stats()
}

/// Completed fused-pair cache entries, for the disk persistence layer.
pub fn pair_cache_snapshot() -> Vec<(PairKey, Option<FusedDataflow>)> {
    pair_cache().snapshot()
}

/// Preloads fused-pair entries saved by an earlier process; returns the
/// number inserted. Counters are untouched.
pub fn pair_cache_preload(
    entries: impl IntoIterator<Item = (PairKey, Option<FusedDataflow>)>,
) -> usize {
    pair_cache().preload(entries)
}

/// The outcome of applying Principle 4 to one producer/consumer pair.
#[derive(Debug, Clone, Copy)]
pub struct FusionDecision {
    pair: FusedPair,
    buffer: u64,
    fused: Option<FusedDataflow>,
    unfused_ma: u64,
    producer_class: Option<NraClass>,
    consumer_class: Option<NraClass>,
}

impl FusionDecision {
    /// The pair under decision.
    pub fn pair(&self) -> FusedPair {
        self.pair
    }

    /// The buffer size the decision was made for.
    pub fn buffer(&self) -> u64 {
        self.buffer
    }

    /// The best fused dataflow, when one fits the buffer.
    pub fn fused(&self) -> Option<&FusedDataflow> {
        self.fused.as_ref()
    }

    /// Total MA of executing the two operators unfused, each with its
    /// principle-optimal intra-dataflow (intermediate written and re-read).
    pub fn unfused_ma(&self) -> u64 {
        self.unfused_ma
    }

    /// NRA class of the producer's optimal intra-dataflow.
    pub fn producer_class(&self) -> Option<NraClass> {
        self.producer_class
    }

    /// NRA class of the consumer's optimal intra-dataflow.
    pub fn consumer_class(&self) -> Option<NraClass> {
        self.consumer_class
    }

    /// Whether the two operators' optimal intra-dataflows share an NRA
    /// class — Principle 4's precondition for profitable fusion.
    pub fn same_nra(&self) -> bool {
        self.producer_class.is_some() && self.producer_class == self.consumer_class
    }

    /// Whether fusing strictly reduces memory access.
    pub fn profitable(&self) -> bool {
        self.fused
            .is_some_and(|f| f.total_ma() < self.unfused_ma)
    }

    /// Memory access saved by fusing (zero when unprofitable).
    pub fn saved_ma(&self) -> u64 {
        self.fused
            .map_or(0, |f| self.unfused_ma.saturating_sub(f.total_ma()))
    }

    /// The memory access of the better execution (fused if profitable).
    pub fn best_ma(&self) -> u64 {
        match self.fused {
            Some(f) => f.total_ma().min(self.unfused_ma),
            None => self.unfused_ma,
        }
    }
}

/// Applies Principle 4 to a pair: computes per-operator optima, the fused
/// optimum, and the profitability verdict. Returns `None` when `bs` is too
/// small to hold even a unit tile per operand (`bs < 3`), since then
/// neither fused nor unfused execution is definable — callers fall back to
/// whatever plan the surrounding level has, typically unfused.
pub fn try_decide(model: &CostModel, pair: FusedPair, bs: u64) -> Option<FusionDecision> {
    let p_opt = try_optimize_with(model, pair.producer(), bs)?;
    let c_opt = try_optimize_with(model, pair.consumer(), bs)?;
    Some(FusionDecision {
        pair,
        buffer: bs,
        fused: optimize_pair_cached(model, pair, bs),
        unfused_ma: p_opt.total_ma() + c_opt.total_ma(),
        producer_class: p_opt.class(),
        consumer_class: c_opt.class(),
    })
}

/// Applies Principle 4 to a pair: computes per-operator optima, the fused
/// optimum, and the profitability verdict.
///
/// # Panics
///
/// Panics when `bs` is too small to hold even a unit tile per operand
/// (`bs < 3`); use [`try_decide`] to handle that case gracefully.
pub fn decide(model: &CostModel, pair: FusedPair, bs: u64) -> FusionDecision {
    try_decide(model, pair, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_ir::MatMul;

    fn pair(m: u64, k: u64, l: u64, n: u64) -> FusedPair {
        FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap()
    }

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn max_feasible_bisects() {
        assert_eq!(max_feasible(100, |s| s * s <= 170), Some(13));
        assert_eq!(max_feasible(10, |s| s <= 10), Some(10));
        assert_eq!(max_feasible(10, |_| false), None);
        assert_eq!(max_feasible(1, |s| s == 1), Some(1));
    }

    #[test]
    fn attention_pair_fuses_profitably() {
        // (Q·Kᵀ)·V with a huge 1M-element intermediate: fusion must win
        // across a wide range of buffer sizes (the FlashAttention effect).
        let p = pair(1024, 64, 1024, 64);
        for bs in [16 * 1024, 64 * 1024, 512 * 1024] {
            let d = decide(&MODEL, p, bs);
            assert!(d.profitable(), "bs={bs}");
            assert!(d.saved_ma() > 0);
            assert_eq!(d.best_ma(), d.fused().unwrap().total_ma());
        }
    }

    #[test]
    fn fused_ma_never_below_external_lower_bound() {
        let shapes = [
            pair(64, 64, 64, 64),
            pair(1024, 64, 1024, 64),
            pair(100, 30, 50, 70),
        ];
        for p in shapes {
            for bs in [64, 1024, 65_536, 4_000_000] {
                if let Some(f) = optimize_pair(&MODEL, p, bs) {
                    assert!(f.total_ma() >= p.external_ideal_ma(), "{p} bs={bs}");
                    assert!(f.footprint() <= bs);
                }
            }
        }
    }

    #[test]
    fn huge_buffer_reaches_external_lower_bound() {
        let p = pair(128, 32, 96, 64);
        let bs = 10_000_000;
        let f = optimize_pair(&MODEL, p, bs).unwrap();
        assert_eq!(f.total_ma(), p.external_ideal_ma());
    }

    #[test]
    fn try_decide_degrades_gracefully_on_tiny_buffers() {
        // Regression: the panicking `decide` used to be the only entry
        // point, so any caller probing a sub-minimal buffer aborted. Two
        // elements cannot hold a tile per operand; three can.
        let p = pair(64, 64, 64, 64);
        assert!(try_decide(&MODEL, p, 2).is_none());
        let d = try_decide(&MODEL, p, 3).expect("three elements admit unit tiles");
        assert!(d.fused().is_some());
    }

    #[test]
    fn cached_pair_optimum_matches_direct() {
        let p = pair(100, 30, 50, 70);
        for bs in [2u64, 64, 65_536] {
            assert_eq!(
                optimize_pair_cached(&MODEL, p, bs),
                optimize_pair(&MODEL, p, bs),
                "bs={bs}"
            );
        }
    }

    #[test]
    fn minimum_fused_buffer_is_three_elements() {
        // The smallest fused nest is the scalar OS-IS pipeline: a 1x1 C
        // tile plus one phase's two unit tiles = 3 elements. Below that no
        // fused dataflow exists; at exactly 3 it exists and still saves the
        // 2|C| intermediate traffic (both halves are Single-NRA).
        let p = pair(64, 64, 64, 64);
        assert!(optimize_pair(&MODEL, p, 2).is_none());
        let d = decide(&MODEL, p, 3);
        assert!(d.fused().is_some());
        assert!(d.profitable());
        assert_eq!(d.saved_ma(), 2 * p.intermediate_elems());
    }

    #[test]
    fn same_nra_pairs_are_profitable() {
        // Principle 4, positive direction: symmetric pairs whose halves
        // land in the same regime fuse profitably.
        let cases = [
            (pair(512, 512, 512, 512), 16 * 1024),  // both Single-NRA
            (pair(1024, 768, 768, 768), 512 * 1024), // both Two-NRA
            (pair(256, 64, 64, 64), 1 << 22),        // both Three-NRA
        ];
        for (p, bs) in cases {
            let d = decide(&MODEL, p, bs);
            assert!(d.same_nra(), "{p} bs={bs}: classes {:?}/{:?}", d.producer_class(), d.consumer_class());
            assert!(d.profitable(), "{p} bs={bs} must fuse profitably");
        }
    }

    #[test]
    fn cross_nra_pair_is_not_profitable() {
        // Principle 4, negative direction: a producer deep in Single-NRA
        // territory feeding a consumer in Two-NRA territory. The fused
        // compromise loses more on external tensors than C saves when the
        // intermediate is small relative to the redundant traffic.
        // Producer: (4096, 4096, 64) -> Dmin = 64 is L; consumer
        // (4096, 64, 4096). With bs = 2048 the producer's Dmin² bounds
        // differ strongly from the consumer's.
        let p = pair(4096, 4096, 64, 4096);
        let bs = 6 * 1024;
        let d = decide(&MODEL, p, bs);
        if !d.same_nra() {
            assert!(
                !d.profitable(),
                "cross-NRA fusion should not be profitable: fused {:?} vs unfused {}",
                d.fused().map(|f| f.total_ma()),
                d.unfused_ma()
            );
        }
    }

    #[test]
    fn candidate_set_is_sweep_sized() {
        let p = pair(128, 128, 128, 128);
        let c = candidates(&MODEL, p, 1 << 20);
        // 2 orders x 2 K-tilings x 2 N-tilings x O(sqrt(M)) sweep points.
        assert!(c.len() <= 2 * 2 * 2 * 2 * (128f64.sqrt() as usize + 2));
        assert!(!c.is_empty());
        for f in &c {
            assert!(f.footprint() <= 1 << 20);
        }
    }

    #[test]
    fn fused_optimum_monotone_in_buffer() {
        let p = pair(640, 80, 320, 160);
        let mut last = u64::MAX;
        for bs in [256, 2_048, 16_384, 131_072, 1 << 20, 1 << 24] {
            if let Some(f) = optimize_pair(&MODEL, p, bs) {
                assert!(f.total_ma() <= last, "bs={bs}");
                last = f.total_ma();
            }
        }
        assert_eq!(last, p.external_ideal_ma());
    }
}
