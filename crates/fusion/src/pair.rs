//! The fused matmul pair and its dimension / external-tensor roles.

use std::fmt;

use fusecu_ir::{MatMul, Operand};

/// A dimension of the fused pair `E[M,N] = (A[M,K] × B[K,L]) × D[L,N]`.
///
/// `M`, `K`, `L` are the producer's dimensions; `L` doubles as the
/// consumer's reduction dimension and `N` is the consumer's output columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FusedDim {
    /// Shared row dimension of `A`, `C`, and `E`.
    M,
    /// Producer reduction dimension.
    K,
    /// Intermediate column dimension = consumer reduction dimension.
    L,
    /// Consumer output column dimension.
    N,
}

impl FusedDim {
    /// All four dimensions in canonical order.
    pub const ALL: [FusedDim; 4] = [FusedDim::M, FusedDim::K, FusedDim::L, FusedDim::N];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            FusedDim::M => "m",
            FusedDim::K => "k",
            FusedDim::L => "l",
            FusedDim::N => "n",
        }
    }
}

impl fmt::Display for FusedDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the four external tensors of a fused pair. The intermediate `C`
/// is deliberately absent: under a valid fused dataflow it never reaches
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExtTensor {
    /// Producer left input `A[M,K]`.
    A,
    /// Producer right input `B[K,L]`.
    B,
    /// Consumer right input `D[L,N]`.
    D,
    /// Final output `E[M,N]`.
    E,
}

impl ExtTensor {
    /// All four external tensors.
    pub const ALL: [ExtTensor; 4] = [ExtTensor::A, ExtTensor::B, ExtTensor::D, ExtTensor::E];

    /// The dimensions spanned by this tensor.
    pub fn dims(self) -> [FusedDim; 2] {
        match self {
            ExtTensor::A => [FusedDim::M, FusedDim::K],
            ExtTensor::B => [FusedDim::K, FusedDim::L],
            ExtTensor::D => [FusedDim::L, FusedDim::N],
            ExtTensor::E => [FusedDim::M, FusedDim::N],
        }
    }

    /// Whether the tensor belongs to the producer matmul.
    pub fn is_producer(self) -> bool {
        matches!(self, ExtTensor::A | ExtTensor::B)
    }

    /// Whether this tensor's footprint contains `dim`.
    pub fn contains(self, dim: FusedDim) -> bool {
        self.dims().contains(&dim)
    }

    /// Conventional letter name.
    pub fn name(self) -> &'static str {
        match self {
            ExtTensor::A => "A",
            ExtTensor::B => "B",
            ExtTensor::D => "D",
            ExtTensor::E => "E",
        }
    }
}

impl fmt::Display for ExtTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error building a fused pair from incompatible matmuls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairError {
    expected: (u64, u64),
    found: (u64, u64),
}

impl fmt::Display for PairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "consumer cannot read producer output: expected (m,k) = {:?}, found {:?}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for PairError {}

/// A validated producer/consumer matmul pair sharing the intermediate
/// `C[M,L]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusedPair {
    producer: MatMul,
    consumer: MatMul,
}

impl FusedPair {
    /// Builds a pair, checking `consumer.m == producer.m` and
    /// `consumer.k == producer.l`.
    ///
    /// # Errors
    ///
    /// Returns [`PairError`] on a shape mismatch.
    pub fn try_new(producer: MatMul, consumer: MatMul) -> Result<FusedPair, PairError> {
        let expected = (producer.m(), producer.l());
        let found = (consumer.m(), consumer.k());
        if expected != found {
            return Err(PairError { expected, found });
        }
        Ok(FusedPair { producer, consumer })
    }

    /// The producer matmul `C = A × B`.
    pub fn producer(&self) -> MatMul {
        self.producer
    }

    /// The consumer matmul `E = C × D`.
    pub fn consumer(&self) -> MatMul {
        self.consumer
    }

    /// Size of one fused dimension.
    pub fn dim(&self, dim: FusedDim) -> u64 {
        match dim {
            FusedDim::M => self.producer.m(),
            FusedDim::K => self.producer.k(),
            FusedDim::L => self.producer.l(),
            FusedDim::N => self.consumer.l(),
        }
    }

    /// Footprint of one external tensor in elements.
    pub fn tensor_elems(&self, t: ExtTensor) -> u64 {
        let [a, b] = t.dims();
        self.dim(a) * self.dim(b)
    }

    /// Footprint of the intermediate `C[M,L]`.
    pub fn intermediate_elems(&self) -> u64 {
        self.dim(FusedDim::M) * self.dim(FusedDim::L)
    }

    /// Sum of the external footprints: the fused communication lower bound.
    pub fn external_ideal_ma(&self) -> u64 {
        ExtTensor::ALL.iter().map(|t| self.tensor_elems(*t)).sum()
    }

    /// Sum of per-operator ideal MAs (each counts the intermediate once):
    /// the *unfused* lower bound, `external_ideal_ma() + 2·|C|`.
    pub fn unfused_ideal_ma(&self) -> u64 {
        self.producer.ideal_ma() + self.consumer.ideal_ma()
    }

    /// Total MACs across both matmuls.
    pub fn macs(&self) -> u64 {
        self.producer.macs() + self.consumer.macs()
    }

    /// Operand role of an external tensor within its own matmul.
    pub fn operand_role(&self, t: ExtTensor) -> (MatMul, Operand) {
        match t {
            ExtTensor::A => (self.producer, Operand::Lhs),
            ExtTensor::B => (self.producer, Operand::Rhs),
            ExtTensor::D => (self.consumer, Operand::Rhs),
            ExtTensor::E => (self.consumer, Operand::Out),
        }
    }
}

impl fmt::Display for FusedPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E[{m},{n}] = (A[{m},{k}] x B[{k},{l}]) x D[{l},{n}]",
            m = self.dim(FusedDim::M),
            k = self.dim(FusedDim::K),
            l = self.dim(FusedDim::L),
            n = self.dim(FusedDim::N),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attention_pair() -> FusedPair {
        FusedPair::try_new(MatMul::new(1024, 64, 1024), MatMul::new(1024, 1024, 64)).unwrap()
    }

    #[test]
    fn dims_and_tensors() {
        let p = attention_pair();
        assert_eq!(p.dim(FusedDim::M), 1024);
        assert_eq!(p.dim(FusedDim::K), 64);
        assert_eq!(p.dim(FusedDim::L), 1024);
        assert_eq!(p.dim(FusedDim::N), 64);
        assert_eq!(p.tensor_elems(ExtTensor::A), 1024 * 64);
        assert_eq!(p.tensor_elems(ExtTensor::B), 64 * 1024);
        assert_eq!(p.tensor_elems(ExtTensor::D), 1024 * 64);
        assert_eq!(p.tensor_elems(ExtTensor::E), 1024 * 64);
        assert_eq!(p.intermediate_elems(), 1024 * 1024);
    }

    #[test]
    fn bounds_differ_by_twice_the_intermediate() {
        let p = attention_pair();
        assert_eq!(
            p.unfused_ideal_ma(),
            p.external_ideal_ma() + 2 * p.intermediate_elems()
        );
    }

    #[test]
    fn mismatch_rejected() {
        let err =
            FusedPair::try_new(MatMul::new(4, 8, 16), MatMul::new(4, 12, 2)).unwrap_err();
        assert!(err.to_string().contains("(4, 16)"));
    }

    #[test]
    fn tensor_roles_cover_dimensions() {
        let p = attention_pair();
        for t in ExtTensor::ALL {
            let (mm, op) = p.operand_role(t);
            assert_eq!(p.tensor_elems(t), mm.tensor_elems(op), "{t}");
        }
        assert!(ExtTensor::A.is_producer() && ExtTensor::B.is_producer());
        assert!(!ExtTensor::D.is_producer() && !ExtTensor::E.is_producer());
        assert!(ExtTensor::B.contains(FusedDim::L));
        assert!(!ExtTensor::E.contains(FusedDim::K));
    }

    #[test]
    fn display_renders_shapes() {
        assert_eq!(
            attention_pair().to_string(),
            "E[1024,64] = (A[1024,64] x B[64,1024]) x D[1024,64]"
        );
    }
}
