//! Fusion planning over matmul chains and operator graphs.
//!
//! The paper applies Principle 4 to each pair of connected operators
//! (§III-B2 end). FuseCU's hardware fuses two matmuls at a time (the four
//! CUs form one producer/consumer pipeline), so a chain plan partitions the
//! chain into solo operators and fused pairs — a minimum-cost partition
//! found by dynamic programming over the chain.

use std::fmt;
use std::sync::OnceLock;

use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};
use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::MmChain;

use crate::nest::FusedDataflow;
use crate::optimizer::{try_decide, FusionDecision};
use crate::pair::FusedPair;

/// One step of a chain plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStep {
    /// Matmul `index` executes alone with its optimal intra-dataflow.
    Solo {
        /// Index of the matmul within the chain.
        index: usize,
        /// Its principle-optimal dataflow.
        dataflow: Dataflow,
    },
    /// Matmuls `index` and `index + 1` execute fused.
    Pair {
        /// Index of the producer within the chain.
        index: usize,
        /// The fused dataflow.
        fused: FusedDataflow,
    },
}

impl ChainStep {
    /// Memory access of this step.
    pub fn ma(&self) -> u64 {
        match self {
            ChainStep::Solo { dataflow, .. } => dataflow.total_ma(),
            ChainStep::Pair { fused, .. } => fused.total_ma(),
        }
    }

    /// Number of matmuls the step covers (1 or 2).
    pub fn width(&self) -> usize {
        match self {
            ChainStep::Solo { .. } => 1,
            ChainStep::Pair { .. } => 2,
        }
    }
}

/// A minimum-memory-access execution plan for one matmul chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    steps: Vec<ChainStep>,
    total_ma: u64,
    buffer: u64,
}

impl ChainPlan {
    /// Rebuilds a plan from its steps, recomputing the total from them.
    /// This is the reconstruction entry point for the disk persistence
    /// layer, which stores only the steps; planning always goes through
    /// [`plan_chain`].
    pub fn from_steps(steps: Vec<ChainStep>, buffer: u64) -> ChainPlan {
        let total_ma = steps.iter().map(ChainStep::ma).sum();
        ChainPlan {
            steps,
            total_ma,
            buffer,
        }
    }

    /// The steps, producer-first.
    pub fn steps(&self) -> &[ChainStep] {
        &self.steps
    }

    /// Total memory access of the plan.
    pub fn total_ma(&self) -> u64 {
        self.total_ma
    }

    /// The buffer size the plan was computed for.
    pub fn buffer(&self) -> u64 {
        self.buffer
    }

    /// Number of fused pairs in the plan.
    pub fn fused_pair_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ChainStep::Pair { .. }))
            .count()
    }
}

impl fmt::Display for ChainPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step {
                ChainStep::Solo { index, dataflow } => {
                    writeln!(f, "  mm{index}: solo  ma={}", dataflow.total_ma())?;
                }
                ChainStep::Pair { index, fused } => {
                    writeln!(
                        f,
                        "  mm{index}+mm{}: fused ma={}",
                        index + 1,
                        fused.total_ma()
                    )?;
                }
            }
        }
        write!(f, "  total ma = {}", self.total_ma)
    }
}

/// Plans one chain by dynamic programming: each matmul either runs solo at
/// its principle-optimal dataflow or joins its neighbor in a fused pair —
/// whichever partition minimizes total memory access. Returns `None` when
/// `bs` cannot hold any solo dataflow (`bs < 3`), in which case no
/// execution of the chain is definable at all.
pub fn try_plan_chain(model: &CostModel, chain: &MmChain, bs: u64) -> Option<ChainPlan> {
    let n = chain.len();
    let solo: Vec<Dataflow> = (0..n)
        .map(|i| try_optimize_with(model, chain.mm(i), bs))
        .collect::<Option<_>>()?;
    let fused: Vec<Option<FusedDataflow>> = (0..n.saturating_sub(1))
        .map(|i| {
            let pair = FusedPair::try_new(chain.mm(i), chain.mm(i + 1))
                .expect("chain invariant guarantees pair shapes");
            // An undecidable or unprofitable pair simply never fuses; the
            // DP below falls back to the solo plans.
            try_decide(model, pair, bs)
                .filter(FusionDecision::profitable)
                .and_then(|d| d.fused().copied())
        })
        .collect();

    // dp[i]: best MA for the first i matmuls; choice[i]: width of the last
    // step in the optimal prefix plan of length i.
    let mut dp = vec![0u64; n + 1];
    let mut choice = vec![1usize; n + 1];
    for i in 1..=n {
        dp[i] = dp[i - 1] + solo[i - 1].total_ma();
        choice[i] = 1;
        if i >= 2 {
            if let Some(f) = &fused[i - 2] {
                let cand = dp[i - 2] + f.total_ma();
                if cand < dp[i] {
                    dp[i] = cand;
                    choice[i] = 2;
                }
            }
        }
    }

    let mut steps = Vec::new();
    let mut i = n;
    while i > 0 {
        if choice[i] == 2 {
            steps.push(ChainStep::Pair {
                index: i - 2,
                fused: fused[i - 2].expect("choice 2 implies profitable fusion"),
            });
            i -= 2;
        } else {
            steps.push(ChainStep::Solo {
                index: i - 1,
                dataflow: solo[i - 1],
            });
            i -= 1;
        }
    }
    steps.reverse();
    Some(ChainPlan {
        steps,
        total_ma: dp[n],
        buffer: bs,
    })
}

/// Panicking form of [`try_plan_chain`], for callers that have already
/// validated the buffer (e.g. via `ArraySpec::validate`).
///
/// # Panics
///
/// Panics when `bs < 3` (no dataflow fits at all).
pub fn plan_chain(model: &CostModel, chain: &MmChain, bs: u64) -> ChainPlan {
    try_plan_chain(model, chain, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile"))
}

/// The memoization key of one chain-planning problem.
pub type PlanKey = (MmChain, u64, CostModel);

fn plan_cache() -> &'static MemoCache<PlanKey, Option<ChainPlan>> {
    static CACHE: OnceLock<MemoCache<PlanKey, Option<ChainPlan>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`try_plan_chain`]: the evaluation pipeline re-plans identical
/// chains for every `ArraySpec` in an ablation grid, even though the plan
/// depends only on `(chain, bs, model)`.
pub fn try_plan_chain_cached(model: &CostModel, chain: &MmChain, bs: u64) -> Option<ChainPlan> {
    plan_cache().get_or_compute((chain.clone(), bs, *model), || {
        try_plan_chain(model, chain, bs)
    })
}

/// Memoized [`plan_chain`].
///
/// # Panics
///
/// Panics when `bs < 3` (no dataflow fits at all).
pub fn plan_chain_cached(model: &CostModel, chain: &MmChain, bs: u64) -> ChainPlan {
    try_plan_chain_cached(model, chain, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile"))
}

/// Hit/miss counters of the process-wide chain-plan cache.
pub fn plan_cache_stats() -> CacheStats {
    plan_cache().stats()
}

/// Per-section counters of the process-wide chain-plan cache, for
/// machine-readable stats (`--stats-json`, the serve daemon).
pub fn plan_cache_counters() -> SectionCounters {
    plan_cache().counters("plans")
}

/// Drops every chain-plan cache entry, keeping the hit/miss counters and
/// counting the drops as evictions. Returns the number evicted.
pub fn plan_cache_evict_all() -> usize {
    plan_cache().evict_all()
}

/// Drops all chain-plan cache entries and resets its counters — for
/// tests and the stress harness's cold-start-per-process baseline.
pub fn plan_cache_clear() {
    plan_cache().clear();
}

/// Completed chain-plan cache entries, for the disk persistence layer.
pub fn plan_cache_snapshot() -> Vec<(PlanKey, Option<ChainPlan>)> {
    plan_cache().snapshot()
}

/// Preloads chain-plan entries saved by an earlier process; returns the
/// number inserted. Counters are untouched.
pub fn plan_cache_preload(
    entries: impl IntoIterator<Item = (PlanKey, Option<ChainPlan>)>,
) -> usize {
    plan_cache().preload(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn attention_chain() -> MmChain {
        MmChain::try_new(vec![
            MatMul::new(1024, 64, 1024),
            MatMul::new(1024, 1024, 64),
        ])
        .unwrap()
    }

    #[test]
    fn single_matmul_plans_solo() {
        let chain = MmChain::single(MatMul::new(64, 64, 64));
        let plan = plan_chain(&MODEL, &chain, 4096);
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.fused_pair_count(), 0);
        assert!(matches!(plan.steps()[0], ChainStep::Solo { index: 0, .. }));
    }

    #[test]
    fn attention_chain_fuses() {
        let plan = plan_chain(&MODEL, &attention_chain(), 64 * 1024);
        assert_eq!(plan.fused_pair_count(), 1);
        assert_eq!(plan.steps().len(), 1);
        // Fusing must beat the all-solo plan.
        let solo_total: u64 = (0..2)
            .map(|i| {
                try_optimize_with(&MODEL, attention_chain().mm(i), 64 * 1024)
                    .unwrap()
                    .total_ma()
            })
            .sum();
        assert!(plan.total_ma() < solo_total);
    }

    #[test]
    fn plan_never_worse_than_all_solo() {
        let chains = [
            attention_chain(),
            MmChain::try_new(vec![
                MatMul::new(128, 512, 128),
                MatMul::new(128, 128, 512),
                MatMul::new(128, 512, 64),
            ])
            .unwrap(),
        ];
        for chain in chains {
            for bs in [512u64, 8_192, 262_144] {
                let plan = plan_chain(&MODEL, &chain, bs);
                let solo_total: u64 = (0..chain.len())
                    .map(|i| try_optimize_with(&MODEL, chain.mm(i), bs).unwrap().total_ma())
                    .sum();
                assert!(plan.total_ma() <= solo_total, "bs={bs}");
                // Steps cover every matmul exactly once.
                let covered: usize = plan.steps().iter().map(ChainStep::width).sum();
                assert_eq!(covered, chain.len());
                // Reported total matches the steps.
                let step_total: u64 = plan.steps().iter().map(ChainStep::ma).sum();
                assert_eq!(step_total, plan.total_ma());
            }
        }
    }

    #[test]
    fn three_chain_picks_best_single_pair() {
        // In a 3-matmul chain only one adjacent pair can fuse; the planner
        // must pick the better one.
        let chain = MmChain::try_new(vec![
            MatMul::new(256, 32, 2048), // big intermediate after mm0
            MatMul::new(256, 2048, 32), // big intermediate consumed by mm1
            MatMul::new(256, 32, 32),   // small tail
        ])
        .unwrap();
        let plan = plan_chain(&MODEL, &chain, 32 * 1024);
        assert!(plan.fused_pair_count() >= 1);
        if let ChainStep::Pair { index, .. } = plan.steps()[0] {
            assert_eq!(index, 0, "the large intermediate pair should fuse first");
        } else {
            panic!("expected the first step to be the fused large pair");
        }
    }

    #[test]
    fn tiny_buffer_returns_none_instead_of_panicking() {
        // Regression: probing a sub-minimal buffer used to abort inside
        // `plan_chain`'s unwrap; the fallible entry point reports it.
        assert!(try_plan_chain(&MODEL, &attention_chain(), 2).is_none());
        // Three elements is the minimum footprint of any dataflow, solo or
        // fused — the smallest buffer with a definable plan.
        let plan = try_plan_chain(&MODEL, &attention_chain(), 3).unwrap();
        assert_eq!(
            plan.steps().iter().map(ChainStep::width).sum::<usize>(),
            attention_chain().len()
        );
    }

    #[test]
    fn cached_plan_matches_direct() {
        let chain = attention_chain();
        for bs in [2u64, 512, 64 * 1024] {
            assert_eq!(
                try_plan_chain_cached(&MODEL, &chain, bs),
                try_plan_chain(&MODEL, &chain, bs),
                "bs={bs}"
            );
        }
        // Second lookup of a cached key is a hit.
        let before = plan_cache_stats();
        let _ = try_plan_chain_cached(&MODEL, &chain, 64 * 1024);
        let delta = plan_cache_stats().since(before);
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn from_steps_round_trips_a_plan() {
        let plan = plan_chain(&MODEL, &attention_chain(), 64 * 1024);
        let rebuilt = ChainPlan::from_steps(plan.steps().to_vec(), plan.buffer());
        assert_eq!(rebuilt, plan);
    }

    #[test]
    fn display_summarizes_plan() {
        let plan = plan_chain(&MODEL, &attention_chain(), 64 * 1024);
        let s = plan.to_string();
        assert!(s.contains("fused") && s.contains("total ma"), "{s}");
    }
}
