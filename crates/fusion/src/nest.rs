//! The fused loop-nest cost model.
//!
//! A fused dataflow for a pair is modeled as:
//!
//! ```text
//! for (outer shared tile loop over M or L)
//!   for (inner shared tile loop over the other of M, L)
//!     phase 1: for k-tiles { C_tile += A_tile × B_tile }   // producer
//!     phase 2: for n-tiles { E_tile += C_tile × D_tile }   // consumer
//! ```
//!
//! Each shared iteration fully produces one intermediate tile `C[T_M, T_L]`
//! and then fully consumes it, so `C` never touches memory — the defining
//! property of fusion (§III-B1). The five Fig 4 patterns are tilings of this
//! skeleton:
//!
//! * OS–IS tile fusion (Single-NRA, Fig 4(a)): `T_K = T_N = 1`, square
//!   `T_M = T_L`;
//! * Two-NRA OS–IS / untiled-`L` column fusion (Fig 4(b)/(c)): one of
//!   `M`, `L` untiled or streamed at width 1;
//! * Three-NRA untiled / resident-`C` fusion (Fig 4(d)/(e)): both shared
//!   dimensions untiled, whole `C` on chip.
//!
//! External-tensor traffic uses the same trailing-window reuse analysis as
//! the intra-operator model (`fusecu_dataflow::reuse`); producer tensors see
//! the loop sequence `[shared…, K]`, consumer tensors `[shared…, N]`.
//! Tensors whose reuse window reaches a shared loop must stay resident
//! across the opposite phase and are charged in both phases' footprints.

use std::fmt;

use fusecu_dataflow::reuse::reload_multiplier;
use fusecu_dataflow::{CostModel, PartialSumPolicy};

use crate::pair::{ExtTensor, FusedDim, FusedPair};

/// Tile sizes for the four fused dimensions `(T_M, T_K, T_L, T_N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusedTiling {
    t: [u64; 4],
}

fn idx(dim: FusedDim) -> usize {
    match dim {
        FusedDim::M => 0,
        FusedDim::K => 1,
        FusedDim::L => 2,
        FusedDim::N => 3,
    }
}

impl FusedTiling {
    /// Creates a fused tiling.
    ///
    /// # Panics
    ///
    /// Panics if any tile size is zero.
    pub fn new(t_m: u64, t_k: u64, t_l: u64, t_n: u64) -> FusedTiling {
        assert!(
            t_m > 0 && t_k > 0 && t_l > 0 && t_n > 0,
            "tile sizes must be non-zero"
        );
        FusedTiling {
            t: [t_m, t_k, t_l, t_n],
        }
    }

    /// Tile size of one dimension.
    pub fn tile(&self, dim: FusedDim) -> u64 {
        self.t[idx(dim)]
    }

    /// Returns a copy with one tile replaced.
    #[must_use]
    pub fn with(&self, dim: FusedDim, tile: u64) -> FusedTiling {
        assert!(tile > 0, "tile sizes must be non-zero");
        let mut t = self.t;
        t[idx(dim)] = tile;
        FusedTiling { t }
    }

    /// Effective (clamped) tile size for a pair.
    pub fn clamped_tile(&self, pair: &FusedPair, dim: FusedDim) -> u64 {
        self.tile(dim).min(pair.dim(dim))
    }

    /// Tile-loop iteration count along `dim`.
    pub fn iterations(&self, pair: &FusedPair, dim: FusedDim) -> u64 {
        pair.dim(dim).div_ceil(self.clamped_tile(pair, dim))
    }

    /// Whether `dim` is untiled for the pair.
    pub fn is_untiled(&self, pair: &FusedPair, dim: FusedDim) -> bool {
        self.iterations(pair, dim) == 1
    }

    /// Buffer footprint of one external tensor's tile.
    pub fn tensor_tile_elems(&self, pair: &FusedPair, t: ExtTensor) -> u64 {
        let [a, b] = t.dims();
        self.clamped_tile(pair, a) * self.clamped_tile(pair, b)
    }

    /// Footprint of the intermediate tile `C[T_M, T_L]`.
    pub fn intermediate_tile_elems(&self, pair: &FusedPair) -> u64 {
        self.clamped_tile(pair, FusedDim::M) * self.clamped_tile(pair, FusedDim::L)
    }
}

impl fmt::Display for FusedTiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T(m={}, k={}, l={}, n={})",
            self.t[0], self.t[1], self.t[2], self.t[3]
        )
    }
}

/// A fused loop nest: the shared-loop order plus the tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusedNest {
    /// Whether the `M` tile loop is the outermost shared loop (otherwise
    /// `L` is). Irrelevant when either shared dimension is untiled.
    pub outer_is_m: bool,
    /// Tile sizes.
    pub tiling: FusedTiling,
}

impl FusedNest {
    /// Creates a fused nest.
    pub fn new(outer_is_m: bool, tiling: FusedTiling) -> FusedNest {
        FusedNest { outer_is_m, tiling }
    }

    /// The shared loop dimensions, outermost first.
    pub fn shared_order(&self) -> [FusedDim; 2] {
        if self.outer_is_m {
            [FusedDim::M, FusedDim::L]
        } else {
            [FusedDim::L, FusedDim::M]
        }
    }

    /// The three-loop sequence seen by one external tensor:
    /// `[shared outer, shared inner, phase loop]` where the phase loop is
    /// `K` for producer tensors and `N` for consumer tensors.
    fn sequence(&self, pair: &FusedPair, t: ExtTensor) -> [(bool, u64); 3] {
        let [s0, s1] = self.shared_order();
        let phase = if t.is_producer() {
            FusedDim::K
        } else {
            FusedDim::N
        };
        [s0, s1, phase].map(|d| (t.contains(d), self.tiling.iterations(pair, d)))
    }

    /// Reload multiplier of one external tensor.
    pub fn reload_multiplier(&self, pair: &FusedPair, t: ExtTensor) -> u64 {
        reload_multiplier(self.sequence(pair, t))
    }

    /// Whether the tensor's reuse window reaches a shared loop, meaning its
    /// tile must stay resident across the opposite phase.
    pub fn is_persistent(&self, pair: &FusedPair, t: ExtTensor) -> bool {
        let seq = self.sequence(pair, t);
        for (i, (contains, iters)) in seq.iter().enumerate().rev() {
            if *iters == 1 {
                continue;
            }
            if *contains {
                return false; // window closed before any shared loop
            }
            if i < 2 {
                return true; // open window reaches shared loop i
            }
        }
        false
    }

    /// Memory access of one external tensor.
    pub fn tensor_ma(&self, model: &CostModel, pair: &FusedPair, t: ExtTensor) -> u64 {
        let mult = self.reload_multiplier(pair, t);
        let footprint = pair.tensor_elems(t);
        match (t, model.partial_sums) {
            (ExtTensor::E, PartialSumPolicy::ReadWrite) => footprint * (2 * mult - 1),
            _ => footprint * mult,
        }
    }

    /// Full external-tensor memory access.
    pub fn evaluate(&self, model: &CostModel, pair: &FusedPair) -> FusedMa {
        let per = ExtTensor::ALL.map(|t| self.tensor_ma(model, pair, t));
        FusedMa { per }
    }

    /// Buffer footprint: the intermediate tile, every persistent tensor's
    /// tile, and the larger of the two phases' transient tiles.
    pub fn footprint(&self, pair: &FusedPair) -> u64 {
        let mut persistent = 0u64;
        let mut trans = [0u64; 2]; // producer, consumer phases
        for t in ExtTensor::ALL {
            let elems = self.tiling.tensor_tile_elems(pair, t);
            if self.is_persistent(pair, t) {
                persistent += elems;
            } else {
                trans[usize::from(!t.is_producer())] += elems;
            }
        }
        self.tiling.intermediate_tile_elems(pair) + persistent + trans[0].max(trans[1])
    }

    /// Whether the nest fits in a buffer of `bs` elements.
    pub fn fits(&self, pair: &FusedPair, bs: u64) -> bool {
        self.footprint(pair) <= bs
    }

    /// Number of non-redundantly-accessed tensors per operator, counting
    /// the memory-silent intermediate for both (it is trivially
    /// non-redundant). Used to attribute a Fig 4 NRA pattern to each side.
    pub fn op_nra_counts(&self, pair: &FusedPair) -> (usize, usize) {
        let nra = |t: ExtTensor| usize::from(self.reload_multiplier(pair, t) == 1);
        (
            1 + nra(ExtTensor::A) + nra(ExtTensor::B),
            1 + nra(ExtTensor::D) + nra(ExtTensor::E),
        )
    }
}

impl fmt::Display for FusedNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [s0, s1] = self.shared_order();
        write!(
            f,
            "shared {s0},{s1} ; phase1 k / phase2 n ; {}",
            self.tiling
        )
    }
}

/// Per-tensor and total memory access of a fused dataflow, in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusedMa {
    per: [u64; 4], // A, B, D, E
}

impl FusedMa {
    /// Traffic of one external tensor.
    pub fn of(&self, t: ExtTensor) -> u64 {
        self.per[match t {
            ExtTensor::A => 0,
            ExtTensor::B => 1,
            ExtTensor::D => 2,
            ExtTensor::E => 3,
        }]
    }

    /// Total external traffic (the intermediate contributes zero).
    pub fn total(&self) -> u64 {
        self.per.iter().sum()
    }
}

impl fmt::Display for FusedMa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MA(A)={} MA(B)={} MA(D)={} MA(E)={} total={}",
            self.per[0],
            self.per[1],
            self.per[2],
            self.per[3],
            self.total()
        )
    }
}

/// A scored fused dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedDataflow {
    pair: FusedPair,
    nest: FusedNest,
    ma: FusedMa,
    footprint: u64,
}

impl FusedDataflow {
    /// Scores a nest for a pair under a cost model.
    pub fn score(model: &CostModel, pair: FusedPair, nest: FusedNest) -> FusedDataflow {
        FusedDataflow {
            pair,
            nest,
            ma: nest.evaluate(model, &pair),
            footprint: nest.footprint(&pair),
        }
    }

    /// The fused pair.
    pub fn pair(&self) -> FusedPair {
        self.pair
    }

    /// The fused nest.
    pub fn nest(&self) -> &FusedNest {
        &self.nest
    }

    /// The memory-access breakdown.
    pub fn ma(&self) -> FusedMa {
        self.ma
    }

    /// Total external memory access.
    pub fn total_ma(&self) -> u64 {
        self.ma.total()
    }

    /// Buffer footprint in elements.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }
}

impl fmt::Display for FusedDataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {} | buf={}", self.nest, self.ma, self.footprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_ir::MatMul;

    fn pair(m: u64, k: u64, l: u64, n: u64) -> FusedPair {
        FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap()
    }

    /// Literal simulation of the fused tile loops: one resident tile per
    /// tensor, charging a (possibly partial, edge-clamped) tile load on
    /// every index change.
    fn simulate(pair: &FusedPair, nest: &FusedNest, t: ExtTensor) -> u64 {
        let [s0, s1] = nest.shared_order();
        let phase = if t.is_producer() {
            FusedDim::K
        } else {
            FusedDim::N
        };
        let span = |d: FusedDim, i: u64| {
            let tile = nest.tiling.clamped_tile(pair, d);
            tile.min(pair.dim(d) - i * tile)
        };
        let n0 = nest.tiling.iterations(pair, s0);
        let n1 = nest.tiling.iterations(pair, s1);
        let np = nest.tiling.iterations(pair, phase);
        let mut resident = None;
        let mut traffic = 0u64;
        for i0 in 0..n0 {
            for i1 in 0..n1 {
                for ip in 0..np {
                    let at = |d: FusedDim| {
                        if d == s0 {
                            i0
                        } else if d == s1 {
                            i1
                        } else {
                            ip
                        }
                    };
                    let [da, db] = t.dims();
                    let key = (at(da), at(db));
                    if resident != Some(key) {
                        traffic += span(da, key.0) * span(db, key.1);
                        resident = Some(key);
                    }
                }
            }
        }
        traffic
    }

    #[test]
    fn tile_fusion_matches_hand_derivation() {
        // Fig 4(a): Single-NRA OS-IS, square shared tiles T, T_K = T_N = 1.
        // Every term is MKL-like product / T.
        let p = pair(64, 32, 48, 16);
        let nest = FusedNest::new(true, FusedTiling::new(8, 1, 8, 1));
        let model = CostModel::paper();
        let ma = nest.evaluate(&model, &p);
        assert_eq!(ma.of(ExtTensor::A), 64 * 32 * (48 / 8)); // per l tile
        assert_eq!(ma.of(ExtTensor::B), 32 * 48 * (64 / 8)); // per m tile
        assert_eq!(ma.of(ExtTensor::D), 48 * 16 * (64 / 8)); // per m tile
        assert_eq!(ma.of(ExtTensor::E), 64 * 16 * (48 / 8)); // per l tile
        assert_eq!(nest.op_nra_counts(&p), (1, 1));
    }

    #[test]
    fn column_fusion_keeps_output_resident() {
        // Fig 4(b)-style: stream C columns (T_L = 1), N untiled so E
        // accumulates on-chip across the L loop.
        let p = pair(256, 64, 128, 64);
        let nest = FusedNest::new(true, FusedTiling::new(64, 64, 1, 64));
        let model = CostModel::paper();
        let ma = nest.evaluate(&model, &p);
        assert_eq!(ma.of(ExtTensor::A), 256 * 64); // K untiled, A per m tile
        assert_eq!(ma.of(ExtTensor::E), 256 * 64); // resident across l
        assert!(nest.is_persistent(&p, ExtTensor::E));
        assert!(!nest.is_persistent(&p, ExtTensor::D));
        // B and D re-streamed per m tile.
        assert_eq!(ma.of(ExtTensor::B), 64 * 128 * (256 / 64));
        assert_eq!(ma.of(ExtTensor::D), 128 * 64 * (256 / 64));
    }

    #[test]
    fn resident_intermediate_reaches_lower_bound() {
        // Fig 4(e): whole C on chip -> every external tensor streamed once.
        let p = pair(32, 16, 24, 8);
        let nest = FusedNest::new(true, FusedTiling::new(32, 4, 24, 4));
        let ma = nest.evaluate(&CostModel::paper(), &p);
        assert_eq!(ma.total(), p.external_ideal_ma());
        assert_eq!(nest.op_nra_counts(&p), (3, 3));
    }

    #[test]
    fn analytical_ma_matches_loop_simulation() {
        let model = CostModel::paper();
        let pairs = [pair(7, 5, 9, 4), pair(12, 4, 4, 10), pair(5, 13, 3, 6)];
        for p in pairs {
            for outer_is_m in [true, false] {
                for tm in [1, 2, 5, 7] {
                    for tk in [1, 3, 13] {
                        for tl in [1, 2, 4, 9] {
                            for tn in [1, 3, 10] {
                                let nest = FusedNest::new(
                                    outer_is_m,
                                    FusedTiling::new(tm, tk, tl, tn),
                                );
                                for t in ExtTensor::ALL {
                                    assert_eq!(
                                        nest.tensor_ma(&model, &p, t),
                                        simulate(&p, &nest, t),
                                        "pair={p} nest={nest} tensor={t}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn footprint_counts_persistent_tensors_in_both_phases() {
        let p = pair(256, 64, 128, 64);
        // Column fusion: E (64x64) persistent, A (64x64) persistent
        // (K untiled, reused across the l loop), C tile 64x1.
        let nest = FusedNest::new(true, FusedTiling::new(64, 64, 1, 64));
        assert!(nest.is_persistent(&p, ExtTensor::A));
        let c = 64;
        let pers = 64 * 64 + 64 * 64; // A + E
        let trans1 = 64; // B tile (64x1)
        let trans2 = 64; // D tile (1x64)
        assert_eq!(nest.footprint(&p), c + pers + trans1.max(trans2));
    }

    #[test]
    fn shared_order_only_matters_when_both_tiled() {
        let p = pair(64, 8, 64, 8);
        let model = CostModel::paper();
        // L untiled: order irrelevant.
        let t = FusedTiling::new(8, 1, 64, 1);
        assert_eq!(
            FusedNest::new(true, t).evaluate(&model, &p),
            FusedNest::new(false, t).evaluate(&model, &p)
        );
        // Both shared dims tiled and K untiled: A's reuse window reaches the
        // inner shared loop, so which dimension is inner changes A's traffic.
        let t2 = FusedTiling::new(8, 8, 8, 1);
        let m_outer = FusedNest::new(true, t2);
        let l_outer = FusedNest::new(false, t2);
        assert_eq!(m_outer.reload_multiplier(&p, ExtTensor::A), 1);
        assert_eq!(l_outer.reload_multiplier(&p, ExtTensor::A), 8);
        assert_ne!(
            m_outer.evaluate(&model, &p),
            l_outer.evaluate(&model, &p)
        );
    }

    #[test]
    fn read_write_policy_charges_spilled_e() {
        let p = pair(64, 8, 64, 8);
        // E tiled with L shared-looping over it: partial sums revisit.
        let nest = FusedNest::new(true, FusedTiling::new(8, 1, 8, 1));
        let mult = nest.reload_multiplier(&p, ExtTensor::E);
        assert!(mult > 1);
        let pv = nest.tensor_ma(&CostModel::paper(), &p, ExtTensor::E);
        let rw = nest.tensor_ma(&CostModel::read_write(), &p, ExtTensor::E);
        assert_eq!(pv, 64 * 8 * mult);
        assert_eq!(rw, 64 * 8 * (2 * mult - 1));
    }

    #[test]
    fn display_renders() {
        let p = pair(4, 4, 4, 4);
        let nest = FusedNest::new(false, FusedTiling::new(2, 1, 2, 1));
        let df = FusedDataflow::score(&CostModel::paper(), p, nest);
        let s = df.to_string();
        assert!(s.contains("shared l,m") && s.contains("buf="), "{s}");
    }
}
