//! Whole-graph fusion planning: minimum-memory-access fusion structure
//! over an operator DAG.
//!
//! [`plan_chain`](crate::planner::plan_chain) partitions one linear chain;
//! real transformer blocks branch (Q/K/V fan-out, residual adds), and the
//! greedy chain decomposition claims fan-in consumers by insertion order,
//! silently dropping fusion candidates. This module plans over the
//! [`MmDag`] instead — every matmul plus *every* fusable link — and picks
//! the fusion structure directly.
//!
//! A fusion structure is a **vertex-disjoint path cover** of the link
//! graph: each chosen path of `k ≥ 2` matmuls executes as one fused unit
//! (a pair for `k = 2`, a k-ary chain holding every interior intermediate
//! resident for `k ≥ 3`), and no two paths share a matmul. Each candidate
//! path is weighted by the memory access it saves over running its
//! matmuls solo (instance counts applied); depth-2 paths are priced by the
//! closed-form pair oracle — bit-identical to the historical max-weight
//! matching — and deeper paths by the [`crate::chain`] oracle. The planner
//! finds the maximum-saving disjoint path set per link component by
//! exhaustive branch-and-bound (components of transformer graphs hold a
//! handful of matmuls), yielding to a deterministic greedy sweep above
//! [`PlannerConfig::exact_search_max_links`] candidates. When no deeper
//! path has positive saving the cover degenerates to the pair matching,
//! and with no profitable links at all, to solo execution — so the planner
//! can never be worse than either predecessor.

use std::fmt;
use std::sync::OnceLock;

use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};
use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::{MmDag, NodeId, OpGraph};

use crate::chain::{optimize_chain_cached, FusedChain, FusedChainDataflow};
use crate::nest::FusedDataflow;
use crate::optimizer::{try_decide, FusionDecision};
use crate::pair::FusedPair;
use crate::planner::{try_plan_chain_cached, ChainStep};

/// Tunable knobs of the whole-graph planner. [`Default`] reproduces the
/// shipped behavior; tests and ablations construct their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Per-component candidate budget of the exact branch-and-bound cover
    /// search (historically a hard-coded 24-link cutoff); components with
    /// more positive-saving candidates fall back to a deterministic
    /// heaviest-first greedy sweep. Exhaustive search stays tractable well
    /// past any transformer component, so the sweep is a safety valve for
    /// adversarial dense graphs, not a path the zoo reaches.
    pub exact_search_max_links: usize,
    /// Longest fused path (in matmuls) the planner may realize. Depth 2
    /// restricts planning to the classical pair matching; the default
    /// covers every chain a transformer block exposes.
    pub max_fusion_depth: usize,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig {
            exact_search_max_links: 24,
            max_fusion_depth: 6,
        }
    }
}

impl PlannerConfig {
    /// The configuration restricting fusion to pairs — the historical
    /// max-weight matching planner.
    pub fn pairs_only() -> PlannerConfig {
        PlannerConfig {
            max_fusion_depth: 2,
            ..PlannerConfig::default()
        }
    }
}

/// One step of a whole-graph fusion plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphStep {
    /// The matmul at `node` executes alone with its optimal intra-dataflow.
    Solo {
        /// Graph node of the matmul.
        node: NodeId,
        /// Instance count of the node.
        count: u64,
        /// Its principle-optimal dataflow.
        dataflow: Dataflow,
    },
    /// The matmuls at `producer` and `consumer` execute as a fused pair.
    Fused {
        /// Graph node of the producer matmul.
        producer: NodeId,
        /// Graph node of the consumer matmul.
        consumer: NodeId,
        /// Instance count (equal on both endpoints by link construction).
        count: u64,
        /// The fused dataflow.
        fused: FusedDataflow,
    },
    /// Three or more matmuls execute as one k-ary fused chain, every
    /// interior intermediate resident on chip.
    FusedChain {
        /// Graph nodes of the chained matmuls, producer-most first.
        nodes: Vec<NodeId>,
        /// Instance count (equal along the path by link construction).
        count: u64,
        /// The fused chain dataflow.
        chain: FusedChainDataflow,
    },
}

impl GraphStep {
    /// Memory access of one instance of this step.
    pub fn ma(&self) -> u64 {
        match self {
            GraphStep::Solo { dataflow, .. } => dataflow.total_ma(),
            GraphStep::Fused { fused, .. } => fused.total_ma(),
            GraphStep::FusedChain { chain, .. } => chain.total_ma(),
        }
    }

    /// Memory access of the step with its instance count applied.
    pub fn total_ma(&self) -> u64 {
        self.ma() * self.count()
    }

    /// Instance count of the step.
    pub fn count(&self) -> u64 {
        match self {
            GraphStep::Solo { count, .. }
            | GraphStep::Fused { count, .. }
            | GraphStep::FusedChain { count, .. } => *count,
        }
    }

    /// Number of matmuls the step covers (1, 2, or the chain depth).
    pub fn width(&self) -> usize {
        match self {
            GraphStep::Solo { .. } => 1,
            GraphStep::Fused { .. } => 2,
            GraphStep::FusedChain { nodes, .. } => nodes.len(),
        }
    }
}

/// A minimum-memory-access fusion plan for a whole operator graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPlan {
    steps: Vec<GraphStep>,
    total_ma: u64,
    buffer: u64,
}

impl GraphPlan {
    /// Rebuilds a plan from its steps, recomputing the total from them.
    /// This is the reconstruction entry point for the disk persistence
    /// layer; planning always goes through [`try_plan_graph`].
    pub fn from_steps(steps: Vec<GraphStep>, buffer: u64) -> GraphPlan {
        let total_ma = steps.iter().map(GraphStep::total_ma).sum();
        GraphPlan {
            steps,
            total_ma,
            buffer,
        }
    }

    /// The steps, in matmul node order (fused steps sort by producer).
    pub fn steps(&self) -> &[GraphStep] {
        &self.steps
    }

    /// Total memory access over the graph, instance counts applied.
    pub fn total_ma(&self) -> u64 {
        self.total_ma
    }

    /// The buffer size the plan was computed for.
    pub fn buffer(&self) -> u64 {
        self.buffer
    }

    /// Number of fused pairs in the plan (not weighted by count).
    pub fn fused_pair_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, GraphStep::Fused { .. }))
            .count()
    }

    /// Number of fused steps of any depth — pairs and deeper chains.
    pub fn fused_step_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| !matches!(s, GraphStep::Solo { .. }))
            .count()
    }

    /// Deepest fusion in the plan: the widest step's matmul count
    /// (1 when everything runs solo).
    pub fn max_fusion_depth(&self) -> usize {
        self.steps.iter().map(GraphStep::width).max().unwrap_or(1)
    }

    /// Number of solo steps in the plan (not weighted by count).
    pub fn solo_count(&self) -> usize {
        self.steps.len() - self.fused_step_count()
    }

    /// Histogram of step widths: `hist[d]` counts steps covering exactly
    /// `d + 1` matmuls (`hist[0]` = solos, `hist[1]` = pairs, …).
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_fusion_depth()];
        for step in &self.steps {
            hist[step.width() - 1] += 1;
        }
        hist
    }
}

impl fmt::Display for GraphPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step {
                GraphStep::Solo {
                    node,
                    count,
                    dataflow,
                } => {
                    writeln!(
                        f,
                        "  n{}: solo  x{count} ma={}",
                        node.0,
                        dataflow.total_ma()
                    )?;
                }
                GraphStep::Fused {
                    producer,
                    consumer,
                    count,
                    fused,
                } => {
                    writeln!(
                        f,
                        "  n{}+n{}: fused x{count} ma={}",
                        producer.0,
                        consumer.0,
                        fused.total_ma()
                    )?;
                }
                GraphStep::FusedChain {
                    nodes,
                    count,
                    chain,
                } => {
                    let path: Vec<String> = nodes.iter().map(|n| format!("n{}", n.0)).collect();
                    writeln!(
                        f,
                        "  {}: chain x{count} ma={}",
                        path.join("+"),
                        chain.total_ma()
                    )?;
                }
            }
        }
        write!(f, "  total ma = {}", self.total_ma)
    }
}

/// The fused realization of one candidate path.
enum CoverKind {
    Pair(FusedDataflow),
    Chain(FusedChainDataflow),
}

/// A candidate path whose fused execution saves memory access over its
/// matmuls' solo optima: the covered matmul indices (producer-most
/// first), the fused dataflow, and the saving with counts applied.
struct Candidate {
    mms: Vec<usize>,
    kind: CoverKind,
    weight: u64,
}

/// Maximum-weight vertex-disjoint cover over one component's candidates.
/// `cands` must be sorted heaviest-first; returns indices into it.
/// Exhaustive include/exclude search with a suffix-sum bound; include-first
/// plus a strict improvement test makes ties resolve toward heavier,
/// earlier candidates, deterministically.
fn best_cover(config: &PlannerConfig, cands: &[&Candidate], n_mms: usize) -> Vec<usize> {
    let free = |used: &[bool], c: &Candidate| c.mms.iter().all(|&m| !used[m]);
    let claim = |used: &mut [bool], c: &Candidate, v: bool| {
        for &m in &c.mms {
            used[m] = v;
        }
    };

    if cands.len() > config.exact_search_max_links {
        // Greedy fallback: heaviest candidate first, skip anything touching
        // a claimed matmul. Never reached by the zoo; a safety valve for
        // adversarial dense graphs.
        let mut used = vec![false; n_mms];
        let mut picked = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            if free(&used, c) {
                claim(&mut used, c, true);
                picked.push(i);
            }
        }
        return picked;
    }

    // suffix[i]: total weight still reachable from candidate i on — the
    // branch-and-bound pruning bound. Every kept candidate has weight > 0,
    // so "can't strictly beat the incumbent" is a safe cut.
    let suffix: Vec<u64> = {
        let mut s = vec![0u64; cands.len() + 1];
        for i in (0..cands.len()).rev() {
            s[i] = s[i + 1] + cands[i].weight;
        }
        s
    };

    struct Search<'a> {
        cands: &'a [&'a Candidate],
        suffix: &'a [u64],
    }
    impl Search<'_> {
        fn run(
            &self,
            i: usize,
            used: &mut [bool],
            cur: &mut Vec<usize>,
            cur_w: u64,
            best: &mut (u64, Vec<usize>),
        ) {
            if cur_w + self.suffix[i] <= best.0 {
                return;
            }
            if i == self.cands.len() {
                *best = (cur_w, cur.clone());
                return;
            }
            let c = self.cands[i];
            if c.mms.iter().all(|&m| !used[m]) {
                for &m in &c.mms {
                    used[m] = true;
                }
                cur.push(i);
                self.run(i + 1, used, cur, cur_w + c.weight, best);
                cur.pop();
                for &m in &c.mms {
                    used[m] = false;
                }
            }
            self.run(i + 1, used, cur, cur_w, best);
        }
    }

    let mut best = (0u64, Vec::new());
    let mut used = vec![false; n_mms];
    Search {
        cands,
        suffix: &suffix,
    }
    .run(0, &mut used, &mut Vec::new(), 0, &mut best);
    best.1
}

/// Scores one candidate path against its matmuls' solo optima, keeping it
/// only when the fused execution strictly saves memory access. Depth-2
/// paths go through the pair oracle and the Principle 4 profitability
/// gate — exactly the historical matching weights — and deeper paths
/// through the k-ary chain oracle.
fn score_path(
    model: &CostModel,
    dag: &MmDag,
    solo: &[Dataflow],
    path: &[usize],
    bs: u64,
) -> Option<Candidate> {
    let mms = dag.mms();
    let count = mms[path[0]].2;
    let solo_ma: u64 = path.iter().map(|&i| solo[i].total_ma()).sum();
    let (kind, fused_ma) = if path.len() == 2 {
        let pair = FusedPair::try_new(mms[path[0]].1, mms[path[1]].1).ok()?;
        let fused = *try_decide(model, pair, bs)
            .filter(FusionDecision::profitable)?
            .fused()?;
        let ma = fused.total_ma();
        (CoverKind::Pair(fused), ma)
    } else {
        let shapes: Vec<_> = path.iter().map(|&i| mms[i].1).collect();
        let chain = FusedChain::try_new(&shapes).ok()?;
        let fused = optimize_chain_cached(model, &chain, bs)?;
        let ma = fused.total_ma();
        (CoverKind::Chain(fused), ma)
    };
    let saved = solo_ma.checked_sub(fused_ma)?;
    (saved > 0).then_some(Candidate {
        mms: path.to_vec(),
        kind,
        weight: saved * count,
    })
}

/// Plans a whole matmul DAG under an explicit [`PlannerConfig`]: every
/// matmul runs solo at its principle-optimal dataflow unless a profitable
/// candidate path claims it into a fused pair or deeper chain, and the
/// chosen paths form the maximum-saving vertex-disjoint cover of the link
/// graph. Returns `None` when `bs` cannot hold any dataflow at all
/// (`bs < 3`).
pub fn try_plan_dag_with(
    config: &PlannerConfig,
    model: &CostModel,
    dag: &MmDag,
    bs: u64,
) -> Option<GraphPlan> {
    let mms = dag.mms();
    let solo: Vec<Dataflow> = mms
        .iter()
        .map(|(_, mm, _)| try_optimize_with(model, *mm, bs))
        .collect::<Option<_>>()?;

    // Score every candidate path with the closed-form oracles; keep the
    // ones that beat their matmuls' solo optima.
    let mut cands: Vec<Candidate> = dag
        .simple_paths(config.max_fusion_depth.max(2))
        .iter()
        .filter_map(|path| score_path(model, dag, &solo, path, bs))
        .collect();
    cands.sort_by(|a, b| {
        b.weight
            .cmp(&a.weight)
            .then(a.mms.len().cmp(&b.mms.len()))
            .then_with(|| a.mms.cmp(&b.mms))
    });

    // Disjoint covers never cross components, so search each independently.
    let mut fused_of: Vec<Option<&Candidate>> = vec![None; mms.len()];
    for component in dag.components() {
        let comp: Vec<&Candidate> = cands
            .iter()
            .filter(|c| component.contains(&c.mms[0]))
            .collect();
        if comp.is_empty() {
            continue;
        }
        for picked in best_cover(config, &comp, mms.len()) {
            let c = comp[picked];
            for &m in &c.mms {
                fused_of[m] = Some(c);
            }
        }
    }

    let mut steps = Vec::new();
    for (i, (node, _, count)) in mms.iter().enumerate() {
        match fused_of[i] {
            Some(c) if c.mms[0] == i => {
                steps.push(match &c.kind {
                    CoverKind::Pair(fused) => {
                        let (consumer, _, _) = mms[c.mms[1]];
                        GraphStep::Fused {
                            producer: *node,
                            consumer,
                            count: *count,
                            fused: *fused,
                        }
                    }
                    CoverKind::Chain(chain) => GraphStep::FusedChain {
                        nodes: c.mms.iter().map(|&m| mms[m].0).collect(),
                        count: *count,
                        chain: chain.clone(),
                    },
                });
            }
            Some(_) => {} // interior/consumer matmul: emitted with its head
            None => steps.push(GraphStep::Solo {
                node: *node,
                count: *count,
                dataflow: solo[i],
            }),
        }
    }
    Some(GraphPlan::from_steps(steps, bs))
}

/// Plans a whole matmul DAG with the default [`PlannerConfig`]. Returns
/// `None` when `bs` cannot hold any dataflow at all (`bs < 3`).
pub fn try_plan_dag(model: &CostModel, dag: &MmDag, bs: u64) -> Option<GraphPlan> {
    try_plan_dag_with(&PlannerConfig::default(), model, dag, bs)
}

/// Plans a whole operator graph via its fusable-link DAG. Returns `None`
/// when `bs < 3` (no dataflow fits at all).
pub fn try_plan_graph(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    try_plan_dag(model, &graph.mm_dag(), bs)
}

/// Panicking form of [`try_plan_graph`], for callers that have already
/// validated the buffer (e.g. via `ArraySpec::validate`).
///
/// # Panics
///
/// Panics when `bs < 3` (no dataflow fits at all).
pub fn plan_graph(model: &CostModel, graph: &OpGraph, bs: u64) -> GraphPlan {
    try_plan_graph(model, graph, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile"))
}

/// The memoization key of one whole-graph planning problem (under the
/// default [`PlannerConfig`]).
pub type GraphKey = (MmDag, u64, CostModel);

fn graph_cache() -> &'static MemoCache<GraphKey, Option<GraphPlan>> {
    static CACHE: OnceLock<MemoCache<GraphKey, Option<GraphPlan>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`try_plan_dag`]: ablation grids re-plan the same model graph
/// for every `ArraySpec`, but the plan depends only on `(dag, bs, model)`.
pub fn try_plan_dag_cached(model: &CostModel, dag: &MmDag, bs: u64) -> Option<GraphPlan> {
    graph_cache().get_or_compute((dag.clone(), bs, *model), || try_plan_dag(model, dag, bs))
}

/// Memoized [`try_plan_graph`].
pub fn try_plan_graph_cached(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    try_plan_dag_cached(model, &graph.mm_dag(), bs)
}

/// Hit/miss counters of the process-wide graph-plan cache.
pub fn graph_cache_stats() -> CacheStats {
    graph_cache().stats()
}

/// Per-section counters of the process-wide graph-plan cache, for
/// machine-readable stats (`--stats-json`, the serve daemon).
pub fn graph_cache_counters() -> SectionCounters {
    graph_cache().counters("graphs")
}

/// Drops every graph-plan cache entry, keeping the hit/miss counters and
/// counting the drops as evictions. Returns the number evicted.
pub fn graph_cache_evict_all() -> usize {
    graph_cache().evict_all()
}

/// Drops all graph-plan cache entries and resets its counters — for
/// tests and the stress harness's cold-start-per-process baseline.
pub fn graph_cache_clear() {
    graph_cache().clear();
}

/// Completed graph-plan cache entries, for the disk persistence layer.
pub fn graph_cache_snapshot() -> Vec<(GraphKey, Option<GraphPlan>)> {
    graph_cache().snapshot()
}

/// Preloads graph-plan entries saved by an earlier process; returns the
/// number inserted. Counters are untouched.
pub fn graph_cache_preload(
    entries: impl IntoIterator<Item = (GraphKey, Option<GraphPlan>)>,
) -> usize {
    graph_cache().preload(entries)
}

/// The legacy chain-decomposition plan lifted to a [`GraphPlan`]: the
/// graph is split by [`OpGraph::mm_chains`] (deterministic fan-in
/// claiming) and each chain planned by the pairwise chain DP. Kept as the
/// comparison baseline — on branchy graphs [`try_plan_graph`] must never
/// be worse than this, and the delta is exactly what whole-graph planning
/// buys.
pub fn try_plan_graph_chained(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    let mut steps = Vec::new();
    for (ids, chain, count) in graph.mm_chains() {
        let plan = try_plan_chain_cached(model, &chain, bs)?;
        for step in plan.steps() {
            steps.push(match step {
                ChainStep::Solo { index, dataflow } => GraphStep::Solo {
                    node: ids[*index],
                    count,
                    dataflow: *dataflow,
                },
                ChainStep::Pair { index, fused } => GraphStep::Fused {
                    producer: ids[*index],
                    consumer: ids[*index + 1],
                    count,
                    fused: *fused,
                },
            });
        }
    }
    steps.sort_by_key(|s| match s {
        GraphStep::Solo { node, .. } => *node,
        GraphStep::Fused { producer, .. } => *producer,
        GraphStep::FusedChain { nodes, .. } => nodes[0],
    });
    Some(GraphPlan::from_steps(steps, bs))
}

/// Chain decomposition with cost-aware fan-in claiming: at each fan-in
/// site the producer whose fused pairing with the consumer saves the most
/// memory access (at this model/buffer) wins the claim, instead of the
/// structural default. This is the "legacy path picks the lower-MA
/// pairing" fix for callers that still want chains.
pub fn min_ma_chains(
    model: &CostModel,
    graph: &OpGraph,
    bs: u64,
) -> Vec<(Vec<NodeId>, fusecu_ir::MmChain, u64)> {
    graph.mm_chains_by(|g, consumer, candidates| {
        let cmm = g
            .node(consumer)
            .kind
            .as_matmul()
            .expect("fan-in claim sites are matmuls");
        let gain = |id: NodeId| -> u64 {
            let n = g.node(id);
            let Some(pmm) = n.kind.as_matmul() else {
                return 0;
            };
            let Ok(pair) = FusedPair::try_new(pmm, cmm) else {
                return 0;
            };
            try_decide(model, pair, bs)
                .filter(FusionDecision::profitable)
                .map_or(0, |d| d.saved_ma() * n.count)
        };
        let mut best = candidates[0];
        let mut best_gain = gain(best);
        for &c in &candidates[1..] {
            let w = gain(c);
            if w > best_gain {
                best = c;
                best_gain = w;
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_chain;
    use fusecu_ir::{MatMul, MmChain};

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn attention_graph(count: u64) -> OpGraph {
        let mut g = OpGraph::new();
        let a = g.add_matmul("qk", MatMul::new(1024, 64, 1024), count);
        let s = g.add_softmax("sm", 1024, 1024, count);
        let b = g.add_matmul("pv", MatMul::new(1024, 1024, 64), count);
        g.connect(a, s);
        g.connect(s, b);
        g
    }

    /// A linear graph over an arbitrary matmul sequence, fusable wherever
    /// the shapes chain.
    fn path_graph(shapes: &[MatMul]) -> OpGraph {
        let mut g = OpGraph::new();
        let mut prev = None;
        for (i, mm) in shapes.iter().enumerate() {
            let n = g.add_matmul(format!("mm{i}"), *mm, 1);
            if let Some(p) = prev {
                g.connect(p, n);
            }
            prev = Some(n);
        }
        g
    }

    #[test]
    fn linear_chain_graph_plan_matches_chain_dp() {
        let g = attention_graph(192);
        let chain = MmChain::try_new(vec![
            MatMul::new(1024, 64, 1024),
            MatMul::new(1024, 1024, 64),
        ])
        .unwrap();
        for bs in [512u64, 8_192, 64 * 1024] {
            let gp = try_plan_graph(&MODEL, &g, bs).unwrap();
            let cp = plan_chain(&MODEL, &chain, bs);
            assert_eq!(gp.total_ma(), cp.total_ma() * 192, "bs={bs}");
            assert_eq!(gp.fused_pair_count(), cp.fused_pair_count(), "bs={bs}");
        }
    }

    #[test]
    fn graph_plan_weights_by_count() {
        let plan = plan_graph(&MODEL, &attention_graph(192), 64 * 1024);
        assert_eq!(plan.fused_pair_count(), 1);
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.total_ma(), plan.steps()[0].ma() * 192);
    }

    /// Two shape-compatible producers feed one consumer through a residual
    /// add. One is a fat cross-NRA producer that cannot profitably fuse,
    /// the other fuses well — but the fat one was inserted first.
    fn fan_in_graph(good_first: bool) -> (OpGraph, NodeId, NodeId) {
        let mut g = OpGraph::new();
        let mk_bad = |g: &mut OpGraph| g.add_matmul("bad", MatMul::new(1024, 4096, 1024), 1);
        let mk_good = |g: &mut OpGraph| g.add_matmul("good", MatMul::new(1024, 64, 1024), 1);
        let (bad, good) = if good_first {
            let good = mk_good(&mut g);
            let bad = mk_bad(&mut g);
            (bad, good)
        } else {
            let bad = mk_bad(&mut g);
            let good = mk_good(&mut g);
            (bad, good)
        };
        let add = g.add_elementwise("residual", 1024 * 1024, 1);
        let q = g.add_matmul("consumer", MatMul::new(1024, 1024, 64), 1);
        g.connect(bad, add);
        g.connect(good, add);
        g.connect(add, q);
        (g, bad, good)
    }

    #[test]
    fn fan_in_planner_picks_the_lower_ma_pairing() {
        for good_first in [false, true] {
            let (g, bad, good) = fan_in_graph(good_first);
            let plan = try_plan_graph(&MODEL, &g, 64 * 1024).unwrap();
            assert_eq!(plan.fused_pair_count(), 1, "good_first={good_first}");
            let fused_producer = plan
                .steps()
                .iter()
                .find_map(|s| match s {
                    GraphStep::Fused { producer, .. } => Some(*producer),
                    _ => None,
                })
                .unwrap();
            assert_eq!(
                fused_producer, good,
                "planner must fuse the profitable producer regardless of insertion order"
            );
            assert_ne!(fused_producer, bad);
        }
    }

    #[test]
    fn fan_in_plan_total_is_insertion_order_invariant() {
        let (g1, ..) = fan_in_graph(false);
        let (g2, ..) = fan_in_graph(true);
        let p1 = try_plan_graph(&MODEL, &g1, 64 * 1024).unwrap();
        let p2 = try_plan_graph(&MODEL, &g2, 64 * 1024).unwrap();
        assert_eq!(p1.total_ma(), p2.total_ma());
    }

    #[test]
    fn dag_plan_never_worse_than_chained() {
        for good_first in [false, true] {
            let (g, ..) = fan_in_graph(good_first);
            for bs in [512u64, 8_192, 64 * 1024] {
                let dag = try_plan_graph(&MODEL, &g, bs).unwrap();
                let chained = try_plan_graph_chained(&MODEL, &g, bs).unwrap();
                assert!(
                    dag.total_ma() <= chained.total_ma(),
                    "bs={bs} good_first={good_first}: dag {} > chained {}",
                    dag.total_ma(),
                    chained.total_ma()
                );
            }
        }
    }

    #[test]
    fn min_ma_chains_claims_the_profitable_producer() {
        for good_first in [false, true] {
            let (g, _, good) = fan_in_graph(good_first);
            let chains = min_ma_chains(&MODEL, &g, 64 * 1024);
            let claimed = chains
                .iter()
                .find(|(ids, ..)| ids.len() == 2)
                .expect("the consumer chains with exactly one producer");
            assert_eq!(
                claimed.0[0], good,
                "cost-aware claiming must pick the profitable producer (good_first={good_first})"
            );
        }
    }

    #[test]
    fn tiny_buffer_returns_none_instead_of_panicking() {
        let (g, ..) = fan_in_graph(false);
        assert!(try_plan_graph(&MODEL, &g, 2).is_none());
        let plan = try_plan_graph(&MODEL, &g, 3).unwrap();
        let covered: usize = plan.steps().iter().map(GraphStep::width).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn cached_plan_matches_direct() {
        let (g, ..) = fan_in_graph(false);
        for bs in [2u64, 512, 64 * 1024] {
            assert_eq!(
                try_plan_graph_cached(&MODEL, &g, bs),
                try_plan_graph(&MODEL, &g, bs),
                "bs={bs}"
            );
        }
        let before = graph_cache_stats();
        let _ = try_plan_graph_cached(&MODEL, &g, 64 * 1024);
        let delta = graph_cache_stats().since(before);
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn from_steps_round_trips_a_plan() {
        let plan = plan_graph(&MODEL, &attention_graph(12), 64 * 1024);
        let rebuilt = GraphPlan::from_steps(plan.steps().to_vec(), plan.buffer());
        assert_eq!(rebuilt, plan);
    }

    #[test]
    fn display_summarizes_plan() {
        let plan = plan_graph(&MODEL, &attention_graph(12), 64 * 1024);
        let s = plan.to_string();
        assert!(s.contains("fused") && s.contains("total ma"), "{s}");
    }

    #[test]
    fn pairs_only_cover_is_exact_on_a_path() {
        // A 4-matmul chain has 3 links; a matching can take links 0+2 or
        // just 1. Weights are the real oracle's — under the pairs-only
        // config the cover must equal the chain DP, which is exact on
        // pairs; the default (depth-aware) config may only improve on it.
        let shapes = [
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
        ];
        let chain = MmChain::try_new(shapes.to_vec()).unwrap();
        let g = path_graph(&shapes);
        let pairs_only = PlannerConfig::pairs_only();
        for bs in [4_096u64, 32 * 1024, 256 * 1024] {
            let dag = g.mm_dag();
            let pp = try_plan_dag_with(&pairs_only, &MODEL, &dag, bs).unwrap();
            let cp = plan_chain(&MODEL, &chain, bs);
            assert_eq!(pp.total_ma(), cp.total_ma(), "bs={bs}");
            let gp = try_plan_dag(&MODEL, &dag, bs).unwrap();
            assert!(gp.total_ma() <= pp.total_ma(), "bs={bs}");
        }
    }

    #[test]
    fn depth_three_chain_beats_the_best_pair_matching() {
        // The attention Q-suffix of `zoo::mini_attention`:
        // qk^T (24,8,24) → pv (24,24,8) → out_proj (24,8,16). With the
        // whole 24-wide intermediate panel resident, the depth-3 chain
        // reaches the external lower bound; any pair matching must leave
        // one intermediate in memory.
        let shapes = [
            MatMul::new(24, 8, 24),
            MatMul::new(24, 24, 8),
            MatMul::new(24, 8, 16),
        ];
        let g = path_graph(&shapes);
        let dag = g.mm_dag();
        let bs = 4_096;
        let deep = try_plan_dag(&MODEL, &dag, bs).unwrap();
        let pairs = try_plan_dag_with(&PlannerConfig::pairs_only(), &MODEL, &dag, bs).unwrap();
        assert_eq!(deep.max_fusion_depth(), 3);
        assert_eq!(deep.fused_step_count(), 1);
        let chain = FusedChain::try_new(&shapes).unwrap();
        assert_eq!(deep.total_ma(), chain.external_ideal_ma());
        assert!(
            deep.total_ma() < pairs.total_ma(),
            "depth-3 {} must strictly beat pairwise {}",
            deep.total_ma(),
            pairs.total_ma()
        );
    }

    #[test]
    fn unprofitable_depth_falls_back_to_the_pair_matching() {
        // A tiny buffer cannot hold any interior panel chain, so the
        // depth-aware planner must degrade to exactly the pair matching.
        let shapes = [
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
        ];
        let g = path_graph(&shapes);
        let dag = g.mm_dag();
        let bs = 4_096; // interior panels are 256x2048 or 256x32 wide
        let deep = try_plan_dag(&MODEL, &dag, bs).unwrap();
        let pairs = try_plan_dag_with(&PlannerConfig::pairs_only(), &MODEL, &dag, bs).unwrap();
        assert!(deep.total_ma() <= pairs.total_ma());
        if deep.max_fusion_depth() <= 2 {
            assert_eq!(deep, pairs);
        }
    }

    #[test]
    fn greedy_threshold_covers_both_sides_on_one_graph() {
        // Outer links save 2·32·48 each at this buffer, the middle link
        // 2·32·64: the greedy sweep grabs the heavy middle link and blocks
        // both outer ones, while the exact cover takes the outer pair.
        // The same graph planned on both sides of the hoisted threshold
        // pins the exact/greedy split.
        let shapes = [
            MatMul::new(32, 16, 48),
            MatMul::new(32, 48, 64),
            MatMul::new(32, 64, 48),
            MatMul::new(32, 48, 16),
        ];
        let g = path_graph(&shapes);
        let dag = g.mm_dag();
        let bs = 64 * 1024;
        let exact_cfg = PlannerConfig {
            exact_search_max_links: 24,
            max_fusion_depth: 2,
        };
        let greedy_cfg = PlannerConfig {
            exact_search_max_links: 2, // 3 candidate links > 2 -> greedy
            max_fusion_depth: 2,
        };
        let exact = try_plan_dag_with(&exact_cfg, &MODEL, &dag, bs).unwrap();
        let greedy = try_plan_dag_with(&greedy_cfg, &MODEL, &dag, bs).unwrap();
        assert_eq!(exact.fused_pair_count(), 2, "{exact}");
        assert_eq!(greedy.fused_pair_count(), 1, "{greedy}");
        assert!(
            exact.total_ma() < greedy.total_ma(),
            "exact {} must beat greedy {}",
            exact.total_ma(),
            greedy.total_ma()
        );
        // And the default config (exact, depth-aware) is never worse than
        // either restricted planner.
        let dflt = try_plan_dag(&MODEL, &dag, bs).unwrap();
        assert!(dflt.total_ma() <= exact.total_ma());
    }

    #[test]
    fn depth_histogram_counts_step_widths() {
        let shapes = [
            MatMul::new(24, 8, 24),
            MatMul::new(24, 24, 8),
            MatMul::new(24, 8, 16),
        ];
        let g = path_graph(&shapes);
        let plan = try_plan_graph(&MODEL, &g, 4_096).unwrap();
        assert_eq!(plan.depth_histogram(), vec![0, 0, 1]);
        let solo_heavy = plan_graph(&MODEL, &attention_graph(1), 3);
        assert_eq!(solo_heavy.depth_histogram().len(), solo_heavy.max_fusion_depth());
    }
}
