//! Whole-graph fusion planning: minimum-memory-access fusion structure
//! over an operator DAG.
//!
//! [`plan_chain`](crate::planner::plan_chain) partitions one linear chain;
//! real transformer blocks branch (Q/K/V fan-out, residual adds), and the
//! greedy chain decomposition claims fan-in consumers by insertion order,
//! silently dropping fusion candidates. This module plans over the
//! [`MmDag`] instead — every matmul plus *every* fusable link — and picks
//! the fusion structure directly.
//!
//! FuseCU fuses exactly two matmuls at a time, so a fusion structure is a
//! **matching** on the link graph: a set of producer→consumer links no two
//! of which share a matmul. Each profitable link is weighted by the memory
//! access it saves over running its endpoints solo (instance counts
//! applied); the planner finds the maximum-weight matching per link
//! component by exhaustive branch-and-bound — components of transformer
//! graphs hold a handful of matmuls, and the closed-form fused oracle
//! makes scoring every candidate link cheap. On a linear chain the
//! matching is exactly the chain DP (identical candidate set and weights),
//! so chain plans and graph plans agree wherever both are defined.

use std::fmt;
use std::sync::OnceLock;

use fusecu_dataflow::memo::{CacheStats, MemoCache};
use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::{FuseLink, MmDag, NodeId, OpGraph};

use crate::nest::FusedDataflow;
use crate::optimizer::{try_decide, FusionDecision};
use crate::pair::FusedPair;
use crate::planner::{try_plan_chain_cached, ChainStep};

/// One step of a whole-graph fusion plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphStep {
    /// The matmul at `node` executes alone with its optimal intra-dataflow.
    Solo {
        /// Graph node of the matmul.
        node: NodeId,
        /// Instance count of the node.
        count: u64,
        /// Its principle-optimal dataflow.
        dataflow: Dataflow,
    },
    /// The matmuls at `producer` and `consumer` execute as a fused pair.
    Fused {
        /// Graph node of the producer matmul.
        producer: NodeId,
        /// Graph node of the consumer matmul.
        consumer: NodeId,
        /// Instance count (equal on both endpoints by link construction).
        count: u64,
        /// The fused dataflow.
        fused: FusedDataflow,
    },
}

impl GraphStep {
    /// Memory access of one instance of this step.
    pub fn ma(&self) -> u64 {
        match self {
            GraphStep::Solo { dataflow, .. } => dataflow.total_ma(),
            GraphStep::Fused { fused, .. } => fused.total_ma(),
        }
    }

    /// Memory access of the step with its instance count applied.
    pub fn total_ma(&self) -> u64 {
        self.ma() * self.count()
    }

    /// Instance count of the step.
    pub fn count(&self) -> u64 {
        match self {
            GraphStep::Solo { count, .. } | GraphStep::Fused { count, .. } => *count,
        }
    }

    /// Number of matmuls the step covers (1 or 2).
    pub fn width(&self) -> usize {
        match self {
            GraphStep::Solo { .. } => 1,
            GraphStep::Fused { .. } => 2,
        }
    }
}

/// A minimum-memory-access fusion plan for a whole operator graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPlan {
    steps: Vec<GraphStep>,
    total_ma: u64,
    buffer: u64,
}

impl GraphPlan {
    /// Rebuilds a plan from its steps, recomputing the total from them.
    /// This is the reconstruction entry point for the disk persistence
    /// layer; planning always goes through [`try_plan_graph`].
    pub fn from_steps(steps: Vec<GraphStep>, buffer: u64) -> GraphPlan {
        let total_ma = steps.iter().map(GraphStep::total_ma).sum();
        GraphPlan {
            steps,
            total_ma,
            buffer,
        }
    }

    /// The steps, in matmul node order (fused steps sort by producer).
    pub fn steps(&self) -> &[GraphStep] {
        &self.steps
    }

    /// Total memory access over the graph, instance counts applied.
    pub fn total_ma(&self) -> u64 {
        self.total_ma
    }

    /// The buffer size the plan was computed for.
    pub fn buffer(&self) -> u64 {
        self.buffer
    }

    /// Number of fused pairs in the plan (not weighted by count).
    pub fn fused_pair_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, GraphStep::Fused { .. }))
            .count()
    }

    /// Number of solo steps in the plan (not weighted by count).
    pub fn solo_count(&self) -> usize {
        self.steps.len() - self.fused_pair_count()
    }
}

impl fmt::Display for GraphPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            match step {
                GraphStep::Solo {
                    node,
                    count,
                    dataflow,
                } => {
                    writeln!(
                        f,
                        "  n{}: solo  x{count} ma={}",
                        node.0,
                        dataflow.total_ma()
                    )?;
                }
                GraphStep::Fused {
                    producer,
                    consumer,
                    count,
                    fused,
                } => {
                    writeln!(
                        f,
                        "  n{}+n{}: fused x{count} ma={}",
                        producer.0,
                        consumer.0,
                        fused.total_ma()
                    )?;
                }
            }
        }
        write!(f, "  total ma = {}", self.total_ma)
    }
}

/// A fusable link that would save memory access: the link, its fused
/// dataflow, and the saving over solo execution (counts applied).
struct WeightedLink {
    link: FuseLink,
    fused: FusedDataflow,
    weight: u64,
}

/// Exhaustive exact search stays tractable well past any transformer
/// component; beyond this many links per component a deterministic greedy
/// sweep takes over.
const EXACT_SEARCH_MAX_LINKS: usize = 24;

/// Maximum-weight matching over one component's links. `links` must be
/// sorted heaviest-first; returns indices into it. Exhaustive
/// include/exclude search with a suffix-sum bound; include-first plus a
/// strict improvement test makes ties resolve toward heavier, earlier
/// links, deterministically.
fn best_matching(links: &[&WeightedLink], n_mms: usize) -> Vec<usize> {
    if links.len() > EXACT_SEARCH_MAX_LINKS {
        // Greedy fallback: heaviest link first, skip anything touching a
        // claimed matmul. Never reached by the zoo; a safety valve for
        // adversarial dense graphs.
        let mut used = vec![false; n_mms];
        let mut picked = Vec::new();
        for (i, wl) in links.iter().enumerate() {
            if !used[wl.link.producer] && !used[wl.link.consumer] {
                used[wl.link.producer] = true;
                used[wl.link.consumer] = true;
                picked.push(i);
            }
        }
        return picked;
    }

    // suffix[i]: total weight still reachable from link i on — the
    // branch-and-bound pruning bound. Every kept link has weight > 0, so
    // "can't strictly beat the incumbent" is a safe cut.
    let suffix: Vec<u64> = {
        let mut s = vec![0u64; links.len() + 1];
        for i in (0..links.len()).rev() {
            s[i] = s[i + 1] + links[i].weight;
        }
        s
    };

    fn search(
        links: &[&WeightedLink],
        suffix: &[u64],
        i: usize,
        used: &mut [bool],
        cur: &mut Vec<usize>,
        cur_w: u64,
        best: &mut (u64, Vec<usize>),
    ) {
        if cur_w + suffix[i] <= best.0 {
            return;
        }
        if i == links.len() {
            *best = (cur_w, cur.clone());
            return;
        }
        let wl = links[i];
        if !used[wl.link.producer] && !used[wl.link.consumer] {
            used[wl.link.producer] = true;
            used[wl.link.consumer] = true;
            cur.push(i);
            search(links, suffix, i + 1, used, cur, cur_w + wl.weight, best);
            cur.pop();
            used[wl.link.producer] = false;
            used[wl.link.consumer] = false;
        }
        search(links, suffix, i + 1, used, cur, cur_w, best);
    }

    let mut best = (0u64, Vec::new());
    let mut used = vec![false; n_mms];
    search(
        links,
        &suffix,
        0,
        &mut used,
        &mut Vec::new(),
        0,
        &mut best,
    );
    best.1
}

/// Plans a whole matmul DAG: every matmul runs solo at its
/// principle-optimal dataflow unless a profitable fusable link claims it
/// into a fused pair, and the chosen pairs form the maximum-saving
/// matching over the link set. Returns `None` when `bs` cannot hold any
/// dataflow at all (`bs < 3`).
pub fn try_plan_dag(model: &CostModel, dag: &MmDag, bs: u64) -> Option<GraphPlan> {
    let mms = dag.mms();
    let solo: Vec<Dataflow> = mms
        .iter()
        .map(|(_, mm, _)| try_optimize_with(model, *mm, bs))
        .collect::<Option<_>>()?;

    // Score every link with the closed-form fused oracle; keep the ones
    // that beat their endpoints' solo optima.
    let mut weighted: Vec<WeightedLink> = dag
        .links()
        .iter()
        .filter_map(|&link| {
            let (_, pmm, count) = mms[link.producer];
            let (_, cmm, _) = mms[link.consumer];
            let pair = FusedPair::try_new(pmm, cmm).ok()?;
            let fused = *try_decide(model, pair, bs)
                .filter(FusionDecision::profitable)?
                .fused()?;
            let solo_ma = solo[link.producer].total_ma() + solo[link.consumer].total_ma();
            let saved = solo_ma.checked_sub(fused.total_ma())?;
            (saved > 0).then_some(WeightedLink {
                link,
                fused,
                weight: saved * count,
            })
        })
        .collect();
    weighted.sort_by(|a, b| {
        b.weight
            .cmp(&a.weight)
            .then(a.link.producer.cmp(&b.link.producer))
            .then(a.link.consumer.cmp(&b.link.consumer))
    });

    // Matchings never cross components, so search each independently.
    let mut fused_of: Vec<Option<&WeightedLink>> = vec![None; mms.len()];
    for component in dag.components() {
        let comp_links: Vec<usize> = (0..weighted.len())
            .filter(|&i| component.contains(&weighted[i].link.producer))
            .collect();
        if comp_links.is_empty() {
            continue;
        }
        let comp: Vec<&WeightedLink> = comp_links.iter().map(|&i| &weighted[i]).collect();
        for picked in best_matching(&comp, mms.len()) {
            let wl = comp[picked];
            fused_of[wl.link.producer] = Some(wl);
            fused_of[wl.link.consumer] = Some(wl);
        }
    }

    let mut steps = Vec::new();
    for (i, (node, _, count)) in mms.iter().enumerate() {
        match fused_of[i] {
            Some(wl) if wl.link.producer == i => {
                let (consumer, _, _) = mms[wl.link.consumer];
                steps.push(GraphStep::Fused {
                    producer: *node,
                    consumer,
                    count: *count,
                    fused: wl.fused,
                });
            }
            Some(_) => {} // consumer endpoint: emitted with its producer
            None => steps.push(GraphStep::Solo {
                node: *node,
                count: *count,
                dataflow: solo[i],
            }),
        }
    }
    Some(GraphPlan::from_steps(steps, bs))
}

/// Plans a whole operator graph via its fusable-link DAG. Returns `None`
/// when `bs < 3` (no dataflow fits at all).
pub fn try_plan_graph(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    try_plan_dag(model, &graph.mm_dag(), bs)
}

/// Panicking form of [`try_plan_graph`], for callers that have already
/// validated the buffer (e.g. via `ArraySpec::validate`).
///
/// # Panics
///
/// Panics when `bs < 3` (no dataflow fits at all).
pub fn plan_graph(model: &CostModel, graph: &OpGraph, bs: u64) -> GraphPlan {
    try_plan_graph(model, graph, bs)
        .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile"))
}

/// The memoization key of one whole-graph planning problem.
pub type GraphKey = (MmDag, u64, CostModel);

fn graph_cache() -> &'static MemoCache<GraphKey, Option<GraphPlan>> {
    static CACHE: OnceLock<MemoCache<GraphKey, Option<GraphPlan>>> = OnceLock::new();
    CACHE.get_or_init(MemoCache::new)
}

/// Memoized [`try_plan_dag`]: ablation grids re-plan the same model graph
/// for every `ArraySpec`, but the plan depends only on `(dag, bs, model)`.
pub fn try_plan_dag_cached(model: &CostModel, dag: &MmDag, bs: u64) -> Option<GraphPlan> {
    graph_cache().get_or_compute((dag.clone(), bs, *model), || try_plan_dag(model, dag, bs))
}

/// Memoized [`try_plan_graph`].
pub fn try_plan_graph_cached(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    try_plan_dag_cached(model, &graph.mm_dag(), bs)
}

/// Hit/miss counters of the process-wide graph-plan cache.
pub fn graph_cache_stats() -> CacheStats {
    graph_cache().stats()
}

/// Completed graph-plan cache entries, for the disk persistence layer.
pub fn graph_cache_snapshot() -> Vec<(GraphKey, Option<GraphPlan>)> {
    graph_cache().snapshot()
}

/// Preloads graph-plan entries saved by an earlier process; returns the
/// number inserted. Counters are untouched.
pub fn graph_cache_preload(
    entries: impl IntoIterator<Item = (GraphKey, Option<GraphPlan>)>,
) -> usize {
    graph_cache().preload(entries)
}

/// The legacy chain-decomposition plan lifted to a [`GraphPlan`]: the
/// graph is split by [`OpGraph::mm_chains`] (deterministic fan-in
/// claiming) and each chain planned by the chain DP. Kept as the
/// comparison baseline — on branchy graphs [`try_plan_graph`] must never
/// be worse than this, and the delta is exactly what whole-graph planning
/// buys.
pub fn try_plan_graph_chained(model: &CostModel, graph: &OpGraph, bs: u64) -> Option<GraphPlan> {
    let mut steps = Vec::new();
    for (ids, chain, count) in graph.mm_chains() {
        let plan = try_plan_chain_cached(model, &chain, bs)?;
        for step in plan.steps() {
            steps.push(match step {
                ChainStep::Solo { index, dataflow } => GraphStep::Solo {
                    node: ids[*index],
                    count,
                    dataflow: *dataflow,
                },
                ChainStep::Pair { index, fused } => GraphStep::Fused {
                    producer: ids[*index],
                    consumer: ids[*index + 1],
                    count,
                    fused: *fused,
                },
            });
        }
    }
    steps.sort_by_key(|s| match s {
        GraphStep::Solo { node, .. } => *node,
        GraphStep::Fused { producer, .. } => *producer,
    });
    Some(GraphPlan::from_steps(steps, bs))
}

/// Chain decomposition with cost-aware fan-in claiming: at each fan-in
/// site the producer whose fused pairing with the consumer saves the most
/// memory access (at this model/buffer) wins the claim, instead of the
/// structural default. This is the "legacy path picks the lower-MA
/// pairing" fix for callers that still want chains.
pub fn min_ma_chains(
    model: &CostModel,
    graph: &OpGraph,
    bs: u64,
) -> Vec<(Vec<NodeId>, fusecu_ir::MmChain, u64)> {
    graph.mm_chains_by(|g, consumer, candidates| {
        let cmm = g
            .node(consumer)
            .kind
            .as_matmul()
            .expect("fan-in claim sites are matmuls");
        let gain = |id: NodeId| -> u64 {
            let n = g.node(id);
            let Some(pmm) = n.kind.as_matmul() else {
                return 0;
            };
            let Ok(pair) = FusedPair::try_new(pmm, cmm) else {
                return 0;
            };
            try_decide(model, pair, bs)
                .filter(FusionDecision::profitable)
                .map_or(0, |d| d.saved_ma() * n.count)
        };
        let mut best = candidates[0];
        let mut best_gain = gain(best);
        for &c in &candidates[1..] {
            let w = gain(c);
            if w > best_gain {
                best = c;
                best_gain = w;
            }
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_chain;
    use fusecu_ir::{MatMul, MmChain};

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn attention_graph(count: u64) -> OpGraph {
        let mut g = OpGraph::new();
        let a = g.add_matmul("qk", MatMul::new(1024, 64, 1024), count);
        let s = g.add_softmax("sm", 1024, 1024, count);
        let b = g.add_matmul("pv", MatMul::new(1024, 1024, 64), count);
        g.connect(a, s);
        g.connect(s, b);
        g
    }

    #[test]
    fn linear_chain_graph_plan_matches_chain_dp() {
        let g = attention_graph(192);
        let chain = MmChain::try_new(vec![
            MatMul::new(1024, 64, 1024),
            MatMul::new(1024, 1024, 64),
        ])
        .unwrap();
        for bs in [512u64, 8_192, 64 * 1024] {
            let gp = try_plan_graph(&MODEL, &g, bs).unwrap();
            let cp = plan_chain(&MODEL, &chain, bs);
            assert_eq!(gp.total_ma(), cp.total_ma() * 192, "bs={bs}");
            assert_eq!(gp.fused_pair_count(), cp.fused_pair_count(), "bs={bs}");
        }
    }

    #[test]
    fn graph_plan_weights_by_count() {
        let plan = plan_graph(&MODEL, &attention_graph(192), 64 * 1024);
        assert_eq!(plan.fused_pair_count(), 1);
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.total_ma(), plan.steps()[0].ma() * 192);
    }

    /// Two shape-compatible producers feed one consumer through a residual
    /// add. One is a fat cross-NRA producer that cannot profitably fuse,
    /// the other fuses well — but the fat one was inserted first.
    fn fan_in_graph(good_first: bool) -> (OpGraph, NodeId, NodeId) {
        let mut g = OpGraph::new();
        let mk_bad = |g: &mut OpGraph| g.add_matmul("bad", MatMul::new(1024, 4096, 1024), 1);
        let mk_good = |g: &mut OpGraph| g.add_matmul("good", MatMul::new(1024, 64, 1024), 1);
        let (bad, good) = if good_first {
            let good = mk_good(&mut g);
            let bad = mk_bad(&mut g);
            (bad, good)
        } else {
            let bad = mk_bad(&mut g);
            let good = mk_good(&mut g);
            (bad, good)
        };
        let add = g.add_elementwise("residual", 1024 * 1024, 1);
        let q = g.add_matmul("consumer", MatMul::new(1024, 1024, 64), 1);
        g.connect(bad, add);
        g.connect(good, add);
        g.connect(add, q);
        (g, bad, good)
    }

    #[test]
    fn fan_in_planner_picks_the_lower_ma_pairing() {
        for good_first in [false, true] {
            let (g, bad, good) = fan_in_graph(good_first);
            let plan = try_plan_graph(&MODEL, &g, 64 * 1024).unwrap();
            assert_eq!(plan.fused_pair_count(), 1, "good_first={good_first}");
            let fused_producer = plan
                .steps()
                .iter()
                .find_map(|s| match s {
                    GraphStep::Fused { producer, .. } => Some(*producer),
                    _ => None,
                })
                .unwrap();
            assert_eq!(
                fused_producer, good,
                "planner must fuse the profitable producer regardless of insertion order"
            );
            assert_ne!(fused_producer, bad);
        }
    }

    #[test]
    fn fan_in_plan_total_is_insertion_order_invariant() {
        let (g1, ..) = fan_in_graph(false);
        let (g2, ..) = fan_in_graph(true);
        let p1 = try_plan_graph(&MODEL, &g1, 64 * 1024).unwrap();
        let p2 = try_plan_graph(&MODEL, &g2, 64 * 1024).unwrap();
        assert_eq!(p1.total_ma(), p2.total_ma());
    }

    #[test]
    fn dag_plan_never_worse_than_chained() {
        for good_first in [false, true] {
            let (g, ..) = fan_in_graph(good_first);
            for bs in [512u64, 8_192, 64 * 1024] {
                let dag = try_plan_graph(&MODEL, &g, bs).unwrap();
                let chained = try_plan_graph_chained(&MODEL, &g, bs).unwrap();
                assert!(
                    dag.total_ma() <= chained.total_ma(),
                    "bs={bs} good_first={good_first}: dag {} > chained {}",
                    dag.total_ma(),
                    chained.total_ma()
                );
            }
        }
    }

    #[test]
    fn min_ma_chains_claims_the_profitable_producer() {
        for good_first in [false, true] {
            let (g, _, good) = fan_in_graph(good_first);
            let chains = min_ma_chains(&MODEL, &g, 64 * 1024);
            let claimed = chains
                .iter()
                .find(|(ids, ..)| ids.len() == 2)
                .expect("the consumer chains with exactly one producer");
            assert_eq!(
                claimed.0[0], good,
                "cost-aware claiming must pick the profitable producer (good_first={good_first})"
            );
        }
    }

    #[test]
    fn tiny_buffer_returns_none_instead_of_panicking() {
        let (g, ..) = fan_in_graph(false);
        assert!(try_plan_graph(&MODEL, &g, 2).is_none());
        let plan = try_plan_graph(&MODEL, &g, 3).unwrap();
        let covered: usize = plan.steps().iter().map(GraphStep::width).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn cached_plan_matches_direct() {
        let (g, ..) = fan_in_graph(false);
        for bs in [2u64, 512, 64 * 1024] {
            assert_eq!(
                try_plan_graph_cached(&MODEL, &g, bs),
                try_plan_graph(&MODEL, &g, bs),
                "bs={bs}"
            );
        }
        let before = graph_cache_stats();
        let _ = try_plan_graph_cached(&MODEL, &g, 64 * 1024);
        let delta = graph_cache_stats().since(before);
        assert_eq!((delta.hits, delta.misses), (1, 0));
    }

    #[test]
    fn from_steps_round_trips_a_plan() {
        let plan = plan_graph(&MODEL, &attention_graph(12), 64 * 1024);
        let rebuilt = GraphPlan::from_steps(plan.steps().to_vec(), plan.buffer());
        assert_eq!(rebuilt, plan);
    }

    #[test]
    fn display_summarizes_plan() {
        let plan = plan_graph(&MODEL, &attention_graph(12), 64 * 1024);
        let s = plan.to_string();
        assert!(s.contains("fused") && s.contains("total ma"), "{s}");
    }

    #[test]
    fn matching_search_is_exact_on_a_path() {
        // A 4-matmul chain has 3 links; matching can take links 0+2 or
        // just 1. Weights are the real oracle's — compare against the
        // chain DP, which is exact.
        let chain = MmChain::try_new(vec![
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
            MatMul::new(256, 32, 2048),
            MatMul::new(256, 2048, 32),
        ])
        .unwrap();
        let mut g = OpGraph::new();
        let mut prev = None;
        for i in 0..chain.len() {
            let n = g.add_matmul(format!("mm{i}"), chain.mm(i), 1);
            if let Some(p) = prev {
                g.connect(p, n);
            }
            prev = Some(n);
        }
        for bs in [4_096u64, 32 * 1024, 256 * 1024] {
            let gp = try_plan_graph(&MODEL, &g, bs).unwrap();
            let cp = plan_chain(&MODEL, &chain, bs);
            assert_eq!(gp.total_ma(), cp.total_ma(), "bs={bs}");
        }
    }
}
