//! Reusable simulation scratch: preallocated tile buffers shared across
//! driver replays, and the [`SimMode`] switch between full value replay
//! and counters-only measurement.
//!
//! The tiled drivers ([`crate::driver`]) walk a loop nest and, per
//! innermost iteration, copy out two operand tiles and multiply them. Done
//! naively that is three heap allocations per tile visit — the dominant
//! cost of simulated-fitness scoring, where a genetic searcher replays
//! thousands of genomes against the same shape. [`SimScratch`] owns those
//! buffers and lets every replay reuse them: after the first genome sizes
//! the arenas, steady-state replay allocates nothing.
//!
//! [`ScratchPool`] makes the reuse thread-safe for parallel population
//! scoring: each worker checks a scratch out, replays with it, and returns
//! it, so a generation needs at most one arena per worker rather than one
//! per genome.

use std::sync::Mutex;

use crate::matrix::Matrix;

/// How much of the machine a driver replay actually simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Move every value through the frozen per-cycle engine: compute the
    /// product tile by tile and measure traffic. The complete replay and
    /// the oracle the macro-step tier is differentially pinned against;
    /// the default.
    #[default]
    Full,
    /// Wavefront macro-stepped full replay: operands are materialized and
    /// the product is computed with the direct kernel while cycles and
    /// traffic are derived algebraically from the skew structure of the
    /// WS/OS/IS schedules — no per-cycle register stepping and no
    /// per-genome tile walk survives on the scoring path. Outputs,
    /// cycles, and every traffic counter are byte-identical to
    /// [`SimMode::Full`] (proven by `tests/macro_step_differential.rs`);
    /// per-genome cost drops to closed form, so population scoring stays
    /// serial like the other cheap backends.
    FullMacro,
    /// Skip value movement entirely and compute only the traffic/cycle
    /// counters a fitness scores. Resolves to the closed-form
    /// `measure_nest`/`measure_fused_nest` in the driver: no loops over
    /// tiles, interior tiles priced analytically and the ragged edge
    /// fringe folded into edge-clamped span sums. Byte-identical counters
    /// to [`SimMode::Full`] — proven against the hoisted accounting walk
    /// and the frozen naive oracle by the `traffic_differential` suite.
    TrafficOnly,
}

/// Preallocated tile/stream/accumulator buffers for the tiled drivers,
/// sized lazily by the first replay and reused by every one after it.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Producer left-operand tile (`A`).
    pub(crate) a_tile: Matrix,
    /// Producer right-operand tile (`B`, or the consumer stream `D`).
    pub(crate) b_tile: Matrix,
    /// Product-tile accumulator written by `matmul_into`.
    pub(crate) prod: Matrix,
    /// Fused-pair intermediate tile (`C`), the modeled register file.
    pub(crate) c_tile: Matrix,
    /// Full output accumulation (`C` for single nests, `E` for fused).
    pub(crate) out: Matrix,
}

impl SimScratch {
    /// A fresh, unsized scratch; the first replay sizes the buffers.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }

    /// The output matrix of the most recent full replay threaded through
    /// this scratch.
    pub fn out(&self) -> &Matrix {
        &self.out
    }

    /// Moves the output matrix out of the scratch (leaving an empty one),
    /// for callers that need an owned product.
    pub fn take_out(&mut self) -> Matrix {
        std::mem::take(&mut self.out)
    }
}

/// A lock-guarded free list of [`SimScratch`] arenas for parallel scoring:
/// holds at most as many arenas as threads ever replayed concurrently.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<SimScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Checks an arena out of the pool for the lifetime of the returned
    /// lease; dropping the lease returns the arena (with its sized
    /// buffers) to the pool. This is the batch-scoring entry point: a
    /// worker leases once, replays a whole sub-population against the
    /// same arena, and pays the pool lock twice per batch instead of
    /// twice per genome.
    pub fn lease(&self) -> ScratchLease<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        ScratchLease {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Runs `f` with a pooled scratch, returning the scratch to the pool
    /// afterwards (even a fresh one, so its sized buffers are kept).
    pub fn with<R>(&self, f: impl FnOnce(&mut SimScratch) -> R) -> R {
        let mut lease = self.lease();
        f(&mut lease)
    }

    /// Number of arenas currently checked in.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

/// A [`SimScratch`] checked out of a [`ScratchPool`]; derefs to the
/// arena and checks it back in on drop.
#[derive(Debug)]
pub struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    /// `Some` until dropped; `Option` only so `drop` can move it out.
    scratch: Option<SimScratch>,
}

impl std::ops::Deref for ScratchLease<'_> {
    type Target = SimScratch;

    fn deref(&self) -> &SimScratch {
        self.scratch.as_ref().expect("lease holds a scratch until drop")
    }
}

impl std::ops::DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut SimScratch {
        self.scratch.as_mut().expect("lease holds a scratch until drop")
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            // A poisoned pool means a panic is already unwinding; losing
            // the arena is fine (don't double-panic in drop).
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_returned_arenas() {
        let pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        pool.with(|s| s.out.reset_zeroed(4, 4));
        assert_eq!(pool.idle(), 1);
        // The returned arena keeps its sizing.
        pool.with(|s| assert_eq!((s.out.rows(), s.out.cols()), (4, 4)));
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_grows_under_concurrent_checkout() {
        let pool = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    pool.with(|s| {
                        s.prod.reset_zeroed(2, 2);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                    })
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 3);
    }

    #[test]
    fn lease_holds_one_arena_across_many_uses() {
        let pool = ScratchPool::new();
        {
            let mut lease = pool.lease();
            lease.out.reset_zeroed(3, 3);
            // The arena stays checked out for the whole batch.
            assert_eq!(pool.idle(), 0);
            lease.prod.reset_zeroed(2, 2);
        }
        // Drop returns it, sizing intact.
        assert_eq!(pool.idle(), 1);
        pool.with(|s| assert_eq!((s.out.rows(), s.out.cols()), (3, 3)));
    }

    #[test]
    fn default_mode_is_full() {
        assert_eq!(SimMode::default(), SimMode::Full);
    }
}
