//! Exact integer matrices and the golden matmul reference.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `i64` matrix.
///
/// Integer arithmetic keeps every simulator check bit-exact; the INT8
/// accelerators under study accumulate in wide integers the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// An all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Builds a matrix from a generator function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> i64) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// A deterministic pseudo-random matrix with small entries (|x| ≤ 8),
    /// keyed by `seed` — reproducible across runs without an RNG crate.
    pub fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        Matrix::from_fn(rows, cols, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((v >> 32) % 17) as i64 - 8
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The golden matmul: `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        Matrix::from_fn(self.rows, rhs.cols, |i, j| {
            (0..self.cols).map(|k| self[(i, k)] * rhs[(k, j)]).sum()
        })
    }

    /// A sub-matrix view copied out: rows `r0..r0+h`, cols `c0..c0+w`,
    /// clamped to the matrix extent (edge tiles may be smaller).
    pub fn tile(&self, r0: usize, c0: usize, h: usize, w: usize) -> Matrix {
        let h = h.min(self.rows - r0);
        let w = w.min(self.cols - c0);
        Matrix::from_fn(h, w, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Writes `block` into this matrix at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block overruns the matrix.
    pub fn set_tile(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// Adds `block` into this matrix at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block overruns the matrix.
    pub fn add_tile(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] += block[(r, c)];
            }
        }
    }

    /// Element count.
    pub fn elems(&self) -> u64 {
        (self.rows * self.cols) as u64
    }

    /// Reshapes this matrix to `rows × cols` with every element zero,
    /// reusing the existing allocation when it is large enough. The
    /// scratch-buffer primitive behind the allocation-free drivers.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.data.clear();
        self.data.resize(rows * cols, 0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies the clamped tile (rows `r0..r0+h`, cols `c0..c0+w`) into
    /// `dst`, reshaping it in place — the allocation-free counterpart of
    /// [`Matrix::tile`].
    pub fn tile_into(&self, r0: usize, c0: usize, h: usize, w: usize, dst: &mut Matrix) {
        let h = h.min(self.rows - r0);
        let w = w.min(self.cols - c0);
        dst.reset_zeroed(h, w);
        for r in 0..h {
            let src = (r0 + r) * self.cols + c0;
            dst.data[r * w..(r + 1) * w].copy_from_slice(&self.data[src..src + w]);
        }
    }

    /// Writes `self × rhs` into `dst`, reshaping it in place — the
    /// allocation-free counterpart of [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, dst: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        dst.reset_zeroed(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut dst.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` placeholder — the unsized state of a scratch
    /// buffer before its first `reset_zeroed`/`tile_into`/`matmul_into`.
    /// Every public constructor still requires non-zero dimensions.
    fn default() -> Matrix {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = i64;

    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>6}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::pseudo_random(4, 3, 7);
        let id = Matrix::from_fn(3, 3, |r, c| i64::from(r == c));
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as i64 + 1); // [1 2; 3 4]
        let b = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as i64 + 5); // [5 6; 7 8]
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19);
        assert_eq!(c[(0, 1)], 22);
        assert_eq!(c[(1, 0)], 43);
        assert_eq!(c[(1, 1)], 50);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_seeded() {
        let a = Matrix::pseudo_random(5, 5, 1);
        let b = Matrix::pseudo_random(5, 5, 1);
        let c = Matrix::pseudo_random(5, 5, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((0..5).all(|r| (0..5).all(|c2| a[(r, c2)].abs() <= 8)));
    }

    #[test]
    fn tile_clamps_at_edges() {
        let a = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as i64);
        let t = a.tile(3, 3, 4, 4);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(0, 0)], 18);
    }

    #[test]
    fn set_and_add_tile() {
        let mut m = Matrix::zero(4, 4);
        let b = Matrix::from_fn(2, 2, |_, _| 3);
        m.set_tile(1, 1, &b);
        m.add_tile(1, 1, &b);
        assert_eq!(m[(1, 1)], 6);
        assert_eq!(m[(0, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let _ = Matrix::zero(2, 3).matmul(&Matrix::zero(2, 3));
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let a = Matrix::pseudo_random(7, 5, 17);
        let b = Matrix::pseudo_random(5, 6, 18);
        let mut dst = Matrix::zero(1, 1);
        a.matmul_into(&b, &mut dst);
        assert_eq!(dst, a.matmul(&b));
        // Reuse the same dst for a clamped edge tile.
        a.tile_into(4, 2, 4, 4, &mut dst);
        assert_eq!(dst, a.tile(4, 2, 4, 4));
        assert_eq!((dst.rows(), dst.cols()), (3, 3));
    }

    #[test]
    fn reset_zeroed_reshapes_and_clears() {
        let mut m = Matrix::pseudo_random(3, 3, 19);
        m.reset_zeroed(2, 5);
        assert_eq!((m.rows(), m.cols()), (2, 5));
        assert!((0..2).all(|r| (0..5).all(|c| m[(r, c)] == 0)));
    }
}
