//! The X-Stationary processing element (Fig 6) at register-transfer level.
//!
//! One PE holds a stationary register, an accumulator, and two registered
//! forwarding outputs (east, south). Muxes — the paper's additions to the
//! baseline systolic PE — select among three datapaths:
//!
//! * **WS**: the stationary register holds a weight; activations flow west
//!   to east; partial sums accumulate north to south.
//! * **IS**: the stationary register holds an input; weights flow north to
//!   south; partial sums accumulate west to east.
//! * **OS**: both operands flow through (west→east, north→south) and the
//!   product accumulates in place.
//!
//! Two further mux paths enable fusion without any new storage:
//! [`XsPe::promote_acc_to_stationary`] moves the finished OS accumulator
//! into the stationary register (tile fusion's OS→IS switch), and the
//! accumulator is readable on the forwarding path for column fusion's
//! drain-through-activation-output.

use fusecu_arch::Stationary;

/// One X-Stationary PE.
#[derive(Debug, Clone)]
pub struct XsPe {
    mode: Stationary,
    stationary: i64,
    acc: i64,
    east: i64,
    south: i64,
}

impl XsPe {
    /// A fresh PE in the given mode with cleared state.
    pub fn new(mode: Stationary) -> XsPe {
        XsPe {
            mode,
            stationary: 0,
            acc: 0,
            east: 0,
            south: 0,
        }
    }

    /// Loads the stationary register (weight for WS, input for IS).
    pub fn load_stationary(&mut self, value: i64) {
        self.stationary = value;
    }

    /// Clears the accumulator (before an OS pass).
    pub fn clear_acc(&mut self) {
        self.acc = 0;
    }

    /// The accumulator value (OS result readout).
    pub fn acc(&self) -> i64 {
        self.acc
    }

    /// The stationary register value — read by the wavefront macro-step
    /// engine to seed resident-tile kernels (the per-cycle engine only
    /// ever consumes it implicitly through [`XsPe::step`]).
    pub fn stationary(&self) -> i64 {
        self.stationary
    }

    /// Writes the accumulator directly — the macro-step engine's way of
    /// depositing a finished OS wavefront without stepping every cycle.
    /// Leaves the PE exactly as a drained per-cycle OS pass would:
    /// `promote_acc_to_stationary` chains identically afterwards.
    pub fn set_acc(&mut self, value: i64) {
        self.acc = value;
    }

    /// Current registered east output.
    pub fn east(&self) -> i64 {
        self.east
    }

    /// Current registered south output.
    pub fn south(&self) -> i64 {
        self.south
    }

    /// The PE's current mode.
    pub fn mode(&self) -> Stationary {
        self.mode
    }

    /// Reconfigures the datapath mux (the XS configuration bit).
    pub fn set_mode(&mut self, mode: Stationary) {
        self.mode = mode;
    }

    /// Tile fusion's key mux: the finished OS accumulator becomes the
    /// stationary operand of the subsequent IS pass — the intermediate
    /// tensor never leaves the PE.
    pub fn promote_acc_to_stationary(&mut self) {
        self.stationary = self.acc;
        self.acc = 0;
    }

    /// Clears the moving state (forwarding registers and accumulator) while
    /// keeping the stationary register — used between fused phases.
    pub fn clear_flow(&mut self) {
        self.acc = 0;
        self.east = 0;
        self.south = 0;
    }

    /// One clock edge: consumes the neighbor inputs present this cycle and
    /// updates the registered outputs and accumulator.
    pub fn step(&mut self, west_in: i64, north_in: i64) {
        match self.mode {
            Stationary::Ws => {
                // Activation rides east; partial sum accumulates south.
                self.south = north_in + self.stationary * west_in;
                self.east = west_in;
            }
            Stationary::Is => {
                // Weight rides south; partial sum accumulates east.
                self.east = west_in + self.stationary * north_in;
                self.south = north_in;
            }
            Stationary::Os => {
                // Both operands ride through; the product stays here.
                self.acc += west_in * north_in;
                self.east = west_in;
                self.south = north_in;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ws_accumulates_southward() {
        let mut pe = XsPe::new(Stationary::Ws);
        pe.load_stationary(3);
        pe.step(5, 10); // south = 10 + 3*5
        assert_eq!(pe.south(), 25);
        assert_eq!(pe.east(), 5);
        assert_eq!(pe.acc(), 0);
    }

    #[test]
    fn is_accumulates_eastward() {
        let mut pe = XsPe::new(Stationary::Is);
        pe.load_stationary(4);
        pe.step(7, 2); // east = 7 + 4*2
        assert_eq!(pe.east(), 15);
        assert_eq!(pe.south(), 2);
    }

    #[test]
    fn os_accumulates_in_place() {
        let mut pe = XsPe::new(Stationary::Os);
        pe.step(2, 3);
        pe.step(4, 5);
        assert_eq!(pe.acc(), 26);
        assert_eq!(pe.east(), 4);
        assert_eq!(pe.south(), 5);
    }

    #[test]
    fn promote_moves_acc_into_stationary() {
        let mut pe = XsPe::new(Stationary::Os);
        pe.step(2, 3);
        pe.promote_acc_to_stationary();
        pe.set_mode(Stationary::Is);
        assert_eq!(pe.acc(), 0);
        pe.step(0, 10); // east = 0 + 6*10
        assert_eq!(pe.east(), 60);
    }

    #[test]
    fn mode_switch_keeps_registers() {
        let mut pe = XsPe::new(Stationary::Ws);
        pe.load_stationary(9);
        pe.set_mode(Stationary::Is);
        assert_eq!(pe.mode(), Stationary::Is);
        pe.step(1, 2);
        assert_eq!(pe.east(), 1 + 9 * 2);
    }
}
