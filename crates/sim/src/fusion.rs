//! Executable tile fusion and column fusion (Fig 5 / Fig 7).
//!
//! These functions run a fused matmul pair `E = (A × B) × D` through the
//! simulated fabric and prove the paper's architectural claim in execution:
//! the intermediate `C` exists only inside PE registers (tile fusion) or on
//! the inter-CU wires (column fusion) — no buffer or memory ever holds it.
//! Both return exact results checked against the golden composition.

use fusecu_arch::Stationary;

use crate::array::CuArray;
use crate::matrix::Matrix;

/// The result of a fused-pair run.
#[derive(Debug, Clone)]
pub struct FusedRunResult {
    /// The final output `E`.
    pub out: Matrix,
    /// Total cycles consumed.
    pub cycles: u64,
    /// Elements of the intermediate that crossed the inter-CU wires
    /// (column fusion) or were promoted in place (tile fusion). Reported to
    /// document that the same volume never touched the buffer.
    pub intermediate_elems: u64,
}

/// Tile fusion on a single CU: an OS pass computes `C = A × B` into the
/// accumulators, the XS muxes promote the accumulators to stationary
/// registers, and an IS pass streams `D` through the same PEs to produce
/// `E = C × D`.
///
/// # Panics
///
/// Panics when the intermediate tile `C` (`M × L`) does not fit the array,
/// or on inner-dimension mismatches.
pub fn tile_fusion(n: usize, a: &Matrix, b: &Matrix, d: &Matrix) -> FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, l) = (a.rows(), b.cols());
    assert!(m <= n && l <= n, "intermediate tile exceeds the array");
    let mut cu = CuArray::new(n, Stationary::Os);
    let os = cu.run_os(a, b);
    cu.promote_acc_to_stationary();
    let is = cu.run_is_resident(m, d);
    FusedRunResult {
        out: is.out,
        cycles: os.cycles + is.cycles,
        intermediate_elems: (m * l) as u64,
    }
}

/// Column fusion on a CU pair: the producer runs IS with `A` stationary and
/// streams `B`; each emerging column of `C` crosses the port muxes straight
/// into the consumer, which runs OS with `E` accumulating in place while
/// `D`'s rows arrive from its north edge.
///
/// The two arrays step in lockstep; the consumer's injection schedule is
/// offset by the producer's pipeline depth so that column `l` of `C` meets
/// row `l` of `D` cycle-exactly.
///
/// # Panics
///
/// Panics when `A` (`M × K`) or `E` (`M × N`) exceeds one array, or on
/// inner-dimension mismatches.
pub fn column_fusion(n: usize, a: &Matrix, b: &Matrix, d: &Matrix) -> FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    let nn = d.cols();
    assert!(m <= n && k <= n, "producer stationary tile exceeds the array");
    assert!(nn <= n, "consumer output tile exceeds the array");

    let mut producer = CuArray::new(n, Stationary::Is);
    producer.load_stationary(a);
    let mut consumer = CuArray::new(n, Stationary::Os);

    // Producer emits C[m'][l'] on its east edge after the step at cycle
    // l' + (n-1) + m'; the consumer, whose OS schedule wants its west input
    // a[m'][l'] at local cycle l' + m', therefore runs n-1 cycles behind.
    let offset = n - 1;
    let total = l + 3 * n + 4;
    let zeros = vec![0i64; n];
    let mut north_p = vec![0i64; n];
    let mut north_c = vec![0i64; n];
    let mut east_p = vec![0i64; n];
    let mut east_c = vec![0i64; n];
    let mut south = vec![0i64; n];
    for t in 0..total {
        for (col_k, w) in north_p.iter_mut().enumerate() {
            let li = t as i64 - col_k as i64;
            *w = if col_k < k && li >= 0 && (li as usize) < l {
                b[(col_k, li as usize)]
            } else {
                0
            };
        }
        producer.step_into(&zeros, &north_p, &mut east_p, &mut south);
        let tc = t as i64 - offset as i64;
        for (col_j, w) in north_c.iter_mut().enumerate() {
            let li = tc - col_j as i64;
            *w = if col_j < nn && li >= 0 && (li as usize) < l {
                d[(li as usize, col_j)]
            } else {
                0
            };
        }
        consumer.step_into(&east_p, &north_c, &mut east_c, &mut south);
    }
    let out = Matrix::from_fn(m, nn, |r, c| consumer.pe(r, c).acc());
    FusedRunResult {
        out,
        cycles: total as u64,
        intermediate_elems: (m * l) as u64,
    }
}

/// Wavefront macro-stepped [`tile_fusion`]: the same OS → promote → IS
/// phase sequence on the same CU, but each phase lands its wavefronts with
/// the direct kernel and algebraic cycle totals instead of stepping every
/// register hop. Byte-identical to the per-cycle version on output, cycle
/// count, and intermediate volume — including the
/// `promote_acc_to_stationary` handoff, which reads the accumulators the
/// macro OS pass deposited.
///
/// # Panics
///
/// Panics exactly when [`tile_fusion`] does.
pub fn tile_fusion_macro(n: usize, a: &Matrix, b: &Matrix, d: &Matrix) -> FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, l) = (a.rows(), b.cols());
    assert!(m <= n && l <= n, "intermediate tile exceeds the array");
    let mut cu = CuArray::new(n, Stationary::Os);
    let os = cu.run_os_macro(a, b);
    cu.promote_acc_to_stationary();
    let is = cu.run_is_resident_macro(m, d);
    FusedRunResult {
        out: is.out,
        cycles: os.cycles + is.cycles,
        intermediate_elems: (m * l) as u64,
    }
}

/// Wavefront macro-stepped [`column_fusion`]: the producer/consumer
/// lockstep is collapsed algebraically — the composed product is computed
/// directly and the cycle total comes from the fixed pipeline geometry
/// (`l + 3n + 4`, the same total the per-cycle loop iterates). The
/// intermediate volume is unchanged: every element of `C` still crosses
/// the inter-CU wires in the modeled machine.
///
/// # Panics
///
/// Panics exactly when [`column_fusion`] does.
pub fn column_fusion_macro(n: usize, a: &Matrix, b: &Matrix, d: &Matrix) -> FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    let nn = d.cols();
    assert!(m <= n && k <= n, "producer stationary tile exceeds the array");
    assert!(nn <= n, "consumer output tile exceeds the array");
    FusedRunResult {
        out: a.matmul(b).matmul(d),
        cycles: (l + 3 * n + 4) as u64,
        intermediate_elems: (m * l) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden(a: &Matrix, b: &Matrix, d: &Matrix) -> Matrix {
        a.matmul(b).matmul(d)
    }

    #[test]
    fn tile_fusion_matches_golden() {
        for (n, m, k, l, nn, seed) in [
            (4usize, 4usize, 4usize, 4usize, 4usize, 1u64),
            (4, 3, 7, 4, 2, 2),
            (6, 5, 2, 6, 9, 3), // consumer stream longer than the array
            (5, 1, 5, 1, 5, 4),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let r = tile_fusion(n, &a, &b, &d);
            assert_eq!(r.out, golden(&a, &b, &d), "n={n} m={m} k={k} l={l} nn={nn}");
            assert_eq!(r.intermediate_elems, (m * l) as u64);
        }
    }

    #[test]
    fn column_fusion_matches_golden() {
        for (n, m, k, l, nn, seed) in [
            (4usize, 4usize, 4usize, 4usize, 4usize, 5u64),
            (4, 3, 2, 9, 4, 6), // long shared L stream
            (6, 6, 6, 1, 6, 7),
            (5, 2, 5, 13, 3, 8),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let r = column_fusion(n, &a, &b, &d);
            assert_eq!(r.out, golden(&a, &b, &d), "n={n} m={m} k={k} l={l} nn={nn}");
        }
    }

    #[test]
    fn both_mappings_agree() {
        let a = Matrix::pseudo_random(4, 4, 11);
        let b = Matrix::pseudo_random(4, 4, 12);
        let d = Matrix::pseudo_random(4, 4, 13);
        assert_eq!(
            tile_fusion(4, &a, &b, &d).out,
            column_fusion(4, &a, &b, &d).out
        );
    }

    #[test]
    fn column_fusion_pipelines_within_one_fill_of_the_producer() {
        // The consumer finishes one pipeline offset after the producer
        // would alone: fusion costs fill latency, not a second pass.
        let n = 6;
        let a = Matrix::pseudo_random(6, 6, 21);
        let b = Matrix::pseudo_random(6, 40, 22);
        let d = Matrix::pseudo_random(40, 6, 23);
        let fused = column_fusion(n, &a, &b, &d);
        let mut solo = CuArray::new(n, Stationary::Is);
        let producer_alone = solo.run_is(&a, &b);
        assert!(fused.cycles <= producer_alone.cycles + 2 * n as u64 + 2);
    }

    #[test]
    fn macro_tile_fusion_matches_per_cycle() {
        for (n, m, k, l, nn, seed) in [
            (4usize, 4usize, 4usize, 4usize, 4usize, 1u64),
            (4, 3, 7, 4, 2, 2),
            (6, 5, 2, 6, 9, 3),
            (5, 1, 5, 1, 5, 4),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let cycle = tile_fusion(n, &a, &b, &d);
            let wave = tile_fusion_macro(n, &a, &b, &d);
            assert_eq!(wave.out, cycle.out, "n={n} m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.cycles, cycle.cycles, "n={n} m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.intermediate_elems, cycle.intermediate_elems);
        }
    }

    #[test]
    fn macro_column_fusion_matches_per_cycle() {
        for (n, m, k, l, nn, seed) in [
            (4usize, 4usize, 4usize, 4usize, 4usize, 5u64),
            (4, 3, 2, 9, 4, 6),
            (6, 6, 6, 1, 6, 7),
            (5, 2, 5, 13, 3, 8),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let cycle = column_fusion(n, &a, &b, &d);
            let wave = column_fusion_macro(n, &a, &b, &d);
            assert_eq!(wave.out, cycle.out, "n={n} m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.cycles, cycle.cycles, "n={n} m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.intermediate_elems, cycle.intermediate_elems);
        }
    }

    #[test]
    #[should_panic(expected = "intermediate tile exceeds")]
    fn macro_tile_fusion_rejects_oversized_intermediate() {
        let a = Matrix::zero(5, 2);
        let b = Matrix::zero(2, 2);
        let d = Matrix::zero(2, 2);
        let _ = tile_fusion_macro(4, &a, &b, &d);
    }

    #[test]
    #[should_panic(expected = "intermediate tile exceeds")]
    fn tile_fusion_rejects_oversized_intermediate() {
        let a = Matrix::zero(5, 2);
        let b = Matrix::zero(2, 2);
        let d = Matrix::zero(2, 2);
        let _ = tile_fusion(4, &a, &b, &d);
    }
}
