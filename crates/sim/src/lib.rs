//! # fusecu-sim — functional cycle-level simulation of the FuseCU fabric
//!
//! The paper implements FuseCU in Chisel and verifies it in RTL simulation;
//! this crate is the equivalent executable evidence in Rust. It models the
//! X-Stationary PE (§IV-B, Fig 6) at the register-transfer level, assembles
//! compute units out of them, and executes real (integer) matrix
//! multiplications through the systolic dataflows:
//!
//! * weight-stationary, output-stationary, and input-stationary single-CU
//!   runs ([`array::CuArray`]), each checked against a golden matmul;
//! * **tile fusion** — an OS pass leaves `C` in the PE accumulators, then
//!   the XS muxes flip the same PEs to IS and consume `C` in place
//!   ([`fusion::tile_fusion`]): the intermediate never leaves the array;
//! * **column fusion** — a producer array in IS streams columns of `C`
//!   through the inter-CU port muxes into a consumer array in OS
//!   ([`fusion::column_fusion`]): the intermediate is never materialized;
//! * the four-CU [`fabric`] with Fig 7's square/wide/narrow reshapes,
//!   proven cycle-for-cycle equivalent to a monolithic array, plus
//!   fabric-scale tile fusion (intermediates up to `2N × 2N` promoted in
//!   place) and wide column fusion (Fig 7(e), untiled dimensions up to
//!   `2N` streaming between 2-CU halves);
//! * a tiling [`driver`] that executes arbitrarily large matmuls tile by
//!   tile and *measures* buffer↔array traffic, cross-checking the
//!   analytical memory-access model of `fusecu-dataflow` in execution.
//!   Traffic accounting comes in three byte-identical tiers — a frozen
//!   naive walk ([`driver::oracle`]), a hoisted walk with residency
//!   checks strength-reduced to loop boundaries, and a closed form with
//!   no tile loops at all ([`driver::measure_nest`] /
//!   [`driver::measure_fused_nest`], the [`SimMode::TrafficOnly`]
//!   scoring path). K-ary fused chains get the same three tiers plus a
//!   full replay ([`driver::execute_fused_chain`]) that threads every
//!   interior intermediate through resident on-chip panels.
//!
//! Value replay itself is two-tier: the per-cycle engine above is the
//! frozen oracle, and a **wavefront macro-step tier** exploits the skew
//! structure of the WS/OS/IS schedules to land each tile's outputs with a
//! direct kernel and derive cycles and traffic algebraically — see
//! [`SimMode::FullMacro`], the `*_macro` runs on [`array::CuArray`] /
//! [`fabric::FuseCuFabric`] / [`fusion`], and the `execute_*_macro`
//! drivers, all pinned byte-identical to the per-cycle engine by the
//! `macro_step_differential` suite.
//!
//! All simulations are exact over `i64`, so every check is bit-precise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod driver;
pub mod fabric;
pub mod fusion;
pub mod matrix;
pub mod pe;
pub mod scratch;

pub use array::CuArray;
pub use fabric::{FabricShape, FuseCuFabric};
pub use matrix::Matrix;
pub use scratch::{ScratchLease, ScratchPool, SimMode, SimScratch};
