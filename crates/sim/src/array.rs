//! A compute unit: an `N × N` grid of XS PEs with skewed systolic
//! injection and cycle-stepped execution.

use fusecu_arch::Stationary;

use crate::matrix::Matrix;
use crate::pe::XsPe;

/// One compute unit of `n × n` X-Stationary PEs.
///
/// The grid steps synchronously: every cycle each PE consumes its west and
/// north neighbors' registered outputs from the previous cycle (edge PEs
/// consume the injected boundary streams) and updates its own registers.
#[derive(Debug, Clone)]
pub struct CuArray {
    n: usize,
    pes: Vec<XsPe>,
}

/// The result of a single-tile systolic run: the output tile and the cycle
/// count consumed.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The computed output tile.
    pub out: Matrix,
    /// Cycles from first injection to last drain.
    pub cycles: u64,
}

impl CuArray {
    /// A fresh CU with every PE in the given mode.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize, mode: Stationary) -> CuArray {
        assert!(n > 0, "array edge must be non-zero");
        CuArray {
            n,
            pes: vec![XsPe::new(mode); n * n],
        }
    }

    /// The array edge.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Access one PE.
    pub fn pe(&self, r: usize, c: usize) -> &XsPe {
        &self.pes[r * self.n + c]
    }

    fn pe_mut(&mut self, r: usize, c: usize) -> &mut XsPe {
        &mut self.pes[r * self.n + c]
    }

    /// Sets every PE's mode.
    pub fn set_mode(&mut self, mode: Stationary) {
        for pe in &mut self.pes {
            pe.set_mode(mode);
        }
    }

    /// Loads a stationary tile into the top-left `tile.rows() × tile.cols()`
    /// PEs and zeroes the rest.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array.
    pub fn load_stationary(&mut self, tile: &Matrix) {
        assert!(
            tile.rows() <= self.n && tile.cols() <= self.n,
            "stationary tile exceeds the array"
        );
        for r in 0..self.n {
            for c in 0..self.n {
                let v = if r < tile.rows() && c < tile.cols() {
                    tile[(r, c)]
                } else {
                    0
                };
                self.pe_mut(r, c).load_stationary(v);
            }
        }
    }

    /// Clears every accumulator and forwarding register.
    pub fn clear(&mut self) {
        let mode = self.pe(0, 0).mode();
        self.pes = vec![XsPe::new(mode); self.n * self.n];
    }

    /// Clears moving state (forwarding registers and accumulators) while
    /// keeping every stationary register — used between fused phases.
    pub fn clear_flow(&mut self) {
        for pe in &mut self.pes {
            pe.clear_flow();
        }
    }

    /// Current registered east-edge outputs (row-indexed), without
    /// stepping — used by the multi-CU fabric to wire CU boundaries with
    /// monolithic-array timing.
    pub fn east_edge(&self) -> Vec<i64> {
        (0..self.n).map(|r| self.pe(r, self.n - 1).east()).collect()
    }

    /// Current registered south-edge outputs (column-indexed), without
    /// stepping.
    pub fn south_edge(&self) -> Vec<i64> {
        (0..self.n).map(|c| self.pe(self.n - 1, c).south()).collect()
    }

    /// One synchronous step. `west_in[r]` feeds row `r`'s west edge,
    /// `north_in[c]` feeds column `c`'s north edge. Returns the east-edge
    /// and south-edge registered outputs *after* the step.
    pub fn step(&mut self, west_in: &[i64], north_in: &[i64]) -> (Vec<i64>, Vec<i64>) {
        assert_eq!(west_in.len(), self.n);
        assert_eq!(north_in.len(), self.n);
        // Two-phase update: gather current neighbor outputs first.
        let mut west_wires = vec![0i64; self.n * self.n];
        let mut north_wires = vec![0i64; self.n * self.n];
        for r in 0..self.n {
            for c in 0..self.n {
                west_wires[r * self.n + c] = if c == 0 {
                    west_in[r]
                } else {
                    self.pe(r, c - 1).east()
                };
                north_wires[r * self.n + c] = if r == 0 {
                    north_in[c]
                } else {
                    self.pe(r - 1, c).south()
                };
            }
        }
        for r in 0..self.n {
            for c in 0..self.n {
                let idx = r * self.n + c;
                self.pes[idx].step(west_wires[idx], north_wires[idx]);
            }
        }
        let east: Vec<i64> = (0..self.n).map(|r| self.pe(r, self.n - 1).east()).collect();
        let south: Vec<i64> = (0..self.n).map(|c| self.pe(self.n - 1, c).south()).collect();
        (east, south)
    }

    /// Weight-stationary matmul of one tile: rows map `K`, columns map `L`,
    /// `M` streams. `a` is `M × K`, `b` is `K × L` (`b` becomes the
    /// stationary tile); returns `C = a × b` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when `b` exceeds the array.
    pub fn run_ws(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Ws);
        self.clear();
        self.set_mode(Stationary::Ws);
        self.load_stationary(b);
        let mut out = Matrix::zero(m, l);
        let total = m + self.n + self.n + 2;
        for t in 0..total {
            let west: Vec<i64> = (0..self.n)
                .map(|row_k| {
                    // A[m'][k] enters row k at cycle m' + k.
                    let mi = t as i64 - row_k as i64;
                    if row_k < k && mi >= 0 && (mi as usize) < m {
                        a[(mi as usize, row_k)]
                    } else {
                        0
                    }
                })
                .collect();
            let (_, south) = self.step(&west, &vec![0; self.n]);
            // C[m'][l'] leaves the bottom of column l' after the step at
            // cycle m' + (n - 1) + l'.
            for (col_l, v) in south.iter().enumerate() {
                let mi = t as i64 - (self.n - 1) as i64 - col_l as i64;
                if col_l < l && mi >= 0 && (mi as usize) < m {
                    out[(mi as usize, col_l)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Input-stationary matmul of one tile: rows map `M`, columns map `K`,
    /// `L` streams. `a` is `M × K` (stationary), `b` is `K × L`; returns
    /// `C = a × b` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when `a` exceeds the array.
    pub fn run_is(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Is);
        self.clear();
        self.set_mode(Stationary::Is);
        self.load_stationary(a);
        let mut out = Matrix::zero(m, l);
        let total = l + self.n + self.n + 2;
        for t in 0..total {
            let north: Vec<i64> = (0..self.n)
                .map(|col_k| {
                    // B[k][l'] enters column k at cycle l' + k.
                    let li = t as i64 - col_k as i64;
                    if col_k < k && li >= 0 && (li as usize) < l {
                        b[(col_k, li as usize)]
                    } else {
                        0
                    }
                })
                .collect();
            let (east, _) = self.step(&vec![0; self.n], &north);
            // C[m'][l'] leaves the east edge of row m' after the step at
            // cycle l' + (n - 1) + m'.
            for (row_m, v) in east.iter().enumerate() {
                let li = t as i64 - (self.n - 1) as i64 - row_m as i64;
                if row_m < m && li >= 0 && (li as usize) < l {
                    out[(row_m, li as usize)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Input-stationary pass over whatever stationary tile is already
    /// resident in the PEs (rows map `M`, columns map the resident tile's
    /// `K`): streams `b` (`K × L`) and returns the `m × L` product. Used by
    /// tile fusion after promoting the OS accumulators — the resident tile
    /// is *not* reloaded.
    ///
    /// # Panics
    ///
    /// Panics when `b`'s row count exceeds the array.
    pub fn run_is_resident(&mut self, m: usize, b: &Matrix) -> RunResult {
        let (k, l) = (b.rows(), b.cols());
        assert!(k <= self.n, "stream tile exceeds the array");
        assert!(m <= self.n, "output rows exceed the array");
        self.set_mode(Stationary::Is);
        for pe in &mut self.pes {
            pe.clear_flow();
        }
        let mut out = Matrix::zero(m, l);
        let total = l + self.n + self.n + 2;
        for t in 0..total {
            let north: Vec<i64> = (0..self.n)
                .map(|col_k| {
                    let li = t as i64 - col_k as i64;
                    if col_k < k && li >= 0 && (li as usize) < l {
                        b[(col_k, li as usize)]
                    } else {
                        0
                    }
                })
                .collect();
            let (east, _) = self.step(&vec![0; self.n], &north);
            for (row_m, v) in east.iter().enumerate() {
                let li = t as i64 - (self.n - 1) as i64 - row_m as i64;
                if row_m < m && li >= 0 && (li as usize) < l {
                    out[(row_m, li as usize)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Promotes every PE's accumulator into its stationary register (the
    /// tile-fusion OS→IS mux).
    pub fn promote_acc_to_stationary(&mut self) {
        for pe in &mut self.pes {
            pe.promote_acc_to_stationary();
        }
    }

    /// Output-stationary matmul of one tile: rows map `M`, columns map `L`,
    /// `K` streams; the result accumulates in place and is read from the
    /// accumulators. `a` is `M × K`, `b` is `K × L`; returns `C` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when the output exceeds the array.
    pub fn run_os(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        assert!(m <= self.n && l <= self.n, "output tile exceeds the array");
        self.set_mode(Stationary::Os);
        self.clear();
        self.set_mode(Stationary::Os);
        let total = k + self.n + self.n + 2;
        for t in 0..total {
            let west: Vec<i64> = (0..self.n)
                .map(|row_m| {
                    // A[m'][k'] enters row m' at cycle k' + m'.
                    let ki = t as i64 - row_m as i64;
                    if row_m < m && ki >= 0 && (ki as usize) < k {
                        a[(row_m, ki as usize)]
                    } else {
                        0
                    }
                })
                .collect();
            let north: Vec<i64> = (0..self.n)
                .map(|col_l| {
                    // B[k'][l'] enters column l' at cycle k' + l'.
                    let ki = t as i64 - col_l as i64;
                    if col_l < l && ki >= 0 && (ki as usize) < k {
                        b[(ki as usize, col_l)]
                    } else {
                        0
                    }
                })
                .collect();
            self.step(&west, &north);
        }
        let out = Matrix::from_fn(m, l, |r, c| self.pe(r, c).acc());
        RunResult {
            out,
            cycles: total as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(mode: &str, n: usize, m: usize, k: usize, l: usize, seed: u64) {
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 100);
        let golden = a.matmul(&b);
        let mut cu = CuArray::new(n, Stationary::Ws);
        let got = match mode {
            "ws" => cu.run_ws(&a, &b),
            "is" => cu.run_is(&a, &b),
            "os" => cu.run_os(&a, &b),
            _ => unreachable!(),
        };
        assert_eq!(got.out, golden, "{mode} n={n} m={m} k={k} l={l}");
        assert!(got.cycles > 0);
    }

    #[test]
    fn ws_matches_golden() {
        check("ws", 4, 4, 4, 4, 1);
        check("ws", 4, 7, 3, 2, 2); // uneven, tall stream
        check("ws", 6, 1, 6, 6, 3);
        check("ws", 5, 9, 2, 5, 4);
    }

    #[test]
    fn is_matches_golden() {
        check("is", 4, 4, 4, 4, 5);
        check("is", 4, 3, 4, 9, 6); // long stream
        check("is", 6, 6, 2, 1, 7);
    }

    #[test]
    fn os_matches_golden() {
        check("os", 4, 4, 4, 4, 8);
        check("os", 4, 2, 11, 3, 9); // deep reduction
        check("os", 5, 5, 1, 5, 10);
    }

    #[test]
    fn all_modes_agree_with_each_other() {
        let a = Matrix::pseudo_random(4, 4, 42);
        let b = Matrix::pseudo_random(4, 4, 43);
        let mut cu = CuArray::new(4, Stationary::Ws);
        let ws = cu.run_ws(&a, &b).out;
        let is = cu.run_is(&a, &b).out;
        let os = cu.run_os(&a, &b).out;
        assert_eq!(ws, is);
        assert_eq!(is, os);
    }

    #[test]
    fn cycle_counts_scale_with_stream_depth() {
        let mut cu = CuArray::new(4, Stationary::Ws);
        let a_short = Matrix::pseudo_random(2, 4, 1);
        let a_long = Matrix::pseudo_random(20, 4, 1);
        let b = Matrix::pseudo_random(4, 4, 2);
        let short = cu.run_ws(&a_short, &b).cycles;
        let long = cu.run_ws(&a_long, &b).cycles;
        assert_eq!(long - short, 18); // M grows by 18 streaming beats
    }

    #[test]
    #[should_panic(expected = "exceeds the array")]
    fn oversized_stationary_panics() {
        let mut cu = CuArray::new(2, Stationary::Ws);
        let a = Matrix::zero(2, 4);
        let b = Matrix::zero(4, 2);
        let _ = cu.run_ws(&a, &b);
    }
}
