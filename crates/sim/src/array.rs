//! A compute unit: an `N × N` grid of XS PEs with skewed systolic
//! injection and cycle-stepped execution.

use fusecu_arch::Stationary;

use crate::matrix::Matrix;
use crate::pe::XsPe;

/// One compute unit of `n × n` X-Stationary PEs.
///
/// The grid steps synchronously: every cycle each PE consumes its west and
/// north neighbors' registered outputs from the previous cycle (edge PEs
/// consume the injected boundary streams) and updates its own registers.
#[derive(Debug, Clone)]
pub struct CuArray {
    n: usize,
    pes: Vec<XsPe>,
    /// Persistent wire scratch: while stepping row `r`, slot `c` holds the
    /// pre-step south output of PE `(r - 1, c)` (row 0 reads the injected
    /// stream). Lets [`CuArray::step_into`] run the two-phase update with
    /// O(n) state and no per-cycle allocation.
    north_wires: Vec<i64>,
}

/// The result of a single-tile systolic run: the output tile and the cycle
/// count consumed.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The computed output tile.
    pub out: Matrix,
    /// Cycles from first injection to last drain.
    pub cycles: u64,
}

impl CuArray {
    /// A fresh CU with every PE in the given mode.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize, mode: Stationary) -> CuArray {
        assert!(n > 0, "array edge must be non-zero");
        CuArray {
            n,
            pes: vec![XsPe::new(mode); n * n],
            north_wires: vec![0; n],
        }
    }

    /// The array edge.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Access one PE.
    pub fn pe(&self, r: usize, c: usize) -> &XsPe {
        &self.pes[r * self.n + c]
    }

    fn pe_mut(&mut self, r: usize, c: usize) -> &mut XsPe {
        &mut self.pes[r * self.n + c]
    }

    /// Deposits a value in one PE's accumulator — the macro-step engine's
    /// write path for finished OS wavefronts (see [`CuArray::run_os_macro`]).
    pub(crate) fn set_acc(&mut self, r: usize, c: usize, value: i64) {
        self.pe_mut(r, c).set_acc(value);
    }

    /// Sets every PE's mode.
    pub fn set_mode(&mut self, mode: Stationary) {
        for pe in &mut self.pes {
            pe.set_mode(mode);
        }
    }

    /// Loads a stationary tile into the top-left `tile.rows() × tile.cols()`
    /// PEs and zeroes the rest.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the array.
    pub fn load_stationary(&mut self, tile: &Matrix) {
        assert!(
            tile.rows() <= self.n && tile.cols() <= self.n,
            "stationary tile exceeds the array"
        );
        for r in 0..self.n {
            for c in 0..self.n {
                let v = if r < tile.rows() && c < tile.cols() {
                    tile[(r, c)]
                } else {
                    0
                };
                self.pe_mut(r, c).load_stationary(v);
            }
        }
    }

    /// Clears every accumulator and forwarding register (in place — no
    /// reallocation).
    pub fn clear(&mut self) {
        let mode = self.pe(0, 0).mode();
        for pe in &mut self.pes {
            *pe = XsPe::new(mode);
        }
    }

    /// Clears moving state (forwarding registers and accumulators) while
    /// keeping every stationary register — used between fused phases.
    pub fn clear_flow(&mut self) {
        for pe in &mut self.pes {
            pe.clear_flow();
        }
    }

    /// Writes the current registered east-edge outputs (row-indexed) into
    /// `out` without stepping — used by the multi-CU fabric to wire CU
    /// boundaries with monolithic-array timing.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `n` long.
    pub fn east_edge_into(&self, out: &mut [i64]) {
        assert_eq!(out.len(), self.n);
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.pe(r, self.n - 1).east();
        }
    }

    /// Writes the current registered south-edge outputs (column-indexed)
    /// into `out` without stepping.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly `n` long.
    pub fn south_edge_into(&self, out: &mut [i64]) {
        assert_eq!(out.len(), self.n);
        for (c, o) in out.iter_mut().enumerate() {
            *o = self.pe(self.n - 1, c).south();
        }
    }

    /// One synchronous step, allocation-free. `west_in[r]` feeds row `r`'s
    /// west edge, `north_in[c]` feeds column `c`'s north edge; the
    /// post-step east/south registered edges are written through the
    /// out-slices. Two-phase semantics (every PE consumes its neighbors'
    /// *pre-step* registered outputs), with the pre-step wires carried in
    /// O(n) persistent scratch instead of two `n²` gathers.
    ///
    /// # Panics
    ///
    /// Panics unless all four slices are exactly `n` long.
    pub fn step_into(
        &mut self,
        west_in: &[i64],
        north_in: &[i64],
        east_out: &mut [i64],
        south_out: &mut [i64],
    ) {
        let n = self.n;
        assert_eq!(west_in.len(), n);
        assert_eq!(north_in.len(), n);
        assert_eq!(east_out.len(), n);
        assert_eq!(south_out.len(), n);
        let CuArray {
            pes, north_wires, ..
        } = self;
        // Raster order with pre-step values carried forward: the scalar
        // `west_wire` holds the pre-step east of the PE just stepped, and
        // `north_wires[c]` holds the pre-step south of the PE one row up
        // (swapped in just before each PE steps).
        north_wires.copy_from_slice(north_in);
        for r in 0..n {
            let mut west_wire = west_in[r];
            for c in 0..n {
                let pe = &mut pes[r * n + c];
                let east_pre = pe.east();
                let north_wire = std::mem::replace(&mut north_wires[c], pe.south());
                pe.step(west_wire, north_wire);
                west_wire = east_pre;
            }
            east_out[r] = pes[r * n + (n - 1)].east();
        }
        for (c, o) in south_out.iter_mut().enumerate() {
            *o = pes[(n - 1) * n + c].south();
        }
    }

    /// Weight-stationary matmul of one tile: rows map `K`, columns map `L`,
    /// `M` streams. `a` is `M × K`, `b` is `K × L` (`b` becomes the
    /// stationary tile); returns `C = a × b` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when `b` exceeds the array.
    pub fn run_ws(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Ws);
        self.clear();
        self.load_stationary(b);
        let mut out = Matrix::zero(m, l);
        let total = m + self.n + self.n + 2;
        let zeros = vec![0i64; self.n];
        let mut west = vec![0i64; self.n];
        let mut east = vec![0i64; self.n];
        let mut south = vec![0i64; self.n];
        for t in 0..total {
            for (row_k, w) in west.iter_mut().enumerate() {
                // A[m'][k] enters row k at cycle m' + k.
                let mi = t as i64 - row_k as i64;
                *w = if row_k < k && mi >= 0 && (mi as usize) < m {
                    a[(mi as usize, row_k)]
                } else {
                    0
                };
            }
            self.step_into(&west, &zeros, &mut east, &mut south);
            // C[m'][l'] leaves the bottom of column l' after the step at
            // cycle m' + (n - 1) + l'.
            for (col_l, v) in south.iter().enumerate() {
                let mi = t as i64 - (self.n - 1) as i64 - col_l as i64;
                if col_l < l && mi >= 0 && (mi as usize) < m {
                    out[(mi as usize, col_l)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Input-stationary matmul of one tile: rows map `M`, columns map `K`,
    /// `L` streams. `a` is `M × K` (stationary), `b` is `K × L`; returns
    /// `C = a × b` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when `a` exceeds the array.
    pub fn run_is(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Is);
        self.clear();
        self.load_stationary(a);
        let mut out = Matrix::zero(m, l);
        let total = l + self.n + self.n + 2;
        let zeros = vec![0i64; self.n];
        let mut north = vec![0i64; self.n];
        let mut east = vec![0i64; self.n];
        let mut south = vec![0i64; self.n];
        for t in 0..total {
            for (col_k, w) in north.iter_mut().enumerate() {
                // B[k][l'] enters column k at cycle l' + k.
                let li = t as i64 - col_k as i64;
                *w = if col_k < k && li >= 0 && (li as usize) < l {
                    b[(col_k, li as usize)]
                } else {
                    0
                };
            }
            self.step_into(&zeros, &north, &mut east, &mut south);
            // C[m'][l'] leaves the east edge of row m' after the step at
            // cycle l' + (n - 1) + m'.
            for (row_m, v) in east.iter().enumerate() {
                let li = t as i64 - (self.n - 1) as i64 - row_m as i64;
                if row_m < m && li >= 0 && (li as usize) < l {
                    out[(row_m, li as usize)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Input-stationary pass over whatever stationary tile is already
    /// resident in the PEs (rows map `M`, columns map the resident tile's
    /// `K`): streams `b` (`K × L`) and returns the `m × L` product. Used by
    /// tile fusion after promoting the OS accumulators — the resident tile
    /// is *not* reloaded.
    ///
    /// # Panics
    ///
    /// Panics when `b`'s row count exceeds the array.
    pub fn run_is_resident(&mut self, m: usize, b: &Matrix) -> RunResult {
        let (k, l) = (b.rows(), b.cols());
        assert!(k <= self.n, "stream tile exceeds the array");
        assert!(m <= self.n, "output rows exceed the array");
        self.set_mode(Stationary::Is);
        for pe in &mut self.pes {
            pe.clear_flow();
        }
        let mut out = Matrix::zero(m, l);
        let total = l + self.n + self.n + 2;
        let zeros = vec![0i64; self.n];
        let mut north = vec![0i64; self.n];
        let mut east = vec![0i64; self.n];
        let mut south = vec![0i64; self.n];
        for t in 0..total {
            for (col_k, w) in north.iter_mut().enumerate() {
                let li = t as i64 - col_k as i64;
                *w = if col_k < k && li >= 0 && (li as usize) < l {
                    b[(col_k, li as usize)]
                } else {
                    0
                };
            }
            self.step_into(&zeros, &north, &mut east, &mut south);
            for (row_m, v) in east.iter().enumerate() {
                let li = t as i64 - (self.n - 1) as i64 - row_m as i64;
                if row_m < m && li >= 0 && (li as usize) < l {
                    out[(row_m, li as usize)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Promotes every PE's accumulator into its stationary register (the
    /// tile-fusion OS→IS mux).
    pub fn promote_acc_to_stationary(&mut self) {
        for pe in &mut self.pes {
            pe.promote_acc_to_stationary();
        }
    }

    /// Output-stationary matmul of one tile: rows map `M`, columns map `L`,
    /// `K` streams; the result accumulates in place and is read from the
    /// accumulators. `a` is `M × K`, `b` is `K × L`; returns `C` (`M × L`).
    ///
    /// # Panics
    ///
    /// Panics when the output exceeds the array.
    pub fn run_os(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        assert!(m <= self.n && l <= self.n, "output tile exceeds the array");
        self.set_mode(Stationary::Os);
        self.clear();
        let total = k + self.n + self.n + 2;
        let mut west = vec![0i64; self.n];
        let mut north = vec![0i64; self.n];
        let mut east = vec![0i64; self.n];
        let mut south = vec![0i64; self.n];
        for t in 0..total {
            for (row_m, w) in west.iter_mut().enumerate() {
                // A[m'][k'] enters row m' at cycle k' + m'.
                let ki = t as i64 - row_m as i64;
                *w = if row_m < m && ki >= 0 && (ki as usize) < k {
                    a[(row_m, ki as usize)]
                } else {
                    0
                };
            }
            for (col_l, w) in north.iter_mut().enumerate() {
                // B[k'][l'] enters column l' at cycle k' + l'.
                let ki = t as i64 - col_l as i64;
                *w = if col_l < l && ki >= 0 && (ki as usize) < k {
                    b[(ki as usize, col_l)]
                } else {
                    0
                };
            }
            self.step_into(&west, &north, &mut east, &mut south);
        }
        let out = Matrix::from_fn(m, l, |r, c| self.pe(r, c).acc());
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Wavefront macro-step of [`CuArray::run_ws`]: the same contract —
    /// WS mode, `b` resident stationary, identical output and cycle count
    /// — but the per-cycle register walk is replaced by one direct kernel
    /// plus the algebraic total `m + 2n + 2` read off the skew structure
    /// (`A[m'][k]` enters row `k` at cycle `m' + k`; `C[m'][l']` drains
    /// at `m' + (n−1) + l'`). Byte-identical to the per-cycle engine by
    /// `tests/macro_step_differential.rs`.
    ///
    /// # Panics
    ///
    /// Panics when `b` exceeds the array or inner dimensions mismatch.
    pub fn run_ws_macro(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Ws);
        self.clear();
        self.load_stationary(b);
        RunResult {
            out: a.matmul(b),
            cycles: (a.rows() + self.n + self.n + 2) as u64,
        }
    }

    /// Wavefront macro-step of [`CuArray::run_is`]: IS mode, `a` resident
    /// stationary, direct-kernel output, algebraic total `l + 2n + 2`
    /// (`B[k][l']` enters column `k` at `l' + k`; `C[m'][l']` drains east
    /// at `l' + (n−1) + m'`).
    ///
    /// # Panics
    ///
    /// Panics when `a` exceeds the array or inner dimensions mismatch.
    pub fn run_is_macro(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        self.set_mode(Stationary::Is);
        self.clear();
        self.load_stationary(a);
        RunResult {
            out: a.matmul(b),
            cycles: (b.cols() + self.n + self.n + 2) as u64,
        }
    }

    /// Wavefront macro-step of [`CuArray::run_is_resident`]: streams `b`
    /// against whatever stationary tile is already resident (so it chains
    /// after [`CuArray::run_os_macro`] + [`CuArray::promote_acc_to_stationary`]
    /// exactly like the per-cycle fused-tile handoff), computing the
    /// product directly from the stationary registers with the algebraic
    /// total `l + 2n + 2`.
    ///
    /// # Panics
    ///
    /// Panics when the stream or output exceeds the array.
    pub fn run_is_resident_macro(&mut self, m: usize, b: &Matrix) -> RunResult {
        let (k, l) = (b.rows(), b.cols());
        assert!(k <= self.n, "stream tile exceeds the array");
        assert!(m <= self.n, "output rows exceed the array");
        self.set_mode(Stationary::Is);
        self.clear_flow();
        let out = Matrix::from_fn(m, l, |r, c| {
            (0..k).map(|kk| self.pe(r, kk).stationary() * b[(kk, c)]).sum()
        });
        RunResult {
            out,
            cycles: (l + self.n + self.n + 2) as u64,
        }
    }

    /// Wavefront macro-step of [`CuArray::run_os`]: OS mode, direct-kernel
    /// product deposited in the PE accumulators (so the promote-based
    /// fused-tile handoff is byte-identical), algebraic total `k + 2n + 2`
    /// (`A[m'][k']` enters row `m'` at `k' + m'`; `B[k'][l']` enters
    /// column `l'` at `k' + l'`).
    ///
    /// # Panics
    ///
    /// Panics when the output exceeds the array or inner dimensions
    /// mismatch.
    pub fn run_os_macro(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        assert!(m <= self.n && l <= self.n, "output tile exceeds the array");
        self.set_mode(Stationary::Os);
        self.clear();
        let out = a.matmul(b);
        for r in 0..m {
            for c in 0..l {
                self.set_acc(r, c, out[(r, c)]);
            }
        }
        RunResult {
            out,
            cycles: (k + self.n + self.n + 2) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(mode: &str, n: usize, m: usize, k: usize, l: usize, seed: u64) {
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 100);
        let golden = a.matmul(&b);
        let mut cu = CuArray::new(n, Stationary::Ws);
        let got = match mode {
            "ws" => cu.run_ws(&a, &b),
            "is" => cu.run_is(&a, &b),
            "os" => cu.run_os(&a, &b),
            _ => unreachable!(),
        };
        assert_eq!(got.out, golden, "{mode} n={n} m={m} k={k} l={l}");
        assert!(got.cycles > 0);
    }

    #[test]
    fn ws_matches_golden() {
        check("ws", 4, 4, 4, 4, 1);
        check("ws", 4, 7, 3, 2, 2); // uneven, tall stream
        check("ws", 6, 1, 6, 6, 3);
        check("ws", 5, 9, 2, 5, 4);
    }

    #[test]
    fn is_matches_golden() {
        check("is", 4, 4, 4, 4, 5);
        check("is", 4, 3, 4, 9, 6); // long stream
        check("is", 6, 6, 2, 1, 7);
    }

    #[test]
    fn os_matches_golden() {
        check("os", 4, 4, 4, 4, 8);
        check("os", 4, 2, 11, 3, 9); // deep reduction
        check("os", 5, 5, 1, 5, 10);
    }

    #[test]
    fn all_modes_agree_with_each_other() {
        let a = Matrix::pseudo_random(4, 4, 42);
        let b = Matrix::pseudo_random(4, 4, 43);
        let mut cu = CuArray::new(4, Stationary::Ws);
        let ws = cu.run_ws(&a, &b).out;
        let is = cu.run_is(&a, &b).out;
        let os = cu.run_os(&a, &b).out;
        assert_eq!(ws, is);
        assert_eq!(is, os);
    }

    #[test]
    fn cycle_counts_scale_with_stream_depth() {
        let mut cu = CuArray::new(4, Stationary::Ws);
        let a_short = Matrix::pseudo_random(2, 4, 1);
        let a_long = Matrix::pseudo_random(20, 4, 1);
        let b = Matrix::pseudo_random(4, 4, 2);
        let short = cu.run_ws(&a_short, &b).cycles;
        let long = cu.run_ws(&a_long, &b).cycles;
        assert_eq!(long - short, 18); // M grows by 18 streaming beats
    }

    #[test]
    #[should_panic(expected = "exceeds the array")]
    fn oversized_stationary_panics() {
        let mut cu = CuArray::new(2, Stationary::Ws);
        let a = Matrix::zero(2, 4);
        let b = Matrix::zero(4, 2);
        let _ = cu.run_ws(&a, &b);
    }

    #[test]
    fn macro_runs_match_the_per_cycle_engine() {
        // Deterministic pin of the wavefront tier: identical output and
        // cycle count per mode (the proptest suite sweeps random shapes).
        for (n, m, k, l, seed) in [
            (4usize, 4usize, 4usize, 4usize, 21u64),
            (4, 7, 3, 2, 22),
            (6, 1, 6, 5, 23),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 100);
            let mut cycle = CuArray::new(n, Stationary::Ws);
            let mut wave = CuArray::new(n, Stationary::Ws);
            let ws = cycle.run_ws(&a, &b);
            let wsm = wave.run_ws_macro(&a, &b);
            assert_eq!(wsm.out, ws.out, "ws out n={n} m={m} k={k} l={l}");
            assert_eq!(wsm.cycles, ws.cycles, "ws cycles");
            if m <= n {
                let is = cycle.run_is(&a, &b);
                let ism = wave.run_is_macro(&a, &b);
                assert_eq!(ism.out, is.out, "is out");
                assert_eq!(ism.cycles, is.cycles, "is cycles");
            }
            if m <= n && l <= n {
                let os = cycle.run_os(&a, &b);
                let osm = wave.run_os_macro(&a, &b);
                assert_eq!(osm.out, os.out, "os out");
                assert_eq!(osm.cycles, os.cycles, "os cycles");
            }
        }
    }

    #[test]
    fn macro_os_promote_handoff_matches_per_cycle() {
        // The fused-tile OS→IS switch: the macro OS pass must leave the
        // accumulators exactly where the per-cycle pass does, so that
        // promote + a resident IS pass chain byte-identically.
        let (n, m, k, l, nn) = (5, 4, 6, 5, 7);
        let a = Matrix::pseudo_random(m, k, 31);
        let b = Matrix::pseudo_random(k, l, 32);
        let d = Matrix::pseudo_random(l, nn, 33);
        let mut cycle = CuArray::new(n, Stationary::Os);
        let mut wave = CuArray::new(n, Stationary::Os);
        let os = cycle.run_os(&a, &b);
        let osm = wave.run_os_macro(&a, &b);
        for r in 0..n {
            for c in 0..n {
                assert_eq!(wave.pe(r, c).acc(), cycle.pe(r, c).acc(), "acc {r},{c}");
            }
        }
        cycle.promote_acc_to_stationary();
        wave.promote_acc_to_stationary();
        let is = cycle.run_is_resident(m, &d);
        let ism = wave.run_is_resident_macro(m, &d);
        assert_eq!(ism.out, is.out);
        assert_eq!(ism.cycles, is.cycles);
        assert_eq!(osm.cycles + ism.cycles, os.cycles + is.cycles);
    }
}
