//! Tiled execution drivers: running full-size matmuls through the
//! simulated fabric and *measuring* the traffic the analytical model
//! predicts.
//!
//! Two drivers:
//!
//! * [`execute_nest`] replays a buffer-level [`LoopNest`] with a modeled
//!   one-tile-per-operand buffer, counting every element fetched or written
//!   on a tile switch. Its measured traffic must equal
//!   [`CostModel::evaluate`](fusecu_dataflow::CostModel::evaluate) exactly — the execution-level proof of the
//!   memory-access model that Fig 9 relies on.
//! * [`execute_on_cu`] runs each tile's arithmetic through the systolic
//!   [`CuArray`] instead of a golden kernel, proving the mapping handles
//!   every (possibly ragged) tile a real schedule produces.
//!
//! Traffic accounting itself comes in three strength-reduction tiers, all
//! producing byte-identical counters (pinned by `tests/traffic_differential`
//! and the `sim_throughput` digests):
//!
//! * the **frozen naive walk** ([`oracle`]) checks every operand slot on
//!   every innermost iteration — the reference the faster paths are
//!   differentially tested against;
//! * the **hoisted walk** ([`nest_traffic`] / [`fused_traffic`], measured
//!   via [`measure_nest_walk`] / [`measure_fused_nest_walk`]) resolves per
//!   loop level which slots can change residency there and charges at loop
//!   boundaries with precomputed edge-clamped spans — this is the walk the
//!   full-replay drivers run;
//! * the **closed form** ([`measure_nest`] / [`measure_fused_nest`], the
//!   [`crate::SimMode::TrafficOnly`] fast path) prices interior tiles
//!   analytically and folds the ragged edge fringe into per-axis span
//!   sums, eliminating tile loops entirely.
//!
//! Value movement has the same two-tier structure: the per-cycle engine
//! above is the frozen oracle, and the **wavefront macro-step tier**
//! ([`execute_nest_macro`] / [`execute_fused_nest_macro`] /
//! [`execute_fused_chain_macro`] / [`execute_on_cu_macro`],
//! [`crate::SimMode::FullMacro`]) computes the same outputs with the
//! cache-blocked direct kernel and the same counters from the closed
//! forms — byte-identical on outputs, cycles, and every traffic counter
//! (pinned by `tests/macro_step_differential`), with no per-cycle register
//! stepping on the hot path.

use fusecu_arch::Stationary;
use fusecu_dataflow::{LoopNest, MemoryAccess};
use fusecu_fusion::{ChainNest, FusedChain, FusedNest, FusedPair};
use fusecu_ir::{MatMul, MmDim, Operand};

use crate::array::CuArray;
use crate::matrix::Matrix;
use crate::scratch::SimScratch;

/// The result of replaying a loop nest: the product and the measured
/// per-tensor buffer↔memory traffic.
#[derive(Debug, Clone)]
pub struct NestRun {
    /// The computed product.
    pub out: Matrix,
    /// Measured traffic, comparable to
    /// [`CostModel::evaluate`](fusecu_dataflow::CostModel::evaluate).
    pub measured: MemoryAccess,
}

/// Per-dimension tile geometry hoisted out of the accounting loops: the
/// iteration count, the clamped full-tile span, and the (possibly ragged)
/// span of the final edge tile. `span()` is a branch, not a recomputation,
/// and `total()` prices the whole axis in one step — `count − 1` interior
/// tiles charged analytically plus the edge fringe — so no per-tile walk
/// along the axis remains.
#[derive(Debug, Clone, Copy)]
struct DimSpans {
    count: usize,
    full: usize,
    edge: usize,
}

impl DimSpans {
    fn new(dim: u64, tile: u64) -> DimSpans {
        let full = tile.min(dim) as usize;
        let dim = dim as usize;
        let count = dim.div_ceil(full);
        DimSpans {
            count,
            full,
            edge: dim - (count - 1) * full,
        }
    }

    /// The edge-clamped span of tile `i`.
    fn span(&self, i: usize) -> usize {
        if i + 1 == self.count {
            self.edge
        } else {
            self.full
        }
    }

    /// Sum of all tile spans along the axis (the dimension size).
    fn total(&self) -> u64 {
        ((self.count - 1) * self.full + self.edge) as u64
    }
}

/// How one operand slot's residency charges hoist out of the innermost
/// loop, resolved once per walk from the loop order. A slot's resident key
/// is its pair of tile indices, so it can only change at the loop levels
/// carrying the slot's dimensions — which makes every charge predictable
/// at the `(outer, middle)` body boundary (see [`nest_traffic`]).
#[derive(Debug, Clone, Copy)]
enum Charge {
    /// The slot's absent dimension is innermost: its key *is* the body
    /// index, so it changes on every body — charge the body's span product
    /// unconditionally.
    PerBody,
    /// The slot carries the innermost dimension and that loop iterates
    /// more than once: every body re-streams the slot's whole innermost
    /// row of tiles — charge `span(other) × D_inner` per body. `other` is
    /// the loop level (0 or 1) of the slot's non-innermost dimension.
    Sweep {
        /// Loop level of the slot's non-innermost dimension.
        other: usize,
    },
    /// The slot carries the innermost dimension but that loop runs a
    /// single iteration: the key only changes when the slot's outer tile
    /// index does — charge `span(other) × D_inner` on change, tracked.
    OnChange {
        /// Loop level of the slot's non-innermost dimension.
        other: usize,
    },
}

/// The single source of truth for nest-replay traffic accounting, in
/// strength-reduced form: residency charges are resolved per loop level
/// ([`Charge`]) and applied at `(outer, middle)` body boundaries with the
/// innermost phase folded analytically, so the innermost loop body is a
/// bare `visit(im, ik, il)` call with no residency checks or span math
/// left in it. [`execute_nest_with`] computes values in `visit`;
/// [`measure_nest_walk`] passes a no-op — so the two modes' counters are
/// identical by construction, and both are asserted equal to the frozen
/// naive walk ([`oracle::measure_nest`]) by the differential tests.
fn nest_traffic(
    mm: MatMul,
    nest: &LoopNest,
    mut visit: impl FnMut(usize, usize, usize),
) -> MemoryAccess {
    let pos = MmDim::ALL.map(|d| {
        nest.order
            .iter()
            .position(|x| *x == d)
            .expect("order holds every dim")
    });
    let lv = nest.order.map(|d| DimSpans::new(mm.dim(d), nest.tiling.tile(d)));
    let inner_elems = lv[2].total();

    let plan = Operand::ALL.map(|op| {
        let [da, db] = op.dims();
        let (qa, qb) = (pos[da as usize], pos[db as usize]);
        if qa != 2 && qb != 2 {
            Charge::PerBody
        } else {
            let other = qa.min(qb);
            if lv[2].count > 1 {
                Charge::Sweep { other }
            } else {
                Charge::OnChange { other }
            }
        }
    });

    let mut traffic = [0u64; 3]; // A, B, C
    let mut last = [usize::MAX; 3]; // OnChange tracking, per slot
    for i0 in 0..lv[0].count {
        for i1 in 0..lv[1].count {
            let body = [i0, i1];
            let spans = [lv[0].span(i0), lv[1].span(i1)];
            for (slot, charge) in plan.iter().enumerate() {
                match *charge {
                    Charge::PerBody => traffic[slot] += (spans[0] * spans[1]) as u64,
                    Charge::Sweep { other } => {
                        traffic[slot] += spans[other] as u64 * inner_elems;
                    }
                    Charge::OnChange { other } => {
                        if last[slot] != body[other] {
                            last[slot] = body[other];
                            traffic[slot] += spans[other] as u64 * inner_elems;
                        }
                    }
                }
            }
            let mut it = [i0, i1, 0];
            for i2 in 0..lv[2].count {
                it[2] = i2;
                visit(it[pos[0]], it[pos[1]], it[pos[2]]);
            }
        }
    }
    MemoryAccess::new(traffic[0], traffic[1], traffic[2])
}

/// Counters-only nest measurement via the hoisted accounting *walk* — the
/// exact loop structure [`execute_nest_with`] runs, minus all value
/// movement. This is the path to benchmark against [`measure_nest`] (the
/// closed form); scoring call sites should use [`measure_nest`].
pub fn measure_nest_walk(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
    nest_traffic(mm, nest, |_, _, _| {})
}

/// Counters-only nest measurement ([`crate::SimMode::TrafficOnly`]) in
/// closed form: no loops over tiles at all. Each operand's traffic is its
/// footprint times the number of maximal constant-residency runs the walk
/// would produce, with edge-clamped axis sums (`(count−1)·full + edge`)
/// pricing interior tiles analytically and the ragged fringe in one term.
/// The result is byte-identical to the walk ([`measure_nest_walk`], and
/// therefore to a full replay and to the frozen naive oracle) — proven by
/// the `traffic_differential` suite across random and boundary tilings.
///
/// Derivation, per operand slot with its absent dimension at loop level
/// `r` and level iteration counts `c0, c1, c2` (single-iteration loops are
/// transparent, exactly as in the analytical model's reload multiplier):
///
/// * `r = 2` (absent innermost): the key is the body index — one run per
///   body, and the runs tile the footprint exactly once;
/// * `r = 1`: a multi-iteration innermost loop re-streams the footprint on
///   every middle iteration (`c1` reloads), otherwise one stream;
/// * `r = 0`: any iterating inner loop forces `c0` reloads, otherwise one.
pub fn measure_nest(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
    let pos = MmDim::ALL.map(|d| {
        nest.order
            .iter()
            .position(|x| *x == d)
            .expect("order holds every dim")
    });
    let lv = nest.order.map(|d| DimSpans::new(mm.dim(d), nest.tiling.tile(d)));

    let mut traffic = [0u64; 3]; // A, B, C
    for (slot, op) in Operand::ALL.iter().enumerate() {
        let [da, db] = op.dims();
        let (qa, qb) = (pos[da as usize], pos[db as usize]);
        let reloads = match 3 - qa - qb {
            2 => 1,
            1 if lv[2].count > 1 => lv[1].count as u64,
            0 if lv[1].count > 1 || lv[2].count > 1 => lv[0].count as u64,
            _ => 1,
        };
        traffic[slot] = reloads * lv[qa].total() * lv[qb].total();
    }
    MemoryAccess::new(traffic[0], traffic[1], traffic[2])
}

/// Full nest replay through a caller-provided [`SimScratch`]: identical
/// semantics to [`execute_nest`], but every tile buffer and the output
/// accumulation live in `scratch`, so replaying many nests of one shape
/// (the simulated-fitness hot path) allocates only on the first call.
/// The product is left in `scratch.out()`; the measured traffic returns.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest_with(
    a: &Matrix,
    b: &Matrix,
    mm: MatMul,
    nest: &LoopNest,
    scratch: &mut SimScratch,
) -> MemoryAccess {
    assert_eq!((a.rows() as u64, a.cols() as u64), (mm.m(), mm.k()));
    assert_eq!((b.rows() as u64, b.cols() as u64), (mm.k(), mm.l()));
    let t_of = |d: MmDim| nest.tiling.tile(d).min(mm.dim(d)) as usize;
    let (tm, tk, tl) = (t_of(MmDim::M), t_of(MmDim::K), t_of(MmDim::L));
    let SimScratch {
        a_tile,
        b_tile,
        prod,
        out,
        ..
    } = scratch;
    out.reset_zeroed(mm.m() as usize, mm.l() as usize);
    nest_traffic(mm, nest, |im, ik, il| {
        // Compute this tile's contribution (golden arithmetic; the
        // systolic path is validated by `execute_on_cu`).
        a.tile_into(im * tm, ik * tk, tm, tk, a_tile);
        b.tile_into(ik * tk, il * tl, tk, tl, b_tile);
        a_tile.matmul_into(b_tile, prod);
        out.add_tile(im * tm, il * tl, prod);
    })
}

/// Replays `nest` over `a × b`, fetching one tile per operand into a
/// modeled buffer and charging a full (edge-clamped) tile of traffic on
/// every tile switch; the output tile is charged per residency visit,
/// matching the paper's accounting.
///
/// Convenience wrapper over [`execute_nest_with`] with a fresh scratch;
/// replay loops should hold a [`SimScratch`] and call that directly.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest(a: &Matrix, b: &Matrix, mm: MatMul, nest: &LoopNest) -> NestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_nest_with(a, b, mm, nest, &mut scratch);
    NestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// Wavefront macro-stepped nest replay through a caller-provided
/// [`SimScratch`]: the product lands in `scratch.out()` via one
/// cache-blocked `matmul_into` pass and the traffic comes from the closed
/// form — no tile walk, no per-cycle stepping. Byte-identical to
/// [`execute_nest_with`] on both the product and every counter (the
/// product is tiling-invariant exact integer arithmetic; the counters are
/// the proven closed form), as pinned by `tests/macro_step_differential`.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest_macro_with(
    a: &Matrix,
    b: &Matrix,
    mm: MatMul,
    nest: &LoopNest,
    scratch: &mut SimScratch,
) -> MemoryAccess {
    assert_eq!((a.rows() as u64, a.cols() as u64), (mm.m(), mm.k()));
    assert_eq!((b.rows() as u64, b.cols() as u64), (mm.k(), mm.l()));
    a.matmul_into(b, &mut scratch.out);
    measure_nest(mm, nest)
}

/// Wavefront macro-stepped [`execute_nest`]: convenience wrapper over
/// [`execute_nest_macro_with`] with a fresh scratch.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest_macro(a: &Matrix, b: &Matrix, mm: MatMul, nest: &LoopNest) -> NestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_nest_macro_with(a, b, mm, nest, &mut scratch);
    NestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// The result of replaying a fused nest: the chain output and the measured
/// per-external-tensor traffic.
#[derive(Debug, Clone)]
pub struct FusedNestRun {
    /// The computed `E = (A × B) × D`.
    pub out: Matrix,
    /// Measured traffic per external tensor, in `ExtTensor::ALL` order
    /// (`A, B, D, E`), comparable to `FusedNest::evaluate`.
    pub measured: [u64; 4],
}

/// One step of the fused replay schedule, as visited by [`fused_traffic`].
enum FusedStep {
    /// A new shared tile begins with the given clamped `(M, L)` spans.
    Begin(usize, usize),
    /// One producer reduction step `ik` inside shared tile `(im, il)`.
    Producer(usize, usize, usize),
    /// One consumer drain step `inn` inside shared tile `(im, il)`.
    Consumer(usize, usize, usize),
}

/// The fused analogue of [`nest_traffic`], strength-reduced the same way:
/// one accounting walk shared by [`execute_fused_nest_with`] and
/// [`measure_fused_nest_walk`]. Every external tensor is anchored on
/// exactly one shared loop (`M` for `A`/`E`, `L` for `B`/`D`) and swept by
/// exactly one phase loop (`K` for the producer tensors, `N` for the
/// consumer tensors), so its residency charges resolve at the shared-tile
/// boundary: a multi-iteration phase loop re-streams
/// `span(anchor) × D_phase` on every shared tile, a single-iteration phase
/// loop charges only when the anchor's tile index changes. The phase loops
/// themselves carry only `visit` calls. `visit` receives every schedule
/// step in order; traffic accounting is independent of it.
fn fused_traffic(
    pair: &FusedPair,
    nest: &FusedNest,
    mut visit: impl FnMut(FusedStep),
) -> [u64; 4] {
    use fusecu_fusion::FusedDim;
    let gd = |d: FusedDim| DimSpans::new(pair.dim(d), nest.tiling.clamped_tile(pair, d));
    let (m, k, l, n) = (
        gd(FusedDim::M),
        gd(FusedDim::K),
        gd(FusedDim::L),
        gd(FusedDim::N),
    );
    let outer_is_m = nest.shared_order()[0] == FusedDim::M;
    let (outer, inner) = if outer_is_m { (m, l) } else { (l, m) };

    // Per-slot (A, B, D, E) hoisted charge parameters: the phase loop's
    // element total and whether it forces a re-stream per shared tile.
    let phase_elems = [k.total(), k.total(), n.total(), n.total()];
    let sweep = [k.count > 1, k.count > 1, n.count > 1, n.count > 1];

    let mut traffic = [0u64; 4];
    let mut last = [usize::MAX; 4]; // anchor tracking, per slot
    for i0 in 0..outer.count {
        for i1 in 0..inner.count {
            let (im, il) = if outer_is_m { (i0, i1) } else { (i1, i0) };
            let (sm, sl) = (m.span(im), l.span(il));
            let anchor = [im, il, il, im];
            let anchor_span = [sm, sl, sl, sm];
            for slot in 0..4 {
                if sweep[slot] || last[slot] != anchor[slot] {
                    last[slot] = anchor[slot];
                    traffic[slot] += anchor_span[slot] as u64 * phase_elems[slot];
                }
            }
            visit(FusedStep::Begin(sm, sl));
            // Producer phase: accumulate the C tile in "registers".
            for ik in 0..k.count {
                visit(FusedStep::Producer(im, il, ik));
            }
            // Consumer phase: drain the C tile through D into E.
            for inn in 0..n.count {
                visit(FusedStep::Consumer(im, il, inn));
            }
        }
    }
    traffic
}

/// Counters-only fused measurement via the hoisted accounting *walk* — the
/// exact loop structure [`execute_fused_nest_with`] runs, minus all value
/// movement. Benchmark counterpart of [`measure_fused_nest`] (the closed
/// form); scoring call sites should use [`measure_fused_nest`]. Traffic is
/// in `ExtTensor::ALL` order (`A, B, D, E`).
pub fn measure_fused_nest_walk(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
    fused_traffic(pair, nest, |_| {})
}

/// Counters-only fused measurement ([`crate::SimMode::TrafficOnly`]) in
/// closed form — the fused analogue of [`measure_nest`], byte-identical to
/// the walk and the frozen naive oracle (proven by the
/// `traffic_differential` suite). Traffic is in `ExtTensor::ALL` order
/// (`A, B, D, E`).
///
/// Each external tensor spans one shared (anchor) dimension and one phase
/// dimension; with `n_other` the iteration count of the *other* shared
/// loop, the walk produces:
///
/// * `n_other` footprint streams when the tensor's phase loop iterates
///   more than once (the phase re-streams it inside every shared tile);
/// * `n_other` streams when the anchor sits on the **inner** shared loop
///   and iterates (each outer iteration revisits every anchor tile);
/// * one stream otherwise (all revisits hit the resident tile).
pub fn measure_fused_nest(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
    use fusecu_fusion::FusedDim;
    let gd = |d: FusedDim| DimSpans::new(pair.dim(d), nest.tiling.clamped_tile(pair, d));
    let (m, k, l, n) = (
        gd(FusedDim::M),
        gd(FusedDim::K),
        gd(FusedDim::L),
        gd(FusedDim::N),
    );
    let outer_is_m = nest.shared_order()[0] == FusedDim::M;
    let (outer_count, inner_count) = if outer_is_m {
        (m.count, l.count)
    } else {
        (l.count, m.count)
    };

    // Slots in `ExtTensor::ALL` order: (anchor, phase, anchor-is-outer).
    let slots = [
        (m, k, outer_is_m),  // A = M×K, anchored on the M shared loop
        (l, k, !outer_is_m), // B = K×L, anchored on L
        (l, n, !outer_is_m), // D = L×N, anchored on L
        (m, n, outer_is_m),  // E = M×N, anchored on M
    ];
    slots.map(|(anchor, phase, anchor_is_outer)| {
        let reloads = if phase.count > 1 || (!anchor_is_outer && anchor.count > 1) {
            (if anchor_is_outer { inner_count } else { outer_count }) as u64
        } else {
            1
        };
        reloads * anchor.total() * phase.total()
    })
}

/// Full fused replay through a caller-provided [`SimScratch`]: identical
/// semantics to [`execute_fused_nest`], with every tile buffer (including
/// the modeled `C` register file) and the output accumulation living in
/// `scratch`. The chain output is left in `scratch.out()`; the measured
/// per-tensor traffic returns.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest_with(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
    scratch: &mut SimScratch,
) -> [u64; 4] {
    use fusecu_fusion::FusedDim;
    let dims = |t: FusedDim| pair.dim(t) as usize;
    assert_eq!((a.rows(), a.cols()), (dims(FusedDim::M), dims(FusedDim::K)));
    assert_eq!((b.rows(), b.cols()), (dims(FusedDim::K), dims(FusedDim::L)));
    assert_eq!((d.rows(), d.cols()), (dims(FusedDim::L), dims(FusedDim::N)));
    let tile = |t: FusedDim| nest.tiling.clamped_tile(pair, t) as usize;
    let (tm, tk, tl, tn) = (
        tile(FusedDim::M),
        tile(FusedDim::K),
        tile(FusedDim::L),
        tile(FusedDim::N),
    );
    let SimScratch {
        a_tile,
        b_tile,
        prod,
        c_tile,
        out,
    } = scratch;
    out.reset_zeroed(dims(FusedDim::M), dims(FusedDim::N));
    fused_traffic(pair, nest, |step| match step {
        FusedStep::Begin(sm, sl) => c_tile.reset_zeroed(sm, sl),
        FusedStep::Producer(im, il, ik) => {
            a.tile_into(im * tm, ik * tk, tm, tk, a_tile);
            b.tile_into(ik * tk, il * tl, tk, tl, b_tile);
            a_tile.matmul_into(b_tile, prod);
            c_tile.add_tile(0, 0, prod);
        }
        FusedStep::Consumer(im, il, inn) => {
            d.tile_into(il * tl, inn * tn, tl, tn, b_tile);
            c_tile.matmul_into(b_tile, prod);
            out.add_tile(im * tm, inn * tn, prod);
        }
    })
}

/// Replays a fused nest over real matrices: shared tile loops over the
/// intermediate's dimensions, a producer phase accumulating each `C` tile
/// in a modeled register file, and a consumer phase draining it into `E` —
/// the intermediate never counts as traffic. External tensors charge one
/// (edge-clamped) tile on every residency switch, output per visit.
///
/// Convenience wrapper over [`execute_fused_nest_with`] with a fresh
/// scratch.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
) -> FusedNestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_fused_nest_with(a, b, d, pair, nest, &mut scratch);
    FusedNestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// Wavefront macro-stepped fused replay through a caller-provided
/// [`SimScratch`]: the composed product `E = (A × B) × D` lands in
/// `scratch.out()` via two cache-blocked `matmul_into` passes (the
/// intermediate reuses the scratch's modeled register file `c_tile`) and
/// the traffic comes from the closed form. Byte-identical to
/// [`execute_fused_nest_with`] on the output and all four counters.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest_macro_with(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
    scratch: &mut SimScratch,
) -> [u64; 4] {
    use fusecu_fusion::FusedDim;
    let dims = |t: FusedDim| pair.dim(t) as usize;
    assert_eq!((a.rows(), a.cols()), (dims(FusedDim::M), dims(FusedDim::K)));
    assert_eq!((b.rows(), b.cols()), (dims(FusedDim::K), dims(FusedDim::L)));
    assert_eq!((d.rows(), d.cols()), (dims(FusedDim::L), dims(FusedDim::N)));
    a.matmul_into(b, &mut scratch.c_tile);
    scratch.c_tile.matmul_into(d, &mut scratch.out);
    measure_fused_nest(pair, nest)
}

/// Wavefront macro-stepped [`execute_fused_nest`]: convenience wrapper
/// over [`execute_fused_nest_macro_with`] with a fresh scratch.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest_macro(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
) -> FusedNestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_fused_nest_macro_with(a, b, d, pair, nest, &mut scratch);
    FusedNestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// The result of replaying a k-ary fused chain: the chain output and the
/// measured per-external-tensor traffic.
#[derive(Debug, Clone)]
pub struct FusedChainRun {
    /// The computed `O = X × W_0 × … × W_{k-1}`.
    pub out: Matrix,
    /// Measured traffic per external tensor, in chain slot order
    /// (`X, W_0 … W_{k-1}, O`), comparable to `ChainNest::evaluate`.
    pub measured: Vec<u64>,
}

/// One step of the k-ary chain replay schedule, as visited by
/// [`fused_chain_traffic`].
enum FusedChainStep {
    /// A new shared `M` row panel begins with the given clamped span:
    /// every interior panel resets.
    BeginPanel(usize),
    /// One tile step `it` of phase `phase` inside row panel `im`:
    /// reduction phases accumulate into the resident interior panel,
    /// the final phase drains through `W_{k-1}` into `O`.
    Phase(usize, usize, usize),
}

/// The k-ary analogue of [`fused_traffic`]: one hoisted accounting walk
/// shared by [`execute_fused_chain`] and [`measure_fused_chain_walk`].
/// `X` and `O` tiles key on `(im, it)` — every visit is fresh, so each row
/// panel streams exactly its `sm × c` slice. The weight `W_i` keys on its
/// phase tile index alone: a multi-iteration phase re-streams the whole
/// weight inside every row panel, a single-iteration phase keeps its one
/// tile resident across the entire run and charges once — exactly the
/// analytical model's reload multiplier, so the charges hoist to the
/// row-panel boundary and the phase loops carry only `visit` calls.
fn fused_chain_traffic(
    chain: &FusedChain,
    nest: &ChainNest,
    mut visit: impl FnMut(FusedChainStep),
) -> Vec<u64> {
    let k = chain.depth();
    let m = chain.m() as usize;
    let t_m = nest.clamped_t_m(chain) as usize;
    let n_m = nest.m_iterations(chain) as usize;

    let mut traffic = vec![0u64; k + 2];
    let mut w_loaded = vec![false; k];
    for im in 0..n_m {
        let sm = t_m.min(m - im * t_m);
        traffic[0] += sm as u64 * chain.col(0); // X row slice, streamed once
        traffic[k + 1] += sm as u64 * chain.col(k); // O row slice, written once
        visit(FusedChainStep::BeginPanel(sm));
        for phase in 0..k {
            let iters = nest.phase_iterations(chain, phase) as usize;
            if iters > 1 || !w_loaded[phase] {
                w_loaded[phase] = true;
                traffic[1 + phase] += chain.weight_elems(phase);
            }
            for it in 0..iters {
                visit(FusedChainStep::Phase(phase, im, it));
            }
        }
    }
    traffic
}

/// Counters-only chain measurement via the hoisted accounting *walk* — the
/// exact loop structure [`execute_fused_chain`] runs, minus all value
/// movement. Benchmark counterpart of [`measure_fused_chain`] (the closed
/// form). Traffic is in chain slot order (`X, W_0 … W_{k-1}, O`).
pub fn measure_fused_chain_walk(chain: &FusedChain, nest: &ChainNest) -> Vec<u64> {
    fused_chain_traffic(chain, nest, |_| {})
}

/// Counters-only chain measurement in closed form — the k-ary analogue of
/// [`measure_fused_nest`], byte-identical to the walk and the frozen naive
/// oracle ([`oracle::measure_fused_chain`]). Traffic is in chain slot
/// order (`X, W_0 … W_{k-1}, O`):
///
/// * `X` and `O` key on the row panel and stream exactly once;
/// * `W_i` re-streams on every row panel when its phase loop iterates
///   more than once, otherwise its single tile stays resident for the
///   whole run — one load.
pub fn measure_fused_chain(chain: &FusedChain, nest: &ChainNest) -> Vec<u64> {
    let k = chain.depth();
    let n_m = nest.m_iterations(chain);
    let mut traffic = Vec::with_capacity(k + 2);
    traffic.push(chain.m() * chain.col(0));
    for i in 0..k {
        let reloads = if nest.phase_iterations(chain, i) > 1 {
            n_m
        } else {
            1
        };
        traffic.push(chain.weight_elems(i) * reloads);
    }
    traffic.push(chain.m() * chain.col(k));
    traffic
}

/// Replays a k-ary fused chain over real matrices: a shared loop over `M`
/// row panels, reduction phases accumulating each interior panel
/// `Y_i[sm, c_{i+1}]` on chip (they never count as traffic), and a final
/// phase draining the last panel through `W_{k-1}` into `O`. External
/// tensors charge one (edge-clamped) tile on every residency switch.
///
/// # Panics
///
/// Panics when `ws` does not hold exactly `chain.depth()` weights or any
/// matrix does not match the chain's dimensions.
pub fn execute_fused_chain(
    x: &Matrix,
    ws: &[Matrix],
    chain: &FusedChain,
    nest: &ChainNest,
) -> FusedChainRun {
    let k = chain.depth();
    assert_eq!(ws.len(), k, "one weight per chained matmul");
    assert_eq!(
        (x.rows() as u64, x.cols() as u64),
        (chain.m(), chain.col(0))
    );
    for (i, w) in ws.iter().enumerate() {
        assert_eq!(
            (w.rows() as u64, w.cols() as u64),
            (chain.col(i), chain.col(i + 1)),
            "weight {i}"
        );
    }
    let t_m = nest.clamped_t_m(chain) as usize;
    let tiles: Vec<usize> = (0..k)
        .map(|i| nest.clamped_phase_tile(chain, i) as usize)
        .collect();
    let mut out = Matrix::zero(chain.m() as usize, chain.col(k) as usize);
    // The resident interior panels Y_0 … Y_{k-2}; phase i reads Y_{i-1}
    // (or X) and accumulates into Y_i without touching memory. Sized per
    // row panel by the BeginPanel reset.
    let mut panels: Vec<Matrix> = (0..k - 1).map(|_| Matrix::zero(1, 1)).collect();
    let mut sm_cur = 0usize;
    let measured = fused_chain_traffic(chain, nest, |step| match step {
        FusedChainStep::BeginPanel(sm) => {
            sm_cur = sm;
            for (i, p) in panels.iter_mut().enumerate() {
                p.reset_zeroed(sm, chain.col(i + 1) as usize);
            }
        }
        FusedChainStep::Phase(phase, im, it) => {
            let t = tiles[phase];
            if phase + 1 == k {
                // Drain: O[:, it·t ..] += Y_{k-2} × W_{k-1} column tile.
                let w_cols = ws[k - 1].tile(0, it * t, chain.col(k - 1) as usize, t);
                let prod = panels[k - 2].matmul(&w_cols);
                out.add_tile(im * t_m, it * t, &prod);
            } else {
                // Reduce: Y_phase += (X | Y_{phase-1}) row slice × W rows.
                let src = if phase == 0 {
                    x.tile(im * t_m, it * t, t_m, t)
                } else {
                    panels[phase - 1].tile(0, it * t, sm_cur, t)
                };
                let w_rows = ws[phase].tile(it * t, 0, t, chain.col(phase + 1) as usize);
                let prod = src.matmul(&w_rows);
                panels[phase].add_tile(0, 0, &prod);
            }
        }
    });
    FusedChainRun { out, measured }
}

/// Wavefront macro-stepped [`execute_fused_chain`]: the chain output is
/// the left-to-right fold of cache-blocked direct matmuls (exact integer
/// arithmetic, so identical to the tiled panel replay bit for bit) and the
/// per-tensor traffic comes from the closed form
/// ([`measure_fused_chain`]). Byte-identical to [`execute_fused_chain`] on
/// the output and every counter.
///
/// # Panics
///
/// Panics when `ws` does not hold exactly `chain.depth()` weights or any
/// matrix does not match the chain's dimensions.
pub fn execute_fused_chain_macro(
    x: &Matrix,
    ws: &[Matrix],
    chain: &FusedChain,
    nest: &ChainNest,
) -> FusedChainRun {
    let k = chain.depth();
    assert_eq!(ws.len(), k, "one weight per chained matmul");
    assert_eq!(
        (x.rows() as u64, x.cols() as u64),
        (chain.m(), chain.col(0))
    );
    for (i, w) in ws.iter().enumerate() {
        assert_eq!(
            (w.rows() as u64, w.cols() as u64),
            (chain.col(i), chain.col(i + 1)),
            "weight {i}"
        );
    }
    let mut out = x.matmul(&ws[0]);
    for w in &ws[1..] {
        out = out.matmul(w);
    }
    FusedChainRun {
        out,
        measured: measure_fused_chain(chain, nest),
    }
}

/// The frozen naive accounting walks, kept as the in-crate reference
/// oracle for the strength-reduced paths above — the same role
/// `sim_throughput`'s `legacy` module plays for the allocating drivers.
/// These check every operand slot on every innermost iteration, exactly as
/// the pre-refactor drivers did; the differential suite and benchmark pin
/// the live walks and closed forms against them byte for byte.
///
/// One micro-fix is applied relative to the historical code: dimension
/// sizes, clamped tiles, and order positions are hoisted out of the
/// `span`/`at` closures into arrays computed once per call, so timing
/// differentials compare accounting *strategies* rather than repeated
/// `position()`/`tile()` lookups.
pub mod oracle {
    use fusecu_dataflow::{LoopNest, MemoryAccess};
    use fusecu_fusion::{ChainNest, ExtTensor, FusedChain, FusedDim, FusedNest, FusedPair};
    use fusecu_ir::{MatMul, MmDim, Operand};

    /// Naive-walk nest measurement: the frozen reference for
    /// [`super::measure_nest`] and [`super::measure_nest_walk`].
    pub fn measure_nest(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
        let dims = MmDim::ALL.map(|d| mm.dim(d) as usize);
        let tiles = MmDim::ALL.map(|d| nest.tiling.tile(d).min(mm.dim(d)) as usize);
        let pos = MmDim::ALL.map(|d| {
            nest.order
                .iter()
                .position(|x| *x == d)
                .expect("order holds every dim")
        });
        let span = |d: MmDim, i: usize| {
            let t = tiles[d as usize];
            t.min(dims[d as usize] - i * t)
        };
        let counts = nest.order.map(|d| nest.tiling.iterations(mm, d) as usize);

        let mut traffic = [0u64; 3]; // A, B, C
        let mut resident: [Option<(usize, usize)>; 3] = [None; 3];
        for i0 in 0..counts[0] {
            for i1 in 0..counts[1] {
                for i2 in 0..counts[2] {
                    let iter = [i0, i1, i2];
                    let at = |d: MmDim| iter[pos[d as usize]];
                    for (slot, op) in Operand::ALL.iter().enumerate() {
                        let [da, db] = op.dims();
                        let key = (at(da), at(db));
                        if resident[slot] != Some(key) {
                            traffic[slot] += (span(da, key.0) * span(db, key.1)) as u64;
                            resident[slot] = Some(key);
                        }
                    }
                }
            }
        }
        MemoryAccess::new(traffic[0], traffic[1], traffic[2])
    }

    /// Naive-walk fused measurement (`ExtTensor::ALL` order): the frozen
    /// reference for [`super::measure_fused_nest`] and
    /// [`super::measure_fused_nest_walk`].
    pub fn measure_fused_nest(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
        let dims = FusedDim::ALL.map(|d| pair.dim(d) as usize);
        let tiles = FusedDim::ALL.map(|d| nest.tiling.clamped_tile(pair, d) as usize);
        let iters = FusedDim::ALL.map(|d| nest.tiling.iterations(pair, d) as usize);
        let span = |d: FusedDim, i: usize| {
            let t = tiles[d as usize];
            t.min(dims[d as usize] - i * t)
        };
        let it = |d: FusedDim| iters[d as usize];

        let [s0, s1] = nest.shared_order();
        let mut traffic = [0u64; 4];
        let mut resident: [Option<(usize, usize)>; 4] = [None; 4];
        let mut touch = |slot: usize, t: ExtTensor, key: (usize, usize)| {
            if resident[slot] != Some(key) {
                let [da, db] = t.dims();
                traffic[slot] += (span(da, key.0) * span(db, key.1)) as u64;
                resident[slot] = Some(key);
            }
        };
        for i0 in 0..it(s0) {
            for i1 in 0..it(s1) {
                let (im, il) = if s0 == FusedDim::M { (i0, i1) } else { (i1, i0) };
                for ik in 0..it(FusedDim::K) {
                    touch(0, ExtTensor::A, (im, ik));
                    touch(1, ExtTensor::B, (ik, il));
                }
                for inn in 0..it(FusedDim::N) {
                    touch(2, ExtTensor::D, (il, inn));
                    touch(3, ExtTensor::E, (im, inn));
                }
            }
        }
        traffic
    }

    /// Naive-walk k-ary chain measurement (chain slot order
    /// `X, W_0 … W_{k-1}, O`): the frozen reference for
    /// [`super::measure_fused_chain`] and
    /// [`super::measure_fused_chain_walk`]. Every residency key is checked
    /// on every innermost iteration, exactly like the other oracles: `X`
    /// and `O` tiles key on `(im, it)`, weight tiles on their phase index
    /// alone (so a single-tile phase stays resident across row panels).
    pub fn measure_fused_chain(chain: &FusedChain, nest: &ChainNest) -> Vec<u64> {
        let k = chain.depth();
        let m = chain.m();
        let t_m = nest.clamped_t_m(chain) as usize;
        let n_m = nest.m_iterations(chain) as usize;
        let span = |dim: u64, tile: usize, i: usize| tile.min(dim as usize - i * tile);
        let mut traffic = vec![0u64; k + 2];
        let mut resident: Vec<Option<(usize, usize)>> = vec![None; k + 2];
        for im in 0..n_m {
            let sm = span(m, t_m, im);
            for phase in 0..k {
                let tile = nest.clamped_phase_tile(chain, phase) as usize;
                let dim = ChainNest::phase_dim(chain, phase);
                let iters = nest.phase_iterations(chain, phase) as usize;
                for it in 0..iters {
                    let sp = span(dim, tile, it);
                    if phase == 0 && resident[0] != Some((im, it)) {
                        traffic[0] += (sm * sp) as u64;
                        resident[0] = Some((im, it));
                    }
                    let w_span = if phase + 1 == k {
                        chain.col(k - 1) as usize * sp
                    } else {
                        sp * chain.col(phase + 1) as usize
                    };
                    if resident[1 + phase] != Some((0, it)) {
                        traffic[1 + phase] += w_span as u64;
                        resident[1 + phase] = Some((0, it));
                    }
                    if phase + 1 == k {
                        let slot = k + 1;
                        if resident[slot] != Some((im, it)) {
                            traffic[slot] += (sm * sp) as u64;
                            resident[slot] = Some((im, it));
                        }
                    }
                }
            }
        }
        traffic
    }
}

/// Runs a full matmul through a CU by tiling to the array edge with the
/// requested stationary, accumulating partial products across the reduction
/// tiles. Returns the product and the summed systolic cycle count.
///
/// # Panics
///
/// Panics on dimension mismatch between `a` and `b`.
pub fn execute_on_cu(a: &Matrix, b: &Matrix, stationary: Stationary, n: usize) -> (Matrix, u64) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, l) = (a.rows(), a.cols(), b.cols());
    let mut cu = CuArray::new(n, stationary);
    let mut out = Matrix::zero(m, l);
    let mut cycles = 0u64;
    let step = |d: usize| d.div_ceil(n);
    match stationary {
        Stationary::Ws => {
            for ik in 0..step(k) {
                for il in 0..step(l) {
                    let b_tile = b.tile(ik * n, il * n, n, n);
                    let a_cols = a.tile(0, ik * n, m, n);
                    let r = cu.run_ws(&a_cols, &b_tile);
                    out.add_tile(0, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Is => {
            for im in 0..step(m) {
                for ik in 0..step(k) {
                    let a_tile = a.tile(im * n, ik * n, n, n);
                    let b_rows = b.tile(ik * n, 0, n, l);
                    let r = cu.run_is(&a_tile, &b_rows);
                    out.add_tile(im * n, 0, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Os => {
            for im in 0..step(m) {
                for il in 0..step(l) {
                    let a_rows = a.tile(im * n, 0, n, k);
                    let b_cols = b.tile(0, il * n, k, n);
                    // One OS pass accumulates the whole reduction on-array.
                    let r = cu.run_os(&a_rows, &b_cols);
                    out.set_tile(im * n, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
    }
    (out, cycles)
}

/// Wavefront macro-stepped [`execute_on_cu`]: the same tile schedule per
/// stationary mode, but each tile pass is a macro run — the tile's product
/// lands via the direct kernel and its cycle count comes from the skew
/// algebra. Byte-identical to [`execute_on_cu`] on the product and the
/// summed cycle count.
///
/// # Panics
///
/// Panics on dimension mismatch between `a` and `b`.
pub fn execute_on_cu_macro(
    a: &Matrix,
    b: &Matrix,
    stationary: Stationary,
    n: usize,
) -> (Matrix, u64) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, l) = (a.rows(), a.cols(), b.cols());
    let mut cu = CuArray::new(n, stationary);
    let mut out = Matrix::zero(m, l);
    let mut cycles = 0u64;
    let step = |d: usize| d.div_ceil(n);
    match stationary {
        Stationary::Ws => {
            for ik in 0..step(k) {
                for il in 0..step(l) {
                    let b_tile = b.tile(ik * n, il * n, n, n);
                    let a_cols = a.tile(0, ik * n, m, n);
                    let r = cu.run_ws_macro(&a_cols, &b_tile);
                    out.add_tile(0, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Is => {
            for im in 0..step(m) {
                for ik in 0..step(k) {
                    let a_tile = a.tile(im * n, ik * n, n, n);
                    let b_rows = b.tile(ik * n, 0, n, l);
                    let r = cu.run_is_macro(&a_tile, &b_rows);
                    out.add_tile(im * n, 0, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Os => {
            for im in 0..step(m) {
                for il in 0..step(l) {
                    let a_rows = a.tile(im * n, 0, n, k);
                    let b_cols = b.tile(0, il * n, k, n);
                    let r = cu.run_os_macro(&a_rows, &b_cols);
                    out.set_tile(im * n, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
    }
    (out, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::{CostModel, Tiling};

    #[test]
    fn nest_replay_matches_golden_product() {
        let mm = MatMul::new(10, 7, 9);
        let a = Matrix::pseudo_random(10, 7, 31);
        let b = Matrix::pseudo_random(7, 9, 32);
        let nest = LoopNest::new([MmDim::M, MmDim::L, MmDim::K], Tiling::new(3, 2, 4));
        let run = execute_nest(&a, &b, mm, &nest);
        assert_eq!(run.out, a.matmul(&b));
    }

    #[test]
    fn measured_traffic_equals_analytical_model() {
        // The execution-level proof of the cost model: replay many nests
        // and require exact agreement with CostModel::evaluate.
        let model = CostModel::paper();
        let mm = MatMul::new(12, 10, 8);
        let a = Matrix::pseudo_random(12, 10, 41);
        let b = Matrix::pseudo_random(10, 8, 42);
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(1, 1, 1),
                Tiling::new(3, 2, 4),
                Tiling::new(5, 10, 3),
                Tiling::new(12, 1, 8),
                Tiling::new(7, 7, 7),
            ] {
                let nest = LoopNest::new(order, tiling);
                let run = execute_nest(&a, &b, mm, &nest);
                assert_eq!(
                    run.measured,
                    model.evaluate(mm, &nest),
                    "order {order:?} tiling {tiling}"
                );
                assert_eq!(run.out, a.matmul(&b));
            }
        }
    }

    #[test]
    fn traffic_only_nest_counters_match_full_mode() {
        // SimMode::TrafficOnly must be byte-identical to the full replay's
        // counters across orders and tilings — it is the same walk.
        let mm = MatMul::new(12, 10, 8);
        let a = Matrix::pseudo_random(12, 10, 41);
        let b = Matrix::pseudo_random(10, 8, 42);
        let mut scratch = SimScratch::new();
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(1, 1, 1),
                Tiling::new(3, 2, 4),
                Tiling::new(5, 10, 3),
                Tiling::new(12, 1, 8),
            ] {
                let nest = LoopNest::new(order, tiling);
                let full = execute_nest_with(&a, &b, mm, &nest, &mut scratch);
                assert_eq!(
                    measure_nest(mm, &nest),
                    full,
                    "order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn traffic_only_fused_counters_match_full_mode() {
        use fusecu_fusion::{FusedNest, FusedPair, FusedTiling};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
        let a = Matrix::pseudo_random(10, 6, 81);
        let b = Matrix::pseudo_random(6, 12, 82);
        let d = Matrix::pseudo_random(12, 8, 83);
        let mut scratch = SimScratch::new();
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [(1u64, 1u64, 1u64, 1u64), (5, 2, 4, 3), (4, 6, 12, 2)] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let full = execute_fused_nest_with(&a, &b, &d, &pair, &nest, &mut scratch);
                assert_eq!(measure_fused_nest(&pair, &nest), full, "{nest}");
            }
        }
    }

    #[test]
    fn nest_accounting_tiers_agree() {
        // Naive oracle == hoisted walk == closed form, including ragged
        // edges, untiled dims, unit tiles, and single-tile axes (the
        // OnChange plan's corner cases). The dedicated proptest suite
        // covers random genomes; this pins a deterministic grid.
        let mm = MatMul::new(12, 10, 8);
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(1, 1, 1),
                Tiling::new(3, 2, 4),
                Tiling::new(5, 10, 3),
                Tiling::new(12, 1, 8),
                Tiling::new(7, 7, 7),
                Tiling::new(12, 10, 8),
                Tiling::new(12, 10, 3),
                Tiling::new(5, 10, 8),
            ] {
                let nest = LoopNest::new(order, tiling);
                let naive = oracle::measure_nest(mm, &nest);
                assert_eq!(
                    measure_nest_walk(mm, &nest),
                    naive,
                    "walk vs naive: order {order:?} tiling {tiling}"
                );
                assert_eq!(
                    measure_nest(mm, &nest),
                    naive,
                    "closed form vs naive: order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn fused_accounting_tiers_agree() {
        use fusecu_fusion::{FusedNest, FusedPair, FusedTiling};
        let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [
                (1u64, 1u64, 1u64, 1u64),
                (5, 2, 4, 3),
                (4, 6, 12, 2),
                (10, 6, 12, 8),
                (10, 3, 12, 8),
                (3, 6, 5, 8),
                (10, 6, 5, 3),
            ] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let naive = oracle::measure_fused_nest(&pair, &nest);
                assert_eq!(
                    measure_fused_nest_walk(&pair, &nest),
                    naive,
                    "walk vs naive: {nest}"
                );
                assert_eq!(
                    measure_fused_nest(&pair, &nest),
                    naive,
                    "closed form vs naive: {nest}"
                );
            }
        }
    }

    #[test]
    fn shared_scratch_replays_are_identical_to_fresh_runs() {
        // One scratch reused across many nests must never bleed state.
        let mm = MatMul::new(9, 11, 7);
        let a = Matrix::pseudo_random(9, 11, 51);
        let b = Matrix::pseudo_random(11, 7, 52);
        let mut scratch = SimScratch::new();
        for order in LoopNest::orders() {
            let nest = LoopNest::new(order, Tiling::new(4, 3, 5));
            let reused = execute_nest_with(&a, &b, mm, &nest, &mut scratch);
            let fresh = execute_nest(&a, &b, mm, &nest);
            assert_eq!(reused, fresh.measured, "order {order:?}");
            assert_eq!(scratch.out(), &fresh.out, "order {order:?}");
        }
    }

    #[test]
    fn fused_nest_replay_matches_golden_and_model() {
        use fusecu_fusion::{ExtTensor, FusedNest, FusedPair, FusedTiling};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
        let a = Matrix::pseudo_random(10, 6, 81);
        let b = Matrix::pseudo_random(6, 12, 82);
        let d = Matrix::pseudo_random(12, 8, 83);
        let golden = a.matmul(&b).matmul(&d);
        let model = CostModel::paper();
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [
                (1u64, 1u64, 1u64, 1u64),
                (5, 2, 4, 3),
                (10, 6, 3, 8),
                (4, 6, 12, 2),
                (10, 3, 12, 8),
            ] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let run = execute_fused_nest(&a, &b, &d, &pair, &nest);
                assert_eq!(run.out, golden, "{nest}");
                let predicted = nest.evaluate(&model, &pair);
                for (i, t) in ExtTensor::ALL.iter().enumerate() {
                    assert_eq!(
                        run.measured[i],
                        predicted.of(*t),
                        "{nest} tensor {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_fused_nest_replays_exactly() {
        use fusecu_fusion::{optimize_pair, ExtTensor, FusedPair};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(24, 8, 24), MatMul::new(24, 24, 8)).unwrap();
        let a = Matrix::pseudo_random(24, 8, 91);
        let b = Matrix::pseudo_random(8, 24, 92);
        let d = Matrix::pseudo_random(24, 8, 93);
        let model = CostModel::paper();
        for bs in [16u64, 120, 800] {
            if let Some(fused) = optimize_pair(&model, pair, bs) {
                let run = execute_fused_nest(&a, &b, &d, &pair, fused.nest());
                assert_eq!(run.out, a.matmul(&b).matmul(&d), "bs={bs}");
                let total: u64 = run.measured.iter().sum();
                assert_eq!(total, fused.total_ma(), "bs={bs}");
                let _ = ExtTensor::ALL;
            }
        }
    }

    /// The deterministic chain grid shared by the replay and tier tests:
    /// a handful of depths with ragged spans, swept over shared tiles and
    /// every untiled/tiled phase mask (widths 1 and 2 when tiled).
    fn chain_grid(
        mut check: impl FnMut(&fusecu_fusion::FusedChain, &fusecu_fusion::ChainNest),
    ) {
        use fusecu_fusion::{ChainNest, FusedChain};
        use fusecu_ir::MatMul;
        let mk = |m: u64, cols: &[u64]| {
            let mms: Vec<MatMul> = cols
                .windows(2)
                .map(|w| MatMul::new(m, w[0], w[1]))
                .collect();
            FusedChain::try_new(&mms).unwrap()
        };
        for c in [
            mk(7, &[5, 9, 4]),
            mk(12, &[4, 4, 10, 6]),
            mk(24, &[8, 24, 8, 16]),
            mk(5, &[13, 3, 6, 2, 7]),
        ] {
            let k = c.depth();
            for t_m in [1u64, 3, 5, 24] {
                for mask in 0u64..(1 << k) {
                    let tiles: Vec<u64> = (0..k)
                        .map(|i| {
                            if mask & (1 << i) != 0 {
                                ChainNest::phase_dim(&c, i)
                            } else {
                                1 + (i as u64 % 2)
                            }
                        })
                        .collect();
                    check(&c, &ChainNest::new(t_m, tiles));
                }
            }
        }
    }

    #[test]
    fn chain_accounting_tiers_agree() {
        // Naive oracle == hoisted walk == closed form == analytical model,
        // across depths 3..5, ragged spans, and untiled/tiled phase masks.
        let model = CostModel::paper();
        chain_grid(|c, nest| {
            let naive = oracle::measure_fused_chain(c, nest);
            assert_eq!(
                measure_fused_chain_walk(c, nest),
                naive,
                "walk vs naive: chain={c} nest={nest}"
            );
            assert_eq!(
                measure_fused_chain(c, nest),
                naive,
                "closed form vs naive: chain={c} nest={nest}"
            );
            assert_eq!(
                nest.evaluate(&model, c).per_tensor(),
                naive,
                "analytical model vs naive: chain={c} nest={nest}"
            );
        });
    }

    #[test]
    fn fused_chain_replay_matches_golden_and_model() {
        // Full replay: exact product and byte-exact agreement with the
        // analytical k-ary chain model, for every grid point.
        let model = CostModel::paper();
        chain_grid(|c, nest| {
            let k = c.depth();
            let x = Matrix::pseudo_random(c.m() as usize, c.col(0) as usize, 7);
            let ws: Vec<Matrix> = (0..k)
                .map(|i| {
                    Matrix::pseudo_random(
                        c.col(i) as usize,
                        c.col(i + 1) as usize,
                        8 + i as u64,
                    )
                })
                .collect();
            let golden = ws.iter().fold(x.clone(), |acc, w| acc.matmul(w));
            let run = execute_fused_chain(&x, &ws, c, nest);
            assert_eq!(run.out, golden, "chain={c} nest={nest}");
            assert_eq!(
                run.measured,
                nest.evaluate(&model, c).per_tensor(),
                "chain={c} nest={nest}"
            );
        });
    }

    #[test]
    fn optimized_fused_chain_replays_exactly() {
        use fusecu_fusion::{optimize_chain, FusedChain};
        use fusecu_ir::MatMul;
        // The mini-attention Q suffix: qk^T → pv → out_proj.
        let c = FusedChain::try_new(&[
            MatMul::new(24, 8, 24),
            MatMul::new(24, 24, 8),
            MatMul::new(24, 8, 16),
        ])
        .unwrap();
        let x = Matrix::pseudo_random(24, 8, 17);
        let ws = [
            Matrix::pseudo_random(8, 24, 18),
            Matrix::pseudo_random(24, 8, 19),
            Matrix::pseudo_random(8, 16, 20),
        ];
        let golden = ws.iter().fold(x.clone(), |acc, w| acc.matmul(w));
        let model = CostModel::paper();
        let mut any = false;
        for bs in [64u64, 600, 4_096] {
            if let Some(fused) = optimize_chain(&model, &c, bs) {
                any = true;
                let run = execute_fused_chain(&x, &ws, &c, fused.nest());
                assert_eq!(run.out, golden, "bs={bs}");
                let total: u64 = run.measured.iter().sum();
                assert_eq!(total, fused.total_ma(), "bs={bs}");
            }
        }
        assert!(any, "at least one buffer size must admit the chain");
    }

    #[test]
    fn cu_execution_handles_ragged_tiles() {
        let a = Matrix::pseudo_random(9, 10, 51);
        let b = Matrix::pseudo_random(10, 7, 52);
        let golden = a.matmul(&b);
        for stationary in [Stationary::Ws, Stationary::Is, Stationary::Os] {
            let (out, cycles) = execute_on_cu(&a, &b, stationary, 4);
            assert_eq!(out, golden, "{stationary}");
            assert!(cycles > 0);
        }
    }

    #[test]
    fn cu_execution_matches_across_array_sizes() {
        let a = Matrix::pseudo_random(6, 6, 61);
        let b = Matrix::pseudo_random(6, 6, 62);
        let (small, _) = execute_on_cu(&a, &b, Stationary::Ws, 2);
        let (large, _) = execute_on_cu(&a, &b, Stationary::Ws, 8);
        assert_eq!(small, large);
        assert_eq!(small, a.matmul(&b));
    }

    #[test]
    fn bigger_arrays_use_fewer_cycles() {
        let a = Matrix::pseudo_random(16, 16, 71);
        let b = Matrix::pseudo_random(16, 16, 72);
        let (_, c4) = execute_on_cu(&a, &b, Stationary::Os, 4);
        let (_, c8) = execute_on_cu(&a, &b, Stationary::Os, 8);
        assert!(c8 < c4);
    }
}
