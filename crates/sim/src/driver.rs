//! Tiled execution drivers: running full-size matmuls through the
//! simulated fabric and *measuring* the traffic the analytical model
//! predicts.
//!
//! Two drivers:
//!
//! * [`execute_nest`] replays a buffer-level [`LoopNest`] with a modeled
//!   one-tile-per-operand buffer, counting every element fetched or written
//!   on a tile switch. Its measured traffic must equal
//!   [`CostModel::evaluate`](fusecu_dataflow::CostModel::evaluate) exactly — the execution-level proof of the
//!   memory-access model that Fig 9 relies on.
//! * [`execute_on_cu`] runs each tile's arithmetic through the systolic
//!   [`CuArray`] instead of a golden kernel, proving the mapping handles
//!   every (possibly ragged) tile a real schedule produces.

use fusecu_arch::Stationary;
use fusecu_dataflow::{LoopNest, MemoryAccess};
use fusecu_fusion::{FusedNest, FusedPair};
use fusecu_ir::{MatMul, MmDim, Operand};

use crate::array::CuArray;
use crate::matrix::Matrix;
use crate::scratch::SimScratch;

/// The result of replaying a loop nest: the product and the measured
/// per-tensor buffer↔memory traffic.
#[derive(Debug, Clone)]
pub struct NestRun {
    /// The computed product.
    pub out: Matrix,
    /// Measured traffic, comparable to
    /// [`CostModel::evaluate`](fusecu_dataflow::CostModel::evaluate).
    pub measured: MemoryAccess,
}

/// The single source of truth for nest-replay traffic accounting: walks
/// the loop nest charging residency switches and calls `visit(im, ik, il)`
/// once per innermost tile iteration. [`execute_nest_with`] computes
/// values in `visit`; [`measure_nest`] passes a no-op — so the two modes'
/// counters are identical by construction.
fn nest_traffic(
    mm: MatMul,
    nest: &LoopNest,
    mut visit: impl FnMut(usize, usize, usize),
) -> MemoryAccess {
    let n_of = |d: MmDim| nest.tiling.iterations(mm, d) as usize;
    let t_of = |d: MmDim| nest.tiling.tile(d).min(mm.dim(d)) as usize;
    let span = |d: MmDim, i: usize| {
        let t = t_of(d);
        t.min(mm.dim(d) as usize - i * t)
    };
    let counts = nest.order.map(n_of);
    let pos = |d: MmDim| nest.order.iter().position(|x| *x == d).unwrap();
    let (pm, pk, pl) = (pos(MmDim::M), pos(MmDim::K), pos(MmDim::L));

    let mut traffic = [0u64; 3]; // A, B, C
    let mut resident: [Option<(usize, usize)>; 3] = [None; 3];

    for i0 in 0..counts[0] {
        for i1 in 0..counts[1] {
            for i2 in 0..counts[2] {
                let iter = [i0, i1, i2];
                let at = |d: MmDim| match d {
                    MmDim::M => iter[pm],
                    MmDim::K => iter[pk],
                    MmDim::L => iter[pl],
                };
                for (slot, op) in Operand::ALL.iter().enumerate() {
                    let [da, db] = op.dims();
                    let key = (at(da), at(db));
                    if resident[slot] != Some(key) {
                        traffic[slot] += (span(da, key.0) * span(db, key.1)) as u64;
                        resident[slot] = Some(key);
                    }
                }
                visit(iter[pm], iter[pk], iter[pl]);
            }
        }
    }
    MemoryAccess::new(traffic[0], traffic[1], traffic[2])
}

/// Counters-only nest replay ([`crate::SimMode::TrafficOnly`]): walks the
/// identical accounting loop as [`execute_nest_with`] but skips all value
/// movement — no operand matrices, no tile copies, no arithmetic, and no
/// heap allocation at all. The measured traffic is byte-identical to a
/// full replay's (the values never influence the counters).
pub fn measure_nest(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
    nest_traffic(mm, nest, |_, _, _| {})
}

/// Full nest replay through a caller-provided [`SimScratch`]: identical
/// semantics to [`execute_nest`], but every tile buffer and the output
/// accumulation live in `scratch`, so replaying many nests of one shape
/// (the simulated-fitness hot path) allocates only on the first call.
/// The product is left in `scratch.out()`; the measured traffic returns.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest_with(
    a: &Matrix,
    b: &Matrix,
    mm: MatMul,
    nest: &LoopNest,
    scratch: &mut SimScratch,
) -> MemoryAccess {
    assert_eq!((a.rows() as u64, a.cols() as u64), (mm.m(), mm.k()));
    assert_eq!((b.rows() as u64, b.cols() as u64), (mm.k(), mm.l()));
    let t_of = |d: MmDim| nest.tiling.tile(d).min(mm.dim(d)) as usize;
    let (tm, tk, tl) = (t_of(MmDim::M), t_of(MmDim::K), t_of(MmDim::L));
    let SimScratch {
        a_tile,
        b_tile,
        prod,
        out,
        ..
    } = scratch;
    out.reset_zeroed(mm.m() as usize, mm.l() as usize);
    nest_traffic(mm, nest, |im, ik, il| {
        // Compute this tile's contribution (golden arithmetic; the
        // systolic path is validated by `execute_on_cu`).
        a.tile_into(im * tm, ik * tk, tm, tk, a_tile);
        b.tile_into(ik * tk, il * tl, tk, tl, b_tile);
        a_tile.matmul_into(b_tile, prod);
        out.add_tile(im * tm, il * tl, prod);
    })
}

/// Replays `nest` over `a × b`, fetching one tile per operand into a
/// modeled buffer and charging a full (edge-clamped) tile of traffic on
/// every tile switch; the output tile is charged per residency visit,
/// matching the paper's accounting.
///
/// Convenience wrapper over [`execute_nest_with`] with a fresh scratch;
/// replay loops should hold a [`SimScratch`] and call that directly.
///
/// # Panics
///
/// Panics when the matrices do not match the nest's matmul dimensions.
pub fn execute_nest(a: &Matrix, b: &Matrix, mm: MatMul, nest: &LoopNest) -> NestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_nest_with(a, b, mm, nest, &mut scratch);
    NestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// The result of replaying a fused nest: the chain output and the measured
/// per-external-tensor traffic.
#[derive(Debug, Clone)]
pub struct FusedNestRun {
    /// The computed `E = (A × B) × D`.
    pub out: Matrix,
    /// Measured traffic per external tensor, in `ExtTensor::ALL` order
    /// (`A, B, D, E`), comparable to `FusedNest::evaluate`.
    pub measured: [u64; 4],
}

/// One step of the fused replay schedule, as visited by [`fused_traffic`].
enum FusedStep {
    /// A new shared tile begins with the given clamped `(M, L)` spans.
    Begin(usize, usize),
    /// One producer reduction step `ik` inside shared tile `(im, il)`.
    Producer(usize, usize, usize),
    /// One consumer drain step `inn` inside shared tile `(im, il)`.
    Consumer(usize, usize, usize),
}

/// The fused analogue of [`nest_traffic`]: one accounting walk shared by
/// [`execute_fused_nest_with`] and [`measure_fused_nest`]. `visit` receives
/// every schedule step in order; traffic accounting is independent of it.
fn fused_traffic(
    pair: &FusedPair,
    nest: &FusedNest,
    mut visit: impl FnMut(FusedStep),
) -> [u64; 4] {
    use fusecu_fusion::{ExtTensor, FusedDim};
    let dims = |t: FusedDim| pair.dim(t) as usize;
    let tile = |t: FusedDim| nest.tiling.clamped_tile(pair, t) as usize;
    let iters = |t: FusedDim| nest.tiling.iterations(pair, t) as usize;
    let span = |t: FusedDim, i: usize| tile(t).min(dims(t) - i * tile(t));

    let [s0, s1] = nest.shared_order();
    let mut traffic = [0u64; 4];
    let mut resident: [Option<(usize, usize)>; 4] = [None; 4];
    let mut touch = |slot: usize, t: ExtTensor, key: (usize, usize)| {
        if resident[slot] != Some(key) {
            let [da, db] = t.dims();
            let sa = tile(da).min(dims(da) - key.0 * tile(da));
            let sb = tile(db).min(dims(db) - key.1 * tile(db));
            traffic[slot] += (sa * sb) as u64;
            resident[slot] = Some(key);
        }
    };

    for i0 in 0..iters(s0) {
        for i1 in 0..iters(s1) {
            let (im, il) = if s0 == FusedDim::M { (i0, i1) } else { (i1, i0) };
            visit(FusedStep::Begin(
                span(FusedDim::M, im),
                span(FusedDim::L, il),
            ));
            // Producer phase: accumulate the C tile in "registers".
            for ik in 0..iters(FusedDim::K) {
                touch(0, ExtTensor::A, (im, ik));
                touch(1, ExtTensor::B, (ik, il));
                visit(FusedStep::Producer(im, il, ik));
            }
            // Consumer phase: drain the C tile through D into E.
            for inn in 0..iters(FusedDim::N) {
                touch(2, ExtTensor::D, (il, inn));
                touch(3, ExtTensor::E, (im, inn));
                visit(FusedStep::Consumer(im, il, inn));
            }
        }
    }
    traffic
}

/// Counters-only fused replay ([`crate::SimMode::TrafficOnly`]): the
/// identical accounting walk as [`execute_fused_nest_with`] with all value
/// movement skipped — no operands and no heap allocation. Traffic is in
/// `ExtTensor::ALL` order (`A, B, D, E`).
pub fn measure_fused_nest(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
    fused_traffic(pair, nest, |_| {})
}

/// Full fused replay through a caller-provided [`SimScratch`]: identical
/// semantics to [`execute_fused_nest`], with every tile buffer (including
/// the modeled `C` register file) and the output accumulation living in
/// `scratch`. The chain output is left in `scratch.out()`; the measured
/// per-tensor traffic returns.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest_with(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
    scratch: &mut SimScratch,
) -> [u64; 4] {
    use fusecu_fusion::FusedDim;
    let dims = |t: FusedDim| pair.dim(t) as usize;
    assert_eq!((a.rows(), a.cols()), (dims(FusedDim::M), dims(FusedDim::K)));
    assert_eq!((b.rows(), b.cols()), (dims(FusedDim::K), dims(FusedDim::L)));
    assert_eq!((d.rows(), d.cols()), (dims(FusedDim::L), dims(FusedDim::N)));
    let tile = |t: FusedDim| nest.tiling.clamped_tile(pair, t) as usize;
    let (tm, tk, tl, tn) = (
        tile(FusedDim::M),
        tile(FusedDim::K),
        tile(FusedDim::L),
        tile(FusedDim::N),
    );
    let SimScratch {
        a_tile,
        b_tile,
        prod,
        c_tile,
        out,
    } = scratch;
    out.reset_zeroed(dims(FusedDim::M), dims(FusedDim::N));
    fused_traffic(pair, nest, |step| match step {
        FusedStep::Begin(sm, sl) => c_tile.reset_zeroed(sm, sl),
        FusedStep::Producer(im, il, ik) => {
            a.tile_into(im * tm, ik * tk, tm, tk, a_tile);
            b.tile_into(ik * tk, il * tl, tk, tl, b_tile);
            a_tile.matmul_into(b_tile, prod);
            c_tile.add_tile(0, 0, prod);
        }
        FusedStep::Consumer(im, il, inn) => {
            d.tile_into(il * tl, inn * tn, tl, tn, b_tile);
            c_tile.matmul_into(b_tile, prod);
            out.add_tile(im * tm, inn * tn, prod);
        }
    })
}

/// Replays a fused nest over real matrices: shared tile loops over the
/// intermediate's dimensions, a producer phase accumulating each `C` tile
/// in a modeled register file, and a consumer phase draining it into `E` —
/// the intermediate never counts as traffic. External tensors charge one
/// (edge-clamped) tile on every residency switch, output per visit.
///
/// Convenience wrapper over [`execute_fused_nest_with`] with a fresh
/// scratch.
///
/// # Panics
///
/// Panics when the matrices do not match the pair's dimensions.
pub fn execute_fused_nest(
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
    pair: &FusedPair,
    nest: &FusedNest,
) -> FusedNestRun {
    let mut scratch = SimScratch::new();
    let measured = execute_fused_nest_with(a, b, d, pair, nest, &mut scratch);
    FusedNestRun {
        out: scratch.take_out(),
        measured,
    }
}

/// Runs a full matmul through a CU by tiling to the array edge with the
/// requested stationary, accumulating partial products across the reduction
/// tiles. Returns the product and the summed systolic cycle count.
///
/// # Panics
///
/// Panics on dimension mismatch between `a` and `b`.
pub fn execute_on_cu(a: &Matrix, b: &Matrix, stationary: Stationary, n: usize) -> (Matrix, u64) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, l) = (a.rows(), a.cols(), b.cols());
    let mut cu = CuArray::new(n, stationary);
    let mut out = Matrix::zero(m, l);
    let mut cycles = 0u64;
    let step = |d: usize| d.div_ceil(n);
    match stationary {
        Stationary::Ws => {
            for ik in 0..step(k) {
                for il in 0..step(l) {
                    let b_tile = b.tile(ik * n, il * n, n, n);
                    let a_cols = a.tile(0, ik * n, m, n);
                    let r = cu.run_ws(&a_cols, &b_tile);
                    out.add_tile(0, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Is => {
            for im in 0..step(m) {
                for ik in 0..step(k) {
                    let a_tile = a.tile(im * n, ik * n, n, n);
                    let b_rows = b.tile(ik * n, 0, n, l);
                    let r = cu.run_is(&a_tile, &b_rows);
                    out.add_tile(im * n, 0, &r.out);
                    cycles += r.cycles;
                }
            }
        }
        Stationary::Os => {
            for im in 0..step(m) {
                for il in 0..step(l) {
                    let a_rows = a.tile(im * n, 0, n, k);
                    let b_cols = b.tile(0, il * n, k, n);
                    // One OS pass accumulates the whole reduction on-array.
                    let r = cu.run_os(&a_rows, &b_cols);
                    out.set_tile(im * n, il * n, &r.out);
                    cycles += r.cycles;
                }
            }
        }
    }
    (out, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::{CostModel, Tiling};

    #[test]
    fn nest_replay_matches_golden_product() {
        let mm = MatMul::new(10, 7, 9);
        let a = Matrix::pseudo_random(10, 7, 31);
        let b = Matrix::pseudo_random(7, 9, 32);
        let nest = LoopNest::new([MmDim::M, MmDim::L, MmDim::K], Tiling::new(3, 2, 4));
        let run = execute_nest(&a, &b, mm, &nest);
        assert_eq!(run.out, a.matmul(&b));
    }

    #[test]
    fn measured_traffic_equals_analytical_model() {
        // The execution-level proof of the cost model: replay many nests
        // and require exact agreement with CostModel::evaluate.
        let model = CostModel::paper();
        let mm = MatMul::new(12, 10, 8);
        let a = Matrix::pseudo_random(12, 10, 41);
        let b = Matrix::pseudo_random(10, 8, 42);
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(1, 1, 1),
                Tiling::new(3, 2, 4),
                Tiling::new(5, 10, 3),
                Tiling::new(12, 1, 8),
                Tiling::new(7, 7, 7),
            ] {
                let nest = LoopNest::new(order, tiling);
                let run = execute_nest(&a, &b, mm, &nest);
                assert_eq!(
                    run.measured,
                    model.evaluate(mm, &nest),
                    "order {order:?} tiling {tiling}"
                );
                assert_eq!(run.out, a.matmul(&b));
            }
        }
    }

    #[test]
    fn traffic_only_nest_counters_match_full_mode() {
        // SimMode::TrafficOnly must be byte-identical to the full replay's
        // counters across orders and tilings — it is the same walk.
        let mm = MatMul::new(12, 10, 8);
        let a = Matrix::pseudo_random(12, 10, 41);
        let b = Matrix::pseudo_random(10, 8, 42);
        let mut scratch = SimScratch::new();
        for order in LoopNest::orders() {
            for tiling in [
                Tiling::new(1, 1, 1),
                Tiling::new(3, 2, 4),
                Tiling::new(5, 10, 3),
                Tiling::new(12, 1, 8),
            ] {
                let nest = LoopNest::new(order, tiling);
                let full = execute_nest_with(&a, &b, mm, &nest, &mut scratch);
                assert_eq!(
                    measure_nest(mm, &nest),
                    full,
                    "order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn traffic_only_fused_counters_match_full_mode() {
        use fusecu_fusion::{FusedNest, FusedPair, FusedTiling};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
        let a = Matrix::pseudo_random(10, 6, 81);
        let b = Matrix::pseudo_random(6, 12, 82);
        let d = Matrix::pseudo_random(12, 8, 83);
        let mut scratch = SimScratch::new();
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [(1u64, 1u64, 1u64, 1u64), (5, 2, 4, 3), (4, 6, 12, 2)] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let full = execute_fused_nest_with(&a, &b, &d, &pair, &nest, &mut scratch);
                assert_eq!(measure_fused_nest(&pair, &nest), full, "{nest}");
            }
        }
    }

    #[test]
    fn shared_scratch_replays_are_identical_to_fresh_runs() {
        // One scratch reused across many nests must never bleed state.
        let mm = MatMul::new(9, 11, 7);
        let a = Matrix::pseudo_random(9, 11, 51);
        let b = Matrix::pseudo_random(11, 7, 52);
        let mut scratch = SimScratch::new();
        for order in LoopNest::orders() {
            let nest = LoopNest::new(order, Tiling::new(4, 3, 5));
            let reused = execute_nest_with(&a, &b, mm, &nest, &mut scratch);
            let fresh = execute_nest(&a, &b, mm, &nest);
            assert_eq!(reused, fresh.measured, "order {order:?}");
            assert_eq!(scratch.out(), &fresh.out, "order {order:?}");
        }
    }

    #[test]
    fn fused_nest_replay_matches_golden_and_model() {
        use fusecu_fusion::{ExtTensor, FusedNest, FusedPair, FusedTiling};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
        let a = Matrix::pseudo_random(10, 6, 81);
        let b = Matrix::pseudo_random(6, 12, 82);
        let d = Matrix::pseudo_random(12, 8, 83);
        let golden = a.matmul(&b).matmul(&d);
        let model = CostModel::paper();
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [
                (1u64, 1u64, 1u64, 1u64),
                (5, 2, 4, 3),
                (10, 6, 3, 8),
                (4, 6, 12, 2),
                (10, 3, 12, 8),
            ] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let run = execute_fused_nest(&a, &b, &d, &pair, &nest);
                assert_eq!(run.out, golden, "{nest}");
                let predicted = nest.evaluate(&model, &pair);
                for (i, t) in ExtTensor::ALL.iter().enumerate() {
                    assert_eq!(
                        run.measured[i],
                        predicted.of(*t),
                        "{nest} tensor {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_fused_nest_replays_exactly() {
        use fusecu_fusion::{optimize_pair, ExtTensor, FusedPair};
        use fusecu_ir::MatMul;
        let pair = FusedPair::try_new(MatMul::new(24, 8, 24), MatMul::new(24, 24, 8)).unwrap();
        let a = Matrix::pseudo_random(24, 8, 91);
        let b = Matrix::pseudo_random(8, 24, 92);
        let d = Matrix::pseudo_random(24, 8, 93);
        let model = CostModel::paper();
        for bs in [16u64, 120, 800] {
            if let Some(fused) = optimize_pair(&model, pair, bs) {
                let run = execute_fused_nest(&a, &b, &d, &pair, fused.nest());
                assert_eq!(run.out, a.matmul(&b).matmul(&d), "bs={bs}");
                let total: u64 = run.measured.iter().sum();
                assert_eq!(total, fused.total_ma(), "bs={bs}");
                let _ = ExtTensor::ALL;
            }
        }
    }

    #[test]
    fn cu_execution_handles_ragged_tiles() {
        let a = Matrix::pseudo_random(9, 10, 51);
        let b = Matrix::pseudo_random(10, 7, 52);
        let golden = a.matmul(&b);
        for stationary in [Stationary::Ws, Stationary::Is, Stationary::Os] {
            let (out, cycles) = execute_on_cu(&a, &b, stationary, 4);
            assert_eq!(out, golden, "{stationary}");
            assert!(cycles > 0);
        }
    }

    #[test]
    fn cu_execution_matches_across_array_sizes() {
        let a = Matrix::pseudo_random(6, 6, 61);
        let b = Matrix::pseudo_random(6, 6, 62);
        let (small, _) = execute_on_cu(&a, &b, Stationary::Ws, 2);
        let (large, _) = execute_on_cu(&a, &b, Stationary::Ws, 8);
        assert_eq!(small, large);
        assert_eq!(small, a.matmul(&b));
    }

    #[test]
    fn bigger_arrays_use_fewer_cycles() {
        let a = Matrix::pseudo_random(16, 16, 71);
        let b = Matrix::pseudo_random(16, 16, 72);
        let (_, c4) = execute_on_cu(&a, &b, Stationary::Os, 4);
        let (_, c8) = execute_on_cu(&a, &b, Stationary::Os, 8);
        assert!(c8 < c4);
    }
}
