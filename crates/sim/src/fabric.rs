//! The four-CU FuseCU fabric with reconfigurable shape (Fig 7).
//!
//! Four `N × N` compute units connect through boundary port muxes into one
//! logical array of shape square (`2N × 2N`), wide (`N × 4N`), or narrow
//! (`4N × N`). The wiring is structural: every cycle each CU captures its
//! neighbors' *previous-cycle* edge registers (exactly the timing a
//! monolithic array of the logical size would have) and steps once; edge
//! CUs draw from the injected memory streams. The tests prove
//! cycle-for-cycle equivalence with a monolithic array of the logical
//! shape — the paper's claim that FuseCU "simply adds MUX and wires" while
//! supporting untiled dimensions beyond one CU.

use fusecu_arch::Stationary;

use crate::array::{CuArray, RunResult};
use crate::matrix::Matrix;

/// The logical arrangement of the four CUs (Fig 7(c)–(e)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricShape {
    /// 2 × 2 grid: a `2N × 2N` array.
    Square,
    /// 1 × 4 row: an `N × 4N` array (wide).
    Wide,
    /// 4 × 1 column: a `4N × N` array (narrow).
    Narrow,
}

impl FabricShape {
    /// All shapes.
    pub const ALL: [FabricShape; 3] = [FabricShape::Square, FabricShape::Wide, FabricShape::Narrow];

    /// CU grid extent `(cu_rows, cu_cols)`.
    pub fn grid(self) -> (usize, usize) {
        match self {
            FabricShape::Square => (2, 2),
            FabricShape::Wide => (1, 4),
            FabricShape::Narrow => (4, 1),
        }
    }

    /// Logical PE extent `(rows, cols)` for a CU edge of `n`.
    pub fn logical(self, n: usize) -> (usize, usize) {
        let (gr, gc) = self.grid();
        (gr * n, gc * n)
    }
}

/// The four-CU fabric.
#[derive(Debug, Clone)]
pub struct FuseCuFabric {
    n: usize,
    shape: FabricShape,
    cus: Vec<CuArray>, // row-major over the CU grid
    // Persistent per-cycle scratch (the registered inter-CU wires): flat
    // arenas with CU `i`'s edge at `i*n..(i+1)*n`, captured pre-step, plus
    // per-CU post-step out buffers and the logical-edge registers. Sized
    // once in `new`, reused every cycle — no steady-state allocation.
    east_snap: Vec<i64>,
    south_snap: Vec<i64>,
    east_buf: Vec<i64>,
    south_buf: Vec<i64>,
    logical_east: Vec<i64>,
    logical_south: Vec<i64>,
}

impl FuseCuFabric {
    /// A fabric of four `n × n` CUs in the given shape.
    pub fn new(n: usize, shape: FabricShape, mode: Stationary) -> FuseCuFabric {
        let (gr, gc) = shape.grid();
        FuseCuFabric {
            n,
            shape,
            cus: vec![CuArray::new(n, mode); gr * gc],
            east_snap: vec![0; gr * gc * n],
            south_snap: vec![0; gr * gc * n],
            east_buf: vec![0; n],
            south_buf: vec![0; n],
            logical_east: vec![0; gr * n],
            logical_south: vec![0; gc * n],
        }
    }

    /// The logical array extent.
    pub fn logical(&self) -> (usize, usize) {
        self.shape.logical(self.n)
    }

    fn cu_index(&self, gr_row: usize, gr_col: usize) -> usize {
        let (_, gc) = self.shape.grid();
        gr_row * gc + gr_col
    }

    /// Loads a stationary tile spanning the logical array.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the logical extent.
    pub fn load_stationary(&mut self, tile: &Matrix) {
        let (rows, cols) = self.logical();
        assert!(
            tile.rows() <= rows && tile.cols() <= cols,
            "stationary tile exceeds the logical array"
        );
        let (gr, gc) = self.shape.grid();
        for r in 0..gr {
            for c in 0..gc {
                // Quadrant slice, zero-padded at the fabric edge.
                let quad = Matrix::from_fn(self.n, self.n, |i, j| {
                    let (ri, cj) = (r * self.n + i, c * self.n + j);
                    if ri < tile.rows() && cj < tile.cols() {
                        tile[(ri, cj)]
                    } else {
                        0
                    }
                });
                let idx = self.cu_index(r, c);
                self.cus[idx].load_stationary(&quad);
            }
        }
    }

    /// Steps every CU once (two-phase, registered inter-CU wires) and
    /// refreshes the logical east/south edge registers — the shared,
    /// allocation-free core of [`FuseCuFabric::step_into`] and
    /// [`FuseCuFabric::step_east_into`].
    fn step_edges(&mut self, west_in: &[i64], north_in: &[i64]) {
        let (rows, cols) = self.logical();
        assert_eq!(west_in.len(), rows);
        assert_eq!(north_in.len(), cols);
        let (gr, gc) = self.shape.grid();
        let n = self.n;
        let FuseCuFabric {
            cus,
            east_snap,
            south_snap,
            east_buf,
            south_buf,
            logical_east,
            logical_south,
            ..
        } = self;
        // Capture all pre-step edges first (registered inter-CU wires).
        for (i, cu) in cus.iter().enumerate() {
            cu.east_edge_into(&mut east_snap[i * n..(i + 1) * n]);
            cu.south_edge_into(&mut south_snap[i * n..(i + 1) * n]);
        }
        for r in 0..gr {
            for c in 0..gc {
                let idx = r * gc + c;
                let west: &[i64] = if c == 0 {
                    &west_in[r * n..(r + 1) * n]
                } else {
                    &east_snap[(idx - 1) * n..idx * n]
                };
                let north: &[i64] = if r == 0 {
                    &north_in[c * n..(c + 1) * n]
                } else {
                    &south_snap[(idx - gc) * n..(idx - gc + 1) * n]
                };
                cus[idx].step_into(west, north, east_buf, south_buf);
                if r == gr - 1 {
                    logical_south[c * n..(c + 1) * n].copy_from_slice(south_buf);
                }
                if c == gc - 1 {
                    logical_east[r * n..(r + 1) * n].copy_from_slice(east_buf);
                }
            }
        }
    }

    /// One synchronous fabric step with logical-edge inputs,
    /// allocation-free: writes the post-step logical south edge into
    /// `south_out`.
    ///
    /// Boundary muxes: interior CU edges receive the neighboring CU's
    /// pre-step edge registers; exterior edges receive the injected
    /// streams — same timing as a monolithic array.
    ///
    /// # Panics
    ///
    /// Panics unless `south_out` spans the logical column count.
    pub fn step_into(&mut self, west_in: &[i64], north_in: &[i64], south_out: &mut [i64]) {
        self.step_edges(west_in, north_in);
        south_out.copy_from_slice(&self.logical_south);
    }

    /// Weight-stationary matmul on the reshaped fabric: `b` (`K × L`) is
    /// the stationary tile over the logical array, `a` (`M × K`) streams.
    /// Identical schedule to [`CuArray::run_ws`] at the logical size.
    ///
    /// # Panics
    ///
    /// Panics when `b` exceeds the logical array.
    pub fn run_ws(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        let (rows, cols) = self.logical();
        let mode = Stationary::Ws;
        for cu in &mut self.cus {
            cu.set_mode(mode);
            cu.clear();
            cu.set_mode(mode);
        }
        self.load_stationary(b);
        let mut out = Matrix::zero(m, l);
        let total = m + rows + cols + 2;
        let zeros = vec![0i64; cols];
        let mut west = vec![0i64; rows];
        let mut south = vec![0i64; cols];
        for t in 0..total {
            for (row_k, w) in west.iter_mut().enumerate() {
                let mi = t as i64 - row_k as i64;
                *w = if row_k < k && mi >= 0 && (mi as usize) < m {
                    a[(mi as usize, row_k)]
                } else {
                    0
                };
            }
            self.step_into(&west, &zeros, &mut south);
            for (col_l, v) in south.iter().enumerate() {
                let mi = t as i64 - (rows - 1) as i64 - col_l as i64;
                if col_l < l && mi >= 0 && (mi as usize) < m {
                    out[(mi as usize, col_l)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }
}

impl FuseCuFabric {
    /// Output-stationary matmul on the logical fabric: the `M × L` output
    /// accumulates in place across the four CUs' PEs (`a` is `M × K`,
    /// `b` is `K × L`; both stream).
    ///
    /// # Panics
    ///
    /// Panics when the output exceeds the logical array.
    pub fn run_os(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        let (rows, cols) = self.logical();
        assert!(m <= rows && l <= cols, "output exceeds the logical array");
        for cu in &mut self.cus {
            cu.set_mode(Stationary::Os);
            cu.clear();
            cu.set_mode(Stationary::Os);
        }
        let total = k + rows + cols + 2;
        let mut west = vec![0i64; rows];
        let mut north = vec![0i64; cols];
        for t in 0..total {
            for (row_m, w) in west.iter_mut().enumerate() {
                let ki = t as i64 - row_m as i64;
                *w = if row_m < m && ki >= 0 && (ki as usize) < k {
                    a[(row_m, ki as usize)]
                } else {
                    0
                };
            }
            for (col_l, w) in north.iter_mut().enumerate() {
                let ki = t as i64 - col_l as i64;
                *w = if col_l < l && ki >= 0 && (ki as usize) < k {
                    b[(ki as usize, col_l)]
                } else {
                    0
                };
            }
            self.step_edges(&west, &north);
        }
        let out = Matrix::from_fn(m, l, |r, c| self.acc(r, c));
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Accumulator readout at a logical coordinate.
    pub fn acc(&self, r: usize, c: usize) -> i64 {
        let (_, gc) = self.shape.grid();
        let cu = (r / self.n) * gc + (c / self.n);
        self.cus[cu].pe(r % self.n, c % self.n).acc()
    }

    /// Promotes every PE's accumulator into its stationary register across
    /// the fabric (the tile-fusion OS→IS switch at fabric scale).
    pub fn promote_acc_to_stationary(&mut self) {
        for cu in &mut self.cus {
            cu.promote_acc_to_stationary();
        }
    }

    /// Input-stationary pass over the resident fabric-wide tile (`m`
    /// logical rows), streaming `b` (`K × L` with `K` up to the logical
    /// column count). Mirrors [`CuArray::run_is_resident`].
    ///
    /// # Panics
    ///
    /// Panics when the stream or output exceeds the logical array.
    pub fn run_is_resident(&mut self, m: usize, b: &Matrix) -> RunResult {
        let (k, l) = (b.rows(), b.cols());
        let (rows, cols) = self.logical();
        assert!(k <= cols, "stream tile exceeds the logical array");
        assert!(m <= rows, "output rows exceed the logical array");
        for cu in &mut self.cus {
            cu.set_mode(Stationary::Is);
            cu.clear_flow();
        }
        let mut out = Matrix::zero(m, l);
        let total = l + rows + cols + 2;
        let zeros = vec![0i64; rows];
        let mut north = vec![0i64; cols];
        let mut east = vec![0i64; rows];
        for t in 0..total {
            for (col_k, w) in north.iter_mut().enumerate() {
                let li = t as i64 - col_k as i64;
                *w = if col_k < k && li >= 0 && (li as usize) < l {
                    b[(col_k, li as usize)]
                } else {
                    0
                };
            }
            self.step_east_into(&zeros, &north, &mut east);
            for (row_m, v) in east.iter().enumerate() {
                let li = t as i64 - (cols - 1) as i64 - row_m as i64;
                if row_m < m && li >= 0 && (li as usize) < l {
                    out[(row_m, li as usize)] = *v;
                }
            }
        }
        RunResult {
            out,
            cycles: total as u64,
        }
    }

    /// Like [`FuseCuFabric::step_into`], but writing the logical *east*
    /// edge (needed by IS drains) into `east_out` — allocation-free.
    ///
    /// # Panics
    ///
    /// Panics unless `east_out` spans the logical row count.
    pub fn step_east_into(&mut self, west_in: &[i64], north_in: &[i64], east_out: &mut [i64]) {
        self.step_edges(west_in, north_in);
        east_out.copy_from_slice(&self.logical_east);
    }

    /// Stationary-register readout at a logical coordinate (the macro-step
    /// engine's resident-tile source; mirrors [`FuseCuFabric::acc`]).
    fn stationary_at(&self, r: usize, c: usize) -> i64 {
        let (_, gc) = self.shape.grid();
        let cu = (r / self.n) * gc + (c / self.n);
        self.cus[cu].pe(r % self.n, c % self.n).stationary()
    }

    /// Deposits a value in the accumulator at a logical coordinate (the
    /// macro-step engine's OS write path).
    fn set_acc(&mut self, r: usize, c: usize, value: i64) {
        let (_, gc) = self.shape.grid();
        let cu = (r / self.n) * gc + (c / self.n);
        self.cus[cu].set_acc(r % self.n, c % self.n, value);
    }

    /// Wavefront macro-step of [`FuseCuFabric::run_ws`]: same contract at
    /// the logical size — WS mode across the CUs, `b` resident stationary,
    /// identical output and the algebraic total `m + rows + cols + 2`.
    ///
    /// # Panics
    ///
    /// Panics when `b` exceeds the logical array or inner dimensions
    /// mismatch.
    pub fn run_ws_macro(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        let (rows, cols) = self.logical();
        for cu in &mut self.cus {
            cu.set_mode(Stationary::Ws);
            cu.clear();
        }
        self.load_stationary(b);
        RunResult {
            out: a.matmul(b),
            cycles: (a.rows() + rows + cols + 2) as u64,
        }
    }

    /// Wavefront macro-step of [`FuseCuFabric::run_os`]: the direct-kernel
    /// product is deposited in the PE accumulators across all four CUs (so
    /// the fabric-scale promote handoff stays byte-identical), with the
    /// algebraic total `k + rows + cols + 2`.
    ///
    /// # Panics
    ///
    /// Panics when the output exceeds the logical array or inner
    /// dimensions mismatch.
    pub fn run_os_macro(&mut self, a: &Matrix, b: &Matrix) -> RunResult {
        let (m, k, l) = (a.rows(), a.cols(), b.cols());
        assert_eq!(k, b.rows(), "inner dimensions must agree");
        let (rows, cols) = self.logical();
        assert!(m <= rows && l <= cols, "output exceeds the logical array");
        for cu in &mut self.cus {
            cu.set_mode(Stationary::Os);
            cu.clear();
        }
        let out = a.matmul(b);
        for r in 0..m {
            for c in 0..l {
                self.set_acc(r, c, out[(r, c)]);
            }
        }
        RunResult {
            out,
            cycles: (k + rows + cols + 2) as u64,
        }
    }

    /// Wavefront macro-step of [`FuseCuFabric::run_is_resident`]: streams
    /// `b` against the resident fabric-wide stationary tile (chaining
    /// after [`FuseCuFabric::run_os_macro`] +
    /// [`FuseCuFabric::promote_acc_to_stationary`] exactly like the
    /// per-cycle handoff), with the algebraic total `l + rows + cols + 2`.
    ///
    /// # Panics
    ///
    /// Panics when the stream or output exceeds the logical array.
    pub fn run_is_resident_macro(&mut self, m: usize, b: &Matrix) -> RunResult {
        let (k, l) = (b.rows(), b.cols());
        let (rows, cols) = self.logical();
        assert!(k <= cols, "stream tile exceeds the logical array");
        assert!(m <= rows, "output rows exceed the logical array");
        for cu in &mut self.cus {
            cu.set_mode(Stationary::Is);
            cu.clear_flow();
        }
        let out = Matrix::from_fn(m, l, |r, c| {
            (0..k).map(|kk| self.stationary_at(r, kk) * b[(kk, c)]).sum()
        });
        RunResult {
            out,
            cycles: (l + rows + cols + 2) as u64,
        }
    }
}

/// Fig 7(c)/(d), executed: **fabric tile fusion**. An OS pass computes the
/// intermediate tile `C[M, L]` (up to the logical extent — `2N × 2N` on
/// the square fabric) in the PE accumulators across all four CUs; the XS
/// muxes promote it in place; an IS pass streams `D` through the same PEs
/// to produce `E = C × D`. No buffer ever holds `C`.
///
/// # Panics
///
/// Panics when the intermediate exceeds the fabric or shapes mismatch.
pub fn fabric_tile_fusion(
    n: usize,
    shape: FabricShape,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, l) = (a.rows(), b.cols());
    let mut fabric = FuseCuFabric::new(n, shape, Stationary::Os);
    let os = fabric.run_os(a, b);
    fabric.promote_acc_to_stationary();
    let is = fabric.run_is_resident(m, d);
    crate::fusion::FusedRunResult {
        out: is.out,
        cycles: os.cycles + is.cycles,
        intermediate_elems: (m * l) as u64,
    }
}

/// Wavefront macro-step of [`fabric_tile_fusion`]: the macro OS pass
/// deposits `C` in the accumulators, the same promote mux flips it to
/// stationary, and the macro IS pass drains `D` through it — identical
/// output, cycle count, and intermediate volume to the per-cycle engine
/// with no register stepping.
///
/// # Panics
///
/// Panics when the intermediate exceeds the fabric or shapes mismatch.
pub fn fabric_tile_fusion_macro(
    n: usize,
    shape: FabricShape,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, l) = (a.rows(), b.cols());
    let mut fabric = FuseCuFabric::new(n, shape, Stationary::Os);
    let os = fabric.run_os_macro(a, b);
    fabric.promote_acc_to_stationary();
    let is = fabric.run_is_resident_macro(m, d);
    crate::fusion::FusedRunResult {
        out: is.out,
        cycles: os.cycles + is.cycles,
        intermediate_elems: (m * l) as u64,
    }
}

/// An east–west chain of CUs forming one wide logical array (`N × len·N`):
/// the building block of the Fig 7(e) halves.
#[derive(Debug, Clone)]
pub struct CuRow {
    n: usize,
    cus: Vec<CuArray>,
    // Persistent per-cycle scratch: pre-step east edges of every CU (flat,
    // CU `c` at `c*n..(c+1)*n`) and one post-step east out buffer.
    east_snap: Vec<i64>,
    east_buf: Vec<i64>,
}

impl CuRow {
    /// A row of `len` CUs of edge `n`.
    pub fn new(n: usize, len: usize, mode: Stationary) -> CuRow {
        assert!(len > 0, "a CU row needs at least one unit");
        CuRow {
            n,
            cus: vec![CuArray::new(n, mode); len],
            east_snap: vec![0; len * n],
            east_buf: vec![0; n],
        }
    }

    /// Logical extent `(rows, cols)`.
    pub fn logical(&self) -> (usize, usize) {
        (self.n, self.n * self.cus.len())
    }

    /// Loads a stationary tile spanning the row.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the logical extent.
    pub fn load_stationary(&mut self, tile: &Matrix) {
        let (rows, cols) = self.logical();
        assert!(
            tile.rows() <= rows && tile.cols() <= cols,
            "stationary tile exceeds the CU row"
        );
        for (c, cu) in self.cus.iter_mut().enumerate() {
            let quad = Matrix::from_fn(self.n, self.n, |i, j| {
                let cj = c * self.n + j;
                if i < tile.rows() && cj < tile.cols() {
                    tile[(i, cj)]
                } else {
                    0
                }
            });
            cu.load_stationary(&quad);
        }
    }

    /// One synchronous step, allocation-free: `west_in` feeds the leftmost
    /// CU, `north_in` spans all CUs; the row's east edge lands in
    /// `east_out` (`n` long) and its south edge in `south_out`
    /// (spanning all CUs).
    ///
    /// # Panics
    ///
    /// Panics on any slice-length mismatch with the logical extent.
    pub fn step_into(
        &mut self,
        west_in: &[i64],
        north_in: &[i64],
        east_out: &mut [i64],
        south_out: &mut [i64],
    ) {
        let (rows, cols) = self.logical();
        assert_eq!(west_in.len(), rows);
        assert_eq!(north_in.len(), cols);
        assert_eq!(east_out.len(), rows);
        assert_eq!(south_out.len(), cols);
        let n = self.n;
        let CuRow {
            cus,
            east_snap,
            east_buf,
            ..
        } = self;
        // Registered inter-CU wires: capture pre-step east edges first.
        for (i, cu) in cus.iter().enumerate() {
            cu.east_edge_into(&mut east_snap[i * n..(i + 1) * n]);
        }
        let len = cus.len();
        for (c, cu) in cus.iter_mut().enumerate() {
            let west: &[i64] = if c == 0 {
                west_in
            } else {
                &east_snap[(c - 1) * n..c * n]
            };
            cu.step_into(
                west,
                &north_in[c * n..(c + 1) * n],
                east_buf,
                &mut south_out[c * n..(c + 1) * n],
            );
            if c == len - 1 {
                east_out.copy_from_slice(east_buf);
            }
        }
    }

    /// Accumulator readout across the row (for OS use).
    pub fn acc(&self, r: usize, c: usize) -> i64 {
        self.cus[c / self.n].pe(r, c % self.n).acc()
    }
}

/// A north–south chain of CUs forming one narrow logical array
/// (`len·N × N`): the building block of narrow column fusion ("narrow
/// column fusion is omitted for simplicity" in Fig 7 — here it is not).
#[derive(Debug, Clone)]
pub struct CuCol {
    n: usize,
    cus: Vec<CuArray>,
    // Persistent per-cycle scratch, mirroring `CuRow`.
    south_snap: Vec<i64>,
    south_buf: Vec<i64>,
}

impl CuCol {
    /// A column of `len` CUs of edge `n`.
    pub fn new(n: usize, len: usize, mode: Stationary) -> CuCol {
        assert!(len > 0, "a CU column needs at least one unit");
        CuCol {
            n,
            cus: vec![CuArray::new(n, mode); len],
            south_snap: vec![0; len * n],
            south_buf: vec![0; n],
        }
    }

    /// Logical extent `(rows, cols)`.
    pub fn logical(&self) -> (usize, usize) {
        (self.n * self.cus.len(), self.n)
    }

    /// Loads a stationary tile spanning the column.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds the logical extent.
    pub fn load_stationary(&mut self, tile: &Matrix) {
        let (rows, cols) = self.logical();
        assert!(
            tile.rows() <= rows && tile.cols() <= cols,
            "stationary tile exceeds the CU column"
        );
        for (r, cu) in self.cus.iter_mut().enumerate() {
            let quad = Matrix::from_fn(self.n, self.n, |i, j| {
                let ri = r * self.n + i;
                if ri < tile.rows() && j < tile.cols() {
                    tile[(ri, j)]
                } else {
                    0
                }
            });
            cu.load_stationary(&quad);
        }
    }

    /// One synchronous step, allocation-free: `west_in` spans all CUs'
    /// rows, `north_in` feeds the topmost CU; the column's east edge
    /// (spanning all CUs) lands in `east_out` and its south edge in
    /// `south_out` (`n` long).
    ///
    /// # Panics
    ///
    /// Panics on any slice-length mismatch with the logical extent.
    pub fn step_into(
        &mut self,
        west_in: &[i64],
        north_in: &[i64],
        east_out: &mut [i64],
        south_out: &mut [i64],
    ) {
        let (rows, cols) = self.logical();
        assert_eq!(west_in.len(), rows);
        assert_eq!(north_in.len(), cols);
        assert_eq!(east_out.len(), rows);
        assert_eq!(south_out.len(), cols);
        let n = self.n;
        let CuCol {
            cus,
            south_snap,
            south_buf,
            ..
        } = self;
        for (i, cu) in cus.iter().enumerate() {
            cu.south_edge_into(&mut south_snap[i * n..(i + 1) * n]);
        }
        let len = cus.len();
        for (r, cu) in cus.iter_mut().enumerate() {
            let north: &[i64] = if r == 0 {
                north_in
            } else {
                &south_snap[(r - 1) * n..r * n]
            };
            cu.step_into(
                &west_in[r * n..(r + 1) * n],
                north,
                &mut east_out[r * n..(r + 1) * n],
                south_buf,
            );
            if r == len - 1 {
                south_out.copy_from_slice(south_buf);
            }
        }
    }

    /// Accumulator readout at a logical coordinate.
    pub fn acc(&self, r: usize, c: usize) -> i64 {
        self.cus[r / self.n].pe(r % self.n, c).acc()
    }
}

/// **Narrow column fusion**: the mirror of [`wide_column_fusion`] for tall
/// operands — producer and consumer are 2-CU *columns* (`2N × N`), so the
/// shared row dimension `M` may reach `2N` while `K` and `N` stay within
/// one CU. Intermediate columns stream east from the producer into the
/// consumer through the port muxes.
///
/// # Panics
///
/// Panics when `A` exceeds `2N × N`, `E` exceeds `2N × N`, or shapes
/// mismatch.
pub fn narrow_column_fusion(
    n: usize,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    let nn = d.cols();
    assert!(m <= 2 * n && k <= n, "producer stationary exceeds 2N x N");
    assert!(nn <= n, "consumer output exceeds 2N x N");

    let mut producer = CuCol::new(n, 2, Stationary::Is);
    producer.load_stationary(a);
    let mut consumer = CuCol::new(n, 2, Stationary::Os);

    // In the IS producer, C[m'][l'] exits the east edge of row m' after the
    // step at cycle l' + (n - 1) + m' (the window depth is the column count
    // n, not the row count); the OS consumer wants it at local l' + m'.
    let offset = n - 1;
    let total = l + 6 * n + 4;
    let zeros = vec![0i64; 2 * n];
    let mut north_p = vec![0i64; n];
    let mut north_c = vec![0i64; n];
    let mut east_p = vec![0i64; 2 * n];
    let mut east_c = vec![0i64; 2 * n];
    let mut south = vec![0i64; n];
    for t in 0..total {
        for (col_k, w) in north_p.iter_mut().enumerate() {
            let li = t as i64 - col_k as i64;
            *w = if col_k < k && li >= 0 && (li as usize) < l {
                b[(col_k, li as usize)]
            } else {
                0
            };
        }
        producer.step_into(&zeros, &north_p, &mut east_p, &mut south);
        let tc = t as i64 - offset as i64;
        for (col_j, w) in north_c.iter_mut().enumerate() {
            let li = tc - col_j as i64;
            *w = if col_j < nn && li >= 0 && (li as usize) < l {
                d[(li as usize, col_j)]
            } else {
                0
            };
        }
        consumer.step_into(&east_p, &north_c, &mut east_c, &mut south);
    }
    let out = Matrix::from_fn(m, nn, |r, c| consumer.acc(r, c));
    crate::fusion::FusedRunResult {
        out,
        cycles: total as u64,
        intermediate_elems: (m * l) as u64,
    }
}

/// Wavefront macro-step of [`narrow_column_fusion`]: same preconditions
/// and the algebraic total `l + 6n + 4`, with the lockstep
/// producer/consumer register walk replaced by the direct composed kernel.
///
/// # Panics
///
/// Panics when `A` exceeds `2N × N`, `E` exceeds `2N × N`, or shapes
/// mismatch.
pub fn narrow_column_fusion_macro(
    n: usize,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    assert!(m <= 2 * n && k <= n, "producer stationary exceeds 2N x N");
    assert!(d.cols() <= n, "consumer output exceeds 2N x N");
    crate::fusion::FusedRunResult {
        out: a.matmul(b).matmul(d),
        cycles: (l + 6 * n + 4) as u64,
        intermediate_elems: (m * l) as u64,
    }
}

/// Fig 7(e), executed: **wide column fusion** on the four-CU fabric. The
/// top two CUs form a wide (`N × 2N`) IS producer holding `A[M, K]` with
/// `K` up to `2N`; the bottom two CUs form a wide OS consumer accumulating
/// `E[M, N]` with `N` up to `2N`. Columns of the intermediate stream from
/// the producer's east port through the fusion muxes into the consumer's
/// west port — `C` exists only on that wire.
///
/// # Panics
///
/// Panics when `A` exceeds `N × 2N`, `E` exceeds `N × 2N`, or the shapes
/// do not chain.
pub fn wide_column_fusion(
    n: usize,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    let nn = d.cols();
    assert!(m <= n && k <= 2 * n, "producer stationary exceeds N x 2N");
    assert!(nn <= 2 * n, "consumer output exceeds N x 2N");

    let mut producer = CuRow::new(n, 2, Stationary::Is);
    producer.load_stationary(a);
    let mut consumer = CuRow::new(n, 2, Stationary::Os);

    // Producer (width 2N) emits C[m'][l'] on its east edge after the step
    // at cycle l' + (2n - 1) + m'; the consumer's OS schedule wants its
    // west input at local cycle l' + m'.
    let offset = 2 * n - 1;
    let total = l + 6 * n + 4;
    let zeros = vec![0i64; n];
    let mut north_p = vec![0i64; 2 * n];
    let mut north_c = vec![0i64; 2 * n];
    let mut east_p = vec![0i64; n];
    let mut east_c = vec![0i64; n];
    let mut south = vec![0i64; 2 * n];
    for t in 0..total {
        for (col_k, w) in north_p.iter_mut().enumerate() {
            let li = t as i64 - col_k as i64;
            *w = if col_k < k && li >= 0 && (li as usize) < l {
                b[(col_k, li as usize)]
            } else {
                0
            };
        }
        producer.step_into(&zeros, &north_p, &mut east_p, &mut south);
        let tc = t as i64 - offset as i64;
        for (col_j, w) in north_c.iter_mut().enumerate() {
            let li = tc - col_j as i64;
            *w = if col_j < nn && li >= 0 && (li as usize) < l {
                d[(li as usize, col_j)]
            } else {
                0
            };
        }
        consumer.step_into(&east_p, &north_c, &mut east_c, &mut south);
    }
    let out = Matrix::from_fn(m, nn, |r, c| consumer.acc(r, c));
    crate::fusion::FusedRunResult {
        out,
        cycles: total as u64,
        intermediate_elems: (m * l) as u64,
    }
}

/// Wavefront macro-step of [`wide_column_fusion`]: same preconditions and
/// the algebraic total `l + 6n + 4`, direct composed kernel instead of
/// the lockstep 2-CU-half register walk.
///
/// # Panics
///
/// Panics when `A` exceeds `N × 2N`, `E` exceeds `N × 2N`, or the shapes
/// do not chain.
pub fn wide_column_fusion_macro(
    n: usize,
    a: &Matrix,
    b: &Matrix,
    d: &Matrix,
) -> crate::fusion::FusedRunResult {
    assert_eq!(a.cols(), b.rows(), "producer inner dimensions must agree");
    assert_eq!(b.cols(), d.rows(), "consumer inner dimensions must agree");
    let (m, k) = (a.rows(), a.cols());
    let l = b.cols();
    assert!(m <= n && k <= 2 * n, "producer stationary exceeds N x 2N");
    assert!(d.cols() <= 2 * n, "consumer output exceeds N x 2N");
    crate::fusion::FusedRunResult {
        out: a.matmul(b).matmul(d),
        cycles: (l + 6 * n + 4) as u64,
        intermediate_elems: (m * l) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_tile_four_cus() {
        for shape in FabricShape::ALL {
            let (gr, gc) = shape.grid();
            assert_eq!(gr * gc, 4);
            assert_eq!(shape.logical(4), (gr * 4, gc * 4));
        }
    }

    #[test]
    fn wide_fabric_hosts_a_4n_stationary_dimension() {
        // B = 4 x 16 on four 4x4 CUs in wide arrangement: the untiled L
        // dimension spans all four CUs, which no single CU could hold.
        let n = 4;
        let a = Matrix::pseudo_random(9, 4, 1);
        let b = Matrix::pseudo_random(4, 16, 2);
        let mut fabric = FuseCuFabric::new(n, FabricShape::Wide, Stationary::Ws);
        let r = fabric.run_ws(&a, &b);
        assert_eq!(r.out, a.matmul(&b));
    }

    #[test]
    fn narrow_fabric_hosts_a_4n_reduction_dimension() {
        let n = 4;
        let a = Matrix::pseudo_random(6, 16, 3);
        let b = Matrix::pseudo_random(16, 4, 4);
        let mut fabric = FuseCuFabric::new(n, FabricShape::Narrow, Stationary::Ws);
        let r = fabric.run_ws(&a, &b);
        assert_eq!(r.out, a.matmul(&b));
    }

    #[test]
    fn square_fabric_matches_monolithic_array_cycle_for_cycle() {
        // The paper's "simply adds MUX and wires": the composed fabric is
        // indistinguishable from a monolithic 2N x 2N array.
        let n = 3;
        let a = Matrix::pseudo_random(7, 5, 5);
        let b = Matrix::pseudo_random(5, 6, 6);
        let mut fabric = FuseCuFabric::new(n, FabricShape::Square, Stationary::Ws);
        let mut monolithic = CuArray::new(2 * n, Stationary::Ws);
        let f = fabric.run_ws(&a, &b);
        let m = monolithic.run_ws(&a, &b);
        assert_eq!(f.out, m.out);
        assert_eq!(f.cycles, m.cycles);
    }

    #[test]
    fn all_shapes_compute_what_fits() {
        let n = 4;
        for shape in FabricShape::ALL {
            let (rows, cols) = shape.logical(n);
            let k = rows.min(7);
            let l = cols.min(7);
            let a = Matrix::pseudo_random(5, k, 7);
            let b = Matrix::pseudo_random(k, l, 8);
            let mut fabric = FuseCuFabric::new(n, shape, Stationary::Ws);
            assert_eq!(fabric.run_ws(&a, &b).out, a.matmul(&b), "{shape:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the logical array")]
    fn oversized_stationary_rejected() {
        let mut fabric = FuseCuFabric::new(4, FabricShape::Wide, Stationary::Ws);
        let a = Matrix::zero(4, 8);
        let b = Matrix::zero(8, 16); // K = 8 > logical rows (4) in wide
        let _ = fabric.run_ws(&a, &b);
    }

    #[test]
    fn fabric_os_matches_golden_beyond_one_cu() {
        // Output 7x10 on 4x4 CUs arranged square (logical 8x8 would not
        // fit 10 columns; use wide 4x16): exercises cross-CU accumulation.
        let a = Matrix::pseudo_random(4, 9, 51);
        let b = Matrix::pseudo_random(9, 13, 52);
        let mut fabric = FuseCuFabric::new(4, FabricShape::Wide, Stationary::Os);
        let r = fabric.run_os(&a, &b);
        assert_eq!(r.out, a.matmul(&b));
        // Square fabric too.
        let a2 = Matrix::pseudo_random(7, 5, 53);
        let b2 = Matrix::pseudo_random(5, 6, 54);
        let mut sq = FuseCuFabric::new(4, FabricShape::Square, Stationary::Os);
        assert_eq!(sq.run_os(&a2, &b2).out, a2.matmul(&b2));
    }

    #[test]
    fn fabric_tile_fusion_hosts_2n_intermediates() {
        // C = 7x7 exceeds one 4x4 CU; the square fabric (8x8) fuses it in
        // place across all four CUs.
        for (m, k, l, nn, seed) in [
            (7usize, 5usize, 7usize, 6usize, 61u64),
            (8, 3, 8, 9, 62), // full 2N x 2N intermediate, long consumer
            (5, 8, 6, 3, 63),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let r = fabric_tile_fusion(4, FabricShape::Square, &a, &b, &d);
            assert_eq!(
                r.out,
                a.matmul(&b).matmul(&d),
                "m={m} k={k} l={l} nn={nn}"
            );
            assert_eq!(r.intermediate_elems, (m * l) as u64);
        }
    }

    #[test]
    fn fabric_tile_fusion_agrees_with_single_cu() {
        let a = Matrix::pseudo_random(4, 4, 71);
        let b = Matrix::pseudo_random(4, 4, 72);
        let d = Matrix::pseudo_random(4, 6, 73);
        let fabric = fabric_tile_fusion(4, FabricShape::Square, &a, &b, &d);
        let single = crate::fusion::tile_fusion(4, &a, &b, &d);
        assert_eq!(fabric.out, single.out);
    }

    #[test]
    fn wide_column_fusion_matches_golden() {
        // K and N both beyond one CU (up to 2N): the Fig 7(e) config.
        for (n, m, k, l, nn, seed) in [
            (4usize, 4usize, 8usize, 10usize, 8usize, 1u64),
            (4, 3, 7, 4, 5, 2),
            (5, 5, 10, 13, 9, 3),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let r = wide_column_fusion(n, &a, &b, &d);
            assert_eq!(
                r.out,
                a.matmul(&b).matmul(&d),
                "n={n} m={m} k={k} l={l} nn={nn}"
            );
            assert_eq!(r.intermediate_elems, (m * l) as u64);
        }
    }

    #[test]
    fn wide_fusion_agrees_with_single_cu_fusion_where_both_fit() {
        let n = 6;
        let a = Matrix::pseudo_random(4, 5, 31);
        let b = Matrix::pseudo_random(5, 9, 32);
        let d = Matrix::pseudo_random(9, 4, 33);
        let wide = wide_column_fusion(n, &a, &b, &d);
        let single = crate::fusion::column_fusion(n, &a, &b, &d);
        assert_eq!(wide.out, single.out);
    }

    #[test]
    fn narrow_column_fusion_matches_golden() {
        // M beyond one CU (up to 2N): tall attention-style operands.
        for (n, m, k, l, nn, seed) in [
            (4usize, 8usize, 4usize, 10usize, 4usize, 81u64),
            (4, 7, 3, 5, 2, 82),
            (5, 10, 5, 12, 5, 83),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let r = narrow_column_fusion(n, &a, &b, &d);
            assert_eq!(
                r.out,
                a.matmul(&b).matmul(&d),
                "n={n} m={m} k={k} l={l} nn={nn}"
            );
        }
    }

    #[test]
    fn narrow_and_wide_fusion_agree_where_both_fit() {
        let n = 6;
        let a = Matrix::pseudo_random(5, 4, 91);
        let b = Matrix::pseudo_random(4, 8, 92);
        let d = Matrix::pseudo_random(8, 5, 93);
        assert_eq!(
            narrow_column_fusion(n, &a, &b, &d).out,
            wide_column_fusion(n, &a, &b, &d).out
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 2N x N")]
    fn narrow_fusion_rejects_oversized_producer() {
        let a = Matrix::zero(12, 4); // M = 12 > 2N = 8
        let b = Matrix::zero(4, 4);
        let d = Matrix::zero(4, 4);
        let _ = narrow_column_fusion(4, &a, &b, &d);
    }

    #[test]
    fn cu_row_step_matches_monolithic_ws() {
        // A 1x2 CU row is indistinguishable from a monolithic N x 2N array
        // for WS execution (here exercised through wide_column_fusion's
        // producer path via load/step, checked by a direct WS run).
        let n = 3;
        let a = Matrix::pseudo_random(5, 3, 41);
        let b_stat = Matrix::pseudo_random(3, 6, 42);
        let mut row = CuRow::new(n, 2, Stationary::Ws);
        row.load_stationary(&b_stat);
        let (m, k, l) = (a.rows(), a.cols(), b_stat.cols());
        let mut out = Matrix::zero(m, l);
        let total = m + n + 2 * n + 2;
        let zeros = vec![0i64; 2 * n];
        let mut west = vec![0i64; n];
        let mut east = vec![0i64; n];
        let mut south = vec![0i64; 2 * n];
        for t in 0..total {
            for (row_k, w) in west.iter_mut().enumerate() {
                let mi = t as i64 - row_k as i64;
                *w = if row_k < k && mi >= 0 && (mi as usize) < m {
                    a[(mi as usize, row_k)]
                } else {
                    0
                };
            }
            row.step_into(&west, &zeros, &mut east, &mut south);
            for (col_l, v) in south.iter().enumerate() {
                let mi = t as i64 - (n - 1) as i64 - col_l as i64;
                if col_l < l && mi >= 0 && (mi as usize) < m {
                    out[(mi as usize, col_l)] = *v;
                }
            }
        }
        assert_eq!(out, a.matmul(&b_stat));
    }

    #[test]
    fn fabric_macro_runs_match_the_per_cycle_engine() {
        // Deterministic pin of the fabric-scale wavefront tier; the
        // proptest suite sweeps random shapes and all three fabric shapes.
        let n = 4;
        for shape in FabricShape::ALL {
            let (rows, cols) = shape.logical(n);
            let k = rows.min(7);
            let l = cols.min(7);
            let a = Matrix::pseudo_random(5, k, 17);
            let b = Matrix::pseudo_random(k, l, 18);
            let mut cycle = FuseCuFabric::new(n, shape, Stationary::Ws);
            let mut wave = FuseCuFabric::new(n, shape, Stationary::Ws);
            let ws = cycle.run_ws(&a, &b);
            let wsm = wave.run_ws_macro(&a, &b);
            assert_eq!(wsm.out, ws.out, "{shape:?} ws out");
            assert_eq!(wsm.cycles, ws.cycles, "{shape:?} ws cycles");
        }
    }

    #[test]
    fn fabric_macro_tile_fusion_matches_per_cycle() {
        for (m, k, l, nn, seed) in [
            (7usize, 5usize, 7usize, 6usize, 61u64),
            (8, 3, 8, 9, 62),
            (5, 8, 6, 3, 63),
        ] {
            let a = Matrix::pseudo_random(m, k, seed);
            let b = Matrix::pseudo_random(k, l, seed + 10);
            let d = Matrix::pseudo_random(l, nn, seed + 20);
            let cycle = fabric_tile_fusion(4, FabricShape::Square, &a, &b, &d);
            let wave = fabric_tile_fusion_macro(4, FabricShape::Square, &a, &b, &d);
            assert_eq!(wave.out, cycle.out, "m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.cycles, cycle.cycles, "m={m} k={k} l={l} nn={nn}");
            assert_eq!(wave.intermediate_elems, cycle.intermediate_elems);
        }
    }

    #[test]
    fn macro_column_fusion_variants_match_per_cycle() {
        let n = 4;
        let a_wide = Matrix::pseudo_random(4, 8, 1);
        let b_wide = Matrix::pseudo_random(8, 10, 11);
        let d_wide = Matrix::pseudo_random(10, 8, 21);
        let cycle = wide_column_fusion(n, &a_wide, &b_wide, &d_wide);
        let wave = wide_column_fusion_macro(n, &a_wide, &b_wide, &d_wide);
        assert_eq!(wave.out, cycle.out);
        assert_eq!(wave.cycles, cycle.cycles);
        assert_eq!(wave.intermediate_elems, cycle.intermediate_elems);
        let a_tall = Matrix::pseudo_random(8, 4, 81);
        let b_tall = Matrix::pseudo_random(4, 10, 82);
        let d_tall = Matrix::pseudo_random(10, 4, 83);
        let cycle = narrow_column_fusion(n, &a_tall, &b_tall, &d_tall);
        let wave = narrow_column_fusion_macro(n, &a_tall, &b_tall, &d_tall);
        assert_eq!(wave.out, cycle.out);
        assert_eq!(wave.cycles, cycle.cycles);
        assert_eq!(wave.intermediate_elems, cycle.intermediate_elems);
    }

    #[test]
    #[should_panic(expected = "exceeds N x 2N")]
    fn wide_fusion_rejects_oversized_producer() {
        let a = Matrix::zero(4, 12); // K = 12 > 2N = 8
        let b = Matrix::zero(12, 4);
        let d = Matrix::zero(4, 4);
        let _ = wide_column_fusion(4, &a, &b, &d);
    }
}
