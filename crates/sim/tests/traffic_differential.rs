//! Differential proof that the three traffic-accounting tiers agree.
//!
//! The driver now prices a nest three ways: the frozen naive walk
//! ([`fusecu_sim::driver::oracle`], one residency check per slot per
//! innermost body), the hoisted walk (residency checks strength-reduced
//! to the loop levels where they can change), and the closed form (no
//! tile loops at all). Correctness rests on all three producing
//! byte-identical counters, and on those counters equalling the
//! analytical model — this suite is that proof, over randomized orders
//! and tilings plus pinned boundary shapes (unit tiles, full-dimension
//! tiles, untiled axes, ragged edges, single-iteration loops).
//!
//! Tile ranges deliberately exceed the dimension ranges: every tier and
//! the analytical model clamp oversized tiles, so `tile > dim` must be
//! exercised, not filtered out.

use proptest::prelude::*;

use fusecu_dataflow::{CostModel, LoopNest, MemoryAccess, Tiling};
use fusecu_fusion::{ExtTensor, FusedNest, FusedPair, FusedTiling};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{
    measure_fused_nest, measure_fused_nest_walk, measure_nest, measure_nest_walk, oracle,
};

fn model() -> CostModel {
    CostModel::paper()
}

/// Asserts naive == hoisted == closed-form == analytical for one nest.
fn assert_nest_paths_agree(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
    let naive = oracle::measure_nest(mm, nest);
    let walk = measure_nest_walk(mm, nest);
    let closed = measure_nest(mm, nest);
    let predicted = model().evaluate(mm, nest);
    assert_eq!(walk, naive, "hoisted walk vs naive oracle: {mm} {nest:?}");
    assert_eq!(closed, naive, "closed form vs naive oracle: {mm} {nest:?}");
    assert_eq!(closed, predicted, "closed form vs model: {mm} {nest:?}");
    closed
}

/// Asserts the fused tiers agree and match `FusedNest::evaluate`.
fn assert_fused_paths_agree(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
    let naive = oracle::measure_fused_nest(pair, nest);
    let walk = measure_fused_nest_walk(pair, nest);
    let closed = measure_fused_nest(pair, nest);
    assert_eq!(walk, naive, "hoisted walk vs naive oracle: {pair} {nest}");
    assert_eq!(closed, naive, "closed form vs naive oracle: {pair} {nest}");
    let predicted = nest.evaluate(&model(), pair);
    for (slot, t) in ExtTensor::ALL.iter().enumerate() {
        assert_eq!(
            closed[slot],
            predicted.of(*t),
            "closed form vs model for {t:?}: {pair} {nest}"
        );
    }
    closed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random shape × order × (possibly oversized, ragged) tiling.
    #[test]
    fn nest_tiers_agree_on_random_genomes(
        m in 1u64..24,
        k in 1u64..24,
        l in 1u64..24,
        order_ix in 0usize..6,
        tm in 1u64..32,
        tk in 1u64..32,
        tl in 1u64..32,
    ) {
        let mm = MatMul::new(m, k, l);
        let nest = LoopNest::new(LoopNest::orders()[order_ix], Tiling::new(tm, tk, tl));
        assert_nest_paths_agree(mm, &nest);
    }

    /// Random fused pair × shared-loop order × ragged four-way tiling.
    #[test]
    fn fused_tiers_agree_on_random_genomes(
        m in 1u64..16,
        k in 1u64..16,
        l in 1u64..16,
        n in 1u64..16,
        outer in 0u8..2,
        tm in 1u64..20,
        tk in 1u64..20,
        tl in 1u64..20,
        tn in 1u64..20,
    ) {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
        let nest = FusedNest::new(outer == 0, FusedTiling::new(tm, tk, tl, tn));
        assert_fused_paths_agree(&pair, &nest);
    }
}

/// Boundary tilings pinned deterministically so a failure prints the
/// concrete nest rather than a shrunken proptest case.
#[test]
fn nest_tiers_agree_on_boundary_tilings() {
    let mm = MatMul::new(12, 10, 8);
    let tilings = [
        Tiling::new(1, 1, 1),    // unit tiles: one run per body everywhere
        Tiling::new(12, 10, 8),  // full-dim: every loop single-iteration
        Tiling::new(64, 64, 64), // oversized: must clamp to full-dim
        Tiling::new(5, 10, 3),   // ragged M and L edges, untiled K
        Tiling::new(12, 3, 8),   // only K iterates
        Tiling::new(5, 4, 3),    // ragged on every axis
        Tiling::new(12, 10, 3),  // single non-trivial innermost-capable axis
        Tiling::new(7, 7, 7),    // ragged, no axis divides evenly
    ];
    for order in LoopNest::orders() {
        for tiling in tilings {
            let nest = LoopNest::new(order, tiling);
            assert_nest_paths_agree(mm, &nest);
        }
    }
}

/// Degenerate shapes: vectors and scalars exercise `count == 1` and
/// `edge == full` simultaneously.
#[test]
fn nest_tiers_agree_on_degenerate_shapes() {
    for mm in [
        MatMul::new(1, 1, 1),
        MatMul::new(1, 9, 1),
        MatMul::new(16, 1, 4),
        MatMul::new(2, 2, 2),
    ] {
        for order in LoopNest::orders() {
            for t in [1u64, 2, 3, 16] {
                let nest = LoopNest::new(order, Tiling::new(t, t, t));
                assert_nest_paths_agree(mm, &nest);
            }
        }
    }
}

#[test]
fn fused_tiers_agree_on_boundary_tilings() {
    let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
    let tilings = [
        FusedTiling::new(1, 1, 1, 1),     // unit tiles
        FusedTiling::new(10, 6, 12, 8),   // full-dim everywhere
        FusedTiling::new(32, 32, 32, 32), // oversized: clamps to full-dim
        FusedTiling::new(4, 6, 5, 8),     // ragged shared dims, whole phases
        FusedTiling::new(10, 4, 12, 3),   // whole shared dims, ragged phases
        FusedTiling::new(3, 4, 5, 6),     // ragged everywhere
        FusedTiling::new(10, 6, 5, 8),    // only L iterates among shared dims
    ];
    for outer_is_m in [true, false] {
        for tiling in tilings {
            let nest = FusedNest::new(outer_is_m, tiling);
            assert_fused_paths_agree(&pair, &nest);
        }
    }
}
