//! Differential proof that the three traffic-accounting tiers agree.
//!
//! The driver now prices a nest three ways: the frozen naive walk
//! ([`fusecu_sim::driver::oracle`], one residency check per slot per
//! innermost body), the hoisted walk (residency checks strength-reduced
//! to the loop levels where they can change), and the closed form (no
//! tile loops at all). Correctness rests on all three producing
//! byte-identical counters, and on those counters equalling the
//! analytical model — this suite is that proof, over randomized orders
//! and tilings plus pinned boundary shapes (unit tiles, full-dimension
//! tiles, untiled axes, ragged edges, single-iteration loops).
//!
//! Tile ranges deliberately exceed the dimension ranges: every tier and
//! the analytical model clamp oversized tiles, so `tile > dim` must be
//! exercised, not filtered out.

use proptest::prelude::*;

use fusecu_dataflow::{CostModel, LoopNest, MemoryAccess, Tiling};
use fusecu_fusion::{ExtTensor, FusedNest, FusedPair, FusedTiling};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{
    measure_fused_nest, measure_fused_nest_walk, measure_nest, measure_nest_walk, oracle,
};

fn model() -> CostModel {
    CostModel::paper()
}

/// Asserts naive == hoisted == closed-form == analytical for one nest.
fn assert_nest_paths_agree(mm: MatMul, nest: &LoopNest) -> MemoryAccess {
    let naive = oracle::measure_nest(mm, nest);
    let walk = measure_nest_walk(mm, nest);
    let closed = measure_nest(mm, nest);
    let predicted = model().evaluate(mm, nest);
    assert_eq!(walk, naive, "hoisted walk vs naive oracle: {mm} {nest:?}");
    assert_eq!(closed, naive, "closed form vs naive oracle: {mm} {nest:?}");
    assert_eq!(closed, predicted, "closed form vs model: {mm} {nest:?}");
    closed
}

/// Asserts the fused tiers agree and match `FusedNest::evaluate`.
fn assert_fused_paths_agree(pair: &FusedPair, nest: &FusedNest) -> [u64; 4] {
    let naive = oracle::measure_fused_nest(pair, nest);
    let walk = measure_fused_nest_walk(pair, nest);
    let closed = measure_fused_nest(pair, nest);
    assert_eq!(walk, naive, "hoisted walk vs naive oracle: {pair} {nest}");
    assert_eq!(closed, naive, "closed form vs naive oracle: {pair} {nest}");
    let predicted = nest.evaluate(&model(), pair);
    for (slot, t) in ExtTensor::ALL.iter().enumerate() {
        assert_eq!(
            closed[slot],
            predicted.of(*t),
            "closed form vs model for {t:?}: {pair} {nest}"
        );
    }
    closed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random shape × order × (possibly oversized, ragged) tiling.
    #[test]
    fn nest_tiers_agree_on_random_genomes(
        m in 1u64..24,
        k in 1u64..24,
        l in 1u64..24,
        order_ix in 0usize..6,
        tm in 1u64..32,
        tk in 1u64..32,
        tl in 1u64..32,
    ) {
        let mm = MatMul::new(m, k, l);
        let nest = LoopNest::new(LoopNest::orders()[order_ix], Tiling::new(tm, tk, tl));
        assert_nest_paths_agree(mm, &nest);
    }

    /// Random fused pair × shared-loop order × ragged four-way tiling.
    #[test]
    fn fused_tiers_agree_on_random_genomes(
        m in 1u64..16,
        k in 1u64..16,
        l in 1u64..16,
        n in 1u64..16,
        outer in 0u8..2,
        tm in 1u64..20,
        tk in 1u64..20,
        tl in 1u64..20,
        tn in 1u64..20,
    ) {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
        let nest = FusedNest::new(outer == 0, FusedTiling::new(tm, tk, tl, tn));
        assert_fused_paths_agree(&pair, &nest);
    }
}

/// Boundary tilings pinned deterministically so a failure prints the
/// concrete nest rather than a shrunken proptest case.
#[test]
fn nest_tiers_agree_on_boundary_tilings() {
    let mm = MatMul::new(12, 10, 8);
    let tilings = [
        Tiling::new(1, 1, 1),    // unit tiles: one run per body everywhere
        Tiling::new(12, 10, 8),  // full-dim: every loop single-iteration
        Tiling::new(64, 64, 64), // oversized: must clamp to full-dim
        Tiling::new(5, 10, 3),   // ragged M and L edges, untiled K
        Tiling::new(12, 3, 8),   // only K iterates
        Tiling::new(5, 4, 3),    // ragged on every axis
        Tiling::new(12, 10, 3),  // single non-trivial innermost-capable axis
        Tiling::new(7, 7, 7),    // ragged, no axis divides evenly
    ];
    for order in LoopNest::orders() {
        for tiling in tilings {
            let nest = LoopNest::new(order, tiling);
            assert_nest_paths_agree(mm, &nest);
        }
    }
}

/// Degenerate shapes: vectors and scalars exercise `count == 1` and
/// `edge == full` simultaneously.
#[test]
fn nest_tiers_agree_on_degenerate_shapes() {
    for mm in [
        MatMul::new(1, 1, 1),
        MatMul::new(1, 9, 1),
        MatMul::new(16, 1, 4),
        MatMul::new(2, 2, 2),
    ] {
        for order in LoopNest::orders() {
            for t in [1u64, 2, 3, 16] {
                let nest = LoopNest::new(order, Tiling::new(t, t, t));
                assert_nest_paths_agree(mm, &nest);
            }
        }
    }
}

#[test]
fn fused_tiers_agree_on_boundary_tilings() {
    let pair = FusedPair::try_new(MatMul::new(10, 6, 12), MatMul::new(10, 12, 8)).unwrap();
    let tilings = [
        FusedTiling::new(1, 1, 1, 1),     // unit tiles
        FusedTiling::new(10, 6, 12, 8),   // full-dim everywhere
        FusedTiling::new(32, 32, 32, 32), // oversized: clamps to full-dim
        FusedTiling::new(4, 6, 5, 8),     // ragged shared dims, whole phases
        FusedTiling::new(10, 4, 12, 3),   // whole shared dims, ragged phases
        FusedTiling::new(3, 4, 5, 6),     // ragged everywhere
        FusedTiling::new(10, 6, 5, 8),    // only L iterates among shared dims
    ];
    for outer_is_m in [true, false] {
        for tiling in tilings {
            let nest = FusedNest::new(outer_is_m, tiling);
            assert_fused_paths_agree(&pair, &nest);
        }
    }
}

// --- k-ary fused chains: the depth-parametric model vs the simulator ---

use fusecu_fusion::{
    try_plan_dag_with, ChainNest, FusedChain, PlannerConfig,
};
use fusecu_ir::OpGraph;
use fusecu_sim::driver::{execute_fused_chain, measure_fused_chain, measure_fused_chain_walk};
use fusecu_sim::Matrix;

/// Asserts the three chain tiers agree and match [`ChainNest::evaluate`].
fn assert_chain_paths_agree(chain: &FusedChain, nest: &ChainNest) -> Vec<u64> {
    let naive = oracle::measure_fused_chain(chain, nest);
    let walk = measure_fused_chain_walk(chain, nest);
    let closed = measure_fused_chain(chain, nest);
    assert_eq!(walk, naive, "hoisted walk vs naive oracle: {chain} {nest:?}");
    assert_eq!(closed, naive, "closed form vs naive oracle: {chain} {nest:?}");
    let predicted = nest.evaluate(&model(), chain);
    assert_eq!(
        closed,
        predicted.per_tensor(),
        "closed form vs analytical model: {chain} {nest:?}"
    );
    closed
}

/// A random fan-out tree of matmuls over a shared `M`: node `i > 0`
/// consumes the output of a random earlier node, so every prefix of
/// `parents`/`dims` is a valid DAG with chains, forks, and solo leaves.
fn tree_graph(m: u64, head: u64, dims: &[u64], parents: &[usize]) -> OpGraph {
    let mut g = OpGraph::new();
    let mut ids = Vec::new();
    let mut cols = Vec::new();
    for (i, (&n, &p)) in dims.iter().zip(parents).enumerate() {
        let k = if i == 0 { head } else { cols[p % i] };
        let id = g.add_matmul(format!("mm{i}"), MatMul::new(m, k, n), 1);
        if i > 0 {
            g.connect(ids[p % i], id);
        }
        ids.push(id);
        cols.push(n);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random chain depth × dims × (possibly oversized, ragged) tiling:
    /// naive == hoisted == closed form == analytical, at any depth.
    #[test]
    fn chain_tiers_agree_on_random_genomes(
        dims in proptest::collection::vec(1u64..12, 3..7),
        t_m in 1u64..16,
        tiles in proptest::collection::vec(1u64..16, 5..6),
    ) {
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(13, w[0], w[1]))
            .collect();
        let chain = FusedChain::try_new(&mms).unwrap();
        let nest = ChainNest::new(t_m, tiles[..chain.depth()].to_vec());
        assert_chain_paths_agree(&chain, &nest);
    }

    /// The analytical k-ary model matches a step-by-step replay on real
    /// matrices exactly — and the replayed chain computes the right
    /// product (interior panels never corrupt the numerics).
    #[test]
    fn chain_replay_matches_model_exactly(
        dims in proptest::collection::vec(1u64..8, 3..7),
        t_m in 1u64..10,
        tiles in proptest::collection::vec(1u64..10, 5..6),
        seed in 0u64..1024,
    ) {
        let m = 9u64;
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(m, w[0], w[1]))
            .collect();
        let chain = FusedChain::try_new(&mms).unwrap();
        let nest = ChainNest::new(t_m, tiles[..chain.depth()].to_vec());

        let x = Matrix::pseudo_random(m as usize, chain.col(0) as usize, seed);
        let ws: Vec<Matrix> = (0..chain.depth())
            .map(|i| {
                Matrix::pseudo_random(
                    chain.col(i) as usize,
                    chain.col(i + 1) as usize,
                    seed + 1 + i as u64,
                )
            })
            .collect();
        let run = execute_fused_chain(&x, &ws, &chain, &nest);
        let predicted = nest.evaluate(&model(), &chain);
        prop_assert_eq!(&run.measured[..], predicted.per_tensor());
        let reference = ws.iter().fold(x, |acc, w| acc.matmul(w));
        prop_assert_eq!(run.out, reference);
    }

    /// On random small DAGs, the depth-aware path-cover plan never
    /// scores worse than the best pairwise matching over the same links.
    #[test]
    fn dag_depth_plan_never_loses_to_pair_matching(
        head in 1u64..48,
        dims in proptest::collection::vec(1u64..48, 2..7),
        parents in proptest::collection::vec(0usize..6, 2..7),
        bs_shift in 8u32..14,
    ) {
        let n = dims.len().min(parents.len());
        let graph = tree_graph(64, head, &dims[..n], &parents[..n]);
        let dag = graph.mm_dag();
        let bs = 1u64 << bs_shift;
        let deep = try_plan_dag_with(&PlannerConfig::default(), &model(), &dag, bs);
        let pairs = try_plan_dag_with(&PlannerConfig::pairs_only(), &model(), &dag, bs);
        let (Some(deep), Some(pairs)) = (&deep, &pairs) else {
            // Tiny buffers can make some solo optimum infeasible; both
            // planners must then agree the graph is unplannable.
            prop_assert!(deep.is_none() && pairs.is_none());
            return Ok(());
        };
        prop_assert!(
            deep.total_ma() <= pairs.total_ma(),
            "depth-aware {} > pairwise {}",
            deep.total_ma(),
            pairs.total_ma()
        );
    }
}

/// Boundary chains pinned deterministically: unit tiles, full-dimension
/// tiles, oversized tiles, ragged edges, and unit interior dims.
#[test]
fn chain_tiers_agree_on_boundary_nests() {
    let chains = [
        FusedChain::try_new(&[
            MatMul::new(12, 6, 9),
            MatMul::new(12, 9, 4),
            MatMul::new(12, 4, 7),
        ])
        .unwrap(),
        FusedChain::try_new(&[
            MatMul::new(5, 1, 1),
            MatMul::new(5, 1, 8),
            MatMul::new(5, 8, 1),
            MatMul::new(5, 1, 3),
        ])
        .unwrap(),
    ];
    for chain in &chains {
        let k = chain.depth();
        let nests = [
            ChainNest::new(1, vec![1; k]),
            ChainNest::new(chain.m(), (0..k).map(|i| ChainNest::phase_dim(chain, i)).collect()),
            ChainNest::new(64, vec![64; k]),
            ChainNest::new(5, vec![3; k]),
            ChainNest::new(7, (0..k).map(|i| 1 + i as u64).collect()),
        ];
        for nest in &nests {
            assert_chain_paths_agree(chain, nest);
        }
    }
}
