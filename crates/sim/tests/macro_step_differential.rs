//! Differential proof that the wavefront macro-step tier equals the
//! frozen per-cycle engine, byte for byte.
//!
//! The macro tier ([`fusecu_sim::SimMode::FullMacro`] and the `*_macro`
//! runs/drivers) replaces synchronous per-cycle register stepping with the
//! direct kernel plus algebraic cycle/traffic derivation from the skew
//! structure of the WS/OS/IS schedules. It is only admissible because it
//! is **bit-identical** to the per-cycle oracle on outputs, cycle counts,
//! and every traffic counter — this suite is that proof, over random
//! shapes in all three [`Stationary`] modes, the
//! `promote_acc_to_stationary` fused-tile handoff, fused pairs on a CU
//! and on the four-CU fabric, and depth-≥3 fused chains.
//!
//! All arithmetic is exact over `i64` (operands are bounded integers), so
//! the comparisons below are exact equality, never tolerance.

use proptest::prelude::*;

use fusecu_arch::Stationary;
use fusecu_dataflow::{LoopNest, Tiling};
use fusecu_fusion::{ChainNest, FusedChain, FusedNest, FusedPair, FusedTiling};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{
    execute_fused_chain, execute_fused_chain_macro, execute_fused_nest, execute_fused_nest_macro,
    execute_nest, execute_nest_macro, execute_on_cu, execute_on_cu_macro,
};
use fusecu_sim::fabric::{
    fabric_tile_fusion, fabric_tile_fusion_macro, narrow_column_fusion,
    narrow_column_fusion_macro, wide_column_fusion, wide_column_fusion_macro,
};
use fusecu_sim::fusion::{column_fusion, column_fusion_macro, tile_fusion, tile_fusion_macro};
use fusecu_sim::{CuArray, FabricShape, Matrix};

/// Clamp a raw sample into `1..=limit` deterministically.
fn dim(raw: usize, limit: usize) -> usize {
    1 + raw % limit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-CU macro runs equal the per-cycle engine in every
    /// stationary mode: same output matrix, same cycle count.
    #[test]
    fn array_macro_runs_match_per_cycle(
        n in 2usize..7,
        m_raw in 0usize..64,
        k_raw in 0usize..64,
        l_raw in 0usize..64,
        seed in 0u64..1024,
    ) {
        // WS streams M freely but holds B (K×L) stationary; IS holds A
        // (M×K) and streams L; OS accumulates M×L in place with K free.
        let mut cycle = CuArray::new(n, Stationary::Ws);
        let mut wave = CuArray::new(n, Stationary::Ws);

        let (m, k, l) = (dim(m_raw, 4 * n), dim(k_raw, n), dim(l_raw, n));
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let r = cycle.run_ws(&a, &b);
        let w = wave.run_ws_macro(&a, &b);
        prop_assert_eq!(&w.out, &r.out, "ws out");
        prop_assert_eq!(w.cycles, r.cycles, "ws cycles");

        let (m, k, l) = (dim(m_raw, n), dim(k_raw, n), dim(l_raw, 4 * n));
        let a = Matrix::pseudo_random(m, k, seed + 2);
        let b = Matrix::pseudo_random(k, l, seed + 3);
        let r = cycle.run_is(&a, &b);
        let w = wave.run_is_macro(&a, &b);
        prop_assert_eq!(&w.out, &r.out, "is out");
        prop_assert_eq!(w.cycles, r.cycles, "is cycles");

        let (m, k, l) = (dim(m_raw, n), dim(k_raw, 4 * n), dim(l_raw, n));
        let a = Matrix::pseudo_random(m, k, seed + 4);
        let b = Matrix::pseudo_random(k, l, seed + 5);
        let r = cycle.run_os(&a, &b);
        let w = wave.run_os_macro(&a, &b);
        prop_assert_eq!(&w.out, &r.out, "os out");
        prop_assert_eq!(w.cycles, r.cycles, "os cycles");
    }

    /// The fused-tile handoff: a macro OS pass must leave the PE
    /// accumulator grid exactly where the per-cycle pass does, so that
    /// `promote_acc_to_stationary` + a resident IS pass chain
    /// byte-identically through PE state.
    #[test]
    fn os_promote_handoff_matches_per_cycle(
        n in 2usize..7,
        m_raw in 0usize..64,
        k_raw in 0usize..64,
        l_raw in 0usize..64,
        nn_raw in 0usize..64,
        seed in 0u64..1024,
    ) {
        let (m, l) = (dim(m_raw, n), dim(l_raw, n));
        let (k, nn) = (dim(k_raw, 4 * n), dim(nn_raw, 4 * n));
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let d = Matrix::pseudo_random(l, nn, seed + 2);
        let mut cycle = CuArray::new(n, Stationary::Os);
        let mut wave = CuArray::new(n, Stationary::Os);
        cycle.run_os(&a, &b);
        wave.run_os_macro(&a, &b);
        for r in 0..n {
            for c in 0..n {
                prop_assert_eq!(wave.pe(r, c).acc(), cycle.pe(r, c).acc(), "acc {},{}", r, c);
            }
        }
        cycle.promote_acc_to_stationary();
        wave.promote_acc_to_stationary();
        let is = cycle.run_is_resident(m, &d);
        let ism = wave.run_is_resident_macro(m, &d);
        prop_assert_eq!(&ism.out, &is.out, "resident IS out");
        prop_assert_eq!(ism.cycles, is.cycles, "resident IS cycles");
    }

    /// Fused mappings on one CU: tile fusion (OS→promote→IS) and column
    /// fusion (lockstep IS producer + OS consumer) — output, cycles, and
    /// intermediate volume all equal.
    #[test]
    fn cu_fusion_macro_matches_per_cycle(
        n in 2usize..7,
        m_raw in 0usize..64,
        k_raw in 0usize..64,
        l_raw in 0usize..64,
        nn_raw in 0usize..64,
        seed in 0u64..1024,
    ) {
        // Tile fusion: intermediate C (M×L) must fit the array.
        let (m, l) = (dim(m_raw, n), dim(l_raw, n));
        let (k, nn) = (dim(k_raw, 4 * n), dim(nn_raw, 4 * n));
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let d = Matrix::pseudo_random(l, nn, seed + 2);
        let r = tile_fusion(n, &a, &b, &d);
        let w = tile_fusion_macro(n, &a, &b, &d);
        prop_assert_eq!(&w.out, &r.out, "tile fusion out");
        prop_assert_eq!(w.cycles, r.cycles, "tile fusion cycles");
        prop_assert_eq!(w.intermediate_elems, r.intermediate_elems);

        // Column fusion: A (M×K) and E (M×N) fit one array, L streams.
        let (m, k, nn) = (dim(m_raw, n), dim(k_raw, n), dim(nn_raw, n));
        let l = dim(l_raw, 4 * n);
        let a = Matrix::pseudo_random(m, k, seed + 3);
        let b = Matrix::pseudo_random(k, l, seed + 4);
        let d = Matrix::pseudo_random(l, nn, seed + 5);
        let r = column_fusion(n, &a, &b, &d);
        let w = column_fusion_macro(n, &a, &b, &d);
        prop_assert_eq!(&w.out, &r.out, "column fusion out");
        prop_assert_eq!(w.cycles, r.cycles, "column fusion cycles");
        prop_assert_eq!(w.intermediate_elems, r.intermediate_elems);
    }

    /// Fabric-scale runs and fusion: WS across all three reshapes,
    /// fabric tile fusion (2N-scale promote handoff), and the wide /
    /// narrow column-fusion arrangements.
    #[test]
    fn fabric_macro_matches_per_cycle(
        n in 2usize..5,
        shape_ix in 0usize..3,
        m_raw in 0usize..64,
        k_raw in 0usize..64,
        l_raw in 0usize..64,
        nn_raw in 0usize..64,
        seed in 0u64..1024,
    ) {
        let shape = FabricShape::ALL[shape_ix];
        let (rows, cols) = shape.logical(n);

        let (m, k, l) = (dim(m_raw, 3 * rows), dim(k_raw, rows), dim(l_raw, cols));
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let mut cycle = fusecu_sim::FuseCuFabric::new(n, shape, Stationary::Ws);
        let mut wave = fusecu_sim::FuseCuFabric::new(n, shape, Stationary::Ws);
        let r = cycle.run_ws(&a, &b);
        let w = wave.run_ws_macro(&a, &b);
        prop_assert_eq!(&w.out, &r.out, "fabric ws out");
        prop_assert_eq!(w.cycles, r.cycles, "fabric ws cycles");

        // Fabric tile fusion: C (M×L) fits the logical array, the
        // resident-IS stream needs L ≤ cols too.
        let (m, l) = (dim(m_raw, rows), dim(l_raw, cols.min(rows)));
        let (k, nn) = (dim(k_raw, 3 * n), dim(nn_raw, 3 * n));
        let a = Matrix::pseudo_random(m, k, seed + 2);
        let b = Matrix::pseudo_random(k, l, seed + 3);
        let d = Matrix::pseudo_random(l, nn, seed + 4);
        let r = fabric_tile_fusion(n, shape, &a, &b, &d);
        let w = fabric_tile_fusion_macro(n, shape, &a, &b, &d);
        prop_assert_eq!(&w.out, &r.out, "fabric tile fusion out");
        prop_assert_eq!(w.cycles, r.cycles, "fabric tile fusion cycles");
        prop_assert_eq!(w.intermediate_elems, r.intermediate_elems);

        // Narrow (2N×N) and wide (N×2N) column fusion.
        let l = dim(l_raw, 6 * n);
        let (m, k, nn) = (dim(m_raw, 2 * n), dim(k_raw, n), dim(nn_raw, n));
        let a = Matrix::pseudo_random(m, k, seed + 5);
        let b = Matrix::pseudo_random(k, l, seed + 6);
        let d = Matrix::pseudo_random(l, nn, seed + 7);
        let r = narrow_column_fusion(n, &a, &b, &d);
        let w = narrow_column_fusion_macro(n, &a, &b, &d);
        prop_assert_eq!(&w.out, &r.out, "narrow column fusion out");
        prop_assert_eq!(w.cycles, r.cycles, "narrow column fusion cycles");
        prop_assert_eq!(w.intermediate_elems, r.intermediate_elems);

        let (m, k, nn) = (dim(m_raw, n), dim(k_raw, 2 * n), dim(nn_raw, 2 * n));
        let a = Matrix::pseudo_random(m, k, seed + 8);
        let b = Matrix::pseudo_random(k, l, seed + 9);
        let d = Matrix::pseudo_random(l, nn, seed + 10);
        let r = wide_column_fusion(n, &a, &b, &d);
        let w = wide_column_fusion_macro(n, &a, &b, &d);
        prop_assert_eq!(&w.out, &r.out, "wide column fusion out");
        prop_assert_eq!(w.cycles, r.cycles, "wide column fusion cycles");
        prop_assert_eq!(w.intermediate_elems, r.intermediate_elems);
    }

    /// The tiled driver: `execute_nest_macro` equals `execute_nest` on
    /// both the product and every traffic counter, over random genomes
    /// (order × possibly oversized, ragged tiling).
    #[test]
    fn nest_driver_macro_matches_per_cycle(
        m in 1u64..24,
        k in 1u64..24,
        l in 1u64..24,
        order_ix in 0usize..6,
        tm in 1u64..32,
        tk in 1u64..32,
        tl in 1u64..32,
        seed in 0u64..1024,
    ) {
        let mm = MatMul::new(m, k, l);
        let nest = LoopNest::new(LoopNest::orders()[order_ix], Tiling::new(tm, tk, tl));
        let a = Matrix::pseudo_random(m as usize, k as usize, seed);
        let b = Matrix::pseudo_random(k as usize, l as usize, seed + 1);
        let full = execute_nest(&a, &b, mm, &nest);
        let wave = execute_nest_macro(&a, &b, mm, &nest);
        prop_assert_eq!(&wave.out, &full.out, "nest out");
        prop_assert_eq!(wave.measured, full.measured, "nest traffic");
    }

    /// The fused driver: `execute_fused_nest_macro` equals
    /// `execute_fused_nest` on the output and all four counters.
    #[test]
    fn fused_driver_macro_matches_per_cycle(
        m in 1u64..16,
        k in 1u64..16,
        l in 1u64..16,
        n in 1u64..16,
        outer in 0u8..2,
        tm in 1u64..20,
        tk in 1u64..20,
        tl in 1u64..20,
        tn in 1u64..20,
        seed in 0u64..1024,
    ) {
        let pair = FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap();
        let nest = FusedNest::new(outer == 0, FusedTiling::new(tm, tk, tl, tn));
        let a = Matrix::pseudo_random(m as usize, k as usize, seed);
        let b = Matrix::pseudo_random(k as usize, l as usize, seed + 1);
        let d = Matrix::pseudo_random(l as usize, n as usize, seed + 2);
        let full = execute_fused_nest(&a, &b, &d, &pair, &nest);
        let wave = execute_fused_nest_macro(&a, &b, &d, &pair, &nest);
        prop_assert_eq!(&wave.out, &full.out, "fused out");
        prop_assert_eq!(wave.measured, full.measured, "fused traffic");
    }

    /// K-ary chains at depth ≥ 3: `execute_fused_chain_macro` equals
    /// `execute_fused_chain` on the output and every per-tensor counter.
    #[test]
    fn chain_driver_macro_matches_per_cycle(
        dims in proptest::collection::vec(1u64..12, 4..7),
        t_m in 1u64..16,
        tiles in proptest::collection::vec(1u64..16, 5..6),
        seed in 0u64..1024,
    ) {
        let m = 11u64;
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(m, w[0], w[1]))
            .collect();
        let chain = FusedChain::try_new(&mms).unwrap();
        prop_assert!(chain.depth() >= 3, "suite must exercise deep chains");
        let nest = ChainNest::new(t_m, tiles[..chain.depth()].to_vec());
        let x = Matrix::pseudo_random(m as usize, chain.col(0) as usize, seed);
        let ws: Vec<Matrix> = (0..chain.depth())
            .map(|i| {
                Matrix::pseudo_random(
                    chain.col(i) as usize,
                    chain.col(i + 1) as usize,
                    seed + 1 + i as u64,
                )
            })
            .collect();
        let full = execute_fused_chain(&x, &ws, &chain, &nest);
        let wave = execute_fused_chain_macro(&x, &ws, &chain, &nest);
        prop_assert_eq!(&wave.out, &full.out, "chain out");
        prop_assert_eq!(wave.measured, full.measured, "chain traffic");
    }

    /// The CU tiling driver: `execute_on_cu_macro` equals
    /// `execute_on_cu` (product and summed cycles) in all three modes,
    /// including ragged edge tiles.
    #[test]
    fn execute_on_cu_macro_matches_per_cycle(
        n in 2usize..6,
        m in 1usize..20,
        k in 1usize..20,
        l in 1usize..20,
        mode_ix in 0usize..3,
        seed in 0u64..1024,
    ) {
        let mode = [Stationary::Ws, Stationary::Is, Stationary::Os][mode_ix];
        let a = Matrix::pseudo_random(m, k, seed);
        let b = Matrix::pseudo_random(k, l, seed + 1);
        let (out, cycles) = execute_on_cu(&a, &b, mode, n);
        let (out_m, cycles_m) = execute_on_cu_macro(&a, &b, mode, n);
        prop_assert_eq!(&out_m, &out, "{:?} out", mode);
        prop_assert_eq!(cycles_m, cycles, "{:?} cycles", mode);
    }
}

/// Boundary shapes pinned deterministically so a failure prints the
/// concrete case rather than a shrunken proptest case: unit dims, square
/// full-array tiles, streams much longer than the array.
#[test]
fn macro_tier_matches_on_boundary_shapes() {
    for (n, m, k, l) in [
        (2usize, 1usize, 1usize, 1usize),
        (4, 4, 4, 4),
        (4, 4, 16, 4),
        (6, 1, 6, 1),
        (5, 5, 20, 5),
    ] {
        let a = Matrix::pseudo_random(m, k, 7);
        let b = Matrix::pseudo_random(k, l, 8);
        let mut cycle = CuArray::new(n, Stationary::Os);
        let mut wave = CuArray::new(n, Stationary::Os);
        let r = cycle.run_os(&a, &b);
        let w = wave.run_os_macro(&a, &b);
        assert_eq!(w.out, r.out, "n={n} m={m} k={k} l={l}");
        assert_eq!(w.cycles, r.cycles, "n={n} m={m} k={k} l={l}");
    }
    // Oversized macro inputs must panic exactly like the per-cycle runs.
    let r = std::panic::catch_unwind(|| {
        let mut cu = CuArray::new(2, Stationary::Os);
        cu.run_os_macro(&Matrix::zero(5, 2), &Matrix::zero(2, 2))
    });
    assert!(r.is_err(), "oversized OS macro tile must panic");
}
