//! Allocation-count regression tests for the simulator hot paths.
//!
//! The PR that introduced the flat edge arenas and `SimScratch` claims
//! **zero heap allocations per cycle** in steady state. These tests pin
//! that down with a counting [`GlobalAlloc`]: after a warm-up pass sizes
//! every buffer, the counted region must perform literally zero `alloc`
//! or `realloc` calls.
//!
//! This lives in an integration test (its own crate) because the sim
//! library itself is `#![forbid(unsafe_code)]`, while a `GlobalAlloc`
//! impl is necessarily `unsafe`. The counter is thread-local, so parallel
//! test threads never pollute each other's counts, and the allocator
//! falls back to [`System`] for the actual memory.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fusecu_arch::Stationary;
use fusecu_dataflow::{LoopNest, Tiling};
use fusecu_ir::{MatMul, MmDim};
use fusecu_sim::driver::{
    execute_fused_nest_macro_with, execute_nest_macro_with, execute_nest_with,
    measure_fused_nest, measure_fused_nest_walk, measure_nest, measure_nest_walk,
};
use fusecu_sim::{CuArray, FabricShape, FuseCuFabric, Matrix, SimScratch};

struct CountingAlloc;

thread_local! {
    /// Allocations observed on this thread. `const` init keeps the
    /// thread-local itself from allocating lazily inside the counted
    /// region.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with` because TLS may be unavailable during thread teardown.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed on this
/// thread.
fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let r = f();
    (ALLOCS.with(Cell::get) - before, r)
}

#[test]
fn cu_array_steps_are_allocation_free() {
    let n = 8;
    let mut cu = CuArray::new(n, Stationary::Ws);
    let weights = Matrix::pseudo_random(n, n, 7);
    cu.load_stationary(&weights);
    let mut west = vec![1i64; n];
    let mut north = vec![2i64; n];
    let mut east = vec![0i64; n];
    let mut south = vec![0i64; n];
    // Warm-up: first steps may size internal wire scratch.
    for _ in 0..4 {
        cu.step_into(&west, &north, &mut east, &mut south);
    }
    let (count, _) = allocations(|| {
        for t in 0..256 {
            west.fill(t);
            north.fill(-t);
            cu.step_into(&west, &north, &mut east, &mut south);
        }
    });
    assert_eq!(count, 0, "CuArray::step_into allocated {count} times in 256 cycles");
}

#[test]
fn fabric_steps_are_allocation_free() {
    let n = 4;
    for shape in [FabricShape::Square, FabricShape::Wide, FabricShape::Narrow] {
        let mut fabric = FuseCuFabric::new(n, shape, Stationary::Ws);
        let (rows, cols) = fabric.logical();
        let weights = Matrix::pseudo_random(rows, cols, 11);
        fabric.load_stationary(&weights);
        let mut west = vec![1i64; rows];
        let mut north = vec![2i64; cols];
        let mut east = vec![0i64; rows];
        let mut south = vec![0i64; cols];
        for _ in 0..4 {
            fabric.step_into(&west, &north, &mut south);
            fabric.step_east_into(&west, &north, &mut east);
        }
        let (count, _) = allocations(|| {
            for t in 0..128 {
                west.fill(t);
                north.fill(-t);
                fabric.step_into(&west, &north, &mut south);
                fabric.step_east_into(&west, &north, &mut east);
            }
        });
        assert_eq!(count, 0, "{shape:?} fabric stepping allocated {count} times");
    }
}

#[test]
fn traffic_only_replay_never_allocates() {
    // TrafficOnly is allocation-free from the first call — not just in
    // steady state — because it touches no data at all.
    let mm = MatMul::new(96, 80, 64);
    let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(8, 10, 4));
    let pair = fusecu_fusion::FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16))
        .unwrap();
    let fused = fusecu_fusion::FusedNest::new(true, fusecu_fusion::FusedTiling::new(8, 6, 10, 4));
    let (count, (ma, ft)) = allocations(|| (measure_nest(mm, &nest), measure_fused_nest(&pair, &fused)));
    assert!(ma.total() > 0 && ft.iter().sum::<u64>() > 0);
    assert_eq!(count, 0, "counters-only replay allocated {count} times");
}

#[test]
fn closed_form_scoring_population_never_allocates() {
    // The closed-form TrafficOnly fast path and the hoisted accounting
    // walk must stay zero-allocation across a whole scoring population,
    // not just one call — this is what lets the search loop replay
    // thousands of genomes per second with no allocator traffic at all.
    // Genomes are built outside the counted region; only scoring counts.
    let mm = MatMul::new(96, 80, 64);
    let nests: Vec<LoopNest> = LoopNest::orders()
        .into_iter()
        .flat_map(|order| {
            [(8, 10, 4), (96, 80, 64), (7, 7, 7), (1, 1, 1)]
                .map(|(tm, tk, tl)| LoopNest::new(order, Tiling::new(tm, tk, tl)))
        })
        .collect();
    let pair = fusecu_fusion::FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16))
        .unwrap();
    let fused: Vec<fusecu_fusion::FusedNest> = [true, false]
        .into_iter()
        .flat_map(|outer_is_m| {
            [(8, 6, 10, 4), (32, 24, 40, 16), (5, 5, 5, 5)].map(|(tm, tk, tl, tn)| {
                fusecu_fusion::FusedNest::new(outer_is_m, fusecu_fusion::FusedTiling::new(tm, tk, tl, tn))
            })
        })
        .collect();
    let (count, total) = allocations(|| {
        let mut total = 0u64;
        for nest in &nests {
            total += measure_nest(mm, nest).total();
            total += measure_nest_walk(mm, nest).total();
        }
        for nest in &fused {
            total += measure_fused_nest(&pair, nest).iter().sum::<u64>();
            total += measure_fused_nest_walk(&pair, nest).iter().sum::<u64>();
        }
        total
    });
    assert!(total > 0);
    assert_eq!(count, 0, "closed-form/walk scoring allocated {count} times");
}

#[test]
fn warm_scratch_replay_is_allocation_free() {
    // Full-mode genome replay: after one warm-up sizes the scratch, every
    // further replay of same-shape nests allocates nothing.
    let mm = MatMul::new(48, 40, 32);
    let a = Matrix::pseudo_random(48, 40, 21);
    let b = Matrix::pseudo_random(40, 32, 22);
    let mut scratch = SimScratch::new();
    let nests: Vec<LoopNest> = LoopNest::orders()
        .into_iter()
        .map(|order| LoopNest::new(order, Tiling::new(6, 8, 4)))
        .collect();
    for nest in &nests {
        execute_nest_with(&a, &b, mm, nest, &mut scratch);
    }
    let (count, total) = allocations(|| {
        let mut total = 0u64;
        for _ in 0..16 {
            for nest in &nests {
                total += execute_nest_with(&a, &b, mm, nest, &mut scratch).total();
            }
        }
        total
    });
    assert!(total > 0);
    assert_eq!(count, 0, "warm-scratch replays allocated {count} times");
}

#[test]
fn macro_step_replay_is_allocation_free() {
    // The wavefront macro-step tier through a warm scratch: zero
    // steady-state allocations for both the nest and fused drivers —
    // nothing per-cycle survives, and nothing per-genome either.
    let mm = MatMul::new(48, 40, 32);
    let a = Matrix::pseudo_random(48, 40, 21);
    let b = Matrix::pseudo_random(40, 32, 22);
    let pair = fusecu_fusion::FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16))
        .unwrap();
    let fa = Matrix::pseudo_random(32, 24, 23);
    let fb = Matrix::pseudo_random(24, 40, 24);
    let fd = Matrix::pseudo_random(40, 16, 25);
    let fused = fusecu_fusion::FusedNest::new(true, fusecu_fusion::FusedTiling::new(8, 6, 10, 4));
    let mut scratch = SimScratch::new();
    let nests: Vec<LoopNest> = LoopNest::orders()
        .into_iter()
        .map(|order| LoopNest::new(order, Tiling::new(6, 8, 4)))
        .collect();
    // Warm-up sizes the scratch arenas once.
    execute_nest_macro_with(&a, &b, mm, &nests[0], &mut scratch);
    execute_fused_nest_macro_with(&fa, &fb, &fd, &pair, &fused, &mut scratch);
    let (count, total) = allocations(|| {
        let mut total = 0u64;
        for _ in 0..16 {
            for nest in &nests {
                total += execute_nest_macro_with(&a, &b, mm, nest, &mut scratch).total();
            }
            total += execute_fused_nest_macro_with(&fa, &fb, &fd, &pair, &fused, &mut scratch)
                .iter()
                .sum::<u64>();
        }
        total
    });
    assert!(total > 0);
    assert_eq!(count, 0, "macro-step replays allocated {count} times");
}
