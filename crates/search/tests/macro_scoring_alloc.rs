//! Allocation-count regression for [`SimMode::FullMacro`] scoring.
//!
//! The macro-stepped full backend hoists its single value replay into the
//! scorer, so scoring a whole population must touch the allocator exactly
//! zero times: no scratch lease, no tile buffers, no per-genome state.
//! This is the search-layer counterpart of the sim crate's
//! `alloc_regression` suite (same counting-[`GlobalAlloc`] idiom — an
//! integration test because the library crates forbid unsafe code).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_fusion::{FusedNest, FusedPair, FusedTiling};
use fusecu_ir::MatMul;
use fusecu_search::{Fitness, FusedScorer, NestScorer};
use fusecu_sim::SimMode;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let r = f();
    (ALLOCS.with(Cell::get) - before, r)
}

#[test]
fn full_macro_population_scoring_never_allocates() {
    // Scorer construction materializes operands and the hoisted product
    // (allocates, once); sessions and every score after that must not.
    let mm = MatMul::new(48, 40, 32);
    let scorer = NestScorer::new(Fitness::Simulated, CostModel::paper(), mm)
        .with_sim_mode(SimMode::FullMacro);
    let nests: Vec<LoopNest> = LoopNest::orders()
        .into_iter()
        .flat_map(|order| {
            [(6, 8, 4), (48, 40, 32), (7, 7, 7), (1, 1, 1)]
                .map(|(tm, tk, tl)| LoopNest::new(order, Tiling::new(tm, tk, tl)))
        })
        .collect();
    let (count, total) = allocations(|| {
        let mut total = 0u64;
        for _ in 0..16 {
            let mut session = scorer.session();
            for nest in &nests {
                total += session.score(nest);
            }
        }
        total
    });
    assert!(total > 0);
    assert_eq!(count, 0, "FullMacro nest scoring allocated {count} times");
}

#[test]
fn full_macro_fused_population_scoring_never_allocates() {
    let pair = FusedPair::try_new(MatMul::new(32, 24, 40), MatMul::new(32, 40, 16)).unwrap();
    let scorer = FusedScorer::new(Fitness::Simulated, CostModel::paper(), pair)
        .with_sim_mode(SimMode::FullMacro);
    let nests: Vec<FusedNest> = [true, false]
        .into_iter()
        .flat_map(|outer_is_m| {
            [(8, 6, 10, 4), (32, 24, 40, 16), (5, 5, 5, 5)]
                .map(|(tm, tk, tl, tn)| FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn)))
        })
        .collect();
    let (count, total) = allocations(|| {
        let mut total = 0u64;
        for _ in 0..16 {
            let mut session = scorer.session();
            for nest in &nests {
                total += session.score(nest);
            }
        }
        total
    });
    assert!(total > 0);
    assert_eq!(count, 0, "FullMacro fused scoring allocated {count} times");
}
