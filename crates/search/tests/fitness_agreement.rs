//! Property: under the paper's per-visit accounting, the analytical and
//! simulated fitness backends rank any two feasible genomes identically.
//!
//! The simulated backend scores a nest by replaying it on the fabric
//! driver and counting real traffic; the analytical backend asks the
//! loop-nest model. The driver-level tests prove score *equality* nest by
//! nest; this suite checks the searcher-level consequence — *ranking*
//! agreement — over randomized genome pairs, which is the property the
//! searchers actually rely on: a GA or oracle running on either backend
//! must pick the same winner.
//!
//! Shapes are kept small because every simulated score executes the full
//! matmul. Boundary inputs that historically stress the accounting
//! (ragged tiles, untiled dimensions, unit tiles) are pinned as
//! deterministic tests below so failures print concrete nests.

use proptest::prelude::*;

use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_ir::MatMul;
use fusecu_search::{Fitness, NestScorer};

fn model() -> CostModel {
    CostModel::paper()
}

/// Builds the nest a genome denotes, or `None` when it busts the buffer
/// (infeasible genomes are penalized without scoring, so ranking
/// agreement only matters for feasible ones).
fn feasible_nest(
    mm: MatMul,
    bs: u64,
    order_ix: usize,
    tiles: (u64, u64, u64),
) -> Option<LoopNest> {
    let tiling = Tiling::new(
        tiles.0.clamp(1, mm.m()),
        tiles.1.clamp(1, mm.k()),
        tiles.2.clamp(1, mm.l()),
    );
    tiling
        .fits(mm, bs)
        .then(|| LoopNest::new(LoopNest::orders()[order_ix % LoopNest::orders().len()], tiling))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any two feasible genomes order the same under both backends.
    #[test]
    fn backends_rank_feasible_genome_pairs_identically(
        m in 1u64..16,
        k in 1u64..16,
        l in 1u64..16,
        bs in 3u64..400,
        order_a in 0usize..6,
        order_b in 0usize..6,
        ta in (1u64..16, 1u64..16, 1u64..16),
        tb in (1u64..16, 1u64..16, 1u64..16),
    ) {
        let mm = MatMul::new(m, k, l);
        let (Some(na), Some(nb)) = (
            feasible_nest(mm, bs, order_a, ta),
            feasible_nest(mm, bs, order_b, tb),
        ) else {
            return Ok(()); // one genome infeasible: never scored
        };
        let analytical = NestScorer::new(Fitness::Analytical, model(), mm);
        let simulated = NestScorer::new(Fitness::Simulated, model(), mm);
        let (aa, ab) = (analytical.score(&na), analytical.score(&nb));
        let (sa, sb) = (simulated.score(&na), simulated.score(&nb));
        prop_assert_eq!(
            aa.cmp(&ab),
            sa.cmp(&sb),
            "mm={} bs={} {:?} vs {:?}: analytical ({}, {}) simulated ({}, {})",
            mm, bs, na, nb, aa, ab, sa, sb
        );
        // Stronger (and what makes the ranking agreement exact): under
        // paper accounting the scores themselves coincide.
        prop_assert_eq!(aa, sa);
        prop_assert_eq!(ab, sb);
    }
}

/// Boundary genomes pinned deterministically: ragged tiles (dimension not
/// divisible by tile), one untiled dimension, and the unit tiling — the
/// inputs where per-visit accounting is easiest to get wrong. No ranking
/// divergence has been observed; these pins keep the hardest inputs under
/// permanent test with concrete numbers in any failure.
#[test]
fn pinned_boundary_genomes_agree() {
    use fusecu_ir::MmDim::{K, L, M};
    type Pin = (MatMul, u64, [fusecu_ir::MmDim; 3], (u64, u64, u64));
    let cases: [Pin; 5] = [
        // Ragged everywhere: 3∤13, 4∤10, 5∤7.
        (MatMul::new(13, 10, 7), 200, [M, K, L], (3, 4, 5)),
        // K untiled (Two-NRA shape), ragged M.
        (MatMul::new(9, 6, 8), 150, [L, M, K], (4, 6, 2)),
        // Unit tiling at the feasibility floor.
        (MatMul::new(5, 5, 5), 3, [K, L, M], (1, 1, 1)),
        // Full-matrix "tiling" (single visit per tensor).
        (MatMul::new(6, 7, 4), 10_000, [M, L, K], (6, 7, 4)),
        // Tile equals dimension on one axis only.
        (MatMul::new(12, 5, 9), 120, [L, K, M], (2, 5, 3)),
    ];
    let m = model();
    for (mm, bs, order, (tm, tk, tl)) in cases {
        let tiling = Tiling::new(tm, tk, tl);
        assert!(tiling.fits(mm, bs), "pin must stay feasible: {mm} {tiling}");
        let nest = LoopNest::new(order, tiling);
        let analytical = NestScorer::new(Fitness::Analytical, m, mm).score(&nest);
        let simulated = NestScorer::new(Fitness::Simulated, m, mm).score(&nest);
        assert_eq!(analytical, simulated, "{mm} bs={bs} {order:?} {tiling}");
    }
}

/// The searcher-level consequence, pinned on one shape: both backends'
/// exhaustive oracles return byte-identical results, so any scoring
/// divergence that slipped past the pairwise property would surface here
/// as a different winner.
#[test]
fn pinned_oracle_agreement() {
    use fusecu_search::ExhaustiveSearch;
    let mm = MatMul::new(11, 9, 13);
    for bs in [6u64, 50, 600] {
        let analytical = ExhaustiveSearch::new(model()).try_optimize(mm, bs);
        let simulated = ExhaustiveSearch::new(model())
            .with_fitness(Fitness::Simulated)
            .try_optimize(mm, bs);
        assert_eq!(simulated, analytical, "bs={bs}");
    }
}
