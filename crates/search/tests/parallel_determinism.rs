//! The parallel sweep engine's two contracts: results bit-identical to a
//! serial run, and full memoization of repeated points.

use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;
use fusecu_search::cache::DataflowCache;
use fusecu_search::parallel::{Parallelism, SweepEngine};
use std::sync::Arc;

fn shapes() -> Vec<MatMul> {
    vec![
        MatMul::new(1024, 768, 768),
        MatMul::new(1024, 64, 1024),
        MatMul::new(183, 337, 113),
        MatMul::new(512, 512, 512),
    ]
}

fn buffers() -> Vec<u64> {
    vec![4 * 1024, 20_680, 32 * 1024, 128 * 1024, 512 * 1024]
}

fn cold_cache() -> Arc<DataflowCache> {
    Arc::new(DataflowCache::new())
}

/// A serial sweep and a parallel sweep over the same grid must produce
/// identical result sequences — dataflows, memory access, *and* searcher
/// evaluation counts. Each engine gets its own cold cache so nothing
/// couples the two runs.
#[test]
fn parallel_sweep_equals_serial_sweep() {
    let model = CostModel::paper();
    let serial = SweepEngine::new(model)
        .with_parallelism(Parallelism::Serial)
        .with_cache(cold_cache())
        .sweep(&shapes(), &buffers());
    let parallel = SweepEngine::new(model)
        .with_parallelism(Parallelism::Threads(4))
        .with_cache(cold_cache())
        .sweep(&shapes(), &buffers());
    assert_eq!(serial.len(), shapes().len() * buffers().len());
    assert_eq!(serial, parallel);
}

/// Re-running a sweep must be answered entirely from the cache: every
/// lookup a hit, no new entries, and — because `SearchResult` equality
/// includes the evaluation counter — zero additional optimizer
/// evaluations.
#[test]
fn second_sweep_is_all_cache_hits() {
    let engine = SweepEngine::new(CostModel::paper())
        .with_parallelism(Parallelism::Threads(4))
        .with_cache(cold_cache());
    let first = engine.sweep(&shapes(), &buffers());
    let after_first = engine.cache().stats();
    let entries = engine.cache().len();
    // Cold cache: every (point, optimizer) lookup was a miss.
    assert_eq!(after_first.misses, 3 * first.len() as u64);

    let second = engine.sweep(&shapes(), &buffers());
    let delta = engine.cache().stats().since(after_first);
    assert_eq!(second, first, "cached results must be the originals");
    assert_eq!(delta.misses, 0, "second sweep recomputed {} points", delta.misses);
    assert_eq!(delta.hits, 3 * first.len() as u64, "every lookup must hit");
    assert_eq!(engine.cache().len(), entries, "no new cache entries");
}

/// Duplicate shapes within one sweep are also served by the cache — a
/// repeated shape is never re-enumerated, even on first contact.
#[test]
fn duplicate_shapes_within_a_sweep_hit_the_cache() {
    let engine = SweepEngine::new(CostModel::paper())
        .with_parallelism(Parallelism::Serial)
        .with_cache(cold_cache());
    let mm = MatMul::new(96, 100, 17);
    let outcomes = engine.sweep(&[mm, mm, mm], &[8_192]);
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
    let stats = engine.cache().stats();
    assert_eq!(stats.misses, 3, "one miss per optimizer for the unique point");
    assert_eq!(stats.hits, 6, "the two repeats must be pure hits");
}
