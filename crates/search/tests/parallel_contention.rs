//! Work-stealing overhead measurement for `par_map`.
//!
//! Run with `cargo test --release -p fusecu-search --test
//! parallel_contention -- --ignored --nocapture` to print the wall-clock
//! of fanning very cheap items across workers. The ROADMAP flagged the
//! one-item-at-a-time atomic claim as a contention risk for cheap items
//! (platform grids); this harness is the before/after evidence for the
//! chunked claiming that replaced it.

use std::time::Instant;

use fusecu_search::{par_map, Parallelism};

fn run(items: usize, workers: usize, reps: u32) -> std::time::Duration {
    let data: Vec<u64> = (0..items as u64).collect();
    // Warm-up to populate allocator caches before timing.
    let warm = par_map(Parallelism::Threads(workers), &data, |_, &x| x ^ 1);
    assert_eq!(warm.len(), items);
    let t0 = Instant::now();
    for _ in 0..reps {
        let out = par_map(Parallelism::Threads(workers), &data, |i, &x| {
            // A handful of arithmetic: the "platform grid" regime where
            // claim overhead dominates the item itself.
            x.wrapping_mul(x) ^ i as u64
        });
        assert_eq!(out.len(), items);
    }
    t0.elapsed() / reps
}

#[test]
#[ignore = "measurement harness, run manually with --nocapture"]
fn cheap_item_fanout_overhead() {
    for &items in &[1_000usize, 100_000, 1_000_000] {
        for &workers in &[2usize, 4, 8] {
            let per_call = run(items, workers, 5);
            println!(
                "par_map {items:>9} cheap items x {workers} workers: {per_call:?} per call"
            );
        }
    }
}

#[test]
fn cheap_item_fanout_stays_correct() {
    // The non-ignored twin: whatever the claiming granularity, the fan-out
    // must stay deterministic and complete on cheap-item workloads.
    let data: Vec<u64> = (0..10_007).collect();
    let serial = par_map(Parallelism::Serial, &data, |i, &x| x.wrapping_mul(31) ^ i as u64);
    for workers in [2, 3, 8, 64] {
        let par = par_map(Parallelism::Threads(workers), &data, |i, &x| {
            x.wrapping_mul(31) ^ i as u64
        });
        assert_eq!(par, serial, "workers={workers}");
    }
}
