//! Cross-process persistence, simulated with independent `DataflowCache`
//! instances: a cold cache runs the Fig 9 sweep, saves to disk, and a
//! fresh cache preloaded from that file must reproduce the sweep exactly
//! — same dataflows, same search-evaluation counts (so any CSV derived
//! from the outcomes is byte-identical) — without recomputing anything.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fusecu_dataflow::CostModel;
use fusecu_ir::MatMul;
use fusecu_search::cache::DataflowCache;
use fusecu_search::{Parallelism, SweepEngine};

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("persist-roundtrip");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn cold() -> Arc<DataflowCache> {
    Arc::new(DataflowCache::new())
}

fn engine(cache: Arc<DataflowCache>) -> SweepEngine {
    SweepEngine::new(CostModel::paper())
        .with_parallelism(Parallelism::Serial)
        .with_cache(cache)
}

fn shapes() -> [MatMul; 2] {
    [MatMul::new(256, 192, 192), MatMul::new(256, 64, 256)]
}

const BUFFERS: [u64; 3] = [8 * 1024, 64 * 1024, 512 * 1024];

#[test]
fn warm_reload_reproduces_the_sweep_without_recomputation() {
    let path = tmp("roundtrip.cache");

    let cold_cache = cold();
    let first = engine(Arc::clone(&cold_cache)).sweep(&shapes(), &BUFFERS);
    let saved = cold_cache.save_to(&path).unwrap();
    // principle + exhaustive + genetic per (shape, buffer) point.
    assert_eq!(saved, 3 * shapes().len() * BUFFERS.len());

    let warm = cold();
    assert_eq!(warm.load_from(&path), saved);
    let second = engine(Arc::clone(&warm)).sweep(&shapes(), &BUFFERS);
    // `SweepOutcome: Eq` covers dataflows and evaluation counts, so the
    // figure CSVs rendered from the two runs are byte-identical.
    assert_eq!(second, first);
    // Every lookup of the warm run was served from the preloaded cache.
    let stats = warm.stats();
    assert_eq!(stats.misses, 0, "warm run recomputed a point");
    assert_eq!(stats.hits, saved as u64);

    // Saving the reloaded cache reproduces the file byte for byte.
    let path2 = tmp("roundtrip-resave.cache");
    assert_eq!(warm.save_to(&path2).unwrap(), saved);
    assert_eq!(fs::read(&path).unwrap(), fs::read(&path2).unwrap());
}

#[test]
fn stale_fingerprint_is_a_cold_start() {
    let path = tmp("stale.cache");
    let cache = cold();
    engine(Arc::clone(&cache)).sweep(&shapes()[..1], &BUFFERS[..1]);
    assert!(cache.save_to(&path).unwrap() > 0);

    // A file from a different crate version / cost-model schema carries a
    // different fingerprint; the loader must ignore it entirely.
    let text = fs::read_to_string(&path).unwrap();
    let stale = text.replacen("fingerprint ", "fingerprint 0.0.0-", 1);
    fs::write(&path, stale).unwrap();
    assert_eq!(cold().load_from(&path), 0);
}

#[test]
fn corrupt_files_are_a_cold_start() {
    let path = tmp("corrupt.cache");
    let cache = cold();
    engine(Arc::clone(&cache)).sweep(&shapes()[..1], &BUFFERS[..1]);
    assert!(cache.save_to(&path).unwrap() > 0);
    let good = fs::read_to_string(&path).unwrap();

    // Flipped record content (checksum catches it), truncation, and raw
    // garbage must all load as empty, never panic or half-load.
    let flipped = {
        let mut lines: Vec<String> = good.lines().map(str::to_string).collect();
        let last = lines.last_mut().unwrap();
        *last = format!("{last}9");
        lines.join("\n") + "\n"
    };
    for bad in [
        flipped,
        good[..good.len() / 2].to_string(),
        "not a cache file at all\n".to_string(),
        String::new(),
    ] {
        fs::write(&path, &bad).unwrap();
        assert_eq!(cold().load_from(&path), 0, "accepted corrupt file: {bad:?}");
    }

    // And a missing file is simply cold.
    assert_eq!(cold().load_from(&tmp("never-written.cache")), 0);
}
