//! Property tests for the searchers: oracle soundness and GA behavior.

use proptest::prelude::*;

use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_ir::MatMul;
use fusecu_search::space::{pow2_tiles, subsample};
use fusecu_search::{ExhaustiveSearch, GeneticConfig, GeneticSearch};

fn model() -> CostModel {
    CostModel::paper()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Oracle soundness: no random feasible nest beats the searched best.
    #[test]
    fn oracle_dominates_random_nests(
        m in 1u64..96, k in 1u64..96, l in 1u64..96,
        bs in 3u64..20_000,
        tm in 1u64..128, tk in 1u64..128, tl in 1u64..128,
        o in 0usize..6,
    ) {
        let mm = MatMul::new(m, k, l);
        let best = ExhaustiveSearch::new(model())
            .try_optimize(mm, bs)
            .expect("bs >= 3");
        let nest = LoopNest::new(LoopNest::orders()[o], Tiling::new(tm, tk, tl));
        if nest.tiling.fits(mm, bs) {
            prop_assert!(model().evaluate(mm, &nest).total() >= best.best().total_ma());
        }
        prop_assert!(best.best().buffer_elems() <= bs);
    }

    /// The GA always returns a feasible dataflow, never better than the
    /// oracle, and is deterministic per seed.
    #[test]
    fn ga_is_sound_and_deterministic(
        m in 1u64..96, k in 1u64..96, l in 1u64..96,
        bs in 3u64..20_000,
        seed in any::<u64>(),
    ) {
        let mm = MatMul::new(m, k, l);
        let cfg = GeneticConfig { seed, generations: 10, ..GeneticConfig::default() };
        let ga = GeneticSearch::with_config(model(), cfg);
        let a = ga.optimize(mm, bs).expect("bs >= 3");
        let b = ga.optimize(mm, bs).expect("bs >= 3");
        prop_assert_eq!(a.best().total_ma(), b.best().total_ma());
        prop_assert!(a.best().buffer_elems() <= bs);
        let oracle = ExhaustiveSearch::new(model()).optimize(mm, bs);
        prop_assert!(a.best().total_ma() >= oracle.best().total_ma());
    }

    /// Subsampling keeps endpoints and stays within the original list.
    #[test]
    fn subsample_is_a_sublist(len in 2usize..200, cap in 2usize..32) {
        let original: Vec<u64> = (1..=len as u64).collect();
        let s = subsample(original.clone(), cap);
        prop_assert!(s.len() <= cap + 1);
        prop_assert_eq!(*s.first().unwrap(), 1);
        prop_assert_eq!(*s.last().unwrap(), len as u64);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|v| original.contains(v)));
    }

    /// Power-of-two tiles are sorted, start at 1, and end at the dimension.
    #[test]
    fn pow2_tiles_are_well_formed(d in 1u64..1_000_000) {
        let t = pow2_tiles(d);
        prop_assert_eq!(t[0].min(d), t[0]);
        prop_assert_eq!(*t.last().unwrap(), d);
        prop_assert!(t.windows(2).all(|w| w[0] < w[1]));
    }
}
