//! Property tests for the lock-free parallel scoring primitives: byte-
//! identical-to-serial output over arbitrary worker and item counts, and
//! claim-exactly-once discipline even when the scoring closure panics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use fusecu_search::{par_map, par_map_batched, par_sum_indexed, Parallelism};

/// A cheap but order-sensitive score so reordered or duplicated results
/// cannot cancel out.
fn score(i: usize, v: u64) -> u64 {
    v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left((i % 64) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `par_map` returns exactly the serial map, in item order, for any
    /// worker count — including 0/1 (serial degenerate), more workers
    /// than items, and empty inputs.
    #[test]
    fn par_map_matches_serial(
        len in 0usize..300,
        workers in 0usize..17,
        seed in any::<u64>(),
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ seed).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &v)| score(i, v)).collect();
        let parallel = par_map(Parallelism::Threads(workers), &items, |i, &v| score(i, v));
        prop_assert_eq!(parallel, serial);
    }

    /// `par_map_batched` agrees with both the serial closure and plain
    /// `par_map`, no matter how items are carved into per-worker batches,
    /// and per-worker state never leaks between items in a way that
    /// changes results (the state here counts items, feeding the score).
    #[test]
    fn par_map_batched_matches_serial(
        len in 0usize..300,
        workers in 0usize..17,
        seed in any::<u64>(),
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i ^ seed).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &v)| score(i, v)).collect();
        let batched = par_map_batched(
            Parallelism::Threads(workers),
            &items,
            || 0u64, // per-worker scratch: a running count, unused in the score
            |count, i, &v| {
                *count += 1;
                score(i, v)
            },
        );
        prop_assert_eq!(batched, serial);
    }

    /// `par_sum_indexed` equals the serial fold for any worker count —
    /// the wrapping sum is claim-order independent, so this holds even
    /// though workers race for ranges.
    #[test]
    fn par_sum_indexed_matches_serial_fold(
        len in 0usize..2_000,
        workers in 0usize..17,
        seed in any::<u64>(),
    ) {
        let serial = (0..len).fold(0u64, |acc, i| acc.wrapping_add(score(i, i as u64 ^ seed)));
        let parallel = par_sum_indexed(
            Parallelism::Threads(workers),
            len,
            || (),
            |(), i| score(i, i as u64 ^ seed),
        );
        prop_assert_eq!(parallel, serial);
    }

    /// A panicking closure: the panic propagates to the caller (no
    /// deadlock — the scope joins), and no item is ever claimed twice,
    /// panic or not.
    #[test]
    fn panic_propagates_without_double_claim(
        len in 1usize..200,
        workers in 2usize..17,
        bomb_seed in any::<u64>(),
    ) {
        let bomb = (bomb_seed % len as u64) as usize;
        let visits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map(Parallelism::Threads(workers), &(0..len).collect::<Vec<_>>(), |i, _| {
                visits[i].fetch_add(1, Ordering::Relaxed);
                assert_ne!(i, bomb, "bomb");
                i
            })
        }));
        prop_assert!(result.is_err(), "the worker panic must reach the caller");
        for (i, v) in visits.iter().enumerate() {
            let n = v.load(Ordering::Relaxed);
            prop_assert!(n <= 1, "item {} claimed {} times", i, n);
        }
        prop_assert_eq!(visits[bomb].load(Ordering::Relaxed), 1);
    }

    /// Same discipline for the batched primitives: a panic mid-batch
    /// still propagates and still never double-claims.
    #[test]
    fn batched_panic_propagates_without_double_claim(
        len in 16usize..400,
        workers in 2usize..17,
        bomb_seed in any::<u64>(),
    ) {
        let bomb = (bomb_seed % len as u64) as usize;
        let visits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..len).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_batched(Parallelism::Threads(workers), &items, || (), |(), i, _| {
                visits[i].fetch_add(1, Ordering::Relaxed);
                assert_ne!(i, bomb, "bomb");
                i
            })
        }));
        prop_assert!(result.is_err(), "the worker panic must reach the caller");
        for (i, v) in visits.iter().enumerate() {
            let n = v.load(Ordering::Relaxed);
            prop_assert!(n <= 1, "item {} claimed {} times", i, n);
        }
    }
}

/// The explicit edge cases the properties above hit only probabilistically,
/// pinned so they can never rotate out of coverage.
#[test]
fn edge_counts_match_serial() {
    for (len, workers) in [
        (0usize, 0usize),
        (0, 8),
        (1, 1),
        (1, 8),
        (2, 16),
        (7, 8),   // fewer items than workers
        (15, 16), // one under the batching floor × 2
        (16, 16),
    ] {
        let items: Vec<u64> = (0..len as u64).collect();
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, &v)| score(i, v)).collect();
        assert_eq!(
            par_map(Parallelism::Threads(workers), &items, |i, &v| score(i, v)),
            serial,
            "par_map len={len} workers={workers}"
        );
        assert_eq!(
            par_map_batched(Parallelism::Threads(workers), &items, || (), |(), i, &v| score(
                i, v
            )),
            serial,
            "par_map_batched len={len} workers={workers}"
        );
        let sum = serial.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        assert_eq!(
            par_sum_indexed(Parallelism::Threads(workers), len, || (), |(), i| score(
                i,
                i as u64
            )),
            sum,
            "par_sum_indexed len={len} workers={workers}"
        );
    }
}
