//! Concurrent memoization for dataflow-optimization results.
//!
//! The figure pipeline evaluates the same `(matmul, buffer size, cost
//! model)` points over and over: Fig 9 sweeps one shape across eleven
//! buffer sizes per optimizer, Fig 10 revisits identical projection shapes
//! across platforms and models, and the ablation sweeps re-run entire
//! grids with only the bandwidth changed (which the buffer-level optimum
//! does not depend on). [`DataflowCache`] memoizes each optimizer's result
//! behind a sharded concurrent map so a repeated point is computed exactly
//! once per process — including under the parallel sweep engine
//! ([`crate::parallel`]), where per-key `OnceLock` cells guarantee a key
//! raced by two workers is still evaluated by only one of them.
//!
//! The generic machinery ([`MemoCache`], [`CacheStats`]) now lives in
//! [`fusecu_dataflow::memo`] so the fusion planner can memoize without a
//! dependency cycle; this module re-exports it, so the historical
//! `fusecu_search::cache::MemoCache` import path keeps working.
//!
//! Results also survive across *processes*: [`DataflowCache::save_to`] and
//! [`DataflowCache::load_from`] round-trip the completed entries through
//! the versioned disk format of [`crate::persist`].

use std::path::Path;
use std::sync::{Arc, OnceLock};

use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::MatMul;

pub use fusecu_dataflow::memo::{CacheStats, MemoCache, SectionCounters};

use crate::exhaustive::{ExhaustiveSearch, SearchResult};
use crate::genetic::GeneticSearch;

/// The memoization key of one intra-operator optimization problem: the
/// shape, the buffer budget in elements, and the cost model. Everything an
/// optimizer's answer depends on — and nothing else (bandwidth and array
/// geometry live above the buffer level).
pub type SweepKey = (MatMul, u64, CostModel);

/// Memoized front-end to the three intra-operator optimizers, keyed on
/// `(MatMul, bs, CostModel)`.
///
/// Each optimizer has its own map so a caller that only needs the
/// principle result never pays for a search. All three searchers are
/// deterministic (the genetic searcher runs on a fixed seed), so cached
/// and freshly computed results are indistinguishable — which is what lets
/// the parallel sweep engine promise byte-identical output to a serial
/// run, and what makes the disk cache safe to reload.
pub struct DataflowCache {
    pub(crate) principle: MemoCache<SweepKey, Option<Dataflow>>,
    pub(crate) exhaustive: MemoCache<SweepKey, Option<SearchResult>>,
    pub(crate) genetic: MemoCache<SweepKey, Option<SearchResult>>,
}

impl DataflowCache {
    /// An empty cache.
    pub fn new() -> DataflowCache {
        DataflowCache {
            principle: MemoCache::new(),
            exhaustive: MemoCache::new(),
            genetic: MemoCache::new(),
        }
    }

    /// The process-wide shared cache. Every figure binary and the default
    /// sweep engine route through this instance, so shapes repeated across
    /// figures within one process are optimized once.
    pub fn global() -> &'static DataflowCache {
        Self::global_arc_ref()
    }

    /// A clone of the [`Arc`] behind [`DataflowCache::global`], for callers
    /// (e.g. [`crate::parallel::SweepEngine`]) that hold the cache by
    /// shared ownership instead of a `'static` borrow — no `Box::leak`.
    pub fn global_arc() -> Arc<DataflowCache> {
        Arc::clone(Self::global_arc_ref())
    }

    fn global_arc_ref() -> &'static Arc<DataflowCache> {
        static GLOBAL: OnceLock<Arc<DataflowCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(DataflowCache::new()))
    }

    /// Memoized [`try_optimize_with`]: the one-shot principle optimizer.
    pub fn principle(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
        self.principle
            .get_or_compute((mm, bs, *model), || try_optimize_with(model, mm, bs))
    }

    /// Memoized exhaustive-oracle search.
    pub fn exhaustive(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<SearchResult> {
        self.exhaustive.get_or_compute((mm, bs, *model), || {
            ExhaustiveSearch::new(*model).try_optimize(mm, bs)
        })
    }

    /// Memoized genetic (DAT-style) search.
    pub fn genetic(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<SearchResult> {
        self.genetic.get_or_compute((mm, bs, *model), || {
            GeneticSearch::new(*model).optimize(mm, bs)
        })
    }

    /// Aggregated hit/miss counters over the three optimizer maps.
    pub fn stats(&self) -> CacheStats {
        self.principle
            .stats()
            .plus(self.exhaustive.stats())
            .plus(self.genetic.stats())
    }

    /// Per-optimizer counters for machine-readable stats
    /// (`--stats-json`, the serve daemon's `stats` verb).
    pub fn sections(&self) -> [SectionCounters; 3] {
        [
            self.principle.counters("principle"),
            self.exhaustive.counters("exhaustive"),
            self.genetic.counters("genetic"),
        ]
    }

    /// Drops all entries while keeping the hit/miss counters, recording
    /// the removed entries as evictions (the serve daemon's memory cap).
    /// Returns the number of entries evicted.
    pub fn evict_all(&self) -> usize {
        self.principle.evict_all() + self.exhaustive.evict_all() + self.genetic.evict_all()
    }

    /// Number of distinct cached points across the three maps.
    pub fn len(&self) -> usize {
        self.principle.len() + self.exhaustive.len() + self.genetic.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters. Tests use this to start
    /// from a cold cache; the figure binaries never need it.
    pub fn clear(&self) {
        self.principle.clear();
        self.exhaustive.clear();
        self.genetic.clear();
    }

    /// Writes every completed entry to `path` in the versioned format of
    /// [`crate::persist`], atomically (write-then-rename). Returns the
    /// number of entries written.
    pub fn save_to(&self, path: &Path) -> std::io::Result<usize> {
        crate::persist::save_dataflow_cache(self, path)
    }

    /// Preloads entries from a file previously written by
    /// [`DataflowCache::save_to`]. A missing, corrupt, or stale-fingerprint
    /// file is a cold start: the method returns 0 and the cache is left
    /// unchanged. Returns the number of entries preloaded.
    pub fn load_from(&self, path: &Path) -> usize {
        crate::persist::load_dataflow_cache(self, path)
    }
}

impl Default for DataflowCache {
    fn default() -> DataflowCache {
        DataflowCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataflow_cache_matches_direct_computation() {
        let cache = DataflowCache::new();
        let model = CostModel::paper();
        let mm = MatMul::new(256, 96, 192);
        let bs = 8_192;
        let cached = cache.principle(&model, mm, bs).unwrap();
        let direct = try_optimize_with(&model, mm, bs).unwrap();
        assert_eq!(cached, direct);
        let searched = cache.exhaustive(&model, mm, bs).unwrap();
        assert_eq!(searched, ExhaustiveSearch::new(model).try_optimize(mm, bs).unwrap());
        let ga = cache.genetic(&model, mm, bs).unwrap();
        assert_eq!(ga, GeneticSearch::new(model).optimize(mm, bs).unwrap());
        // Second round: all hits, no recomputation.
        let before = cache.stats();
        cache.principle(&model, mm, bs);
        cache.exhaustive(&model, mm, bs);
        cache.genetic(&model, mm, bs);
        let delta = cache.stats().since(before);
        assert_eq!(delta, CacheStats { hits: 3, misses: 0 });
    }

    #[test]
    fn infeasible_points_are_cached_too() {
        let cache = DataflowCache::new();
        let model = CostModel::paper();
        let mm = MatMul::new(4, 4, 4);
        assert!(cache.exhaustive(&model, mm, 2).is_none());
        assert!(cache.exhaustive(&model, mm, 2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
