//! Concurrent memoization for dataflow-optimization results.
//!
//! The figure pipeline evaluates the same `(matmul, buffer size, cost
//! model)` points over and over: Fig 9 sweeps one shape across eleven
//! buffer sizes per optimizer, Fig 10 revisits identical projection shapes
//! across platforms and models, and the ablation sweeps re-run entire
//! grids with only the bandwidth changed (which the buffer-level optimum
//! does not depend on). [`DataflowCache`] memoizes each optimizer's result
//! behind a sharded concurrent map so a repeated point is computed exactly
//! once per process — including under the parallel sweep engine
//! ([`crate::parallel`]), where per-key [`OnceLock`] cells guarantee a key
//! raced by two workers is still evaluated by only one of them.
//!
//! The generic [`MemoCache`] is exported for downstream layers (the arch
//! crate memoizes per-platform operator plans with it); [`DataflowCache`]
//! is the concrete instance keyed on `(MatMul, bs, CostModel)` for the
//! three intra-operator optimizers this crate owns.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fusecu_dataflow::principles::try_optimize_with;
use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::MatMul;

use crate::exhaustive::{ExhaustiveSearch, SearchResult};
use crate::genetic::GeneticSearch;

/// Hit/miss counters of a cache, taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on a concurrent
    /// computation of the same key).
    pub hits: u64,
    /// Lookups that ran the underlying computation.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference, for measuring one phase of a run.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate()
        )
    }
}

/// Number of independently locked shards; a small power of two is plenty
/// for the worker counts `std::thread::scope` sweeps run with.
const SHARDS: usize = 16;

/// A sharded, thread-safe memoization map.
///
/// Each key owns a [`OnceLock`] cell, so concurrent lookups of the same
/// key serialize on that cell alone: exactly one caller computes, the rest
/// block and then read — the shard lock is never held during computation.
/// Values are cloned out, so `V` should be cheap to clone (the dataflow
/// results cached here are all `Copy`).
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache.
    pub fn new() -> MemoCache<K, V> {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<OnceLock<V>>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, computing it with `f` on a miss.
    ///
    /// A key being computed by another thread counts as a hit: the caller
    /// waits for that computation instead of duplicating it.
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> V {
        let cell = {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            Arc::clone(shard.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                f()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl<K: Eq + Hash, V: Clone> Default for MemoCache<K, V> {
    fn default() -> MemoCache<K, V> {
        MemoCache::new()
    }
}

/// The memoization key of one intra-operator optimization problem: the
/// shape, the buffer budget in elements, and the cost model. Everything an
/// optimizer's answer depends on — and nothing else (bandwidth and array
/// geometry live above the buffer level).
pub type SweepKey = (MatMul, u64, CostModel);

/// Memoized front-end to the three intra-operator optimizers, keyed on
/// `(MatMul, bs, CostModel)`.
///
/// Each optimizer has its own map so a caller that only needs the
/// principle result never pays for a search. All three searchers are
/// deterministic (the genetic searcher runs on a fixed seed), so cached
/// and freshly computed results are indistinguishable — which is what lets
/// the parallel sweep engine promise byte-identical output to a serial
/// run.
pub struct DataflowCache {
    principle: MemoCache<SweepKey, Option<Dataflow>>,
    exhaustive: MemoCache<SweepKey, Option<SearchResult>>,
    genetic: MemoCache<SweepKey, Option<SearchResult>>,
}

impl DataflowCache {
    /// An empty cache.
    pub fn new() -> DataflowCache {
        DataflowCache {
            principle: MemoCache::new(),
            exhaustive: MemoCache::new(),
            genetic: MemoCache::new(),
        }
    }

    /// The process-wide shared cache. Every figure binary and the default
    /// sweep engine route through this instance, so shapes repeated across
    /// figures within one process are optimized once.
    pub fn global() -> &'static DataflowCache {
        static GLOBAL: OnceLock<DataflowCache> = OnceLock::new();
        GLOBAL.get_or_init(DataflowCache::new)
    }

    /// Memoized [`try_optimize_with`]: the one-shot principle optimizer.
    pub fn principle(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<Dataflow> {
        self.principle
            .get_or_compute((mm, bs, *model), || try_optimize_with(model, mm, bs))
    }

    /// Memoized exhaustive-oracle search.
    pub fn exhaustive(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<SearchResult> {
        self.exhaustive.get_or_compute((mm, bs, *model), || {
            ExhaustiveSearch::new(*model).try_optimize(mm, bs)
        })
    }

    /// Memoized genetic (DAT-style) search.
    pub fn genetic(&self, model: &CostModel, mm: MatMul, bs: u64) -> Option<SearchResult> {
        self.genetic.get_or_compute((mm, bs, *model), || {
            GeneticSearch::new(*model).optimize(mm, bs)
        })
    }

    /// Aggregated hit/miss counters over the three optimizer maps.
    pub fn stats(&self) -> CacheStats {
        let p = self.principle.stats();
        let e = self.exhaustive.stats();
        let g = self.genetic.stats();
        CacheStats {
            hits: p.hits + e.hits + g.hits,
            misses: p.misses + e.misses + g.misses,
        }
    }

    /// Number of distinct cached points across the three maps.
    pub fn len(&self) -> usize {
        self.principle.len() + self.exhaustive.len() + self.genetic.len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters. Tests use this to start
    /// from a cold cache; the figure binaries never need it.
    pub fn clear(&self) {
        self.principle.clear();
        self.exhaustive.clear();
        self.genetic.clear();
    }
}

impl Default for DataflowCache {
    fn default() -> DataflowCache {
        DataflowCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn memo_computes_once_and_counts() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                calls.fetch_add(1, Ordering::Relaxed);
                49
            });
            assert_eq!(v, 49);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_compute(42, || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        1
                    })
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "raced key computed twice");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn dataflow_cache_matches_direct_computation() {
        let cache = DataflowCache::new();
        let model = CostModel::paper();
        let mm = MatMul::new(256, 96, 192);
        let bs = 8_192;
        let cached = cache.principle(&model, mm, bs).unwrap();
        let direct = try_optimize_with(&model, mm, bs).unwrap();
        assert_eq!(cached, direct);
        let searched = cache.exhaustive(&model, mm, bs).unwrap();
        assert_eq!(searched, ExhaustiveSearch::new(model).try_optimize(mm, bs).unwrap());
        let ga = cache.genetic(&model, mm, bs).unwrap();
        assert_eq!(ga, GeneticSearch::new(model).optimize(mm, bs).unwrap());
        // Second round: all hits, no recomputation.
        let before = cache.stats();
        cache.principle(&model, mm, bs);
        cache.exhaustive(&model, mm, bs);
        cache.genetic(&model, mm, bs);
        let delta = cache.stats().since(before);
        assert_eq!(delta, CacheStats { hits: 3, misses: 0 });
    }

    #[test]
    fn infeasible_points_are_cached_too() {
        let cache = DataflowCache::new();
        let model = CostModel::paper();
        let mm = MatMul::new(4, 4, 4);
        assert!(cache.exhaustive(&model, mm, 2).is_none());
        assert!(cache.exhaustive(&model, mm, 2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn stats_display_is_readable() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.to_string(), "3 hits / 1 misses (75.0% hit rate)");
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
