//! A genetic searcher over the fused-pair nest space — the inter-operator
//! half of the DAT baseline.
//!
//! DAT explores fused tiling/scheduling with a genetic algorithm over the
//! joint space; this module mirrors that for [`FusedNest`]s. The genome is
//! `(shared-loop order, tile index per fused dimension)` over balanced
//! representatives. As with the intra-operator GA, there is no optimality
//! guarantee — the closed-form fused optimizer in `fusecu-fusion` is the
//! one that matches the [`crate::fused_exhaustive`] oracle.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusecu_dataflow::tiling::balanced_tiles;
use fusecu_dataflow::CostModel;
use fusecu_fusion::{FusedDataflow, FusedDim, FusedNest, FusedPair, FusedTiling};

use crate::fitness::{Fitness, FusedScorer, FusedSession};
use fusecu_sim::SimMode;
use crate::genetic::GeneticConfig;
use crate::parallel::{par_map_batched, Parallelism};

#[derive(Debug, Clone, Copy)]
struct Genome {
    outer_is_m: bool,
    tiles: [usize; 4],
}

/// Genetic searcher over fused nests.
#[derive(Debug, Clone)]
pub struct FusedGenetic {
    model: CostModel,
    config: GeneticConfig,
    fitness: Fitness,
    sim_mode: SimMode,
    parallelism: Option<Parallelism>,
}

impl FusedGenetic {
    /// Creates a searcher with default hyper-parameters.
    pub fn new(model: CostModel) -> FusedGenetic {
        FusedGenetic {
            model,
            config: GeneticConfig::default(),
            fitness: Fitness::Analytical,
            sim_mode: SimMode::TrafficOnly,
            parallelism: None,
        }
    }

    /// Creates a searcher with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot run.
    pub fn with_config(model: CostModel, config: GeneticConfig) -> FusedGenetic {
        assert!(config.population >= 2, "population must hold two parents");
        assert!(config.tournament >= 1, "tournament size must be positive");
        FusedGenetic {
            model,
            config,
            fitness: Fitness::Analytical,
            sim_mode: SimMode::TrafficOnly,
            parallelism: None,
        }
    }

    /// Selects the fitness backend (see [`crate::fitness::Fitness`]).
    /// [`Fitness::Simulated`] replays every genome's fused nest through
    /// the fabric driver; combined with [`SimMode::Full`] it flips
    /// population scoring to [`Parallelism::Auto`] by default (the
    /// default [`SimMode::TrafficOnly`] replay is closed-form and stays
    /// serial). [`Fitness::Latency`] ranks by the arch cycle model
    /// (`max(compute, DRAM)`), so the winning fused nest may
    /// legitimately differ from the minimum-traffic one.
    pub fn with_fitness(mut self, fitness: Fitness) -> FusedGenetic {
        self.fitness = fitness;
        self
    }

    /// Selects the simulated replay mode (ignored by the analytical
    /// backend); see [`crate::GeneticSearch::with_sim_mode`].
    pub fn with_sim_mode(mut self, mode: SimMode) -> FusedGenetic {
        self.sim_mode = mode;
        self
    }

    /// Overrides the population-scoring parallelism. As in
    /// [`crate::genetic::GeneticSearch`], results are identical to a
    /// serial run: scoring is pure and all randomness stays on the single
    /// caller-side RNG stream.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> FusedGenetic {
        self.parallelism = Some(parallelism);
        self
    }

    /// The parallelism population scoring actually runs with: an
    /// explicit setting always wins, else the cost-aware default over
    /// the final resolved `(fitness, sim_mode)` pair — see
    /// [`crate::GeneticSearch::effective_parallelism`].
    pub fn effective_parallelism(&self) -> Parallelism {
        self.parallelism.unwrap_or(if self.fitness.prefers_parallel_scoring(self.sim_mode) {
            Parallelism::Auto
        } else {
            Parallelism::Serial
        })
    }

    /// Runs the GA; `None` when even the unit fused tiling does not fit.
    pub fn optimize(&self, pair: FusedPair, bs: u64) -> Option<(FusedDataflow, u64)> {
        let unit = FusedNest::new(true, FusedTiling::new(1, 1, 1, 1));
        if !unit.fits(&pair, bs) {
            return None;
        }
        let candidates: [Vec<u64>; 4] = [FusedDim::M, FusedDim::K, FusedDim::L, FusedDim::N]
            .map(|d| balanced_tiles(pair.dim(d)));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut evaluations = 0u64;
        let scorer = FusedScorer::new(self.fitness, self.model, pair).with_sim_mode(self.sim_mode);
        let parallelism = self.effective_parallelism();

        // Pure, so a population can be scored from any worker thread; the
        // session only carries reusable scratch, never score state.
        let fitness = |session: &mut FusedSession, g: &Genome| -> u64 {
            let nest = FusedNest::new(
                g.outer_is_m,
                FusedTiling::new(
                    candidates[0][g.tiles[0]],
                    candidates[1][g.tiles[1]],
                    candidates[2][g.tiles[2]],
                    candidates[3][g.tiles[3]],
                ),
            );
            let footprint = nest.footprint(&pair);
            if footprint > bs {
                return u64::MAX / 2 + (footprint - bs).min(u64::MAX / 4);
            }
            session.score(&nest)
        };
        // Per-round counting keeps `evaluations` independent of how
        // scoring is parallelized (every genome scores exactly once).
        // Each worker opens one scoring session per generation.
        let score = |pop: &[Genome]| -> Vec<(u64, Genome)> {
            par_map_batched(
                parallelism,
                pop,
                || scorer.session(),
                |session, _, g| (fitness(session, g), *g),
            )
        };

        let mut population = vec![Genome {
            outer_is_m: true,
            tiles: [0; 4],
        }];
        while population.len() < self.config.population {
            population.push(Genome {
                outer_is_m: rng.gen_bool(0.5),
                tiles: [
                    rng.gen_range(0..candidates[0].len()),
                    rng.gen_range(0..candidates[1].len()),
                    rng.gen_range(0..candidates[2].len()),
                    rng.gen_range(0..candidates[3].len()),
                ],
            });
        }
        let mut scored = score(&population);
        evaluations += population.len() as u64;
        scored.sort_by_key(|(f, _)| *f);

        for _ in 0..self.config.generations {
            let mut next: Vec<Genome> = scored
                .iter()
                .take(self.config.elitism)
                .map(|(_, g)| *g)
                .collect();
            while next.len() < self.config.population {
                let parent = |rng: &mut StdRng| -> Genome {
                    let mut best = scored[rng.gen_range(0..scored.len())];
                    for _ in 1..self.config.tournament {
                        let c = scored[rng.gen_range(0..scored.len())];
                        if c.0 < best.0 {
                            best = c;
                        }
                    }
                    best.1
                };
                let (pa, pb) = (parent(&mut rng), parent(&mut rng));
                let mut child = Genome {
                    outer_is_m: if rng.gen_bool(0.5) {
                        pa.outer_is_m
                    } else {
                        pb.outer_is_m
                    },
                    tiles: [0; 4],
                };
                for (i, (gene, pool)) in child.tiles.iter_mut().zip(&candidates).enumerate() {
                    *gene = if rng.gen_bool(0.5) {
                        pa.tiles[i]
                    } else {
                        pb.tiles[i]
                    };
                    if rng.gen_bool(self.config.mutation_rate) {
                        *gene = rng.gen_range(0..pool.len());
                    }
                }
                if rng.gen_bool(self.config.mutation_rate) {
                    child.outer_is_m = !child.outer_is_m;
                }
                next.push(child);
            }
            scored = score(&next);
            evaluations += next.len() as u64;
            scored.sort_by_key(|(f, _)| *f);
        }

        let (_, best) = scored[0];
        let nest = FusedNest::new(
            best.outer_is_m,
            FusedTiling::new(
                candidates[0][best.tiles[0]],
                candidates[1][best.tiles[1]],
                candidates[2][best.tiles[2]],
                candidates[3][best.tiles[3]],
            ),
        );
        Some((FusedDataflow::score(&self.model, pair, nest), evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_fusion::optimize_pair;
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn pair(m: u64, k: u64, l: u64, n: u64) -> FusedPair {
        FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap()
    }

    #[test]
    fn finds_feasible_fused_nests() {
        let ga = FusedGenetic::new(MODEL);
        let p = pair(128, 32, 96, 64);
        for bs in [64u64, 2_048, 65_536] {
            let (d, evals) = ga.optimize(p, bs).unwrap();
            assert!(d.footprint() <= bs, "bs={bs}");
            assert!(evals > 0);
        }
    }

    #[test]
    fn never_beats_the_closed_forms() {
        let ga = FusedGenetic::new(MODEL);
        for p in [pair(64, 16, 48, 32), pair(96, 96, 96, 96), pair(40, 8, 120, 8)] {
            for bs in [128u64, 4_096, 50_000] {
                let (found, _) = ga.optimize(p, bs).unwrap();
                let principled = optimize_pair(&MODEL, p, bs).unwrap();
                assert!(
                    found.total_ma() >= principled.total_ma(),
                    "{p} bs={bs}: GA {} below closed form {}",
                    found.total_ma(),
                    principled.total_ma()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = pair(64, 64, 64, 64);
        let a = FusedGenetic::new(MODEL).optimize(p, 10_000).unwrap();
        let b = FusedGenetic::new(MODEL).optimize(p, 10_000).unwrap();
        assert_eq!(a.0.total_ma(), b.0.total_ma());
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn infeasible_buffer_returns_none() {
        assert!(FusedGenetic::new(MODEL).optimize(pair(8, 8, 8, 8), 2).is_none());
    }

    #[test]
    fn parallelism_decision_survives_builder_ordering() {
        // Cost-aware default over the final (fitness, sim_mode) pair,
        // independent of builder call order; explicit choice still wins.
        let sim = Fitness::Simulated;
        let fit_then_mode = FusedGenetic::new(MODEL).with_fitness(sim).with_sim_mode(SimMode::Full);
        let mode_then_fit = FusedGenetic::new(MODEL).with_sim_mode(SimMode::Full).with_fitness(sim);
        assert_eq!(fit_then_mode.effective_parallelism(), Parallelism::Auto);
        assert_eq!(mode_then_fit.effective_parallelism(), Parallelism::Auto);
        // Default TrafficOnly simulated scoring is closed form: serial.
        let cheap = FusedGenetic::new(MODEL).with_fitness(sim);
        assert_eq!(cheap.effective_parallelism(), Parallelism::Serial);
        let pinned = cheap.with_parallelism(Parallelism::Threads(3));
        assert_eq!(pinned.effective_parallelism(), Parallelism::Threads(3));
        // Macro-stepped full replay is closed-form per score: serial from
        // either builder order, and Full → FullMacro flips the decision.
        let macro_then_fit =
            FusedGenetic::new(MODEL).with_sim_mode(SimMode::FullMacro).with_fitness(sim);
        let fit_then_macro =
            FusedGenetic::new(MODEL).with_fitness(sim).with_sim_mode(SimMode::FullMacro);
        assert_eq!(macro_then_fit.effective_parallelism(), Parallelism::Serial);
        assert_eq!(fit_then_macro.effective_parallelism(), Parallelism::Serial);
        let full_to_macro = FusedGenetic::new(MODEL)
            .with_fitness(sim)
            .with_sim_mode(SimMode::Full)
            .with_sim_mode(SimMode::FullMacro);
        assert_eq!(full_to_macro.effective_parallelism(), Parallelism::Serial);
    }

    #[test]
    fn simulated_fitness_serial_and_parallel_agree_exactly() {
        let p = pair(24, 10, 20, 12);
        let sim = Fitness::Simulated;
        for bs in [64u64, 2_000] {
            let analytical = FusedGenetic::new(MODEL).optimize(p, bs).unwrap();
            let serial = FusedGenetic::new(MODEL)
                .with_fitness(sim)
                .with_parallelism(Parallelism::Serial)
                .optimize(p, bs)
                .unwrap();
            // Paper accounting: the backends agree on every score, so the
            // winner and evaluation count match the analytical run too.
            assert_eq!(serial.0.total_ma(), analytical.0.total_ma(), "bs={bs}");
            assert_eq!(serial.1, analytical.1, "bs={bs}");
            for par in [Parallelism::Auto, Parallelism::Threads(4)] {
                let parallel = FusedGenetic::new(MODEL)
                    .with_fitness(sim)
                    .with_parallelism(par)
                    .optimize(p, bs)
                    .unwrap();
                assert_eq!(parallel.0, serial.0, "bs={bs} par={par:?}");
                assert_eq!(parallel.1, serial.1, "bs={bs} par={par:?}");
            }
        }
    }
}
