//! Tile-size candidate sets for the search space.
//!
//! Memory access under the loop-nest model depends on the *iteration count*
//! `N_d = ceil(D / T_d)` of each loop, never on the raw tile size, while the
//! buffer footprint grows with the tile size. For any target iteration count
//! `n` the smallest tile achieving it is the **balanced representative**
//! `T = ceil(D / n)`. Searching only balanced representatives is therefore
//! lossless: every feasible `(order, iteration-count)` profile is covered at
//! its minimum footprint, so the optimum over representatives equals the
//! optimum over all `T ∈ [1, D]`.
//!
//! For a dimension of size `D` there are `O(2·√D)` distinct representatives,
//! which is what keeps exhaustive search tractable at transformer scales.

pub use fusecu_dataflow::tiling::balanced_tiles;

/// A coarse power-of-two tile set (plus the full dimension), the kind of
/// space hardware-template searchers like DAT restrict themselves to.
pub fn pow2_tiles(d: u64) -> Vec<u64> {
    assert!(d > 0, "dimension size must be non-zero");
    let mut out = Vec::new();
    let mut t = 1u64;
    while t < d {
        out.push(t);
        t *= 2;
    }
    out.push(d);
    out
}

/// Caps a candidate list to at most `max_len` entries by uniform
/// subsampling, always retaining the first and last.
pub fn subsample(tiles: Vec<u64>, max_len: usize) -> Vec<u64> {
    assert!(max_len >= 2, "need room for at least the endpoints");
    if tiles.len() <= max_len {
        return tiles;
    }
    let step = (tiles.len() - 1) as f64 / (max_len - 1) as f64;
    let mut out: Vec<u64> = (0..max_len - 1)
        .map(|i| tiles[(i as f64 * step).round() as usize])
        .collect();
    // Pin the final entry by index instead of appending it afterwards:
    // pushing onto an already-full sample could grow the result to
    // `max_len + 1` entries whenever the rounded grid missed the end.
    out.push(*tiles.last().expect("non-empty"));
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representatives_cover_all_iteration_counts() {
        for d in [1u64, 2, 5, 7, 12, 100, 768] {
            let reps = balanced_tiles(d);
            // Every achievable iteration count appears exactly once.
            let counts: Vec<u64> = reps.iter().map(|t| d.div_ceil(*t)).collect();
            let mut all: Vec<u64> = (1..=d).map(|t| d.div_ceil(t)).collect();
            all.sort_unstable();
            all.dedup();
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, all, "d={d}");
            // Each representative is the smallest tile for its count.
            for (t, n) in reps.iter().zip(&counts) {
                assert_eq!(*t, d.div_ceil(*n), "d={d} t={t}");
            }
        }
    }

    #[test]
    fn representative_count_is_sublinear() {
        let reps = balanced_tiles(1 << 20);
        assert!(reps.len() < 2 * 1_024 + 4, "got {}", reps.len());
        assert_eq!(reps[0], 1);
        assert_eq!(*reps.last().unwrap(), 1 << 20);
    }

    #[test]
    fn ascending_and_unique() {
        for d in [3u64, 16, 97, 1000] {
            let reps = balanced_tiles(d);
            assert!(reps.windows(2).all(|w| w[0] < w[1]), "d={d}");
        }
    }

    #[test]
    fn pow2_includes_dim() {
        assert_eq!(pow2_tiles(6), vec![1, 2, 4, 6]);
        assert_eq!(pow2_tiles(8), vec![1, 2, 4, 8]);
        assert_eq!(pow2_tiles(1), vec![1]);
    }

    #[test]
    fn subsample_keeps_endpoints() {
        let s = subsample((1..=100).collect(), 10);
        assert!(s.len() <= 10);
        assert_eq!(s[0], 1);
        assert_eq!(*s.last().unwrap(), 100);
        assert_eq!(subsample(vec![1, 2, 3], 8), vec![1, 2, 3]);
    }

    #[test]
    fn subsample_never_exceeds_max_len() {
        for len in 3u64..80 {
            for max_len in 2usize..13 {
                let s = subsample((1..=len).collect(), max_len);
                assert!(s.len() <= max_len, "len={len} max_len={max_len} got {}", s.len());
                assert_eq!(s[0], 1, "len={len} max_len={max_len}");
                assert_eq!(*s.last().unwrap(), len, "len={len} max_len={max_len}");
                assert!(s.windows(2).all(|w| w[0] < w[1]), "len={len} max_len={max_len}");
            }
        }
    }
}
