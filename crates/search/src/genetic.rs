//! A DAT/GAMMA-style genetic dataflow searcher.
//!
//! DAT \[15\] couples mixed-integer programming with a genetic algorithm;
//! GAMMA \[7\] searches mappings with a GA outright. This module implements
//! the GA half faithfully enough to reproduce its characteristic behavior
//! in Fig 9: it usually finds the optimum, but carries no guarantee — on
//! some (shape, buffer) points it returns a slightly worse dataflow than
//! the principles, exactly as the paper reports for DAT.
//!
//! The genome is `(loop order, tile-index per dimension)` over the balanced
//! tile representatives, i.e. the same space the exhaustive oracle scans.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fusecu_dataflow::{CostModel, LoopNest, Tiling};
use fusecu_ir::{MatMul, MmDim};

use crate::exhaustive::SearchResult;
use crate::fitness::{Fitness, NestScorer, NestSession};
use fusecu_sim::SimMode;
use crate::parallel::{par_map_batched, Parallelism};
use crate::space::balanced_tiles;

/// Hyper-parameters of the genetic searcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed; searches are deterministic given the seed.
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> GeneticConfig {
        GeneticConfig {
            population: 64,
            generations: 60,
            tournament: 3,
            mutation_rate: 0.15,
            elitism: 2,
            seed: 0xF05E_C0DE,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Genome {
    order: usize,      // index into LoopNest::orders()
    tiles: [usize; 3], // indices into the per-dim candidate lists
}

/// The genetic searcher.
#[derive(Debug, Clone)]
pub struct GeneticSearch {
    model: CostModel,
    config: GeneticConfig,
    fitness: Fitness,
    sim_mode: SimMode,
    parallelism: Option<Parallelism>,
}

impl GeneticSearch {
    /// Creates a searcher with default hyper-parameters.
    ///
    /// Population scoring defaults to serial for every closed-form
    /// backend — analytical, latency, and [`Fitness::Simulated`] in its
    /// default [`SimMode::TrafficOnly`] replay, all of which score a
    /// genome in nanoseconds, far below the cost of a thread handoff.
    /// Only `Simulated` + [`SimMode::Full`] (real data movement per
    /// genome) flips the default to [`Parallelism::Auto`]; the sweep
    /// engine already saturates cores *across* GA calls either way.
    /// [`GeneticSearch::with_parallelism`] overrides any default.
    pub fn new(model: CostModel) -> GeneticSearch {
        GeneticSearch {
            model,
            config: GeneticConfig::default(),
            fitness: Fitness::Analytical,
            sim_mode: SimMode::TrafficOnly,
            parallelism: None,
        }
    }

    /// Creates a searcher with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot run (population below two or an
    /// empty tournament).
    pub fn with_config(model: CostModel, config: GeneticConfig) -> GeneticSearch {
        assert!(config.population >= 2, "population must hold two parents");
        assert!(config.tournament >= 1, "tournament size must be positive");
        GeneticSearch {
            model,
            config,
            fitness: Fitness::Analytical,
            sim_mode: SimMode::TrafficOnly,
            parallelism: None,
        }
    }

    /// Selects the fitness backend (see [`Fitness`]). The winner and the
    /// evaluation count are byte-identical across the traffic backends for
    /// paper accounting; the simulated backend re-derives the objective
    /// from the fabric instead of trusting the model, and
    /// [`Fitness::Latency`] optimizes cycles instead of traffic (so its
    /// winner may legitimately differ).
    pub fn with_fitness(mut self, fitness: Fitness) -> GeneticSearch {
        self.fitness = fitness;
        self
    }

    /// Selects the simulated replay mode (ignored by the analytical and
    /// latency backends). The default [`SimMode::TrafficOnly`] scores
    /// through the driver's closed-form fast path; [`SimMode::Full`]
    /// replays real operand data through shared scratch arenas. Scores are
    /// identical either way.
    pub fn with_sim_mode(mut self, mode: SimMode) -> GeneticSearch {
        self.sim_mode = mode;
        self
    }

    /// Scores each generation's population through
    /// [`par_map_batched`] with the given parallelism. The result is
    /// identical to a serial run: fitness evaluation is pure, scored
    /// populations keep their generation order (the sort is stable), and
    /// all randomness — seeding, selection, crossover, mutation — stays
    /// on the single caller-side RNG stream.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> GeneticSearch {
        self.parallelism = Some(parallelism);
        self
    }

    /// The parallelism population scoring actually runs with: an explicit
    /// [`GeneticSearch::with_parallelism`] choice always wins; otherwise
    /// the decision is **cost-aware** over the final resolved
    /// `(fitness, sim_mode)` pair — [`Parallelism::Auto`] only for
    /// [`Fitness::Simulated`] in [`SimMode::Full`] (the one backend whose
    /// per-genome cost amortizes a thread handoff), serial for every
    /// closed-form backend including the default
    /// [`SimMode::TrafficOnly`]. Evaluated lazily, so
    /// `with_fitness`/`with_sim_mode` construction order never changes
    /// the answer.
    pub fn effective_parallelism(&self) -> Parallelism {
        self.parallelism.unwrap_or(if self.fitness.prefers_parallel_scoring(self.sim_mode) {
            Parallelism::Auto
        } else {
            Parallelism::Serial
        })
    }

    /// Runs the GA; `None` when even the unit tiling does not fit.
    pub fn optimize(&self, mm: MatMul, bs: u64) -> Option<SearchResult> {
        if !Tiling::new(1, 1, 1).fits(mm, bs) {
            return None;
        }
        let candidates: [Vec<u64>; 3] =
            [MmDim::M, MmDim::K, MmDim::L].map(|d| balanced_tiles(mm.dim(d)));
        let orders = LoopNest::orders();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut evaluations = 0u64;
        let scorer = NestScorer::new(self.fitness, self.model, mm).with_sim_mode(self.sim_mode);
        let parallelism = self.effective_parallelism();

        // Pure, so a population can be scored from any worker thread; the
        // session only carries reusable scratch, never score state.
        let fitness = |session: &mut NestSession, g: &Genome| -> u64 {
            let tiling = Tiling::new(
                candidates[0][g.tiles[0]],
                candidates[1][g.tiles[1]],
                candidates[2][g.tiles[2]],
            );
            let footprint = tiling.buffer_elems(mm);
            if footprint > bs {
                // Infeasible: heavily penalized, but graded so the GA can
                // climb back toward feasibility. Never simulated — an
                // infeasible nest has no buffer schedule to replay.
                return u64::MAX / 2 + (footprint - bs).min(u64::MAX / 4);
            }
            session.score(&LoopNest::new(orders[g.order], tiling))
        };
        // Every genome is scored exactly once per round, so counting by
        // round keeps `evaluations` identical to per-call counting — and
        // independent of how scoring is parallelized. Each worker opens
        // one scoring session per generation (one scratch checkout per
        // claimed batch, not per genome).
        let score = |pop: &[Genome]| -> Vec<(u64, Genome)> {
            par_map_batched(
                parallelism,
                pop,
                || scorer.session(),
                |session, _, g| (fitness(session, g), *g),
            )
        };

        // Seed with the always-feasible unit tiling plus random genomes.
        let mut population: Vec<Genome> = Vec::with_capacity(self.config.population);
        population.push(Genome {
            order: 0,
            tiles: [0, 0, 0],
        });
        while population.len() < self.config.population {
            population.push(Genome {
                order: rng.gen_range(0..orders.len()),
                tiles: [
                    rng.gen_range(0..candidates[0].len()),
                    rng.gen_range(0..candidates[1].len()),
                    rng.gen_range(0..candidates[2].len()),
                ],
            });
        }

        let mut scored = score(&population);
        evaluations += population.len() as u64;
        scored.sort_by_key(|(f, _)| *f);

        for _ in 0..self.config.generations {
            let mut next: Vec<Genome> = scored
                .iter()
                .take(self.config.elitism)
                .map(|(_, g)| *g)
                .collect();
            while next.len() < self.config.population {
                let parent = |rng: &mut StdRng| -> Genome {
                    let mut best = scored[rng.gen_range(0..scored.len())];
                    for _ in 1..self.config.tournament {
                        let c = scored[rng.gen_range(0..scored.len())];
                        if c.0 < best.0 {
                            best = c;
                        }
                    }
                    best.1
                };
                let (pa, pb) = (parent(&mut rng), parent(&mut rng));
                // Uniform crossover over the four genes.
                let mut child = Genome {
                    order: if rng.gen_bool(0.5) { pa.order } else { pb.order },
                    tiles: [0; 3],
                };
                for i in 0..3 {
                    child.tiles[i] = if rng.gen_bool(0.5) {
                        pa.tiles[i]
                    } else {
                        pb.tiles[i]
                    };
                }
                // Mutation.
                if rng.gen_bool(self.config.mutation_rate) {
                    child.order = rng.gen_range(0..orders.len());
                }
                for (gene, pool) in child.tiles.iter_mut().zip(&candidates) {
                    if rng.gen_bool(self.config.mutation_rate) {
                        *gene = rng.gen_range(0..pool.len());
                    }
                }
                next.push(child);
            }
            scored = score(&next);
            evaluations += next.len() as u64;
            scored.sort_by_key(|(f, _)| *f);
        }

        let (best_fitness, best) = scored[0];
        debug_assert!(best_fitness < u64::MAX / 2, "unit tiling seed is feasible");
        let tiling = Tiling::new(
            candidates[0][best.tiles[0]],
            candidates[1][best.tiles[1]],
            candidates[2][best.tiles[2]],
        );
        let df = self
            .model
            .dataflow(mm, LoopNest::new(orders[best.order], tiling));
        Some(SearchResult::new(df, evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSearch;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn finds_feasible_solutions() {
        let ga = GeneticSearch::new(MODEL);
        let mm = MatMul::new(256, 96, 192);
        for bs in [64u64, 4_096, 100_000] {
            let r = ga.optimize(mm, bs).unwrap();
            assert!(r.best().buffer_elems() <= bs, "bs={bs}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mm = MatMul::new(128, 128, 128);
        let a = GeneticSearch::new(MODEL).optimize(mm, 10_000).unwrap();
        let b = GeneticSearch::new(MODEL).optimize(mm, 10_000).unwrap();
        assert_eq!(a.best().total_ma(), b.best().total_ma());
        assert_eq!(a.evaluations(), b.evaluations());
    }

    #[test]
    fn close_to_exhaustive_optimum() {
        // The GA should land within a small factor of the oracle — the
        // paper's Fig 9 shows DAT tracking the principles closely, with
        // occasional misses.
        let mm = MatMul::new(384, 96, 256);
        let oracle = ExhaustiveSearch::new(MODEL);
        let ga = GeneticSearch::new(MODEL);
        for bs in [512u64, 8_192, 131_072] {
            let opt = oracle.optimize(mm, bs).best().total_ma();
            let found = ga.optimize(mm, bs).unwrap().best().total_ma();
            assert!(found >= opt, "GA cannot beat the oracle");
            assert!(
                (found as f64) <= 1.25 * opt as f64,
                "bs={bs}: GA at {found}, oracle at {opt}"
            );
        }
    }

    #[test]
    fn infeasible_buffer_returns_none() {
        assert!(GeneticSearch::new(MODEL)
            .optimize(MatMul::new(8, 8, 8), 2)
            .is_none());
    }

    #[test]
    fn parallel_scoring_matches_serial_exactly() {
        // The acceptance bar for ROADMAP item 1: same seed, same answer,
        // same evaluation count, regardless of worker count.
        let mm = MatMul::new(384, 96, 256);
        for bs in [512u64, 8_192, 131_072] {
            let serial = GeneticSearch::new(MODEL)
                .with_parallelism(Parallelism::Serial)
                .optimize(mm, bs)
                .unwrap();
            for par in [Parallelism::Auto, Parallelism::Threads(4)] {
                let parallel = GeneticSearch::new(MODEL)
                    .with_parallelism(par)
                    .optimize(mm, bs)
                    .unwrap();
                assert_eq!(parallel, serial, "bs={bs} par={par:?}");
            }
        }
    }

    #[test]
    fn simulated_fitness_matches_analytical_winner() {
        // Under paper accounting measured traffic equals the model
        // exactly, so the two backends must pick byte-identical winners
        // with byte-identical evaluation counts.
        let mm = MatMul::new(48, 24, 36);
        for bs in [96u64, 1_024, 20_000] {
            let analytical = GeneticSearch::new(MODEL).optimize(mm, bs).unwrap();
            let simulated = GeneticSearch::new(MODEL)
                .with_fitness(crate::fitness::Fitness::Simulated)
                .optimize(mm, bs)
                .unwrap();
            assert_eq!(simulated, analytical, "bs={bs}");
        }
    }

    #[test]
    fn simulated_fitness_serial_and_parallel_agree_exactly() {
        // The tentpole acceptance bar: a serial simulated run and a
        // parallel simulated run at the same seed are byte-identical.
        let mm = MatMul::new(48, 24, 36);
        let sim = crate::fitness::Fitness::Simulated;
        for bs in [96u64, 1_024, 20_000] {
            let serial = GeneticSearch::new(MODEL)
                .with_fitness(sim)
                .with_parallelism(Parallelism::Serial)
                .optimize(mm, bs)
                .unwrap();
            for par in [Parallelism::Auto, Parallelism::Threads(4)] {
                let parallel = GeneticSearch::new(MODEL)
                    .with_fitness(sim)
                    .with_parallelism(par)
                    .optimize(mm, bs)
                    .unwrap();
                assert_eq!(parallel, serial, "bs={bs} par={par:?}");
            }
        }
    }

    #[test]
    fn latency_fitness_finds_feasible_nests_deterministically() {
        // The latency backend is a genuinely different objective, but it
        // still has to respect buffer feasibility and the single-RNG
        // determinism contract of the GA.
        let fit = crate::fitness::Fitness::Latency(fusecu_arch::ArraySpec::paper_default());
        let mm = MatMul::new(256, 96, 192);
        for bs in [512u64, 8_192, 100_000] {
            let a = GeneticSearch::new(MODEL)
                .with_fitness(fit)
                .optimize(mm, bs)
                .unwrap();
            assert!(a.best().buffer_elems() <= bs, "bs={bs}");
            let b = GeneticSearch::new(MODEL)
                .with_fitness(fit)
                .optimize(mm, bs)
                .unwrap();
            assert_eq!(a, b, "bs={bs}: latency GA must be deterministic");
        }
    }

    #[test]
    fn parallelism_default_is_cost_aware() {
        let ga = GeneticSearch::new(MODEL);
        assert_eq!(ga.effective_parallelism(), Parallelism::Serial);
        // Simulated fitness in its default TrafficOnly mode is closed
        // form — cheaper than a thread handoff, so it must stay serial.
        let sim = ga.clone().with_fitness(crate::fitness::Fitness::Simulated);
        assert_eq!(sim.effective_parallelism(), Parallelism::Serial);
        // Only full data-moving replay fans out by default.
        let full = sim.clone().with_sim_mode(SimMode::Full);
        assert_eq!(full.effective_parallelism(), Parallelism::Auto);
        // The macro-stepped full replay hoists its one value pass out of
        // the genome loop — closed-form per score, so it stays serial.
        let wave = sim.clone().with_sim_mode(SimMode::FullMacro);
        assert_eq!(wave.effective_parallelism(), Parallelism::Serial);
        // Latency is closed-form too.
        let lat = ga
            .clone()
            .with_fitness(crate::fitness::Fitness::Latency(fusecu_arch::ArraySpec::paper_default()));
        assert_eq!(lat.effective_parallelism(), Parallelism::Serial);
        // An explicit choice wins over every backend default.
        let pinned = full.with_parallelism(Parallelism::Threads(2));
        assert_eq!(pinned.effective_parallelism(), Parallelism::Threads(2));
        let forced = sim.with_parallelism(Parallelism::Auto);
        assert_eq!(forced.effective_parallelism(), Parallelism::Auto);
    }

    #[test]
    fn parallelism_decision_survives_builder_ordering() {
        // The decision must read the *final* (fitness, sim_mode) pair:
        // both builder orderings resolve identically, in both directions.
        let sim = crate::fitness::Fitness::Simulated;
        let fit_then_mode = GeneticSearch::new(MODEL).with_fitness(sim).with_sim_mode(SimMode::Full);
        let mode_then_fit = GeneticSearch::new(MODEL).with_sim_mode(SimMode::Full).with_fitness(sim);
        assert_eq!(fit_then_mode.effective_parallelism(), Parallelism::Auto);
        assert_eq!(mode_then_fit.effective_parallelism(), Parallelism::Auto);
        let back_to_cheap =
            GeneticSearch::new(MODEL).with_sim_mode(SimMode::Full).with_fitness(sim).with_sim_mode(SimMode::TrafficOnly);
        assert_eq!(back_to_cheap.effective_parallelism(), Parallelism::Serial);
        // FullMacro resolves serial from either builder order, and
        // downgrading Full → FullMacro after the fact flips the decision.
        let macro_then_fit =
            GeneticSearch::new(MODEL).with_sim_mode(SimMode::FullMacro).with_fitness(sim);
        let fit_then_macro =
            GeneticSearch::new(MODEL).with_fitness(sim).with_sim_mode(SimMode::FullMacro);
        assert_eq!(macro_then_fit.effective_parallelism(), Parallelism::Serial);
        assert_eq!(fit_then_macro.effective_parallelism(), Parallelism::Serial);
        let full_to_macro = GeneticSearch::new(MODEL)
            .with_fitness(sim)
            .with_sim_mode(SimMode::Full)
            .with_sim_mode(SimMode::FullMacro);
        assert_eq!(full_to_macro.effective_parallelism(), Parallelism::Serial);
    }

    #[test]
    fn tiny_config_still_runs() {
        let cfg = GeneticConfig {
            population: 2,
            generations: 1,
            tournament: 1,
            mutation_rate: 0.0,
            elitism: 1,
            seed: 7,
        };
        let r = GeneticSearch::with_config(MODEL, cfg)
            .optimize(MatMul::new(16, 16, 16), 100)
            .unwrap();
        assert!(r.best().buffer_elems() <= 100);
    }
}
