//! # fusecu-search — the searching-based DSE baseline (DAT-class)
//!
//! The paper validates its principles against DAT, a searching-based
//! optimizer combining mixed-integer programming and genetic algorithms
//! (§V-A, Fig 9). This crate plays DAT's role with two searchers over the
//! *same* loop-nest cost model the principles use:
//!
//! * [`exhaustive`] — full enumeration of loop orders × balanced tile
//!   representatives. Balanced representatives make the enumeration lossless
//!   (see [`space`]), so this searcher is a strict optimality oracle: if the
//!   principles ever miss the optimum, exhaustive search exposes it.
//! * [`genetic`] — a GAMMA/DAT-style genetic algorithm with tournament
//!   selection, crossover, mutation, and elitism. Like DAT it does *not*
//!   guarantee global optimality, reproducing the paper's observation that
//!   "in some cases, our dataflow outperform DAT because DAT uses genetic
//!   algorithm that does not guarantee global optimization".
//! * [`fused_exhaustive`] — enumeration over the fused-pair nest space,
//!   validating the closed-form fused optimizer of `fusecu-fusion`.
//! * [`chain_exhaustive`] — enumeration over the k-ary fused-chain nest
//!   space, validating the depth-parametric chain optimizer's dominance
//!   pruning against a full scan of balanced tile representatives.
//!
//! Every searcher ranks candidates through a pluggable [`fitness`]
//! backend: the analytical loop-nest model by default;
//! [`Fitness::Simulated`], which replays each candidate nest on the
//! cycle-level fabric of `fusecu-sim` and scores by *measured* traffic —
//! the searcher's objective becomes the machine itself; or
//! [`Fitness::Latency`], which scores by the arch cycle model
//! (`max(compute, DRAM)` on a given array) — a genuinely different
//! objective that can rank genome pairs opposite to traffic.
//!
//! Two infrastructure modules drive the figure sweeps that use these
//! searchers at scale: [`cache`] memoizes optimizer results behind a
//! concurrent map keyed on `(MatMul, bs, CostModel)`, and [`parallel`]
//! fans `(shape × buffer × optimizer)` sweep points across scoped threads
//! with deterministic, serial-identical output ordering.
//!
//! ```
//! use fusecu_ir::MatMul;
//! use fusecu_dataflow::{principles, CostModel};
//! use fusecu_search::exhaustive::ExhaustiveSearch;
//!
//! let mm = MatMul::new(256, 96, 192);
//! let model = CostModel::paper();
//! let searched = ExhaustiveSearch::new(model).optimize(mm, 8_192);
//! let principled = principles::optimize_with(&model, mm, 8_192);
//! assert_eq!(searched.best().total_ma(), principled.total_ma());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chain_exhaustive;
pub mod exhaustive;
pub mod fitness;
pub mod fused_exhaustive;
pub mod fused_genetic;
pub mod genetic;
pub mod parallel;
pub mod persist;
pub mod space;

pub use cache::{CacheStats, DataflowCache, MemoCache, SectionCounters};
pub use chain_exhaustive::ChainExhaustive;
pub use exhaustive::{ExhaustiveSearch, SearchResult};
pub use fitness::{Fitness, FusedScorer, FusedSession, NestScorer, NestSession};
pub use fused_exhaustive::FusedExhaustive;
pub use fused_genetic::FusedGenetic;
pub use genetic::{GeneticConfig, GeneticSearch};
pub use parallel::{par_map, par_map_batched, par_sum_indexed, Parallelism, SweepEngine, SweepOutcome};
