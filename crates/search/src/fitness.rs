//! Search fitness backends: analytical scoring vs simulator-in-the-loop.
//!
//! Every searcher in this crate ranks candidates by a scalar cost. This
//! module abstracts where that scalar comes from:
//!
//! * [`Fitness::Analytical`] — the closed-form loop-nest memory-access
//!   model ([`CostModel::evaluate`]), thousands of evaluations per
//!   millisecond. This is the default and what the paper's DAT baseline
//!   uses.
//! * [`Fitness::Simulated`] — each candidate nest is *replayed* on the
//!   cycle-level fabric drivers ([`execute_nest`] /
//!   [`execute_fused_nest`]) against fixed pseudo-random operands, and the
//!   candidate is scored by the traffic the replay actually measures.
//!   Orders of magnitude slower per genome — which is exactly the workload
//!   that justifies parallel population scoring — but closes the loop:
//!   the searcher can no longer be fooled by a modeling bug, because its
//!   objective *is* the machine.
//!
//! The operand values are irrelevant to the score (traffic counting never
//! looks at the data), so the matrices are seeded deterministically per
//! shape and shared read-only across scoring threads. For
//! [`CostModel::paper`] accounting the two backends agree exactly on every
//! feasible nest (the driver tests prove measured == evaluated), so they
//! induce the same ranking; the simulated backend exists to *keep* that
//! true as the model evolves, and to catch it the moment it breaks.

use fusecu_dataflow::{CostModel, LoopNest};
use fusecu_fusion::{FusedNest, FusedPair};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{execute_fused_nest, execute_nest};
use fusecu_sim::Matrix;

/// Which objective a searcher ranks candidates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fitness {
    /// Score by the analytical loop-nest model (fast; the default).
    #[default]
    Analytical,
    /// Score by traffic measured while replaying the nest on the
    /// simulated fabric (slow; parallel scoring pays for itself).
    Simulated,
}

impl Fitness {
    /// Whether a single evaluation is heavy enough that population
    /// scoring should fan out across cores by default.
    pub fn prefers_parallel_scoring(self) -> bool {
        matches!(self, Fitness::Simulated)
    }
}

/// Seed base for the deterministic operand matrices. The seeds only pick
/// matrix *values*, which the traffic accounting never reads — any fixed
/// constants give identical scores.
const OPERAND_SEED: u64 = 0x00F1_7E55;

/// A per-`optimize()` scorer for single-operator loop nests.
///
/// Construction is cheap for [`Fitness::Analytical`]; for
/// [`Fitness::Simulated`] it materializes the `A`/`B` operands once so
/// every genome replays against the same read-only data (safe to share
/// across [`crate::parallel::par_map`] workers).
#[derive(Debug)]
pub struct NestScorer {
    model: CostModel,
    mm: MatMul,
    operands: Option<(Matrix, Matrix)>,
}

impl NestScorer {
    /// Builds a scorer for `mm` under `model` with the given backend.
    pub fn new(fitness: Fitness, model: CostModel, mm: MatMul) -> NestScorer {
        let operands = fitness.prefers_parallel_scoring().then(|| {
            (
                Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, OPERAND_SEED),
                Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, OPERAND_SEED + 1),
            )
        });
        NestScorer {
            model,
            mm,
            operands,
        }
    }

    /// Total memory-access cost of `nest` under the selected backend.
    /// Feasibility (buffer fit) is the caller's concern; this only scores.
    pub fn score(&self, nest: &LoopNest) -> u64 {
        match &self.operands {
            None => self.model.evaluate(self.mm, nest).total(),
            Some((a, b)) => execute_nest(a, b, self.mm, nest).measured.total(),
        }
    }
}

/// A per-`optimize()` scorer for fused-pair nests; the fused analogue of
/// [`NestScorer`].
#[derive(Debug)]
pub struct FusedScorer {
    model: CostModel,
    pair: FusedPair,
    operands: Option<(Matrix, Matrix, Matrix)>,
}

impl FusedScorer {
    /// Builds a scorer for `pair` under `model` with the given backend.
    pub fn new(fitness: Fitness, model: CostModel, pair: FusedPair) -> FusedScorer {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        let operands = fitness.prefers_parallel_scoring().then(|| {
            let d = |t| pair.dim(t) as usize;
            (
                Matrix::pseudo_random(d(M), d(K), OPERAND_SEED + 2),
                Matrix::pseudo_random(d(K), d(L), OPERAND_SEED + 3),
                Matrix::pseudo_random(d(L), d(N), OPERAND_SEED + 4),
            )
        });
        FusedScorer {
            model,
            pair,
            operands,
        }
    }

    /// Total external-tensor traffic of `nest` under the selected backend.
    pub fn score(&self, nest: &FusedNest) -> u64 {
        match &self.operands {
            None => nest.evaluate(&self.model, &self.pair).total(),
            Some((a, b, d)) => execute_fused_nest(a, b, d, &self.pair, nest)
                .measured
                .iter()
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::Tiling;
    use fusecu_fusion::FusedTiling;
    use fusecu_ir::MmDim;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn backends_agree_on_paper_accounting() {
        let mm = MatMul::new(14, 9, 11);
        let analytical = NestScorer::new(Fitness::Analytical, MODEL, mm);
        let simulated = NestScorer::new(Fitness::Simulated, MODEL, mm);
        for order in LoopNest::orders() {
            for tiling in [Tiling::new(1, 1, 1), Tiling::new(4, 3, 5), Tiling::new(14, 9, 11)] {
                let nest = LoopNest::new(order, tiling);
                assert_eq!(
                    analytical.score(&nest),
                    simulated.score(&nest),
                    "order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn fused_backends_agree_on_paper_accounting() {
        let pair =
            FusedPair::try_new(MatMul::new(12, 5, 10), MatMul::new(12, 10, 7)).unwrap();
        let analytical = FusedScorer::new(Fitness::Analytical, MODEL, pair);
        let simulated = FusedScorer::new(Fitness::Simulated, MODEL, pair);
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [(1u64, 1, 1, 1), (4, 2, 5, 3), (12, 5, 10, 7)] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                assert_eq!(analytical.score(&nest), simulated.score(&nest), "{nest}");
            }
        }
    }

    #[test]
    fn simulated_scorer_is_shareable_across_threads() {
        // The GA scores populations through scoped threads; the scorer
        // must give identical answers from any of them.
        let mm = MatMul::new(10, 8, 6);
        let scorer = NestScorer::new(Fitness::Simulated, MODEL, mm);
        let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(3, 4, 2));
        let expected = scorer.score(&nest);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(scorer.score(&nest), expected));
            }
        });
    }

    #[test]
    fn default_backend_is_analytical() {
        assert_eq!(Fitness::default(), Fitness::Analytical);
        assert!(!Fitness::Analytical.prefers_parallel_scoring());
        assert!(Fitness::Simulated.prefers_parallel_scoring());
    }
}
