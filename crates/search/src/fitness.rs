//! Search fitness backends: analytical scoring vs simulator-in-the-loop.
//!
//! Every searcher in this crate ranks candidates by a scalar cost. This
//! module abstracts where that scalar comes from:
//!
//! * [`Fitness::Analytical`] — the closed-form loop-nest memory-access
//!   model ([`CostModel::evaluate`]), thousands of evaluations per
//!   millisecond. This is the default and what the paper's DAT baseline
//!   uses.
//! * [`Fitness::Simulated`] — each candidate nest is *replayed* on the
//!   cycle-level fabric drivers and scored by the traffic the replay
//!   actually measures. Orders of magnitude slower per genome — which is
//!   exactly the workload that justifies parallel population scoring —
//!   but closes the loop: the searcher can no longer be fooled by a
//!   modeling bug, because its objective *is* the machine.
//!
//! The simulated backend itself has two modes ([`SimMode`]):
//!
//! * [`SimMode::TrafficOnly`] (the default for `Fitness::Simulated`) runs
//!   the *identical* replay schedule through [`measure_nest`] /
//!   [`measure_fused_nest`] but skips all value movement — no operands are
//!   materialized and scoring allocates nothing. The counters are
//!   byte-identical to the full replay by construction (both modes share
//!   one accounting walk), and the sim crate's differential tests prove it.
//! * [`SimMode::Full`] additionally moves real tile data through a shared
//!   [`SimScratch`] arena ([`execute_nest_with`] /
//!   [`execute_fused_nest_with`]), so every genome replay also recomputes
//!   the product. Scorers keep a [`ScratchPool`] alive across genome
//!   replays, so steady-state scoring is allocation-free here too: each
//!   scoring thread checks an arena out, replays into it, and returns it.
//!
//! The operand values are irrelevant to the score (traffic counting never
//! looks at the data), so the matrices are seeded deterministically per
//! shape and shared read-only across scoring threads. For
//! [`CostModel::paper`] accounting the backends agree exactly on every
//! feasible nest (the driver tests prove measured == evaluated), so they
//! induce the same ranking; the simulated backend exists to *keep* that
//! true as the model evolves, and to catch it the moment it breaks.

use fusecu_dataflow::{CostModel, LoopNest};
use fusecu_fusion::{FusedNest, FusedPair};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{
    execute_fused_nest_with, execute_nest_with, measure_fused_nest, measure_nest,
};
use fusecu_sim::{Matrix, ScratchPool, SimMode};

/// Which objective a searcher ranks candidates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fitness {
    /// Score by the analytical loop-nest model (fast; the default).
    #[default]
    Analytical,
    /// Score by traffic measured while replaying the nest on the
    /// simulated fabric (slow; parallel scoring pays for itself).
    Simulated,
}

impl Fitness {
    /// Whether a single evaluation is heavy enough that population
    /// scoring should fan out across cores by default.
    pub fn prefers_parallel_scoring(self) -> bool {
        matches!(self, Fitness::Simulated)
    }
}

/// Seed base for the deterministic operand matrices. The seeds only pick
/// matrix *values*, which the traffic accounting never reads — any fixed
/// constants give identical scores.
const OPERAND_SEED: u64 = 0x00F1_7E55;

/// The simulator-side state of a scorer: which replay mode to run, the
/// read-only operands ([`SimMode::Full`] only), and a pool of scratch
/// arenas reused across genome replays and shared across scoring threads.
#[derive(Debug)]
struct SimBackend<Ops> {
    mode: SimMode,
    /// `Some` only in [`SimMode::Full`]; `TrafficOnly` never touches data.
    operands: Option<Ops>,
    pool: ScratchPool,
}

/// A per-`optimize()` scorer for single-operator loop nests.
///
/// Construction is cheap for [`Fitness::Analytical`] and for the default
/// [`SimMode::TrafficOnly`] simulated backend; opting into
/// [`SimMode::Full`] via [`NestScorer::with_sim_mode`] materializes the
/// `A`/`B` operands once so every genome replays against the same
/// read-only data (safe to share across [`crate::parallel::par_map`]
/// workers — each thread checks a scratch arena out of the pool).
#[derive(Debug)]
pub struct NestScorer {
    model: CostModel,
    mm: MatMul,
    sim: Option<SimBackend<(Matrix, Matrix)>>,
}

impl NestScorer {
    /// Builds a scorer for `mm` under `model` with the given backend.
    /// [`Fitness::Simulated`] defaults to [`SimMode::TrafficOnly`].
    pub fn new(fitness: Fitness, model: CostModel, mm: MatMul) -> NestScorer {
        let sim = fitness.prefers_parallel_scoring().then(|| SimBackend {
            mode: SimMode::TrafficOnly,
            operands: None,
            pool: ScratchPool::new(),
        });
        NestScorer { model, mm, sim }
    }

    /// Selects the simulated replay mode; [`SimMode::Full`] materializes
    /// the operand matrices. No-op for an analytical scorer.
    #[must_use]
    pub fn with_sim_mode(mut self, mode: SimMode) -> NestScorer {
        if let Some(sim) = &mut self.sim {
            sim.mode = mode;
            sim.operands = (mode == SimMode::Full).then(|| {
                let mm = self.mm;
                (
                    Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, OPERAND_SEED),
                    Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, OPERAND_SEED + 1),
                )
            });
        }
        self
    }

    /// Total memory-access cost of `nest` under the selected backend.
    /// Feasibility (buffer fit) is the caller's concern; this only scores.
    pub fn score(&self, nest: &LoopNest) -> u64 {
        match &self.sim {
            None => self.model.evaluate(self.mm, nest).total(),
            Some(sim) => match &sim.operands {
                None => measure_nest(self.mm, nest).total(),
                Some((a, b)) => sim
                    .pool
                    .with(|scratch| execute_nest_with(a, b, self.mm, nest, scratch))
                    .total(),
            },
        }
    }
}

/// A per-`optimize()` scorer for fused-pair nests; the fused analogue of
/// [`NestScorer`].
#[derive(Debug)]
pub struct FusedScorer {
    model: CostModel,
    pair: FusedPair,
    sim: Option<SimBackend<(Matrix, Matrix, Matrix)>>,
}

impl FusedScorer {
    /// Builds a scorer for `pair` under `model` with the given backend.
    /// [`Fitness::Simulated`] defaults to [`SimMode::TrafficOnly`].
    pub fn new(fitness: Fitness, model: CostModel, pair: FusedPair) -> FusedScorer {
        let sim = fitness.prefers_parallel_scoring().then(|| SimBackend {
            mode: SimMode::TrafficOnly,
            operands: None,
            pool: ScratchPool::new(),
        });
        FusedScorer { model, pair, sim }
    }

    /// Selects the simulated replay mode; [`SimMode::Full`] materializes
    /// the operand matrices. No-op for an analytical scorer.
    #[must_use]
    pub fn with_sim_mode(mut self, mode: SimMode) -> FusedScorer {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        if let Some(sim) = &mut self.sim {
            sim.mode = mode;
            sim.operands = (mode == SimMode::Full).then(|| {
                let d = |t| self.pair.dim(t) as usize;
                (
                    Matrix::pseudo_random(d(M), d(K), OPERAND_SEED + 2),
                    Matrix::pseudo_random(d(K), d(L), OPERAND_SEED + 3),
                    Matrix::pseudo_random(d(L), d(N), OPERAND_SEED + 4),
                )
            });
        }
        self
    }

    /// Total external-tensor traffic of `nest` under the selected backend.
    pub fn score(&self, nest: &FusedNest) -> u64 {
        match &self.sim {
            None => nest.evaluate(&self.model, &self.pair).total(),
            Some(sim) => match &sim.operands {
                None => measure_fused_nest(&self.pair, nest).iter().sum(),
                Some((a, b, d)) => sim
                    .pool
                    .with(|scratch| {
                        execute_fused_nest_with(a, b, d, &self.pair, nest, scratch)
                    })
                    .iter()
                    .sum(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::Tiling;
    use fusecu_fusion::FusedTiling;
    use fusecu_ir::MmDim;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn backends_agree_on_paper_accounting() {
        let mm = MatMul::new(14, 9, 11);
        let analytical = NestScorer::new(Fitness::Analytical, MODEL, mm);
        let traffic_only = NestScorer::new(Fitness::Simulated, MODEL, mm);
        let full = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::Full);
        for order in LoopNest::orders() {
            for tiling in [Tiling::new(1, 1, 1), Tiling::new(4, 3, 5), Tiling::new(14, 9, 11)] {
                let nest = LoopNest::new(order, tiling);
                let reference = analytical.score(&nest);
                assert_eq!(
                    traffic_only.score(&nest),
                    reference,
                    "traffic-only, order {order:?} tiling {tiling}"
                );
                assert_eq!(
                    full.score(&nest),
                    reference,
                    "full, order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn fused_backends_agree_on_paper_accounting() {
        let pair =
            FusedPair::try_new(MatMul::new(12, 5, 10), MatMul::new(12, 10, 7)).unwrap();
        let analytical = FusedScorer::new(Fitness::Analytical, MODEL, pair);
        let traffic_only = FusedScorer::new(Fitness::Simulated, MODEL, pair);
        let full =
            FusedScorer::new(Fitness::Simulated, MODEL, pair).with_sim_mode(SimMode::Full);
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [(1u64, 1, 1, 1), (4, 2, 5, 3), (12, 5, 10, 7)] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let reference = analytical.score(&nest);
                assert_eq!(traffic_only.score(&nest), reference, "traffic-only {nest}");
                assert_eq!(full.score(&nest), reference, "full {nest}");
            }
        }
    }

    #[test]
    fn simulated_scorer_is_shareable_across_threads() {
        // The GA scores populations through scoped threads; the scorer
        // must give identical answers from any of them, in both modes.
        let mm = MatMul::new(10, 8, 6);
        let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(3, 4, 2));
        for mode in [SimMode::TrafficOnly, SimMode::Full] {
            let scorer = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(mode);
            let expected = scorer.score(&nest);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| assert_eq!(scorer.score(&nest), expected));
                }
            });
        }
    }

    #[test]
    fn default_backend_is_analytical() {
        assert_eq!(Fitness::default(), Fitness::Analytical);
        assert!(!Fitness::Analytical.prefers_parallel_scoring());
        assert!(Fitness::Simulated.prefers_parallel_scoring());
    }

    #[test]
    fn simulated_default_mode_is_traffic_only() {
        // TrafficOnly is the default sim mode: no operands materialize.
        let scorer = NestScorer::new(Fitness::Simulated, MODEL, MatMul::new(6, 6, 6));
        let sim = scorer.sim.as_ref().expect("simulated backend present");
        assert_eq!(sim.mode, SimMode::TrafficOnly);
        assert!(sim.operands.is_none());
        assert!(scorer.sim.as_ref().unwrap().pool.idle() == 0);
    }
}
