//! Search fitness backends: analytical scoring vs simulator-in-the-loop.
//!
//! Every searcher in this crate ranks candidates by a scalar cost. This
//! module abstracts where that scalar comes from:
//!
//! * [`Fitness::Analytical`] — the closed-form loop-nest memory-access
//!   model ([`CostModel::evaluate`]), thousands of evaluations per
//!   millisecond. This is the default and what the paper's DAT baseline
//!   uses.
//! * [`Fitness::Simulated`] — each candidate nest is *replayed* on the
//!   cycle-level fabric drivers and scored by the traffic the replay
//!   actually measures. With the default [`SimMode::TrafficOnly`] this now
//!   runs through the driver's closed-form fast path — near-analytical
//!   speed — while [`SimMode::Full`] keeps the orders-of-magnitude-heavier
//!   data-moving replay that justifies parallel population scoring. Either
//!   way it closes the loop: the searcher can no longer be fooled by a
//!   modeling bug, because its objective *is* the machine (the closed form
//!   is differentially pinned against the frozen naive walk).
//! * [`Fitness::Latency`] — score by the arch cycle model instead of
//!   traffic: `max(compute, DRAM)` cycles of the nest on a given
//!   [`ArraySpec`] (see `fusecu_arch::latency`). A genuinely different
//!   objective — per-tile systolic fill/drain makes many small tiles
//!   expensive in cycles even when they are cheap in traffic, so latency
//!   and traffic rank some genome pairs in opposite orders.
//!
//! The simulated backend itself has three modes ([`SimMode`]):
//!
//! * [`SimMode::TrafficOnly`] (the default for `Fitness::Simulated`) runs
//!   the *identical* replay schedule through [`measure_nest`] /
//!   [`measure_fused_nest`] but skips all value movement — no operands are
//!   materialized and scoring allocates nothing. The counters are
//!   byte-identical to the full replay by construction (both modes share
//!   one accounting walk), and the sim crate's differential tests prove it.
//! * [`SimMode::FullMacro`] materializes the operands and computes the
//!   replay product with the wavefront macro-step engine — but since the
//!   product is nest-invariant (exact integer arithmetic; only the
//!   schedule varies per genome), it is hoisted **once per scorer** and
//!   each genome scores through the closed-form counters, which the sim
//!   crate proves byte-identical to the per-cycle replay. Full-fidelity
//!   scores at closed-form speed; scoring allocates nothing and stays
//!   serial.
//! * [`SimMode::Full`] moves real tile data through a shared
//!   [`SimScratch`] arena ([`execute_nest_with`] /
//!   [`execute_fused_nest_with`]) on *every* genome replay — the frozen
//!   per-cycle oracle the macro tier is differentially pinned against.
//!   Scorers keep a [`ScratchPool`] alive across genome replays, so
//!   steady-state scoring is allocation-free here too: each scoring
//!   thread checks an arena out, replays into it, and returns it.
//!
//! The operand values are irrelevant to the score (traffic counting never
//! looks at the data), so the matrices are seeded deterministically per
//! shape and shared read-only across scoring threads. For
//! [`CostModel::paper`] accounting the backends agree exactly on every
//! feasible nest (the driver tests prove measured == evaluated), so they
//! induce the same ranking; the simulated backend exists to *keep* that
//! true as the model evolves, and to catch it the moment it breaks.

use fusecu_arch::{fused_latency, nest_latency, ArraySpec};
use fusecu_dataflow::{CostModel, LoopNest};
use fusecu_fusion::{FusedNest, FusedPair};
use fusecu_ir::MatMul;
use fusecu_sim::driver::{
    execute_fused_nest_with, execute_nest_with, measure_fused_nest, measure_nest,
};
use fusecu_sim::{Matrix, ScratchLease, ScratchPool, SimMode};

/// Which objective a searcher ranks candidates by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fitness {
    /// Score by the analytical loop-nest model (fast; the default).
    #[default]
    Analytical,
    /// Score by traffic measured while replaying the nest on the
    /// simulated fabric. The default [`SimMode::TrafficOnly`] replay is
    /// closed-form and cheap; [`SimMode::Full`] moves real data and is
    /// where parallel scoring pays for itself.
    Simulated,
    /// Score by the arch cycle model: `max(compute, DRAM)` cycles of the
    /// nest on the given array (`fusecu_arch::latency`). Cheap and
    /// closed-form, but a *different* objective from traffic: a nest that
    /// moves more data with fewer, fuller tiles can win.
    Latency(ArraySpec),
}

impl Fitness {
    /// Whether a single evaluation is heavy enough that population
    /// scoring should fan out across cores by default, given the replay
    /// mode the backend actually resolves to.
    ///
    /// The decision is **cost-aware**: only `Simulated` in
    /// [`SimMode::Full`] moves real data per genome and costs enough to
    /// amortize a thread handoff. `Analytical`, `Latency`, and —
    /// crucially — `Simulated` in the default [`SimMode::TrafficOnly`]
    /// are closed-form, ~tens of nanoseconds per score: cheaper than the
    /// handoff itself, so fanning them out *inverts* into a slowdown
    /// (the 56× parallel-scaling cliff `BENCH_sim.json` recorded).
    /// [`SimMode::FullMacro`] hoists its one value-replay out of the
    /// per-genome path entirely, so despite being a full-fidelity mode it
    /// scores at closed-form cost and sits on the serial side of the
    /// table. `mode` is ignored by the non-simulated backends.
    pub fn prefers_parallel_scoring(self, mode: SimMode) -> bool {
        matches!(self, Fitness::Simulated) && mode == SimMode::Full
    }
}

/// Seed base for the deterministic operand matrices. The seeds only pick
/// matrix *values*, which the traffic accounting never reads — any fixed
/// constants give identical scores.
const OPERAND_SEED: u64 = 0x00F1_7E55;

/// The simulator-side state of a scorer: which replay mode to run, the
/// read-only operands ([`SimMode::Full`] only), and a pool of scratch
/// arenas reused across genome replays and shared across scoring threads.
#[derive(Debug)]
struct SimBackend<Ops> {
    mode: SimMode,
    /// `Some` in [`SimMode::Full`] and [`SimMode::FullMacro`];
    /// `TrafficOnly` never touches data.
    operands: Option<Ops>,
    /// The replay product, hoisted once per scorer in
    /// [`SimMode::FullMacro`]: the product is nest-invariant, so the
    /// macro engine computes it here and the per-genome path runs pure
    /// closed form.
    macro_out: Option<Matrix>,
    pool: ScratchPool,
}

/// A per-`optimize()` scorer for single-operator loop nests.
///
/// Construction is cheap for [`Fitness::Analytical`] and for the default
/// [`SimMode::TrafficOnly`] simulated backend; opting into
/// [`SimMode::Full`] via [`NestScorer::with_sim_mode`] materializes the
/// `A`/`B` operands once so every genome replays against the same
/// read-only data (safe to share across [`crate::parallel::par_map`]
/// workers — each thread checks a scratch arena out of the pool).
#[derive(Debug)]
pub struct NestScorer {
    model: CostModel,
    mm: MatMul,
    latency: Option<ArraySpec>,
    sim: Option<SimBackend<(Matrix, Matrix)>>,
}

impl NestScorer {
    /// Builds a scorer for `mm` under `model` with the given backend.
    /// [`Fitness::Simulated`] defaults to [`SimMode::TrafficOnly`].
    pub fn new(fitness: Fitness, model: CostModel, mm: MatMul) -> NestScorer {
        let sim = matches!(fitness, Fitness::Simulated).then(|| SimBackend {
            mode: SimMode::TrafficOnly,
            operands: None,
            macro_out: None,
            pool: ScratchPool::new(),
        });
        let latency = match fitness {
            Fitness::Latency(spec) => Some(spec),
            _ => None,
        };
        NestScorer {
            model,
            mm,
            latency,
            sim,
        }
    }

    /// Selects the simulated replay mode; [`SimMode::Full`] and
    /// [`SimMode::FullMacro`] materialize the operand matrices, and
    /// `FullMacro` additionally hoists its one macro-step value replay
    /// here, so per-genome scoring never touches data. No-op for an
    /// analytical scorer.
    #[must_use]
    pub fn with_sim_mode(mut self, mode: SimMode) -> NestScorer {
        if let Some(sim) = &mut self.sim {
            sim.mode = mode;
            sim.operands = matches!(mode, SimMode::Full | SimMode::FullMacro).then(|| {
                let mm = self.mm;
                (
                    Matrix::pseudo_random(mm.m() as usize, mm.k() as usize, OPERAND_SEED),
                    Matrix::pseudo_random(mm.k() as usize, mm.l() as usize, OPERAND_SEED + 1),
                )
            });
            sim.macro_out = match (mode, &sim.operands) {
                (SimMode::FullMacro, Some((a, b))) => Some(a.matmul(b)),
                _ => None,
            };
        }
        self
    }

    /// The hoisted [`SimMode::FullMacro`] replay product, when that mode
    /// is selected — the same matrix every per-genome full replay would
    /// recompute (pinned by the fitness tests).
    pub fn macro_out(&self) -> Option<&Matrix> {
        self.sim.as_ref().and_then(|sim| sim.macro_out.as_ref())
    }

    /// Scalar cost of `nest` under the selected backend — total memory
    /// access for the traffic backends, cycles for [`Fitness::Latency`].
    /// Feasibility (buffer fit) is the caller's concern; this only scores.
    ///
    /// One-shot convenience: pays a [`ScratchPool`] checkout per call in
    /// [`SimMode::Full`]. Batch callers (a GA generation, an exhaustive
    /// scan) should open a [`NestScorer::session`] and score through it.
    pub fn score(&self, nest: &LoopNest) -> u64 {
        self.session().score(nest)
    }

    /// Opens a batch-scoring session: in [`SimMode::Full`] this leases
    /// one scratch arena from the pool and holds it for the session's
    /// lifetime, so a worker scoring a whole sub-population pays the
    /// pool lock once per batch instead of once per genome. For the
    /// closed-form backends — including [`SimMode::FullMacro`], whose
    /// value replay is already hoisted into the scorer — the session is
    /// stateless and free.
    ///
    /// Sessions are per-thread (they hold the leased arena mutably);
    /// the scorer itself stays shareable, so each `par_map_batched`
    /// worker opens its own session off the same `&NestScorer`.
    pub fn session(&self) -> NestSession<'_> {
        NestSession {
            scorer: self,
            scratch: self
                .sim
                .as_ref()
                .filter(|sim| sim.mode == SimMode::Full && sim.operands.is_some())
                .map(|sim| sim.pool.lease()),
        }
    }
}

/// A per-worker batch-scoring handle for [`NestScorer`]: holds the
/// [`SimMode::Full`] scratch lease across every score in the batch.
#[derive(Debug)]
pub struct NestSession<'s> {
    scorer: &'s NestScorer,
    /// `Some` only when the backend replays real data ([`SimMode::Full`]).
    scratch: Option<ScratchLease<'s>>,
}

impl NestSession<'_> {
    /// Scalar cost of `nest`; identical to [`NestScorer::score`] — the
    /// session only changes *where* the scratch checkout happens, never
    /// the score.
    pub fn score(&mut self, nest: &LoopNest) -> u64 {
        let scorer = self.scorer;
        if let Some(spec) = &scorer.latency {
            return nest_latency(spec, &scorer.model, scorer.mm, nest);
        }
        match &scorer.sim {
            None => scorer.model.evaluate(scorer.mm, nest).total(),
            Some(sim) => match (sim.mode, &sim.operands) {
                // The per-cycle oracle: move real data on every replay.
                (SimMode::Full, Some((a, b))) => {
                    let scratch = self
                        .scratch
                        .as_mut()
                        .expect("full-mode session holds a scratch lease");
                    execute_nest_with(a, b, scorer.mm, nest, scratch).total()
                }
                // TrafficOnly, and FullMacro with its value replay
                // already hoisted into the scorer: pure closed form.
                _ => measure_nest(scorer.mm, nest).total(),
            },
        }
    }
}

/// A per-`optimize()` scorer for fused-pair nests; the fused analogue of
/// [`NestScorer`].
#[derive(Debug)]
pub struct FusedScorer {
    model: CostModel,
    pair: FusedPair,
    latency: Option<ArraySpec>,
    sim: Option<SimBackend<(Matrix, Matrix, Matrix)>>,
}

impl FusedScorer {
    /// Builds a scorer for `pair` under `model` with the given backend.
    /// [`Fitness::Simulated`] defaults to [`SimMode::TrafficOnly`].
    pub fn new(fitness: Fitness, model: CostModel, pair: FusedPair) -> FusedScorer {
        let sim = matches!(fitness, Fitness::Simulated).then(|| SimBackend {
            mode: SimMode::TrafficOnly,
            operands: None,
            macro_out: None,
            pool: ScratchPool::new(),
        });
        let latency = match fitness {
            Fitness::Latency(spec) => Some(spec),
            _ => None,
        };
        FusedScorer {
            model,
            pair,
            latency,
            sim,
        }
    }

    /// Selects the simulated replay mode; [`SimMode::Full`] and
    /// [`SimMode::FullMacro`] materialize the operand matrices, and
    /// `FullMacro` hoists its one macro-step value replay here (see
    /// [`NestScorer::with_sim_mode`]). No-op for an analytical scorer.
    #[must_use]
    pub fn with_sim_mode(mut self, mode: SimMode) -> FusedScorer {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        if let Some(sim) = &mut self.sim {
            sim.mode = mode;
            sim.operands = matches!(mode, SimMode::Full | SimMode::FullMacro).then(|| {
                let d = |t| self.pair.dim(t) as usize;
                (
                    Matrix::pseudo_random(d(M), d(K), OPERAND_SEED + 2),
                    Matrix::pseudo_random(d(K), d(L), OPERAND_SEED + 3),
                    Matrix::pseudo_random(d(L), d(N), OPERAND_SEED + 4),
                )
            });
            sim.macro_out = match (mode, &sim.operands) {
                (SimMode::FullMacro, Some((a, b, d))) => Some(a.matmul(b).matmul(d)),
                _ => None,
            };
        }
        self
    }

    /// The hoisted [`SimMode::FullMacro`] replay product `E`, when that
    /// mode is selected (see [`NestScorer::macro_out`]).
    pub fn macro_out(&self) -> Option<&Matrix> {
        self.sim.as_ref().and_then(|sim| sim.macro_out.as_ref())
    }

    /// Scalar cost of `nest` under the selected backend — total
    /// external-tensor traffic, or cycles for [`Fitness::Latency`].
    ///
    /// One-shot convenience; batch callers should open a
    /// [`FusedScorer::session`] (see [`NestScorer::session`]).
    pub fn score(&self, nest: &FusedNest) -> u64 {
        self.session().score(nest)
    }

    /// Opens a batch-scoring session holding one scratch lease for
    /// [`SimMode::Full`]; stateless and free for the closed-form
    /// backends (including [`SimMode::FullMacro`]). See
    /// [`NestScorer::session`].
    pub fn session(&self) -> FusedSession<'_> {
        FusedSession {
            scorer: self,
            scratch: self
                .sim
                .as_ref()
                .filter(|sim| sim.mode == SimMode::Full && sim.operands.is_some())
                .map(|sim| sim.pool.lease()),
        }
    }
}

/// A per-worker batch-scoring handle for [`FusedScorer`]; the fused
/// analogue of [`NestSession`].
#[derive(Debug)]
pub struct FusedSession<'s> {
    scorer: &'s FusedScorer,
    /// `Some` only when the backend replays real data ([`SimMode::Full`]).
    scratch: Option<ScratchLease<'s>>,
}

impl FusedSession<'_> {
    /// Scalar cost of `nest`; identical to [`FusedScorer::score`].
    pub fn score(&mut self, nest: &FusedNest) -> u64 {
        let scorer = self.scorer;
        if let Some(spec) = &scorer.latency {
            return fused_latency(spec, &scorer.model, &scorer.pair, nest);
        }
        match &scorer.sim {
            None => nest.evaluate(&scorer.model, &scorer.pair).total(),
            Some(sim) => match (sim.mode, &sim.operands) {
                // The per-cycle oracle: move real data on every replay.
                (SimMode::Full, Some((a, b, d))) => {
                    let scratch = self
                        .scratch
                        .as_mut()
                        .expect("full-mode session holds a scratch lease");
                    execute_fused_nest_with(a, b, d, &scorer.pair, nest, scratch)
                        .iter()
                        .sum()
                }
                // TrafficOnly, and FullMacro with its value replay
                // already hoisted into the scorer: pure closed form.
                _ => measure_fused_nest(&scorer.pair, nest).iter().sum(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::Tiling;
    use fusecu_fusion::FusedTiling;
    use fusecu_ir::MmDim;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    #[test]
    fn backends_agree_on_paper_accounting() {
        let mm = MatMul::new(14, 9, 11);
        let analytical = NestScorer::new(Fitness::Analytical, MODEL, mm);
        let traffic_only = NestScorer::new(Fitness::Simulated, MODEL, mm);
        let full = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::Full);
        let full_macro =
            NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::FullMacro);
        for order in LoopNest::orders() {
            for tiling in [Tiling::new(1, 1, 1), Tiling::new(4, 3, 5), Tiling::new(14, 9, 11)] {
                let nest = LoopNest::new(order, tiling);
                let reference = analytical.score(&nest);
                assert_eq!(
                    traffic_only.score(&nest),
                    reference,
                    "traffic-only, order {order:?} tiling {tiling}"
                );
                assert_eq!(
                    full.score(&nest),
                    reference,
                    "full, order {order:?} tiling {tiling}"
                );
                assert_eq!(
                    full_macro.score(&nest),
                    reference,
                    "full-macro, order {order:?} tiling {tiling}"
                );
            }
        }
    }

    #[test]
    fn fused_backends_agree_on_paper_accounting() {
        let pair =
            FusedPair::try_new(MatMul::new(12, 5, 10), MatMul::new(12, 10, 7)).unwrap();
        let analytical = FusedScorer::new(Fitness::Analytical, MODEL, pair);
        let traffic_only = FusedScorer::new(Fitness::Simulated, MODEL, pair);
        let full =
            FusedScorer::new(Fitness::Simulated, MODEL, pair).with_sim_mode(SimMode::Full);
        let full_macro =
            FusedScorer::new(Fitness::Simulated, MODEL, pair).with_sim_mode(SimMode::FullMacro);
        for outer_is_m in [true, false] {
            for (tm, tk, tl, tn) in [(1u64, 1, 1, 1), (4, 2, 5, 3), (12, 5, 10, 7)] {
                let nest = FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                let reference = analytical.score(&nest);
                assert_eq!(traffic_only.score(&nest), reference, "traffic-only {nest}");
                assert_eq!(full.score(&nest), reference, "full {nest}");
                assert_eq!(full_macro.score(&nest), reference, "full-macro {nest}");
            }
        }
    }

    #[test]
    fn simulated_scorer_is_shareable_across_threads() {
        // The GA scores populations through scoped threads; the scorer
        // must give identical answers from any of them, in both modes.
        let mm = MatMul::new(10, 8, 6);
        let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(3, 4, 2));
        for mode in [SimMode::TrafficOnly, SimMode::FullMacro, SimMode::Full] {
            let scorer = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(mode);
            let expected = scorer.score(&nest);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| assert_eq!(scorer.score(&nest), expected));
                }
            });
        }
    }

    #[test]
    fn default_backend_is_analytical() {
        assert_eq!(Fitness::default(), Fitness::Analytical);
    }

    #[test]
    fn parallel_preference_is_cost_aware() {
        // Only the one genuinely heavy backend — Simulated moving real
        // data per genome — prefers fan-out. Every closed-form score
        // (analytical, latency, the default TrafficOnly replay, and the
        // macro-stepped full replay whose single value pass is hoisted
        // out of the genome loop) is cheaper than a thread handoff and
        // must default to serial.
        assert!(Fitness::Simulated.prefers_parallel_scoring(SimMode::Full));
        assert!(!Fitness::Simulated.prefers_parallel_scoring(SimMode::TrafficOnly));
        assert!(!Fitness::Simulated.prefers_parallel_scoring(SimMode::FullMacro));
        for mode in [SimMode::Full, SimMode::FullMacro, SimMode::TrafficOnly] {
            assert!(!Fitness::Analytical.prefers_parallel_scoring(mode));
            assert!(!Fitness::Latency(ArraySpec::paper_default()).prefers_parallel_scoring(mode));
        }
    }

    #[test]
    fn sessions_score_identically_to_one_shot_calls() {
        let mm = MatMul::new(14, 9, 11);
        let nests: Vec<LoopNest> = LoopNest::orders()
            .iter()
            .map(|&o| LoopNest::new(o, Tiling::new(4, 3, 5)))
            .collect();
        for scorer in [
            NestScorer::new(Fitness::Analytical, MODEL, mm),
            NestScorer::new(Fitness::Simulated, MODEL, mm),
            NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::Full),
            NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::FullMacro),
            NestScorer::new(Fitness::Latency(ArraySpec::paper_default()), MODEL, mm),
        ] {
            let mut session = scorer.session();
            for nest in &nests {
                assert_eq!(session.score(nest), scorer.score(nest));
            }
        }
    }

    #[test]
    fn full_mode_session_leases_one_arena_for_the_whole_batch() {
        let mm = MatMul::new(10, 8, 6);
        let scorer = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::Full);
        let pool_idle = |s: &NestScorer| s.sim.as_ref().unwrap().pool.idle();
        {
            let mut session = scorer.session();
            let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(3, 4, 2));
            session.score(&nest);
            session.score(&nest);
            // The arena stays checked out across scores within a session.
            assert_eq!(pool_idle(&scorer), 0);
        }
        assert_eq!(pool_idle(&scorer), 1, "drop returns the arena");
        // TrafficOnly sessions never touch the pool.
        let cheap = NestScorer::new(Fitness::Simulated, MODEL, mm);
        let _session = cheap.session();
        assert_eq!(pool_idle(&cheap), 0);
        // Neither do FullMacro sessions: the one value replay is hoisted
        // into the scorer, so batch scoring needs no arena at all.
        let wave = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::FullMacro);
        {
            let mut session = wave.session();
            let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(3, 4, 2));
            session.score(&nest);
            assert_eq!(pool_idle(&wave), 0);
        }
        assert_eq!(pool_idle(&wave), 0, "no lease was ever taken");
    }

    #[test]
    fn macro_scorer_hoists_the_full_replay_product() {
        // FullMacro's one value replay must reproduce exactly what every
        // per-genome Full replay computes — same operands, same product.
        let mm = MatMul::new(14, 9, 11);
        let scorer =
            NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::FullMacro);
        let sim = scorer.sim.as_ref().expect("simulated backend present");
        let (a, b) = sim.operands.as_ref().expect("macro mode materializes operands");
        let nest = LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(4, 3, 5));
        let full = fusecu_sim::driver::execute_nest(a, b, mm, &nest);
        assert_eq!(scorer.macro_out(), Some(&full.out));

        let pair = FusedPair::try_new(MatMul::new(12, 5, 10), MatMul::new(12, 10, 7)).unwrap();
        let fused =
            FusedScorer::new(Fitness::Simulated, MODEL, pair).with_sim_mode(SimMode::FullMacro);
        let sim = fused.sim.as_ref().expect("simulated backend present");
        let (a, b, d) = sim.operands.as_ref().expect("macro mode materializes operands");
        let fnest = FusedNest::new(true, FusedTiling::new(4, 2, 5, 3));
        let full = fusecu_sim::driver::execute_fused_nest(a, b, d, &pair, &fnest);
        assert_eq!(fused.macro_out(), Some(&full.out));
        // No mode but FullMacro hoists a product.
        let other = NestScorer::new(Fitness::Simulated, MODEL, mm).with_sim_mode(SimMode::Full);
        assert!(other.macro_out().is_none());
    }

    #[test]
    fn latency_fitness_ranks_a_genome_pair_differently_than_traffic() {
        // The satellite objective test: latency is a *genuinely different*
        // objective, not a rescaled traffic. Shredding L into unit tiles
        // minimizes MA on this shape (4 736 vs 6 016 elements) but pays
        // systolic fill/drain on every one of its 32 tiles (9 728 vs 1 120
        // compute cycles on the paper's 128×128 array, where both nests
        // are compute-bound) — so the two backends order the pair in
        // opposite directions.
        let mm = MatMul::new(48, 40, 32);
        let order = [MmDim::M, MmDim::K, MmDim::L];
        let low_traffic = LoopNest::new(order, Tiling::new(48, 40, 1));
        let low_latency = LoopNest::new(order, Tiling::new(24, 20, 32));
        let traffic = NestScorer::new(Fitness::Analytical, MODEL, mm);
        let latency =
            NestScorer::new(Fitness::Latency(ArraySpec::paper_default()), MODEL, mm);
        assert!(
            traffic.score(&low_traffic) < traffic.score(&low_latency),
            "traffic must prefer the shredded nest: {} vs {}",
            traffic.score(&low_traffic),
            traffic.score(&low_latency)
        );
        assert!(
            latency.score(&low_traffic) > latency.score(&low_latency),
            "latency must prefer the fuller tiles: {} vs {}",
            latency.score(&low_traffic),
            latency.score(&low_latency)
        );
    }

    #[test]
    fn latency_fitness_scores_fused_nests() {
        // Fused plumbing: the latency backend flows through FusedScorer
        // and ranks the all-unit tiling strictly worse than whole tiles.
        let pair =
            FusedPair::try_new(MatMul::new(12, 5, 10), MatMul::new(12, 10, 7)).unwrap();
        let scorer =
            FusedScorer::new(Fitness::Latency(ArraySpec::paper_default()), MODEL, pair);
        let whole = FusedNest::new(true, FusedTiling::new(12, 5, 10, 7));
        let unit = FusedNest::new(true, FusedTiling::new(1, 1, 1, 1));
        assert!(scorer.score(&whole) > 0);
        assert!(scorer.score(&whole) < scorer.score(&unit));
    }

    #[test]
    fn latency_scorer_builds_no_sim_backend() {
        let scorer =
            NestScorer::new(Fitness::Latency(ArraySpec::paper_default()), MODEL, MatMul::new(6, 6, 6));
        assert!(scorer.sim.is_none());
        assert!(scorer.latency.is_some());
        // with_sim_mode is a no-op without a simulated backend.
        let scorer = scorer.with_sim_mode(SimMode::Full);
        assert!(scorer.sim.is_none());
    }

    #[test]
    fn simulated_default_mode_is_traffic_only() {
        // TrafficOnly is the default sim mode: no operands materialize.
        let scorer = NestScorer::new(Fitness::Simulated, MODEL, MatMul::new(6, 6, 6));
        let sim = scorer.sim.as_ref().expect("simulated backend present");
        assert_eq!(sim.mode, SimMode::TrafficOnly);
        assert!(sim.operands.is_none());
        assert!(scorer.sim.as_ref().unwrap().pool.idle() == 0);
    }
}
