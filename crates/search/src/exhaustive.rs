//! Exhaustive intra-operator dataflow search: the optimality oracle.

use fusecu_dataflow::{CostModel, Dataflow, LoopNest, Tiling};
use fusecu_ir::MatMul;

use crate::fitness::{Fitness, NestScorer};
use crate::space::balanced_tiles;

/// The result of a search: the winning dataflow plus search statistics.
///
/// `PartialEq`/`Eq` compare both the dataflow and the evaluation count, so
/// equality doubles as a determinism check between serial and parallel
/// sweep runs (see [`crate::parallel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    best: Dataflow,
    evaluations: u64,
}

impl SearchResult {
    pub(crate) fn new(best: Dataflow, evaluations: u64) -> SearchResult {
        SearchResult { best, evaluations }
    }

    /// The minimum-memory-access dataflow found.
    pub fn best(&self) -> Dataflow {
        self.best
    }

    /// Number of candidate dataflows scored — the cost the principles avoid.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

/// Exhaustive enumeration over loop orders × balanced tile representatives.
///
/// Lossless with respect to the full tile space (see [`crate::space`]); the
/// returned dataflow is the global optimum of the loop-nest model under the
/// buffer constraint.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSearch {
    model: CostModel,
    fitness: Fitness,
}

impl ExhaustiveSearch {
    /// Creates a searcher over the given cost model.
    pub fn new(model: CostModel) -> ExhaustiveSearch {
        ExhaustiveSearch {
            model,
            fitness: Fitness::Analytical,
        }
    }

    /// Selects the fitness backend (see [`crate::fitness::Fitness`]): the
    /// simulated backend ranks every candidate by replayed traffic instead
    /// of the analytical model. Identical winners under paper accounting.
    pub fn with_fitness(mut self, fitness: Fitness) -> ExhaustiveSearch {
        self.fitness = fitness;
        self
    }

    /// Searches the full space.
    ///
    /// # Panics
    ///
    /// Panics when no tiling fits the buffer (`bs < 3`).
    pub fn optimize(&self, mm: MatMul, bs: u64) -> SearchResult {
        self.try_optimize(mm, bs)
            .unwrap_or_else(|| panic!("buffer of {bs} elements cannot hold any tile of {mm}"))
    }

    /// Searches the full space; `None` when nothing fits.
    pub fn try_optimize(&self, mm: MatMul, bs: u64) -> Option<SearchResult> {
        let tiles_m = balanced_tiles(mm.m());
        let tiles_k = balanced_tiles(mm.k());
        let tiles_l = balanced_tiles(mm.l());
        let scorer = NestScorer::new(self.fitness, self.model, mm);
        // One scoring session for the whole scan: any backend scratch is
        // checked out once, not once per candidate.
        let mut session = scorer.session();
        let mut best: Option<(u64, LoopNest)> = None;
        let mut evaluations = 0u64;
        for &tm in &tiles_m {
            for &tk in &tiles_k {
                // Prune: the A tile alone already exceeds the buffer, and
                // tiles only grow along the remaining axis.
                if tm * tk > bs {
                    break;
                }
                for &tl in &tiles_l {
                    let tiling = Tiling::new(tm, tk, tl);
                    if !tiling.fits(mm, bs) {
                        break;
                    }
                    for order in LoopNest::orders() {
                        evaluations += 1;
                        let nest = LoopNest::new(order, tiling);
                        let cost = session.score(&nest);
                        if best.is_none_or(|(b, _)| cost < b) {
                            best = Some((cost, nest));
                        }
                    }
                }
            }
        }
        best.map(|(_, nest)| SearchResult::new(self.model.dataflow(mm, nest), evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::principles;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    /// Truly exhaustive search over *every* tile size, not just balanced
    /// representatives. Only viable for small dims; used to prove the
    /// representative space lossless.
    fn full_grid_optimum(mm: MatMul, bs: u64) -> Option<u64> {
        let mut best = None;
        for tm in 1..=mm.m() {
            for tk in 1..=mm.k() {
                for tl in 1..=mm.l() {
                    let tiling = Tiling::new(tm, tk, tl);
                    if !tiling.fits(mm, bs) {
                        continue;
                    }
                    for order in LoopNest::orders() {
                        let ma = MODEL.evaluate(mm, &LoopNest::new(order, tiling)).total();
                        if best.is_none_or(|b| ma < b) {
                            best = Some(ma);
                        }
                    }
                }
            }
        }
        best
    }

    #[test]
    fn balanced_representatives_are_lossless() {
        let search = ExhaustiveSearch::new(MODEL);
        for mm in [
            MatMul::new(7, 9, 5),
            MatMul::new(12, 6, 10),
            MatMul::new(16, 4, 16),
        ] {
            for bs in [3u64, 8, 20, 50, 120, 400] {
                let full = full_grid_optimum(mm, bs);
                let reps = search.try_optimize(mm, bs).map(|r| r.best().total_ma());
                assert_eq!(reps, full, "mm={mm} bs={bs}");
            }
        }
    }

    #[test]
    fn principles_match_exhaustive_search() {
        // The paper's Fig 9 claim, in miniature: across shapes and buffer
        // sizes the one-shot principles reach the searched optimum.
        let search = ExhaustiveSearch::new(MODEL);
        let shapes = [
            MatMul::new(256, 96, 192),
            MatMul::new(64, 512, 64),
            MatMul::new(384, 384, 384),
            MatMul::new(1024, 64, 256),
            MatMul::new(96, 100, 17),
        ];
        for mm in shapes {
            for bs in [16u64, 200, 3_000, 8_192, 40_000, 500_000] {
                let searched = search.optimize(mm, bs).best().total_ma();
                let principled = principles::optimize_with(&MODEL, mm, bs).total_ma();
                assert_eq!(
                    principled, searched,
                    "mm={mm} bs={bs}: principles missed the searched optimum"
                );
            }
        }
    }

    #[test]
    fn evaluation_count_reported() {
        let r = ExhaustiveSearch::new(MODEL).optimize(MatMul::new(64, 64, 64), 1_024);
        assert!(r.evaluations() > 100);
    }

    #[test]
    fn infeasible_buffer_returns_none() {
        assert!(ExhaustiveSearch::new(MODEL)
            .try_optimize(MatMul::new(4, 4, 4), 2)
            .is_none());
    }

    #[test]
    fn simulated_fitness_finds_the_same_optimum() {
        // Paper accounting: replayed traffic equals the model on every
        // candidate, so the simulated oracle returns a byte-identical
        // result — winner and evaluation count.
        let search = ExhaustiveSearch::new(MODEL);
        let simulated = search.with_fitness(crate::fitness::Fitness::Simulated);
        let mm = MatMul::new(20, 14, 18);
        for bs in [8u64, 100, 2_000] {
            assert_eq!(
                simulated.try_optimize(mm, bs),
                search.try_optimize(mm, bs),
                "bs={bs}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn optimize_panics_when_infeasible() {
        let _ = ExhaustiveSearch::new(MODEL).optimize(MatMul::new(4, 4, 4), 1);
    }
}
