//! Disk persistence for the intra-operator sweep caches.
//!
//! The generic file format — versioned, fingerprinted, checksummed,
//! all-or-nothing — lives in [`fusecu_dataflow::persist`] so every layer
//! of the stack can persist without dependency cycles; this module
//! re-exports it (the historical `fusecu_search::persist` import paths
//! keep working) and adds the codecs for [`DataflowCache`]'s three
//! optimizer maps. See the format notes there for the fingerprint and
//! invalidation rules; the sweep caches are stamped with the base
//! [`fingerprint`], whose behavioral cost-model digest already covers
//! everything a sweep entry's value depends on.

use std::io;
use std::path::Path;

use fusecu_dataflow::Dataflow;

pub use fusecu_dataflow::persist::{
    cost_model_digest, decode_dataflow, decode_mm, decode_model, default_cache_dir,
    encode_dataflow, encode_mm, encode_model, fingerprint, fingerprint_with, CacheFile,
    RecordReader, FORMAT_VERSION,
};

use crate::cache::DataflowCache;
use crate::exhaustive::SearchResult;

const SECTION_PRINCIPLE: &str = "principle";
const SECTION_EXHAUSTIVE: &str = "exhaustive";
const SECTION_GENETIC: &str = "genetic";

fn encode_principle(key: &super::cache::SweepKey, value: &Option<Dataflow>) -> Vec<u64> {
    let (mm, bs, model) = key;
    let mut out = Vec::with_capacity(15);
    encode_mm(*mm, &mut out);
    out.push(*bs);
    encode_model(model, &mut out);
    match value {
        None => out.push(0),
        Some(df) => {
            out.push(1);
            encode_dataflow(df, &mut out);
        }
    }
    out
}

fn encode_search(key: &super::cache::SweepKey, value: &Option<SearchResult>) -> Vec<u64> {
    let (mm, bs, model) = key;
    let mut out = Vec::with_capacity(16);
    encode_mm(*mm, &mut out);
    out.push(*bs);
    encode_model(model, &mut out);
    match value {
        None => out.push(0),
        Some(res) => {
            out.push(1);
            encode_dataflow(&res.best(), &mut out);
            out.push(res.evaluations());
        }
    }
    out
}

/// Decodes the shared `(mm, bs, model)` key prefix.
fn decode_key(r: &mut RecordReader<'_>) -> Option<super::cache::SweepKey> {
    let mm = decode_mm(r)?;
    let bs = r.u64()?;
    let model = decode_model(r)?;
    Some((mm, bs, model))
}

/// Validates that a decoded dataflow is a plausible answer for its key:
/// same shape, and within the buffer budget it claims to satisfy.
fn valid_for_key(df: &Dataflow, key: &super::cache::SweepKey) -> bool {
    df.mm() == key.0 && df.buffer_elems() <= key.1
}

type PrincipleEntry = (super::cache::SweepKey, Option<Dataflow>);
type SearchEntry = (super::cache::SweepKey, Option<SearchResult>);

fn decode_principle(record: &[u64]) -> Option<PrincipleEntry> {
    let mut r = RecordReader::new(record);
    let key = decode_key(&mut r)?;
    let value = if r.bool()? {
        let df = decode_dataflow(&key.2, &mut r)?;
        if !valid_for_key(&df, &key) {
            return None;
        }
        Some(df)
    } else {
        None
    };
    r.finish()?;
    Some((key, value))
}

fn decode_search(record: &[u64]) -> Option<SearchEntry> {
    let mut r = RecordReader::new(record);
    let key = decode_key(&mut r)?;
    let value = if r.bool()? {
        let df = decode_dataflow(&key.2, &mut r)?;
        if !valid_for_key(&df, &key) {
            return None;
        }
        let evaluations = r.u64()?;
        Some(SearchResult::new(df, evaluations))
    } else {
        None
    };
    r.finish()?;
    Some((key, value))
}

/// Serializes every completed entry of `cache` to `path`. Returns the
/// number of entries written.
pub(crate) fn save_dataflow_cache(cache: &DataflowCache, path: &Path) -> io::Result<usize> {
    let mut file = CacheFile::new();
    file.push_section(
        SECTION_PRINCIPLE,
        cache
            .principle
            .snapshot()
            .iter()
            .map(|(k, v)| encode_principle(k, v))
            .collect(),
    );
    file.push_section(
        SECTION_EXHAUSTIVE,
        cache
            .exhaustive
            .snapshot()
            .iter()
            .map(|(k, v)| encode_search(k, v))
            .collect(),
    );
    file.push_section(
        SECTION_GENETIC,
        cache
            .genetic
            .snapshot()
            .iter()
            .map(|(k, v)| encode_search(k, v))
            .collect(),
    );
    let n = file.records();
    file.save(path)?;
    Ok(n)
}

/// Preloads `cache` from `path`; all-or-nothing, 0 on any anomaly.
pub(crate) fn load_dataflow_cache(cache: &DataflowCache, path: &Path) -> usize {
    let Some(file) = CacheFile::load(path) else {
        return 0;
    };
    let principle: Option<Vec<PrincipleEntry>> =
        file.section(SECTION_PRINCIPLE).iter().map(|r| decode_principle(r)).collect();
    let exhaustive: Option<Vec<SearchEntry>> =
        file.section(SECTION_EXHAUSTIVE).iter().map(|r| decode_search(r)).collect();
    let genetic: Option<Vec<SearchEntry>> =
        file.section(SECTION_GENETIC).iter().map(|r| decode_search(r)).collect();
    match (principle, exhaustive, genetic) {
        (Some(p), Some(e), Some(g)) => {
            cache.principle.preload(p) + cache.exhaustive.preload(e) + cache.genetic.preload(g)
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_dataflow::CostModel;
    use fusecu_ir::MatMul;

    #[test]
    fn reexported_format_layer_is_usable() {
        // The historical import path must keep working for downstream
        // crates that persisted through `fusecu_search::persist`.
        assert!(fingerprint().contains(&format!("-f{FORMAT_VERSION}-")));
        assert_ne!(fingerprint_with("x"), fingerprint());
    }

    #[test]
    fn search_entry_round_trips_with_evaluations() {
        let model = CostModel::paper();
        let mm = MatMul::new(96, 48, 64);
        let key = (mm, 4_096u64, model);
        let res = crate::ExhaustiveSearch::new(model).try_optimize(mm, 4_096);
        let rec = encode_search(&key, &res);
        let (back_key, back) = decode_search(&rec).unwrap();
        assert_eq!(back_key, key);
        assert_eq!(back, res);
        // Infeasible entries round-trip as explicit `None`s.
        let none_key = (MatMul::new(4, 4, 4), 2u64, model);
        let rec = encode_search(&none_key, &None);
        assert_eq!(decode_search(&rec).unwrap(), (none_key, None));
    }

    #[test]
    fn entries_that_violate_their_key_are_rejected() {
        let model = CostModel::paper();
        let mm = MatMul::new(96, 48, 64);
        let res = crate::ExhaustiveSearch::new(model).try_optimize(mm, 4_096);
        let mut rec = encode_search(&(mm, 4_096, model), &res);
        // Shrink the claimed buffer below the stored dataflow's footprint.
        rec[3] = 1;
        assert!(decode_search(&rec).is_none());
    }
}
