//! Exhaustive search over the k-ary fused-chain nest space.
//!
//! Validates the closed-form chain optimizer of `fusecu-fusion`, whose
//! dominance argument prunes each phase tile to `{1, full}` and bisects
//! the shared `T_M`. This searcher makes no such assumption: it scans
//! the full cross product of balanced tile representatives for `T_M`
//! and every phase dimension, keeping the best feasible nest. Balanced
//! representatives are lossless for the analytical model (every
//! iteration-count profile appears), so an uncapped scan is a true
//! optimality oracle over the chain space — if the closed form ever
//! missed a cheaper nest, this search would expose it. A per-dimension
//! cap subsamples the representative lists (endpoints retained) for use
//! at transformer scale.

use fusecu_dataflow::CostModel;
use fusecu_fusion::{ChainNest, FusedChain, FusedChainDataflow};

use crate::space::{balanced_tiles, subsample};

/// Exhaustive fused-chain searcher (analytical fitness).
#[derive(Debug, Clone, Copy)]
pub struct ChainExhaustive {
    model: CostModel,
    max_reps: Option<usize>,
}

impl ChainExhaustive {
    /// A full-resolution oracle (no subsampling).
    pub fn new(model: CostModel) -> ChainExhaustive {
        ChainExhaustive {
            model,
            max_reps: None,
        }
    }

    /// A capped searcher scanning at most `max_reps` tile candidates per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `max_reps < 2` (the endpoints are always needed).
    pub fn with_cap(model: CostModel, max_reps: usize) -> ChainExhaustive {
        assert!(max_reps >= 2, "cap must retain the endpoints");
        ChainExhaustive {
            model,
            max_reps: Some(max_reps),
        }
    }

    fn tiles_for(&self, d: u64) -> Vec<u64> {
        let reps = balanced_tiles(d);
        match self.max_reps {
            Some(cap) => subsample(reps, cap),
            None => reps,
        }
    }

    /// Scans the chain space; returns the best nest and the number of
    /// evaluations, or `None` when nothing fits.
    pub fn optimize(&self, chain: &FusedChain, bs: u64) -> Option<(FusedChainDataflow, u64)> {
        let k = chain.depth();
        let tm_reps = self.tiles_for(chain.m());
        let phase_reps: Vec<Vec<u64>> = (0..k)
            .map(|i| self.tiles_for(ChainNest::phase_dim(chain, i)))
            .collect();
        let mut best: Option<(u64, u64, ChainNest)> = None;
        let mut evaluations = 0u64;
        let mut tiles = vec![1u64; k];
        for &t_m in &tm_reps {
            self.scan(
                chain,
                bs,
                t_m,
                &phase_reps,
                0,
                &mut tiles,
                &mut best,
                &mut evaluations,
            );
        }
        best.map(|(_, _, nest)| {
            (
                FusedChainDataflow::score(&self.model, chain.clone(), nest),
                evaluations,
            )
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn scan(
        &self,
        chain: &FusedChain,
        bs: u64,
        t_m: u64,
        phase_reps: &[Vec<u64>],
        phase: usize,
        tiles: &mut Vec<u64>,
        best: &mut Option<(u64, u64, ChainNest)>,
        evaluations: &mut u64,
    ) {
        if phase == phase_reps.len() {
            let nest = ChainNest::new(t_m, tiles.clone());
            if !nest.fits(chain, bs) {
                return;
            }
            *evaluations += 1;
            let key = (
                nest.evaluate(&self.model, chain).total(),
                nest.footprint(chain),
            );
            if best
                .as_ref()
                .is_none_or(|(c, f, _)| key < (*c, *f))
            {
                *best = Some((key.0, key.1, nest));
            }
            return;
        }
        for &t in &phase_reps[phase] {
            tiles[phase] = t;
            // The footprint is nondecreasing in each phase tile, so once
            // the prefix with every remaining tile at its minimum fails,
            // larger tiles for this phase cannot fit either.
            let probe: Vec<u64> = tiles[..=phase]
                .iter()
                .copied()
                .chain(phase_reps[phase + 1..].iter().map(|r| r[0]))
                .collect();
            if !ChainNest::new(t_m, probe).fits(chain, bs) {
                break;
            }
            self.scan(
                chain,
                bs,
                t_m,
                phase_reps,
                phase + 1,
                tiles,
                best,
                evaluations,
            );
        }
        tiles[phase] = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_fusion::optimize_chain;
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn chain(m: u64, dims: &[u64]) -> FusedChain {
        let mms: Vec<MatMul> = dims
            .windows(2)
            .map(|w| MatMul::new(m, w[0], w[1]))
            .collect();
        FusedChain::try_new(&mms).unwrap()
    }

    /// The closed-form chain optimizer's dominance pruning is exact: the
    /// full scan over balanced tiles never finds a cheaper nest, at any
    /// depth or buffer regime.
    #[test]
    fn closed_form_matches_chain_oracle() {
        let chains = [
            chain(24, &[8, 24, 8, 16]),
            chain(12, &[4, 4, 10, 6]),
            chain(7, &[5, 9, 4]),
            chain(5, &[13, 3, 6, 2, 7]),
        ];
        for c in &chains {
            for bs in [64u64, 160, 400, 1 << 10, 1 << 14] {
                let closed = optimize_chain(&MODEL, c, bs);
                let scanned = ChainExhaustive::new(MODEL).optimize(c, bs);
                match (closed, scanned) {
                    (Some(cf), Some((oracle, evals))) => {
                        assert!(evals > 0);
                        assert_eq!(
                            cf.total_ma(),
                            oracle.total_ma(),
                            "{c} bs={bs}: closed {} vs oracle {}",
                            cf.nest(),
                            oracle.nest()
                        );
                        assert!(cf.footprint() <= bs);
                    }
                    (None, None) => {}
                    (cf, oracle) => {
                        panic!("{c} bs={bs}: closed={cf:?} oracle={oracle:?}")
                    }
                }
            }
        }
    }

    /// Capping subsamples the space but keeps the endpoints, so the
    /// capped searcher still finds a feasible (if not optimal) nest
    /// whenever the oracle does.
    #[test]
    fn capped_scan_stays_feasible() {
        let c = chain(48, &[16, 32, 12, 24]);
        let bs = 2 * 1024;
        let (full, full_evals) = ChainExhaustive::new(MODEL).optimize(&c, bs).unwrap();
        let (capped, capped_evals) = ChainExhaustive::with_cap(MODEL, 3).optimize(&c, bs).unwrap();
        assert!(capped_evals < full_evals);
        assert!(capped.footprint() <= bs);
        assert!(capped.total_ma() >= full.total_ma());
    }
}
