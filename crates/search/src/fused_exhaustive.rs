//! Exhaustive search over the fused-pair nest space.
//!
//! Validates the closed-form fused optimizer of `fusecu-fusion`: enumerate
//! shared-loop orders × balanced tile representatives for all four fused
//! dimensions and keep the best nest fitting the buffer. For transformer
//! shapes the 4-dimensional grid can be large, so a per-dimension cap
//! subsamples the representative lists (endpoints always retained); with
//! the cap disabled the search is a true oracle over the fused space.

use fusecu_dataflow::CostModel;
use fusecu_fusion::{FusedDataflow, FusedNest, FusedPair, FusedTiling};

use crate::fitness::{Fitness, FusedScorer};
use crate::space::{balanced_tiles, subsample};

/// Exhaustive fused-dataflow searcher.
#[derive(Debug, Clone, Copy)]
pub struct FusedExhaustive {
    model: CostModel,
    fitness: Fitness,
    max_reps: Option<usize>,
}

impl FusedExhaustive {
    /// A full-resolution oracle (no subsampling).
    pub fn new(model: CostModel) -> FusedExhaustive {
        FusedExhaustive {
            model,
            fitness: Fitness::Analytical,
            max_reps: None,
        }
    }

    /// A capped searcher scanning at most `max_reps` tile candidates per
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `max_reps < 2` (the endpoints are always needed).
    pub fn with_cap(model: CostModel, max_reps: usize) -> FusedExhaustive {
        assert!(max_reps >= 2, "cap must retain the endpoints");
        FusedExhaustive {
            model,
            fitness: Fitness::Analytical,
            max_reps: Some(max_reps),
        }
    }

    /// Selects the fitness backend (see [`crate::fitness::Fitness`]): the
    /// simulated backend ranks every fused nest by the traffic its replay
    /// on the fabric actually measures.
    pub fn with_fitness(mut self, fitness: Fitness) -> FusedExhaustive {
        self.fitness = fitness;
        self
    }

    fn tiles_for(&self, d: u64) -> Vec<u64> {
        let reps = balanced_tiles(d);
        match self.max_reps {
            Some(cap) => subsample(reps, cap),
            None => reps,
        }
    }

    /// Scans the fused space; returns the best nest and the number of
    /// evaluations, or `None` when nothing fits.
    pub fn optimize(&self, pair: FusedPair, bs: u64) -> Option<(FusedDataflow, u64)> {
        use fusecu_fusion::FusedDim::{K, L, M, N};
        let tiles = [
            self.tiles_for(pair.dim(M)),
            self.tiles_for(pair.dim(K)),
            self.tiles_for(pair.dim(L)),
            self.tiles_for(pair.dim(N)),
        ];
        let scorer = FusedScorer::new(self.fitness, self.model, pair);
        // One scoring session for the whole scan: any backend scratch is
        // checked out once, not once per candidate.
        let mut session = scorer.session();
        let mut best: Option<(u64, u64, FusedNest)> = None;
        let mut evaluations = 0u64;
        for outer_is_m in [true, false] {
            for &tm in &tiles[0] {
                for &tk in &tiles[1] {
                    for &tl in &tiles[2] {
                        // The footprint is nondecreasing in every tile size,
                        // so once the smallest T_N fails we can stop growing
                        // T_L, and similarly outward.
                        let probe = FusedNest::new(
                            outer_is_m,
                            FusedTiling::new(tm, tk, tl, tiles[3][0]),
                        );
                        if !probe.fits(&pair, bs) {
                            break;
                        }
                        for &tn in &tiles[3] {
                            let nest =
                                FusedNest::new(outer_is_m, FusedTiling::new(tm, tk, tl, tn));
                            if !nest.fits(&pair, bs) {
                                break;
                            }
                            evaluations += 1;
                            let key = (session.score(&nest), nest.footprint(&pair));
                            if best.is_none_or(|(c, f, _)| key < (c, f)) {
                                best = Some((key.0, key.1, nest));
                            }
                        }
                    }
                }
            }
        }
        best.map(|(_, _, nest)| (FusedDataflow::score(&self.model, pair, nest), evaluations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusecu_fusion::optimize_pair;
    use fusecu_ir::MatMul;

    const MODEL: CostModel = CostModel {
        partial_sums: fusecu_dataflow::PartialSumPolicy::PerVisit,
    };

    fn pair(m: u64, k: u64, l: u64, n: u64) -> FusedPair {
        FusedPair::try_new(MatMul::new(m, k, l), MatMul::new(m, l, n)).unwrap()
    }

    #[test]
    fn closed_forms_match_fused_oracle() {
        // The constant-size fused candidate family must reach the optimum
        // the full enumeration finds.
        let oracle = FusedExhaustive::new(MODEL);
        let pairs = [
            pair(64, 16, 48, 32),
            pair(96, 96, 96, 96),
            pair(128, 8, 64, 8),
            pair(40, 100, 20, 60),
        ];
        for p in pairs {
            for bs in [16u64, 200, 2_000, 20_000, 200_000] {
                let searched = oracle.optimize(p, bs).map(|(d, _)| d.total_ma());
                let principled = optimize_pair(&MODEL, p, bs).map(|d| d.total_ma());
                assert_eq!(
                    principled, searched,
                    "pair={p} bs={bs}: closed forms missed the fused optimum"
                );
            }
        }
    }

    #[test]
    fn capped_search_never_beats_oracle() {
        let p = pair(256, 64, 256, 64);
        let full = FusedExhaustive::new(MODEL);
        let capped = FusedExhaustive::with_cap(MODEL, 8);
        for bs in [1_000u64, 50_000] {
            let (f, _) = full.optimize(p, bs).unwrap();
            let (c, ce) = capped.optimize(p, bs).unwrap();
            assert!(c.total_ma() >= f.total_ma(), "bs={bs}");
            assert!(ce > 0);
        }
    }

    #[test]
    fn nothing_fits_below_three_elements() {
        assert!(FusedExhaustive::new(MODEL)
            .optimize(pair(8, 8, 8, 8), 2)
            .is_none());
    }

    #[test]
    fn simulated_fitness_finds_the_same_fused_optimum() {
        let oracle = FusedExhaustive::new(MODEL);
        let simulated = oracle.with_fitness(crate::fitness::Fitness::Simulated);
        let p = pair(16, 12, 20, 10);
        for bs in [16u64, 300, 4_000] {
            let a = oracle.optimize(p, bs);
            let s = simulated.optimize(p, bs);
            assert_eq!(s, a, "bs={bs}");
        }
    }
}
