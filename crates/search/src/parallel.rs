//! Deterministic parallel execution for sweep workloads.
//!
//! The figure pipeline is embarrassingly parallel — every `(shape, buffer
//! size, optimizer)` point is an independent pure computation — yet the
//! seed ran them strictly serially (the full Fig 9 timing section alone
//! took minutes). This module fans sweep points across OS threads with
//! `std::thread::scope` (no external dependencies) while keeping results
//! **bit-for-bit identical** to a serial run: workers claim contiguous
//! index ranges from an atomic counter, collect each range's results
//! locally, and the ranges are spliced back in index order at join time —
//! the output never depends on scheduling, no per-item locks exist, and
//! every computation is deterministic (the genetic searcher runs on a
//! fixed seed).
//!
//! [`SweepEngine`] is the high-level entry point used by the figure
//! binaries: a `(shapes × buffers)` sweep evaluating the principle,
//! exhaustive, and genetic optimizers per point through a shared
//! [`DataflowCache`], so repeated points — within a sweep or across
//! figures in one process — are computed once. [`par_map`] is the
//! underlying primitive for heavy items (the platform comparison grids of
//! Fig 10/11); [`par_map_batched`] is its population-scoring sibling —
//! per-worker state built once per fan-out, a min-items-per-worker floor
//! so tiny or cheap batches never pay a thread handoff — and
//! [`par_sum_indexed`] is the collect-nothing reduction the throughput
//! benchmarks measure with.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::MatMul;

use crate::cache::DataflowCache;
use crate::exhaustive::SearchResult;

/// How a sweep distributes its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One item at a time on the calling thread — the `--serial` escape
    /// hatch, and the reference semantics parallel runs must reproduce.
    Serial,
    /// One worker per available hardware thread.
    Auto,
    /// An explicit worker count (values of 0 or 1 degenerate to serial).
    Threads(usize),
}

impl Parallelism {
    /// Parses the conventional command-line override: `--serial` forces
    /// [`Parallelism::Serial`], `--threads N` pins the worker count, and
    /// anything else defaults to [`Parallelism::Auto`].
    pub fn from_args() -> Parallelism {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--serial") {
            return Parallelism::Serial;
        }
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return Parallelism::Threads(n);
            }
        }
        Parallelism::Auto
    }

    /// The worker count this policy resolves to on the current machine.
    ///
    /// `Auto` resolves `available_parallelism()` **once per process** (a
    /// `OnceLock`): the query is a syscall, and population scoring asks
    /// on every GA generation — tens of thousands of times per search.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => {
                static AUTO_WORKERS: OnceLock<usize> = OnceLock::new();
                *AUTO_WORKERS.get_or_init(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                })
            }
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// The block of indices one atomic claim hands a worker:
/// `len / (workers * 4)` rounded up, never below one. Four blocks per
/// worker keeps the tail balanced (a straggler holds at most a quarter of
/// its fair share) while cutting the claim traffic on very cheap items —
/// a 1M-item cheap-map fans out with dozens of claims instead of a
/// million.
fn claim_chunk(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * 4).max(1)
}

/// Batched population scoring refuses to fan out below this many items
/// per worker: a thread handoff costs tens of microseconds, so a batch
/// that cannot amortize it over at least a few scores runs faster on the
/// calling thread. A tiny population (fewer than `2 ×` this) therefore
/// never spawns threads at all.
const MIN_BATCH_PER_WORKER: usize = 8;

/// The worker count a batched fan-out actually uses: the requested count
/// clamped so every worker has at least [`MIN_BATCH_PER_WORKER`] items.
/// Below two workers the caller runs serially on its own thread.
fn batched_workers(len: usize, requested: usize) -> usize {
    requested.min(len / MIN_BATCH_PER_WORKER)
}

/// Stack size for spawned workers. Scoring closures are shallow (the
/// simulator keeps its arenas on the heap), so the platform default —
/// commonly 8 MiB — buys nothing; worse, a fleet of default-sized stacks
/// overflows the C runtime's thread-stack cache, so every fan-out maps
/// and faults fresh stacks, a cost (and, under memory pressure, a stall)
/// charged entirely to the parallel path. Modest stacks stay cached
/// across fan-outs.
const WORKER_STACK_BYTES: usize = 2 << 20;

/// The claim loop shared by every parallel primitive here: `workers`
/// scoped threads claim contiguous index ranges of `chunk` from one
/// atomic counter and run `work` on each range with a per-worker state
/// built once by `init`. Returns every `(range start, range result)` in
/// claim order per worker; a panic in any worker propagates (workers
/// are joined explicitly, the first panic payload is re-thrown, and the
/// remaining workers drain the counter normally — no deadlock).
fn claim_ranges<S, SegR, Init, Work>(
    workers: usize,
    len: usize,
    chunk: usize,
    init: Init,
    work: Work,
) -> Vec<(usize, SegR)>
where
    SegR: Send,
    Init: Fn() -> S + Sync,
    Work: Fn(&mut S, std::ops::Range<usize>) -> SegR + Sync,
{
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|slot| {
                std::thread::Builder::new()
                    .name(format!("fusecu-worker-{slot}"))
                    .stack_size(WORKER_STACK_BYTES)
                    .spawn_scoped(scope, || {
                        let mut state = init();
                        let mut segments: Vec<(usize, SegR)> = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= len {
                                break;
                            }
                            let range = start..(start + chunk).min(len);
                            segments.push((start, work(&mut state, range)));
                        }
                        segments
                    })
                    .expect("spawn scoring worker")
            })
            .collect();
        let mut all = Vec::with_capacity(len.div_ceil(chunk));
        for handle in handles {
            match handle.join() {
                Ok(segments) => all.extend(segments),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        all
    })
}

/// Splices range-tagged result segments back into item order and checks
/// they tile `len` exactly once — the claim scheme hands out disjoint
/// ranges by construction, and this is the join-time proof.
fn splice_segments<R>(mut segments: Vec<(usize, Vec<R>)>, len: usize) -> Vec<R> {
    segments.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(len);
    for (start, segment) in segments {
        assert_eq!(start, out.len(), "claimed ranges must tile the items exactly once");
        out.extend(segment);
    }
    assert_eq!(out.len(), len, "scope joined with items unfinished");
    out
}

/// Applies `f` to every item, fanning across `par.workers()` scoped
/// threads, and returns the results **in item order** regardless of how
/// the scheduler interleaved the workers.
///
/// Workers claim contiguous blocks of [`claim_chunk`] indices from one
/// atomic counter (not one item at a time) and collect each block's
/// results locally; blocks are spliced back in index order when the
/// scope joins, so the output is bit-identical to a serial run no matter
/// how blocks interleave — with **no per-item locks**: the only shared
/// write during the map is the claim counter's `fetch_add`.
///
/// `f` receives `(index, &item)` so callers can label work without
/// capturing mutable state. A panic in any worker propagates to the
/// caller when the scope joins.
///
/// This primitive fans out whenever there are at least two items and two
/// workers — right for *heavy* items (sweep points, platform grids).
/// Cheap-item population scoring should use [`par_map_batched`], which
/// adds a min-items-per-worker floor and per-worker state.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.workers().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = claim_chunk(items.len(), workers);
    let segments = claim_ranges(
        workers,
        items.len(),
        chunk,
        || (),
        |_, range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                out.push(f(i, &items[i]));
            }
            out
        },
    );
    splice_segments(segments, items.len())
}

/// [`par_map`] for population scoring: one atomic claim hands a worker a
/// whole contiguous sub-population, scored against a per-worker state
/// built once by `init` when the worker starts (a scratch-arena lease, a
/// scoring session) and reused for every item the worker ever claims —
/// the handoff amortizes over the full batch instead of costing per item.
///
/// Results come back in item order, bit-identical to a serial run (which
/// also builds `init()` exactly once, so per-worker state must not leak
/// into scores — it is reuse, not input). A fan-out needs at least
/// [`MIN_BATCH_PER_WORKER`] items per worker: tiny populations run on
/// the calling thread without spawning anything.
pub fn par_map_batched<T, R, S, Init, F>(par: Parallelism, items: &[T], init: Init, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = batched_workers(items.len(), par.workers());
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let chunk = claim_chunk(items.len(), workers);
    let segments = claim_ranges(
        workers,
        items.len(),
        chunk,
        &init,
        |state, range| {
            let mut out = Vec::with_capacity(range.len());
            for i in range {
                out.push(f(state, i, &items[i]));
            }
            out
        },
    );
    splice_segments(segments, items.len())
}

/// Wrapping sum of `f(state, index)` over `0..len`, fanned out with the
/// same batched claiming as [`par_map_batched`] but collecting nothing:
/// each worker folds its claims into one accumulator. Wrapping addition
/// is commutative, so the digest is identical to a serial fold no matter
/// how claims interleave. This is the throughput-measurement primitive —
/// millions of scores, one `u64` out, no result buffers distorting the
/// measurement.
pub fn par_sum_indexed<S, Init, F>(par: Parallelism, len: usize, init: Init, f: F) -> u64
where
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> u64 + Sync,
{
    let workers = batched_workers(len, par.workers());
    if workers <= 1 {
        let mut state = init();
        return (0..len).fold(0u64, |acc, i| acc.wrapping_add(f(&mut state, i)));
    }
    let chunk = claim_chunk(len, workers);
    let partials = claim_ranges(workers, len, chunk, &init, |state, range| {
        range.fold(0u64, |acc, i| acc.wrapping_add(f(state, i)))
    });
    partials
        .into_iter()
        .fold(0u64, |acc, (_, partial)| acc.wrapping_add(partial))
}

/// One fully evaluated sweep point: the three optimizers' answers for one
/// `(shape, buffer size)` pair.
///
/// `Eq` compares every field — including the searchers' evaluation counts
/// — so sequence equality between a serial and a parallel sweep is a
/// complete determinism check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The matmul swept.
    pub mm: MatMul,
    /// Buffer size in elements.
    pub buffer: u64,
    /// The one-shot principle optimizer's dataflow.
    pub principle: Dataflow,
    /// The exhaustive oracle's result.
    pub exhaustive: SearchResult,
    /// The genetic (DAT-style) searcher's result.
    pub genetic: SearchResult,
}

/// The three per-point optimizers a sweep fans out, as explicit work items
/// so a single slow searcher never serializes a whole point.
#[derive(Debug, Clone, Copy)]
enum Optimizer {
    Principle,
    Exhaustive,
    Genetic,
}

const OPTIMIZERS: [Optimizer; 3] = [Optimizer::Principle, Optimizer::Exhaustive, Optimizer::Genetic];

/// Per-item result of the fan-out phase; variants mirror [`Optimizer`].
enum OptimizerResult {
    Principle(Option<Dataflow>),
    Search(Option<SearchResult>),
}

/// The parallel `(shapes × buffers × optimizers)` sweep engine behind the
/// Fig 9 validation and its timing study.
pub struct SweepEngine {
    model: CostModel,
    parallelism: Parallelism,
    cache: Arc<DataflowCache>,
}

impl SweepEngine {
    /// An engine over `model` with automatic parallelism and the shared
    /// process-wide [`DataflowCache`].
    pub fn new(model: CostModel) -> SweepEngine {
        SweepEngine {
            model,
            parallelism: Parallelism::Auto,
            cache: DataflowCache::global_arc(),
        }
    }

    /// Overrides the work-distribution policy.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SweepEngine {
        self.parallelism = parallelism;
        self
    }

    /// Routes lookups through an explicit shared cache instead of the
    /// process-global one. Cold-cache measurements (the Fig 9 timing
    /// study, tests) hand each engine a fresh `Arc::new(...)`, which is
    /// dropped with the engine — no leak.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<DataflowCache>) -> SweepEngine {
        self.cache = cache;
        self
    }

    /// The cache this engine reads and fills.
    pub fn cache(&self) -> &DataflowCache {
        &self.cache
    }

    /// The engine's cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Evaluates every `(shape, buffer)` pair with all three optimizers,
    /// returning outcomes in `shapes`-major, `buffers`-minor order —
    /// identical for serial and parallel runs.
    ///
    /// # Panics
    ///
    /// Panics when a buffer size cannot hold any tile of a shape
    /// (`bs < 3`), matching the serial pipeline's behavior.
    pub fn sweep(&self, shapes: &[MatMul], buffers: &[u64]) -> Vec<SweepOutcome> {
        let mut items = Vec::with_capacity(shapes.len() * buffers.len() * OPTIMIZERS.len());
        for &mm in shapes {
            for &bs in buffers {
                for opt in OPTIMIZERS {
                    items.push((mm, bs, opt));
                }
            }
        }
        let results = par_map(self.parallelism, &items, |_, &(mm, bs, opt)| match opt {
            Optimizer::Principle => OptimizerResult::Principle(self.cache.principle(&self.model, mm, bs)),
            Optimizer::Exhaustive => OptimizerResult::Search(self.cache.exhaustive(&self.model, mm, bs)),
            Optimizer::Genetic => OptimizerResult::Search(self.cache.genetic(&self.model, mm, bs)),
        });
        items
            .chunks_exact(OPTIMIZERS.len())
            .zip(results.chunks_exact(OPTIMIZERS.len()))
            .map(|(point, answers)| {
                let (mm, bs, _) = point[0];
                let infeasible = || -> ! {
                    panic!("buffer of {bs} elements cannot hold any tile of {mm}")
                };
                let [OptimizerResult::Principle(p), OptimizerResult::Search(e), OptimizerResult::Search(g)] =
                    answers
                else {
                    unreachable!("fan-out emits the optimizers in a fixed order")
                };
                SweepOutcome {
                    mm,
                    buffer: bs,
                    principle: p.unwrap_or_else(|| infeasible()),
                    exhaustive: e.unwrap_or_else(|| infeasible()),
                    genetic: g.unwrap_or_else(|| infeasible()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = par_map(Parallelism::Serial, &items, |i, &x| (i as u64, x * x));
        let parallel = par_map(Parallelism::Threads(7), &items, |i, &x| (i as u64, x * x));
        assert_eq!(serial, parallel);
        assert_eq!(parallel[5], (5, 25));
    }

    #[test]
    fn claim_chunks_cover_without_starving() {
        // Chunks divide the work into at least one block per worker (no
        // worker-count collapse) and at most ~4 blocks per worker.
        for (len, workers) in [(1usize, 2usize), (7, 8), (97, 7), (10_000, 8), (33, 4)] {
            let chunk = claim_chunk(len, workers);
            assert!(chunk >= 1, "len={len} workers={workers}");
            let blocks = len.div_ceil(chunk);
            assert!(blocks <= workers * 4, "len={len} workers={workers} blocks={blocks}");
            // Every index is covered exactly once by the block walk.
            let mut seen = vec![false; len];
            let mut start = 0;
            while start < len {
                for slot in &mut seen[start..(start + chunk).min(len)] {
                    assert!(!*slot);
                    *slot = true;
                }
                start += chunk;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(Parallelism::Auto, &empty, |_, &x: &u64| x).is_empty());
        assert_eq!(par_map(Parallelism::Threads(8), &[3u64], |_, &x| x + 1), vec![4]);
    }

    #[test]
    fn par_map_batched_matches_serial_and_plain_map() {
        let items: Vec<u64> = (0..1_000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        for par in [Parallelism::Serial, Parallelism::Threads(3), Parallelism::Threads(16)] {
            let batched = par_map_batched(par, &items, || 0u64, |calls, _, &x| {
                *calls += 1;
                x.wrapping_mul(x) ^ 7
            });
            assert_eq!(batched, serial, "par={par:?}");
        }
    }

    #[test]
    fn batched_state_builds_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..10_000).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_batched(
            Parallelism::Threads(4),
            &items,
            || inits.fetch_add(1, Ordering::Relaxed),
            |_, _, &x| x,
        );
        assert_eq!(out, items);
        // One state per worker (not per item, not per claim); the serial
        // path builds exactly one.
        let spawned = batched_workers(items.len(), 4);
        assert_eq!(inits.load(Ordering::Relaxed), spawned);
        assert_eq!(spawned, 4);
    }

    #[test]
    fn tiny_populations_never_spawn_threads() {
        // The min-items-per-worker floor: a 1-item (or any sub-2×floor)
        // batch runs on the calling thread, no matter how many workers
        // the caller asked for.
        let caller = std::thread::current().id();
        for len in [1usize, 2, 7, 2 * MIN_BATCH_PER_WORKER - 1] {
            let items: Vec<u64> = (0..len as u64).collect();
            let out = par_map_batched(Parallelism::Threads(8), &items, || (), |_, _, &x| {
                assert_eq!(
                    std::thread::current().id(),
                    caller,
                    "a {len}-item population must not fan out"
                );
                x + 1
            });
            assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
        }
        // And the floor scales: at exactly 2×floor, two workers are allowed.
        assert_eq!(batched_workers(2 * MIN_BATCH_PER_WORKER, 8), 2);
        assert_eq!(batched_workers(0, 8), 0);
        assert_eq!(batched_workers(1_000_000, 8), 8);
    }

    #[test]
    fn par_sum_indexed_matches_serial_fold() {
        let serial = (0..100_000u64).fold(0u64, |a, i| a.wrapping_add(i.wrapping_mul(i)));
        for par in [Parallelism::Serial, Parallelism::Threads(2), Parallelism::Threads(8)] {
            let sum = par_sum_indexed(par, 100_000, || (), |_, i| {
                (i as u64).wrapping_mul(i as u64)
            });
            assert_eq!(sum, serial, "par={par:?}");
        }
        assert_eq!(par_sum_indexed(Parallelism::Threads(8), 0, || (), |_, _| 1), 0);
    }

    #[test]
    fn auto_workers_resolve_once_and_stay_stable() {
        let first = Parallelism::Auto.workers();
        for _ in 0..1_000 {
            assert_eq!(Parallelism::Auto.workers(), first);
        }
        assert!(first >= 1);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let items: Vec<u64> = (0..500).collect();
        let result = std::panic::catch_unwind(|| {
            par_map(Parallelism::Threads(4), &items, |i, &x| {
                assert!(i != 250, "intentional test panic");
                x
            })
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn workers_resolve_sensibly() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn sweep_matches_direct_optimizer_calls() {
        let cache = Arc::new(DataflowCache::new());
        let model = CostModel::paper();
        let engine = SweepEngine::new(model)
            .with_parallelism(Parallelism::Threads(4))
            .with_cache(cache);
        let shapes = [MatMul::new(64, 48, 80), MatMul::new(17, 90, 33)];
        let buffers = [64, 1_024, 16_384];
        let outcomes = engine.sweep(&shapes, &buffers);
        assert_eq!(outcomes.len(), shapes.len() * buffers.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.mm, shapes[i / buffers.len()]);
            assert_eq!(o.buffer, buffers[i % buffers.len()]);
            let direct = crate::ExhaustiveSearch::new(model).optimize(o.mm, o.buffer);
            assert_eq!(o.exhaustive, direct);
            assert_eq!(o.principle.total_ma(), direct.best().total_ma());
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn sweep_panics_on_infeasible_buffer() {
        let cache = Arc::new(DataflowCache::new());
        let engine = SweepEngine::new(CostModel::paper()).with_cache(cache);
        let _ = engine.sweep(&[MatMul::new(4, 4, 4)], &[2]);
    }
}
