//! Deterministic parallel execution for sweep workloads.
//!
//! The figure pipeline is embarrassingly parallel — every `(shape, buffer
//! size, optimizer)` point is an independent pure computation — yet the
//! seed ran them strictly serially (the full Fig 9 timing section alone
//! took minutes). This module fans sweep points across OS threads with
//! `std::thread::scope` (no external dependencies) while keeping results
//! **bit-for-bit identical** to a serial run: work items are claimed from
//! an atomic counter but written back into index-addressed slots, so the
//! output order never depends on scheduling, and every computation is
//! deterministic (the genetic searcher runs on a fixed seed).
//!
//! [`SweepEngine`] is the high-level entry point used by the figure
//! binaries: a `(shapes × buffers)` sweep evaluating the principle,
//! exhaustive, and genetic optimizers per point through a shared
//! [`DataflowCache`], so repeated points — within a sweep or across
//! figures in one process — are computed once. [`par_map`] is the
//! underlying primitive, exported for other fan-out sites (the platform
//! comparison grids of Fig 10/11).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use fusecu_dataflow::{CostModel, Dataflow};
use fusecu_ir::MatMul;

use crate::cache::DataflowCache;
use crate::exhaustive::SearchResult;

/// How a sweep distributes its work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// One item at a time on the calling thread — the `--serial` escape
    /// hatch, and the reference semantics parallel runs must reproduce.
    Serial,
    /// One worker per available hardware thread.
    Auto,
    /// An explicit worker count (values of 0 or 1 degenerate to serial).
    Threads(usize),
}

impl Parallelism {
    /// Parses the conventional command-line override: `--serial` forces
    /// [`Parallelism::Serial`], `--threads N` pins the worker count, and
    /// anything else defaults to [`Parallelism::Auto`].
    pub fn from_args() -> Parallelism {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--serial") {
            return Parallelism::Serial;
        }
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                return Parallelism::Threads(n);
            }
        }
        Parallelism::Auto
    }

    /// The worker count this policy resolves to on the current machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        }
    }
}

/// The block of indices one atomic claim hands a worker:
/// `len / (workers * 4)` rounded up, never below one. Four blocks per
/// worker keeps the tail balanced (a straggler holds at most a quarter of
/// its fair share) while cutting the claim traffic on very cheap items —
/// a 1M-item cheap-map fans out with dozens of claims instead of a
/// million.
fn claim_chunk(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * 4).max(1)
}

/// Applies `f` to every item, fanning across `par.workers()` scoped
/// threads, and returns the results **in item order** regardless of how
/// the scheduler interleaved the workers.
///
/// Workers claim contiguous blocks of [`claim_chunk`] indices from one
/// atomic counter (not one item at a time), but every result still lands
/// in its own index-addressed slot, so the output is bit-identical to a
/// serial run no matter how blocks interleave.
///
/// `f` receives `(index, &item)` so callers can label work without
/// capturing mutable state. A panic in any worker propagates to the
/// caller when the scope joins.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.workers().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = claim_chunk(items.len(), workers);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                for i in start..(start + chunk).min(items.len()) {
                    let result = f(i, &items[i]);
                    let prev = slots[i].lock().expect("result slot poisoned").replace(result);
                    assert!(prev.is_none(), "work item {i} claimed twice");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined with item unfinished")
        })
        .collect()
}

/// One fully evaluated sweep point: the three optimizers' answers for one
/// `(shape, buffer size)` pair.
///
/// `Eq` compares every field — including the searchers' evaluation counts
/// — so sequence equality between a serial and a parallel sweep is a
/// complete determinism check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The matmul swept.
    pub mm: MatMul,
    /// Buffer size in elements.
    pub buffer: u64,
    /// The one-shot principle optimizer's dataflow.
    pub principle: Dataflow,
    /// The exhaustive oracle's result.
    pub exhaustive: SearchResult,
    /// The genetic (DAT-style) searcher's result.
    pub genetic: SearchResult,
}

/// The three per-point optimizers a sweep fans out, as explicit work items
/// so a single slow searcher never serializes a whole point.
#[derive(Debug, Clone, Copy)]
enum Optimizer {
    Principle,
    Exhaustive,
    Genetic,
}

const OPTIMIZERS: [Optimizer; 3] = [Optimizer::Principle, Optimizer::Exhaustive, Optimizer::Genetic];

/// Per-item result of the fan-out phase; variants mirror [`Optimizer`].
enum OptimizerResult {
    Principle(Option<Dataflow>),
    Search(Option<SearchResult>),
}

/// The parallel `(shapes × buffers × optimizers)` sweep engine behind the
/// Fig 9 validation and its timing study.
pub struct SweepEngine {
    model: CostModel,
    parallelism: Parallelism,
    cache: Arc<DataflowCache>,
}

impl SweepEngine {
    /// An engine over `model` with automatic parallelism and the shared
    /// process-wide [`DataflowCache`].
    pub fn new(model: CostModel) -> SweepEngine {
        SweepEngine {
            model,
            parallelism: Parallelism::Auto,
            cache: DataflowCache::global_arc(),
        }
    }

    /// Overrides the work-distribution policy.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SweepEngine {
        self.parallelism = parallelism;
        self
    }

    /// Routes lookups through an explicit shared cache instead of the
    /// process-global one. Cold-cache measurements (the Fig 9 timing
    /// study, tests) hand each engine a fresh `Arc::new(...)`, which is
    /// dropped with the engine — no leak.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<DataflowCache>) -> SweepEngine {
        self.cache = cache;
        self
    }

    /// The cache this engine reads and fills.
    pub fn cache(&self) -> &DataflowCache {
        &self.cache
    }

    /// The engine's cost model.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Evaluates every `(shape, buffer)` pair with all three optimizers,
    /// returning outcomes in `shapes`-major, `buffers`-minor order —
    /// identical for serial and parallel runs.
    ///
    /// # Panics
    ///
    /// Panics when a buffer size cannot hold any tile of a shape
    /// (`bs < 3`), matching the serial pipeline's behavior.
    pub fn sweep(&self, shapes: &[MatMul], buffers: &[u64]) -> Vec<SweepOutcome> {
        let mut items = Vec::with_capacity(shapes.len() * buffers.len() * OPTIMIZERS.len());
        for &mm in shapes {
            for &bs in buffers {
                for opt in OPTIMIZERS {
                    items.push((mm, bs, opt));
                }
            }
        }
        let results = par_map(self.parallelism, &items, |_, &(mm, bs, opt)| match opt {
            Optimizer::Principle => OptimizerResult::Principle(self.cache.principle(&self.model, mm, bs)),
            Optimizer::Exhaustive => OptimizerResult::Search(self.cache.exhaustive(&self.model, mm, bs)),
            Optimizer::Genetic => OptimizerResult::Search(self.cache.genetic(&self.model, mm, bs)),
        });
        items
            .chunks_exact(OPTIMIZERS.len())
            .zip(results.chunks_exact(OPTIMIZERS.len()))
            .map(|(point, answers)| {
                let (mm, bs, _) = point[0];
                let infeasible = || -> ! {
                    panic!("buffer of {bs} elements cannot hold any tile of {mm}")
                };
                let [OptimizerResult::Principle(p), OptimizerResult::Search(e), OptimizerResult::Search(g)] =
                    answers
                else {
                    unreachable!("fan-out emits the optimizers in a fixed order")
                };
                SweepOutcome {
                    mm,
                    buffer: bs,
                    principle: p.unwrap_or_else(|| infeasible()),
                    exhaustive: e.unwrap_or_else(|| infeasible()),
                    genetic: g.unwrap_or_else(|| infeasible()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = par_map(Parallelism::Serial, &items, |i, &x| (i as u64, x * x));
        let parallel = par_map(Parallelism::Threads(7), &items, |i, &x| (i as u64, x * x));
        assert_eq!(serial, parallel);
        assert_eq!(parallel[5], (5, 25));
    }

    #[test]
    fn claim_chunks_cover_without_starving() {
        // Chunks divide the work into at least one block per worker (no
        // worker-count collapse) and at most ~4 blocks per worker.
        for (len, workers) in [(1usize, 2usize), (7, 8), (97, 7), (10_000, 8), (33, 4)] {
            let chunk = claim_chunk(len, workers);
            assert!(chunk >= 1, "len={len} workers={workers}");
            let blocks = len.div_ceil(chunk);
            assert!(blocks <= workers * 4, "len={len} workers={workers} blocks={blocks}");
            // Every index is covered exactly once by the block walk.
            let mut seen = vec![false; len];
            let mut start = 0;
            while start < len {
                for slot in &mut seen[start..(start + chunk).min(len)] {
                    assert!(!*slot);
                    *slot = true;
                }
                start += chunk;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u64> = vec![];
        assert!(par_map(Parallelism::Auto, &empty, |_, &x: &u64| x).is_empty());
        assert_eq!(par_map(Parallelism::Threads(8), &[3u64], |_, &x| x + 1), vec![4]);
    }

    #[test]
    fn workers_resolve_sensibly() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn sweep_matches_direct_optimizer_calls() {
        let cache = Arc::new(DataflowCache::new());
        let model = CostModel::paper();
        let engine = SweepEngine::new(model)
            .with_parallelism(Parallelism::Threads(4))
            .with_cache(cache);
        let shapes = [MatMul::new(64, 48, 80), MatMul::new(17, 90, 33)];
        let buffers = [64, 1_024, 16_384];
        let outcomes = engine.sweep(&shapes, &buffers);
        assert_eq!(outcomes.len(), shapes.len() * buffers.len());
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.mm, shapes[i / buffers.len()]);
            assert_eq!(o.buffer, buffers[i % buffers.len()]);
            let direct = crate::ExhaustiveSearch::new(model).optimize(o.mm, o.buffer);
            assert_eq!(o.exhaustive, direct);
            assert_eq!(o.principle.total_ma(), direct.best().total_ma());
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn sweep_panics_on_infeasible_buffer() {
        let cache = Arc::new(DataflowCache::new());
        let engine = SweepEngine::new(CostModel::paper()).with_cache(cache);
        let _ = engine.sweep(&[MatMul::new(4, 4, 4)], &[2]);
    }
}
