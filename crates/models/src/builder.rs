//! Building operator graphs from transformer hyper-parameters.

use fusecu_ir::{MatMul, OpGraph};

use crate::config::TransformerConfig;

impl TransformerConfig {
    /// Builds the operator graph of one representative transformer layer.
    ///
    /// Structure (counts in parentheses, `B` = batch, `h` = heads):
    ///
    /// ```text
    /// q_proj, k_proj, v_proj     [B·S, H] x [H, H]          (x1 each)
    /// qk^T                       [S, d_h] x [d_h, S]        (xB·h)
    ///   └─ softmax               [S, S]                     (xB·h)
    ///        └─ pv               [S, S] x [S, d_h]          (xB·h)
    /// out_proj                   [B·S, H] x [H, H]          (x1)
    /// ffn_up                     [B·S, H] x [F, …]          (x1)
    ///   └─ activation            [B·S, F]                   (x1)
    ///        └─ ffn_down         [B·S, F] x [F, H]          (x1)
    /// ```
    ///
    /// `qk^T → softmax → pv` and `ffn_up → activation → ffn_down` are the
    /// two fusable chains; projections are separated from them by head
    /// split/merge reshapes, which spatial accelerators realize as layout
    /// changes through memory.
    pub fn build_graph(&self) -> OpGraph {
        let mut g = OpGraph::new();
        let s = self.seq_len;
        let h = self.hidden;
        let f = self.ffn_hidden;
        let dh = self.head_dim();
        let tokens = self.tokens();
        let per_head = self.batch * self.heads;

        for name in ["q_proj", "k_proj", "v_proj"] {
            g.add_matmul(name, MatMul::new(tokens, h, h), 1);
        }

        let qk = g.add_matmul("qk^T", MatMul::new(s, dh, s), per_head);
        let sm = g.add_softmax("softmax", s, s, per_head);
        let pv = g.add_matmul("pv", MatMul::new(s, s, dh), per_head);
        g.connect(qk, sm);
        g.connect(sm, pv);

        g.add_matmul("out_proj", MatMul::new(tokens, h, h), 1);

        let up = g.add_matmul("ffn_up", MatMul::new(tokens, h, f), 1);
        let act = g.add_elementwise("activation", tokens * f, 1);
        let down = g.add_matmul("ffn_down", MatMul::new(tokens, f, h), 1);
        g.connect(up, act);
        g.connect(act, down);

        g
    }

    /// Builds the operator graph of one layer in the *decode* (incremental
    /// autoregressive generation) phase: each step processes one query
    /// token per sequence against a KV cache of `context_len` tokens.
    ///
    /// Every matmul collapses to a skinny shape (`M = batch` for
    /// projections, `M = 1` per head for attention), the regime where
    /// flexible stationaries and the wide/narrow fabric reshapes matter
    /// most — a natural extension of the paper's prefill-only evaluation.
    ///
    /// # Panics
    ///
    /// Panics when `context_len` is zero.
    pub fn build_decode_graph(&self, context_len: u64) -> OpGraph {
        assert!(context_len > 0, "decode needs a non-empty context");
        let mut g = OpGraph::new();
        let h = self.hidden;
        let f = self.ffn_hidden;
        let dh = self.head_dim();
        let per_head = self.batch * self.heads;

        for name in ["q_proj", "k_proj", "v_proj"] {
            g.add_matmul(name, MatMul::new(self.batch, h, h), 1);
        }
        let qk = g.add_matmul("qk^T", MatMul::new(1, dh, context_len), per_head);
        let sm = g.add_softmax("softmax", 1, context_len, per_head);
        let pv = g.add_matmul("pv", MatMul::new(1, context_len, dh), per_head);
        g.connect(qk, sm);
        g.connect(sm, pv);
        g.add_matmul("out_proj", MatMul::new(self.batch, h, h), 1);
        let up = g.add_matmul("ffn_up", MatMul::new(self.batch, h, f), 1);
        let act = g.add_elementwise("activation", self.batch * f, 1);
        let down = g.add_matmul("ffn_down", MatMul::new(self.batch, f, h), 1);
        g.connect(up, act);
        g.connect(act, down);
        g
    }

    /// Builds one *decoder* layer of an encoder–decoder model (Blenderbot
    /// and XLM are seq2seq architectures): self-attention over the target
    /// sequence, **cross-attention** whose keys/values come from an
    /// encoder sequence of `src_len` tokens, and the FFN.
    ///
    /// Cross-attention contributes a fusable chain with *asymmetric*
    /// dimensions (`S × d_h × src_len` then `S × src_len × d_h`), the shape
    /// family the square-tile-only fabrics handle worst.
    ///
    /// # Panics
    ///
    /// Panics when `src_len` is zero.
    pub fn build_cross_attention_graph(&self, src_len: u64) -> OpGraph {
        assert!(src_len > 0, "encoder sequence must be non-empty");
        let mut g = OpGraph::new();
        let s = self.seq_len;
        let h = self.hidden;
        let f = self.ffn_hidden;
        let dh = self.head_dim();
        let tokens = self.tokens();
        let per_head = self.batch * self.heads;

        // Self-attention block.
        for name in ["q_proj", "k_proj", "v_proj"] {
            g.add_matmul(name, MatMul::new(tokens, h, h), 1);
        }
        let qk = g.add_matmul("self_qk^T", MatMul::new(s, dh, s), per_head);
        let sm = g.add_softmax("self_softmax", s, s, per_head);
        let pv = g.add_matmul("self_pv", MatMul::new(s, s, dh), per_head);
        g.connect(qk, sm);
        g.connect(sm, pv);
        g.add_matmul("self_out_proj", MatMul::new(tokens, h, h), 1);

        // Cross-attention block: queries from the decoder, keys/values from
        // the encoder memory (projected once per pass).
        g.add_matmul("cross_q_proj", MatMul::new(tokens, h, h), 1);
        g.add_matmul("cross_k_proj", MatMul::new(self.batch * src_len, h, h), 1);
        g.add_matmul("cross_v_proj", MatMul::new(self.batch * src_len, h, h), 1);
        let xqk = g.add_matmul("cross_qk^T", MatMul::new(s, dh, src_len), per_head);
        let xsm = g.add_softmax("cross_softmax", s, src_len, per_head);
        let xpv = g.add_matmul("cross_pv", MatMul::new(s, src_len, dh), per_head);
        g.connect(xqk, xsm);
        g.connect(xsm, xpv);
        g.add_matmul("cross_out_proj", MatMul::new(tokens, h, h), 1);

        // FFN.
        let up = g.add_matmul("ffn_up", MatMul::new(tokens, h, f), 1);
        let act = g.add_elementwise("activation", tokens * f, 1);
        let down = g.add_matmul("ffn_down", MatMul::new(tokens, f, h), 1);
        g.connect(up, act);
        g.connect(act, down);
        g
    }

    /// Builds the *branchy* per-head view of one transformer layer: the
    /// same computation as [`TransformerConfig::build_graph`], but with the
    /// Q/K/V fan-out, the per-head projection→attention data dependencies,
    /// and the post-attention residual add expressed as graph edges instead
    /// of being cut at reshape boundaries.
    ///
    /// ```text
    /// input_norm [B·S, H]                                  (x1, fan-out 3)
    /// ├─ q_proj  [S, H] x [H, d_h]   (xB·h) ──► qk^T  [S, d_h] x [d_h, S]
    /// ├─ k_proj  [S, H] x [H, d_h]   (xB·h)        └─ softmax ─► pv
    /// └─ v_proj  [S, H] x [H, d_h]   (xB·h)   pv [S, S] x [S, d_h]  (xB·h)
    /// pv ──► out_proj [S, d_h] x [d_h, H]    (xB·h)
    /// out_proj ──► residual_add [B·S, H] ──► ffn_up ─► act ─► ffn_down
    /// ```
    ///
    /// Projections run per head (`[S, H] × [H, d_h]`, `B·h` instances), a
    /// MAC-preserving reinterpretation of the `[B·S, H] × [H, H]` whole
    /// matrices that keeps the producer→consumer shapes compatible, so the
    /// fusable-link DAG contains a four-matmul Q path
    /// (`q_proj → qk^T → pv → out_proj`). K/V projections stay leaves —
    /// their outputs are the *right* operands of `qk^T`/`pv`, which FuseCU
    /// streams from memory — and the residual add blocks the
    /// `out_proj → ffn_up` link by instance-count mismatch (`B·h` vs 1),
    /// exercising every link gate of the DAG planner on one graph.
    pub fn build_branchy_graph(&self) -> OpGraph {
        let mut g = OpGraph::new();
        let s = self.seq_len;
        let h = self.hidden;
        let f = self.ffn_hidden;
        let dh = self.head_dim();
        let tokens = self.tokens();
        let per_head = self.batch * self.heads;

        let norm = g.add_elementwise("input_norm", tokens * h, 1);
        let mut projs = [norm; 3];
        for (slot, name) in projs.iter_mut().zip(["q_proj", "k_proj", "v_proj"]) {
            *slot = g.add_matmul(name, MatMul::new(s, h, dh), per_head);
            g.connect(norm, *slot);
        }

        let qk = g.add_matmul("qk^T", MatMul::new(s, dh, s), per_head);
        let sm = g.add_softmax("softmax", s, s, per_head);
        let pv = g.add_matmul("pv", MatMul::new(s, s, dh), per_head);
        let out = g.add_matmul("out_proj", MatMul::new(s, dh, h), per_head);
        g.connect(projs[0], qk);
        g.connect(qk, sm);
        g.connect(sm, pv);
        g.connect(pv, out);

        let residual = g.add_elementwise("residual_add", tokens * h, 1);
        g.connect(out, residual);

        let up = g.add_matmul("ffn_up", MatMul::new(tokens, h, f), 1);
        let act = g.add_elementwise("activation", tokens * f, 1);
        let down = g.add_matmul("ffn_down", MatMul::new(tokens, f, h), 1);
        g.connect(residual, up);
        g.connect(up, act);
        g.connect(act, down);

        g
    }

    /// Total MACs of one layer across all instances.
    pub fn layer_macs(&self) -> u64 {
        self.build_graph().total_macs()
    }

    /// Total elements of all external tensors touched at least once per
    /// layer — the infinite-buffer traffic floor used to normalize memory
    /// access across models.
    pub fn layer_ideal_ma(&self) -> u64 {
        let g = self.build_graph();
        g.mm_chains()
            .iter()
            .map(|(_, chain, count)| chain.fused_ideal_ma() * count)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn bert_layer_structure() {
        let g = zoo::bert().build_graph();
        // 6 projection/FFN matmuls + 2 attention matmuls + softmax + act.
        assert_eq!(g.node_count(), 10);
        let chains = g.mm_chains();
        // qk->pv fused chain, ffn chain, and 4 solo projections.
        assert_eq!(chains.len(), 6);
        let fused: Vec<usize> = chains
            .iter()
            .map(|(ids, ..)| ids.len())
            .filter(|l| *l > 1)
            .collect();
        assert_eq!(fused, vec![2, 2]);
    }

    #[test]
    fn attention_chain_has_per_head_count() {
        let c = zoo::deberta_v2();
        let g = c.build_graph();
        let (_, chain, count) = g
            .mm_chains()
            .into_iter()
            .find(|(_, ch, _)| ch.len() == 2 && ch.mm(0).k() == c.head_dim())
            .expect("attention chain present");
        assert_eq!(count, 16 * 24);
        assert_eq!(chain.mm(0).m(), 1024);
        assert_eq!(chain.mm(0).l(), 1024);
        assert_eq!(chain.mm(1).l(), c.head_dim());
    }

    #[test]
    fn macs_match_hand_count() {
        let c = zoo::blenderbot(); // heads 16, seq 256, hidden 1024, B 16
        let s = 256u64;
        let h = 1024u64;
        let f = 4 * h;
        let dh = 64u64;
        let tokens = 16 * s;
        let per_head = 16 * 16;
        let expected = 4 * tokens * h * h            // q,k,v,out projections
            + per_head * (s * dh * s + s * s * dh)   // qk^T + pv
            + tokens * h * f + tokens * f * h;       // ffn
        assert_eq!(c.layer_macs(), expected);
    }

    #[test]
    fn llama2_uses_published_ffn_width() {
        let g = zoo::llama2().build_graph();
        let ffn = g
            .matmuls()
            .find(|(_, mm, _)| mm.l() == 11_008)
            .expect("ffn_up present");
        assert_eq!(ffn.1.k(), 4096);
    }

    #[test]
    fn seq_sweep_scales_attention_quadratically() {
        let short = zoo::llama2_with_seq(256);
        let long = zoo::llama2_with_seq(512);
        let attn = |c: &TransformerConfig| {
            let g = c.build_graph();
            g.mm_chains()
                .into_iter()
                .find(|(_, ch, _)| ch.len() == 2 && ch.mm(0).k() == c.head_dim())
                .map(|(_, ch, count)| ch.macs() * count)
                .unwrap()
        };
        // Attention MACs grow ~4x when seq doubles (S² x d_h per head).
        assert_eq!(attn(&long), 4 * attn(&short));
    }

    #[test]
    fn cross_attention_graph_has_three_fusable_chains() {
        let c = zoo::blenderbot();
        let g = c.build_cross_attention_graph(512);
        // 3 chains: self-attention, cross-attention, FFN.
        let chains = g.mm_chains();
        let fused: Vec<_> = chains.iter().filter(|(ids, ..)| ids.len() == 2).collect();
        assert_eq!(fused.len(), 3);
        // The cross-attention chain is asymmetric: S x dh x src then
        // S x src x dh.
        let cross = fused
            .iter()
            .find(|(_, ch, _)| ch.mm(0).l() == 512)
            .expect("cross-attention chain");
        assert_eq!(cross.1.mm(0).m(), c.seq_len);
        assert_eq!(cross.1.mm(1).k(), 512);
        assert_eq!(cross.1.mm(1).l(), c.head_dim());
        // Encoder memory projections are sized by src_len.
        assert!(g
            .matmuls()
            .any(|(_, mm, _)| mm.m() == c.batch * 512 && mm.k() == c.hidden));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn cross_attention_rejects_empty_source() {
        let _ = zoo::bert().build_cross_attention_graph(0);
    }

    #[test]
    fn decode_graph_has_skinny_attention() {
        let c = zoo::llama2();
        let g = c.build_decode_graph(4096);
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 6);
        let (_, attn, count) = chains
            .iter()
            .find(|(_, ch, _)| ch.len() == 2 && ch.mm(0).m() == 1)
            .expect("decode attention chain");
        assert_eq!(*count, c.batch * c.heads);
        assert_eq!(attn.mm(0).l(), 4096); // scores over the KV cache
        assert_eq!(attn.mm(1).k(), 4096);
        // Decode is vastly cheaper per step than prefill per layer.
        assert!(g.total_macs() < c.build_graph().total_macs() / 100);
    }

    #[test]
    #[should_panic(expected = "non-empty context")]
    fn decode_rejects_empty_context() {
        let _ = zoo::bert().build_decode_graph(0);
    }

    #[test]
    fn branchy_layer_structure() {
        let g = zoo::bert().build_branchy_graph();
        // norm + 3 projections + qk + softmax + pv + out + residual + ffn x3.
        assert_eq!(g.node_count(), 12);
        let dag = g.mm_dag();
        assert_eq!(dag.mm_count(), 8);
        // q_proj→qk^T, qk^T→pv, pv→out_proj, ffn_up→ffn_down. K/V stay
        // leaves (right operands), and the residual add blocks
        // out_proj→ffn_up by instance-count mismatch.
        assert_eq!(dag.link_count(), 4);
        assert!(!dag.has_fan_in());
        let comps = dag.components();
        // The Q path {q_proj, qk^T, pv, out_proj}, the FFN pair, and the
        // two projection leaves.
        assert_eq!(comps.len(), 4);
        assert_eq!(comps.iter().map(Vec::len).max(), Some(4));
    }

    #[test]
    fn branchy_graph_preserves_layer_macs() {
        // The per-head projection split is a pure reinterpretation of the
        // whole-matrix projections: identical work, more visible structure.
        for c in zoo::all() {
            assert_eq!(
                c.build_branchy_graph().total_macs(),
                c.layer_macs(),
                "{}",
                c.name
            );
        }
    }

    /// The adjacency-indexed accessors must agree with a naive scan of the
    /// edge list (the O(V·E) implementation they replaced) on every graph
    /// the zoo can produce.
    #[test]
    fn adjacency_indexes_match_edge_scans_across_the_zoo() {
        use fusecu_ir::NodeId;
        let mut graphs: Vec<OpGraph> = Vec::new();
        for c in zoo::all() {
            graphs.push(c.build_graph());
            graphs.push(c.build_branchy_graph());
            graphs.push(c.build_cross_attention_graph(512));
            graphs.push(c.build_decode_graph(1024));
        }
        graphs.push(zoo::fan_in_regression_graph());
        graphs.push(zoo::fan_in_regression_graph_mirrored());
        for g in &graphs {
            let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
            for (id, _) in g.iter() {
                let succ: Vec<NodeId> = g.successors(id).collect();
                let scan: Vec<NodeId> = edges
                    .iter()
                    .filter(|(s, _)| *s == id)
                    .map(|(_, d)| *d)
                    .collect();
                assert_eq!(succ, scan);
                assert_eq!(g.fan_out(id), scan.len());
                let pred: Vec<NodeId> = g.predecessors(id).collect();
                let scan: Vec<NodeId> = edges
                    .iter()
                    .filter(|(_, d)| *d == id)
                    .map(|(s, _)| *s)
                    .collect();
                assert_eq!(pred, scan);
                assert_eq!(g.fan_in(id), scan.len());
            }
            // And the chains built on those accessors cover every matmul
            // exactly once.
            let mut covered: Vec<NodeId> = g
                .mm_chains()
                .into_iter()
                .flat_map(|(ids, ..)| ids)
                .collect();
            covered.sort();
            let mut mms: Vec<NodeId> = g.matmuls().map(|(id, ..)| id).collect();
            mms.sort();
            assert_eq!(covered, mms);
        }
    }

    #[test]
    fn ideal_ma_positive_and_below_macs() {
        for c in zoo::all() {
            let ma = c.layer_ideal_ma();
            assert!(ma > 0, "{}", c.name);
            assert!(ma < c.layer_macs(), "{}", c.name);
        }
    }
}
