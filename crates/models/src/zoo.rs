//! The seven Table II models.
//!
//! | model | heads | seq. length | hidden |
//! |---|---|---|---|
//! | BERT       | 12 | 1024 | 768  |
//! | GPT-2      | 12 | 2048 | 768  |
//! | Blenderbot | 16 | 256  | 1024 |
//! | XLM        | 16 | 1024 | 2048 |
//! | DeBERTa-v2 | 24 | 1024 | 1536 |
//! | LLaMA2     | 32 | 4096 (256–16 K) | 4096 |
//! | ALBERT     | 64 | 1024 | 4096 |
//!
//! Batch size is 16 throughout, as in §V-A.

use crate::config::TransformerConfig;

/// The paper's evaluation batch size.
pub const PAPER_BATCH: u64 = 16;

/// BERT-base: 12 heads, seq 1024, hidden 768.
pub fn bert() -> TransformerConfig {
    TransformerConfig::new("BERT", 12, 1024, 768, PAPER_BATCH)
}

/// GPT-2: 12 heads, seq 2048, hidden 768.
pub fn gpt2() -> TransformerConfig {
    TransformerConfig::new("GPT-2", 12, 2048, 768, PAPER_BATCH)
}

/// Blenderbot: 16 heads, seq 256, hidden 1024.
pub fn blenderbot() -> TransformerConfig {
    TransformerConfig::new("Blenderbot", 16, 256, 1024, PAPER_BATCH)
}

/// XLM: 16 heads, seq 1024, hidden 2048.
pub fn xlm() -> TransformerConfig {
    TransformerConfig::new("XLM", 16, 1024, 2048, PAPER_BATCH)
}

/// DeBERTa-v2: 24 heads, seq 1024, hidden 1536.
pub fn deberta_v2() -> TransformerConfig {
    TransformerConfig::new("DeBERTa-v2", 24, 1024, 1536, PAPER_BATCH)
}

/// LLaMA2-7B: 32 heads, seq 4096, hidden 4096, FFN 11008.
pub fn llama2() -> TransformerConfig {
    TransformerConfig::with_ffn("LLaMA2", 32, 4096, 4096, 11_008, PAPER_BATCH)
}

/// LLaMA2 at an alternative sequence length (the Fig 11 sweep, 256–16 K).
pub fn llama2_with_seq(seq_len: u64) -> TransformerConfig {
    llama2().with_seq_len(seq_len)
}

/// ALBERT-xxlarge: 64 heads, seq 1024, hidden 4096.
pub fn albert() -> TransformerConfig {
    TransformerConfig::new("ALBERT", 64, 1024, 4096, PAPER_BATCH)
}

/// All seven Table II models, in the paper's order.
pub fn all() -> Vec<TransformerConfig> {
    vec![
        bert(),
        gpt2(),
        blenderbot(),
        xlm(),
        deberta_v2(),
        llama2(),
        albert(),
    ]
}

/// The Fig 11 sequence lengths: 256 to 16 K in powers of two.
pub fn fig11_seq_lengths() -> Vec<u64> {
    (8..=14).map(|p| 1u64 << p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_parameters() {
        let rows: Vec<(&str, u64, u64, u64)> = all()
            .iter()
            .map(|c| {
                (
                    match c.name.as_str() {
                        "BERT" => "BERT",
                        "GPT-2" => "GPT-2",
                        "Blenderbot" => "Blenderbot",
                        "XLM" => "XLM",
                        "DeBERTa-v2" => "DeBERTa-v2",
                        "LLaMA2" => "LLaMA2",
                        "ALBERT" => "ALBERT",
                        other => panic!("unexpected model {other}"),
                    },
                    c.heads,
                    c.seq_len,
                    c.hidden,
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                ("BERT", 12, 1024, 768),
                ("GPT-2", 12, 2048, 768),
                ("Blenderbot", 16, 256, 1024),
                ("XLM", 16, 1024, 2048),
                ("DeBERTa-v2", 24, 1024, 1536),
                ("LLaMA2", 32, 4096, 4096),
                ("ALBERT", 64, 1024, 4096),
            ]
        );
    }

    #[test]
    fn batch_is_sixteen_everywhere() {
        assert!(all().iter().all(|c| c.batch == 16));
    }

    #[test]
    fn head_dims_are_integral() {
        for c in all() {
            assert_eq!(c.hidden % c.heads, 0, "{}", c.name);
        }
    }

    #[test]
    fn fig11_sweep_range() {
        let seqs = fig11_seq_lengths();
        assert_eq!(seqs.first(), Some(&256));
        assert_eq!(seqs.last(), Some(&16_384));
        assert_eq!(seqs.len(), 7);
        for s in seqs {
            let c = llama2_with_seq(s);
            assert_eq!(c.seq_len, s);
            assert_eq!(c.hidden, 4096);
        }
    }
}
