//! The seven Table II models.
//!
//! | model | heads | seq. length | hidden |
//! |---|---|---|---|
//! | BERT       | 12 | 1024 | 768  |
//! | GPT-2      | 12 | 2048 | 768  |
//! | Blenderbot | 16 | 256  | 1024 |
//! | XLM        | 16 | 1024 | 2048 |
//! | DeBERTa-v2 | 24 | 1024 | 1536 |
//! | LLaMA2     | 32 | 4096 (256–16 K) | 4096 |
//! | ALBERT     | 64 | 1024 | 4096 |
//!
//! Batch size is 16 throughout, as in §V-A.

use fusecu_ir::{MatMul, OpGraph};

use crate::config::TransformerConfig;

/// The paper's evaluation batch size.
pub const PAPER_BATCH: u64 = 16;

/// BERT-base: 12 heads, seq 1024, hidden 768.
pub fn bert() -> TransformerConfig {
    TransformerConfig::new("BERT", 12, 1024, 768, PAPER_BATCH)
}

/// GPT-2: 12 heads, seq 2048, hidden 768.
pub fn gpt2() -> TransformerConfig {
    TransformerConfig::new("GPT-2", 12, 2048, 768, PAPER_BATCH)
}

/// Blenderbot: 16 heads, seq 256, hidden 1024.
pub fn blenderbot() -> TransformerConfig {
    TransformerConfig::new("Blenderbot", 16, 256, 1024, PAPER_BATCH)
}

/// XLM: 16 heads, seq 1024, hidden 2048.
pub fn xlm() -> TransformerConfig {
    TransformerConfig::new("XLM", 16, 1024, 2048, PAPER_BATCH)
}

/// DeBERTa-v2: 24 heads, seq 1024, hidden 1536.
pub fn deberta_v2() -> TransformerConfig {
    TransformerConfig::new("DeBERTa-v2", 24, 1024, 1536, PAPER_BATCH)
}

/// LLaMA2-7B: 32 heads, seq 4096, hidden 4096, FFN 11008.
pub fn llama2() -> TransformerConfig {
    TransformerConfig::with_ffn("LLaMA2", 32, 4096, 4096, 11_008, PAPER_BATCH)
}

/// LLaMA2 at an alternative sequence length (the Fig 11 sweep, 256–16 K).
pub fn llama2_with_seq(seq_len: u64) -> TransformerConfig {
    llama2().with_seq_len(seq_len)
}

/// ALBERT-xxlarge: 64 heads, seq 1024, hidden 4096.
pub fn albert() -> TransformerConfig {
    TransformerConfig::new("ALBERT", 64, 1024, 4096, PAPER_BATCH)
}

/// All seven Table II models, in the paper's order.
pub fn all() -> Vec<TransformerConfig> {
    vec![
        bert(),
        gpt2(),
        blenderbot(),
        xlm(),
        deberta_v2(),
        llama2(),
        albert(),
    ]
}

/// The Fig 11 sequence lengths: 256 to 16 K in powers of two.
pub fn fig11_seq_lengths() -> Vec<u64> {
    (8..=14).map(|p| 1u64 << p).collect()
}

/// A deliberately tiny attention model (2 heads, seq 24, hidden 16,
/// batch 1) whose [`TransformerConfig::build_branchy_graph`] is small
/// enough to replay cycle-exactly on the functional simulator in debug
/// builds — the whole-model conformance workload for the DAG planner.
pub fn mini_attention() -> TransformerConfig {
    TransformerConfig::with_ffn("MiniAttention", 2, 24, 16, 32, 1)
}

/// The pinned fan-in regression graph: two shape-compatible producers
/// (`wide_proj`, inserted first, and `narrow_proj`) meet in a residual add
/// feeding one `consumer` matmul, so exactly one of them can fuse.
///
/// Producers at a fan-in site share `m` and `l` by construction (both must
/// match the consumer's left operand), leaving their reduction depth `k`
/// as the only degree of freedom — and fusion profit is *not* monotone in
/// `k`: at a 1 Ki-element buffer the closed-form oracle saves 8 448 MA
/// fusing `wide_proj` (`k = 64`) but only 5 376 fusing `narrow_proj`
/// (`k = 32`), under both cost models. Every structural chooser gets this
/// graph wrong: insertion order (what the greedy chain decomposition used
/// to claim) picks `wide` or `narrow` depending on construction order, and
/// the deterministic smallest-`k` tie-break now used by
/// `OpGraph::mm_chains` picks `narrow` on both orders. Only cost-scored
/// claiming — the DAG planner's matching, or `min_ma_chains` — fuses
/// `wide` here. Shapes are small enough for debug-build simulator replay.
pub fn fan_in_regression_graph() -> OpGraph {
    let mut g = OpGraph::new();
    let wide = g.add_matmul("wide_proj", MatMul::new(96, 64, 96), 1);
    let narrow = g.add_matmul("narrow_proj", MatMul::new(96, 32, 96), 1);
    let add = g.add_elementwise("residual_add", 96 * 96, 1);
    let consumer = g.add_matmul("consumer", MatMul::new(96, 96, 24), 1);
    g.connect(wide, add);
    g.connect(narrow, add);
    g.connect(add, consumer);
    g
}

/// [`fan_in_regression_graph`] with the producers inserted in the opposite
/// order — the pair pins insertion-order invariance of whatever claims the
/// fan-in site.
pub fn fan_in_regression_graph_mirrored() -> OpGraph {
    let mut g = OpGraph::new();
    let narrow = g.add_matmul("narrow_proj", MatMul::new(96, 32, 96), 1);
    let wide = g.add_matmul("wide_proj", MatMul::new(96, 64, 96), 1);
    let add = g.add_elementwise("residual_add", 96 * 96, 1);
    let consumer = g.add_matmul("consumer", MatMul::new(96, 96, 24), 1);
    g.connect(narrow, add);
    g.connect(wide, add);
    g.connect(add, consumer);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_parameters() {
        let rows: Vec<(&str, u64, u64, u64)> = all()
            .iter()
            .map(|c| {
                (
                    match c.name.as_str() {
                        "BERT" => "BERT",
                        "GPT-2" => "GPT-2",
                        "Blenderbot" => "Blenderbot",
                        "XLM" => "XLM",
                        "DeBERTa-v2" => "DeBERTa-v2",
                        "LLaMA2" => "LLaMA2",
                        "ALBERT" => "ALBERT",
                        other => panic!("unexpected model {other}"),
                    },
                    c.heads,
                    c.seq_len,
                    c.hidden,
                )
            })
            .collect();
        assert_eq!(
            rows,
            vec![
                ("BERT", 12, 1024, 768),
                ("GPT-2", 12, 2048, 768),
                ("Blenderbot", 16, 256, 1024),
                ("XLM", 16, 1024, 2048),
                ("DeBERTa-v2", 24, 1024, 1536),
                ("LLaMA2", 32, 4096, 4096),
                ("ALBERT", 64, 1024, 4096),
            ]
        );
    }

    #[test]
    fn batch_is_sixteen_everywhere() {
        assert!(all().iter().all(|c| c.batch == 16));
    }

    #[test]
    fn head_dims_are_integral() {
        for c in all() {
            assert_eq!(c.hidden % c.heads, 0, "{}", c.name);
        }
    }

    #[test]
    fn mini_attention_is_tiny_and_branchy() {
        let c = mini_attention();
        assert_eq!(c.head_dim(), 8);
        let g = c.build_branchy_graph();
        assert_eq!(g.mm_dag().link_count(), 4);
        // Small enough for debug-build functional replay.
        assert!(g.total_macs() < 200_000);
    }

    #[test]
    fn fan_in_regression_graphs_mirror_each_other() {
        let a = fan_in_regression_graph();
        let b = fan_in_regression_graph_mirrored();
        for g in [&a, &b] {
            let dag = g.mm_dag();
            assert!(dag.has_fan_in());
            assert_eq!(dag.mm_count(), 3);
            assert_eq!(dag.link_count(), 2, "both producers stay candidates");
        }
        // Same matmul multiset, opposite insertion order.
        let shapes = |g: &OpGraph| {
            let mut v: Vec<_> = g.matmuls().map(|(_, mm, n)| (mm, n)).collect();
            v.sort_by_key(|(mm, _)| (mm.m(), mm.k(), mm.l()));
            v
        };
        assert_eq!(shapes(&a), shapes(&b));
        // The structural chain chooser deterministically claims the
        // narrow producer on both orders — the cost-blind half of the
        // regression the DAG planner's tests pin the other half of.
        for g in [&a, &b] {
            let (_, chain, _) = g
                .mm_chains()
                .into_iter()
                .find(|(ids, ..)| ids.len() == 2)
                .expect("one fused chain");
            assert_eq!(chain.mm(0).k(), 32);
        }
    }

    #[test]
    fn fig11_sweep_range() {
        let seqs = fig11_seq_lengths();
        assert_eq!(seqs.first(), Some(&256));
        assert_eq!(seqs.last(), Some(&16_384));
        assert_eq!(seqs.len(), 7);
        for s in seqs {
            let c = llama2_with_seq(s);
            assert_eq!(c.seq_len, s);
            assert_eq!(c.hidden, 4096);
        }
    }
}
