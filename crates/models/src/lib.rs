//! # fusecu-models — the Table II transformer workload zoo
//!
//! The paper evaluates on seven attention-based models (Table II) at batch
//! size 16, plus a LLaMA2 sequence-length sweep from 256 to 16 K (Fig 11).
//! This crate turns those hyper-parameters into the operator graphs the
//! optimizer and architecture models consume.
//!
//! One *representative transformer layer* is generated per model: every
//! evaluated metric (memory access, utilization) is reported normalized, and
//! identical stacked layers scale both numerator and denominator equally, so
//! layer count cancels. The layer contains:
//!
//! * Q/K/V projections `[B·S, H] × [H, H]`,
//! * per-head attention `QKᵀ` (`[S, d_h] × [d_h, S]`), softmax, and `P·V`
//!   (`[S, S] × [S, d_h]`), repeated `B × heads` times — the fusable chain
//!   at the core of the paper's motivation,
//! * the output projection `[B·S, H] × [H, H]`,
//! * the two FFN matmuls `[B·S, H] × [H, F]` and `[B·S, F] × [F, H]` with a
//!   transparent activation between them — a second fusable chain.
//!
//! Reshapes (head split/merge) break fusion chains, matching how spatial
//! accelerators re-lay tensors between attention and projections.
//!
//! ```
//! use fusecu_models::zoo;
//!
//! let bert = zoo::bert();
//! assert_eq!(bert.heads, 12);
//! let graph = bert.build_graph();
//! assert!(graph.total_macs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod config;
pub mod zoo;

pub use config::TransformerConfig;
