//! Transformer hyper-parameters (the rows of Table II).

use std::fmt;

/// Hyper-parameters of one attention-based model, batch included.
///
/// `hidden` must be divisible by `heads`; the head dimension is
/// `hidden / heads`. `ffn_hidden` is the FFN expansion width (4× hidden for
/// the classic architectures; LLaMA2 uses its published 11 008).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Model name as printed in Table II.
    pub name: String,
    /// Number of attention heads.
    pub heads: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// FFN intermediate dimension.
    pub ffn_hidden: u64,
    /// Batch size (16 throughout the paper's evaluation).
    pub batch: u64,
}

impl TransformerConfig {
    /// Creates a configuration with the classic `ffn = 4 × hidden` width.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`, or any parameter is
    /// zero.
    pub fn new(
        name: impl Into<String>,
        heads: u64,
        seq_len: u64,
        hidden: u64,
        batch: u64,
    ) -> TransformerConfig {
        TransformerConfig::with_ffn(name, heads, seq_len, hidden, 4 * hidden, batch)
    }

    /// Creates a configuration with an explicit FFN width.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`, or any parameter is
    /// zero.
    pub fn with_ffn(
        name: impl Into<String>,
        heads: u64,
        seq_len: u64,
        hidden: u64,
        ffn_hidden: u64,
        batch: u64,
    ) -> TransformerConfig {
        assert!(
            heads > 0 && seq_len > 0 && hidden > 0 && ffn_hidden > 0 && batch > 0,
            "all transformer parameters must be non-zero"
        );
        assert!(
            hidden.is_multiple_of(heads),
            "hidden size {hidden} must be divisible by {heads} heads"
        );
        TransformerConfig {
            name: name.into(),
            heads,
            seq_len,
            hidden,
            ffn_hidden,
            batch,
        }
    }

    /// Per-head dimension `hidden / heads`.
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Tokens processed per forward pass: `batch × seq_len`.
    pub fn tokens(&self) -> u64 {
        self.batch * self.seq_len
    }

    /// A copy with a different sequence length (the Fig 11 sweep).
    #[must_use]
    pub fn with_seq_len(&self, seq_len: u64) -> TransformerConfig {
        assert!(seq_len > 0, "sequence length must be non-zero");
        TransformerConfig {
            seq_len,
            ..self.clone()
        }
    }

    /// A copy with a different batch size.
    #[must_use]
    pub fn with_batch(&self, batch: u64) -> TransformerConfig {
        assert!(batch > 0, "batch size must be non-zero");
        TransformerConfig {
            batch,
            ..self.clone()
        }
    }
}

impl fmt::Display for TransformerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (heads={}, seq={}, hidden={}, ffn={}, batch={})",
            self.name, self.heads, self.seq_len, self.hidden, self.ffn_hidden, self.batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dim_and_tokens() {
        let c = TransformerConfig::new("bert", 12, 1024, 768, 16);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.tokens(), 16 * 1024);
        assert_eq!(c.ffn_hidden, 4 * 768);
    }

    #[test]
    fn with_seq_len_keeps_other_fields() {
        let c = TransformerConfig::new("llama", 32, 4096, 4096, 16);
        let short = c.with_seq_len(256);
        assert_eq!(short.seq_len, 256);
        assert_eq!(short.hidden, 4096);
        assert_eq!(short.name, "llama");
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panics() {
        let _ = TransformerConfig::new("bad", 7, 128, 768, 1);
    }

    #[test]
    fn display_includes_name() {
        let c = TransformerConfig::new("bert", 12, 1024, 768, 16);
        assert!(c.to_string().starts_with("bert"));
    }
}
