//! Producer→consumer matmul chains, the unit of operator fusion.
//!
//! A chain `E = ((A × B) × D) × …` links matmuls through intermediate
//! tensors: the output `C[M,L]` of one matmul is the left operand of the
//! next, so consecutive matmuls must satisfy `mmᵢ₊₁.m == mmᵢ.m` and
//! `mmᵢ₊₁.k == mmᵢ.l`. Attention is exactly such a chain
//! (`(Q·Kᵀ)·V` with a transparent softmax between the two matmuls), which is
//! why the paper evaluates on attention-based models.

use std::fmt;

use crate::matmul::MatMul;

/// Error produced when two matmuls cannot be chained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainError {
    /// Index of the consumer matmul whose shape does not match.
    index: usize,
    expected: (u64, u64),
    found: (u64, u64),
}

impl ChainError {
    /// Index (within the chain being built) of the mismatching consumer.
    pub fn index(&self) -> usize {
        self.index
    }
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matmul #{} cannot consume its predecessor's output: expected (m,k) = {:?}, found {:?}",
            self.index, self.expected, self.found
        )
    }
}

impl std::error::Error for ChainError {}

/// A chain of matmuls in which each operator's output feeds the next
/// operator's left input.
///
/// ```
/// use fusecu_ir::{MatMul, MmChain};
///
/// // (Q·Kᵀ)·V for one attention head: seq = 1024, head dim = 64.
/// let chain = MmChain::try_new(vec![
///     MatMul::new(1024, 64, 1024),
///     MatMul::new(1024, 1024, 64),
/// ])?;
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain.intermediate_elems(0), 1024 * 1024);
/// # Ok::<(), fusecu_ir::ChainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MmChain {
    mms: Vec<MatMul>,
}

impl MmChain {
    /// Builds a chain, validating every producer/consumer shape pair.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] if some matmul's `(m, k)` does not equal its
    /// predecessor's `(m, l)`.
    ///
    /// # Panics
    ///
    /// Panics if `mms` is empty; a chain has at least one operator.
    pub fn try_new(mms: Vec<MatMul>) -> Result<MmChain, ChainError> {
        assert!(!mms.is_empty(), "a chain needs at least one matmul");
        for i in 1..mms.len() {
            let expected = (mms[i - 1].m(), mms[i - 1].l());
            let found = (mms[i].m(), mms[i].k());
            if expected != found {
                return Err(ChainError {
                    index: i,
                    expected,
                    found,
                });
            }
        }
        Ok(MmChain { mms })
    }

    /// A chain holding a single matmul (always valid).
    pub fn single(mm: MatMul) -> MmChain {
        MmChain { mms: vec![mm] }
    }

    /// Number of matmuls in the chain.
    #[allow(clippy::len_without_is_empty)] // chains are never empty
    pub fn len(&self) -> usize {
        self.mms.len()
    }

    /// The matmuls, producer first.
    pub fn mms(&self) -> &[MatMul] {
        &self.mms
    }

    /// The `i`-th matmul.
    pub fn mm(&self, i: usize) -> MatMul {
        self.mms[i]
    }

    /// Footprint in elements of the intermediate tensor between matmul `i`
    /// and matmul `i + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i + 1 >= len()`: the last matmul's output is external, not
    /// an intermediate.
    pub fn intermediate_elems(&self, i: usize) -> u64 {
        assert!(i + 1 < self.mms.len(), "no intermediate after the last matmul");
        self.mms[i].m() * self.mms[i].l()
    }

    /// Total MAC count over the chain.
    pub fn macs(&self) -> u64 {
        self.mms.iter().map(MatMul::macs).sum()
    }

    /// Sum of per-operator ideal (infinite-buffer, unfused) memory accesses.
    ///
    /// Under unfused execution each intermediate is written once and read
    /// once, so its footprint is counted twice across the two operators.
    pub fn unfused_ideal_ma(&self) -> u64 {
        self.mms.iter().map(MatMul::ideal_ma).sum()
    }

    /// The fused communication lower bound: only external tensors touch
    /// memory. The producer's `A`/`B`, every later matmul's `B`, and the
    /// final output are each counted once; intermediates cost nothing.
    pub fn fused_ideal_ma(&self) -> u64 {
        let first = &self.mms[0];
        let last = &self.mms[self.mms.len() - 1];
        let inputs: u64 = first.tensor_elems(crate::Operand::Lhs)
            + self
                .mms
                .iter()
                .map(|mm| mm.tensor_elems(crate::Operand::Rhs))
                .sum::<u64>();
        inputs + last.tensor_elems(crate::Operand::Out)
    }

    /// Splits the chain into consecutive pairs `(i, i+1)`; Principle 4 is
    /// applied to each pair to decide fusion of longer chains.
    pub fn pairs(&self) -> impl Iterator<Item = (MatMul, MatMul)> + '_ {
        self.mms.windows(2).map(|w| (w[0], w[1]))
    }

    /// The sub-chain covering matmuls `start..end` (end exclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> MmChain {
        assert!(start < end && end <= self.mms.len(), "invalid chain slice");
        MmChain {
            mms: self.mms[start..end].to_vec(),
        }
    }
}

impl fmt::Display for MmChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, mm) in self.mms.iter().enumerate() {
            if i > 0 {
                f.write_str("  ->  ")?;
            }
            write!(f, "[{}x{}x{}]", mm.m(), mm.k(), mm.l())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operand;

    fn attention_chain() -> MmChain {
        MmChain::try_new(vec![
            MatMul::new(1024, 64, 1024),
            MatMul::new(1024, 1024, 64),
        ])
        .unwrap()
    }

    #[test]
    fn valid_chain_accepts() {
        let c = attention_chain();
        assert_eq!(c.len(), 2);
        assert_eq!(c.intermediate_elems(0), 1024 * 1024);
        assert_eq!(c.macs(), 2 * 1024 * 64 * 1024);
    }

    #[test]
    fn mismatched_chain_rejects() {
        let err = MmChain::try_new(vec![MatMul::new(4, 8, 16), MatMul::new(4, 15, 2)])
            .unwrap_err();
        assert_eq!(err.index(), 1);
        let msg = err.to_string();
        assert!(msg.contains("(4, 16)") && msg.contains("(4, 15)"), "{msg}");
    }

    #[test]
    fn fused_lower_bound_excludes_intermediates() {
        let c = attention_chain();
        // External tensors: Q(1024x64), K(64x1024), V(1024x64), O(1024x64).
        assert_eq!(c.fused_ideal_ma(), 4 * 1024 * 64);
        // Unfused counts the 1024x1024 intermediate twice.
        assert_eq!(c.unfused_ideal_ma(), c.fused_ideal_ma() + 2 * 1024 * 1024);
    }

    #[test]
    fn three_op_chain() {
        let c = MmChain::try_new(vec![
            MatMul::new(8, 4, 16),
            MatMul::new(8, 16, 32),
            MatMul::new(8, 32, 4),
        ])
        .unwrap();
        assert_eq!(c.pairs().count(), 2);
        assert_eq!(c.intermediate_elems(0), 8 * 16);
        assert_eq!(c.intermediate_elems(1), 8 * 32);
        let inputs = 8 * 4 + 4 * 16 + 16 * 32 + 32 * 4;
        assert_eq!(c.fused_ideal_ma(), inputs + 8 * 4);
        let s = c.slice(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mm(0), MatMul::new(8, 16, 32));
    }

    #[test]
    fn single_chain_has_no_pairs() {
        let c = MmChain::single(MatMul::new(2, 3, 4));
        assert_eq!(c.len(), 1);
        assert_eq!(c.pairs().count(), 0);
        assert_eq!(c.unfused_ideal_ma(), c.fused_ideal_ma());
        assert_eq!(
            c.fused_ideal_ma(),
            c.mm(0).tensor_elems(Operand::Lhs)
                + c.mm(0).tensor_elems(Operand::Rhs)
                + c.mm(0).tensor_elems(Operand::Out)
        );
    }

    #[test]
    #[should_panic(expected = "no intermediate")]
    fn intermediate_after_last_panics() {
        attention_chain().intermediate_elems(1);
    }

    #[test]
    fn display_shows_shapes() {
        assert_eq!(
            attention_chain().to_string(),
            "[1024x64x1024]  ->  [1024x1024x64]"
        );
    }
}
