//! Operator graphs: matmuls plus transparent (softmax / elementwise) nodes.
//!
//! The workload models in `fusecu-models` are expressed as [`OpGraph`]s. For
//! dataflow purposes only matmuls matter; softmax, bias, activation and
//! residual nodes are *transparent* — FuseCU computes them on the fly in the
//! PE array's post-processing path (the paper's PE keeps the softmax unit of
//! the baseline design), so they neither block fusion nor add DRAM traffic
//! of their own beyond the tensors already flowing between matmuls.
//!
//! [`OpGraph::mm_chains`] extracts maximal producer→consumer matmul chains
//! (the legacy linear decomposition); [`crate::graph_plan`] exposes the
//! full fusable-link DAG on which the whole-graph planner in
//! `fusecu-fusion` searches fusion structure.
//!
//! The graph keeps forward and reverse adjacency lists, built incrementally
//! as nodes and edges are added, so `successors`/`predecessors`/`fan_out`
//! are O(degree) lookups rather than scans of the whole edge list (chain
//! extraction used to be O(V·E) on large decode graphs).

use std::fmt;

use crate::chain::MmChain;
use crate::matmul::MatMul;

/// Index of a node within an [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of an edge within an [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

/// The operator performed by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A matrix multiplication.
    MatMul(MatMul),
    /// Row-wise softmax over an `[rows, cols]` tensor. Transparent for
    /// dataflow; executed by the softmax unit.
    Softmax {
        /// Number of rows the softmax normalizes independently.
        rows: u64,
        /// Row length.
        cols: u64,
    },
    /// Any elementwise map (bias add, GELU, residual add, layernorm scale…)
    /// over `elems` elements. Transparent for dataflow.
    Elementwise {
        /// Element count of the mapped tensor.
        elems: u64,
    },
}

impl OpKind {
    /// Whether the node is transparent for fusion purposes.
    pub fn is_transparent(&self) -> bool {
        !matches!(self, OpKind::MatMul(_))
    }

    /// The matmul, if this node is one.
    pub fn as_matmul(&self) -> Option<MatMul> {
        match self {
            OpKind::MatMul(mm) => Some(*mm),
            _ => None,
        }
    }

    /// Elements produced by the node.
    pub fn output_elems(&self) -> u64 {
        match self {
            OpKind::MatMul(mm) => mm.tensor_elems(crate::Operand::Out),
            OpKind::Softmax { rows, cols } => rows * cols,
            OpKind::Elementwise { elems } => *elems,
        }
    }
}

/// A node of an [`OpGraph`]: an operator plus an instance count.
///
/// `count` is the number of independent instances of the operator in one
/// forward pass — e.g. `batch × heads` for the per-head attention matmuls.
/// Every instance runs the same dataflow, so costs scale linearly with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNode {
    /// Human-readable name (`"q_proj"`, `"qk^T"`, …).
    pub name: String,
    /// The operator.
    pub kind: OpKind,
    /// Number of independent instances per forward pass.
    pub count: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    from: NodeId,
    to: NodeId,
}

/// A directed operator graph.
///
/// Edges mean "the producer's output tensor is (one of) the consumer's
/// input(s)". For matmul consumers the convention is that chained
/// intermediates arrive as the **left** operand (`A`); weight-style inputs
/// (`B`) come from memory and are not modeled as graph edges.
#[derive(Debug, Clone, Default)]
pub struct OpGraph {
    nodes: Vec<OpNode>,
    edges: Vec<Edge>,
    /// Forward adjacency: `succs[n]` lists the targets of `n`'s out-edges,
    /// in edge-insertion order. Maintained by [`OpGraph::connect`].
    succs: Vec<Vec<NodeId>>,
    /// Reverse adjacency, mirroring `succs`.
    preds: Vec<Vec<NodeId>>,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> OpGraph {
        OpGraph::default()
    }

    /// Adds a matmul node with an instance count; returns its id.
    pub fn add_matmul(&mut self, name: impl Into<String>, mm: MatMul, count: u64) -> NodeId {
        self.add_node(name, OpKind::MatMul(mm), count)
    }

    /// Adds a softmax node.
    pub fn add_softmax(&mut self, name: impl Into<String>, rows: u64, cols: u64, count: u64) -> NodeId {
        self.add_node(name, OpKind::Softmax { rows, cols }, count)
    }

    /// Adds an elementwise node.
    pub fn add_elementwise(&mut self, name: impl Into<String>, elems: u64, count: u64) -> NodeId {
        self.add_node(name, OpKind::Elementwise { elems }, count)
    }

    fn add_node(&mut self, name: impl Into<String>, kind: OpKind, count: u64) -> NodeId {
        assert!(count > 0, "node instance count must be non-zero");
        let id = NodeId(self.nodes.len());
        self.nodes.push(OpNode {
            name: name.into(),
            kind,
            count,
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Connects `from`'s output to `to`'s input.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the edge would duplicate an
    /// existing one.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len(), "node id out of range");
        assert!(
            !self.succs[from.0].contains(&to),
            "duplicate edge {from:?} -> {to:?}"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to });
        self.succs[from.0].push(to);
        self.preds[to.0].push(from);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &OpNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates over the edges as `(from, to)` pairs, in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().map(|e| (e.from, e.to))
    }

    /// All matmul nodes with their ids.
    pub fn matmuls(&self) -> impl Iterator<Item = (NodeId, MatMul, u64)> + '_ {
        self.iter()
            .filter_map(|(id, n)| n.kind.as_matmul().map(|mm| (id, mm, n.count)))
    }

    /// Total MACs per forward pass (all instances).
    pub fn total_macs(&self) -> u64 {
        self.matmuls().map(|(_, mm, c)| mm.macs() * c).sum()
    }

    /// Out-degree of a node.
    pub fn fan_out(&self, id: NodeId) -> usize {
        self.succs[id.0].len()
    }

    /// In-degree of a node.
    pub fn fan_in(&self, id: NodeId) -> usize {
        self.preds[id.0].len()
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[id.0].iter().copied()
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[id.0].iter().copied()
    }

    /// Follows transparent nodes downstream from `id` until reaching a
    /// matmul; returns it if the path is a chain of fan-out-1 transparent
    /// nodes each with exactly that single consumer.
    pub(crate) fn next_matmul(&self, id: NodeId) -> Option<NodeId> {
        if self.fan_out(id) != 1 {
            return None;
        }
        let mut cur = self.successors(id).next()?;
        loop {
            let node = self.node(cur);
            match node.kind {
                OpKind::MatMul(_) => return Some(cur),
                _ => {
                    // Transparent: must itself forward to exactly one node.
                    if self.fan_out(cur) != 1 {
                        return None;
                    }
                    cur = self.successors(cur).next()?;
                }
            }
        }
    }

    /// Renders the graph in Graphviz DOT syntax, marking matmuls as boxes
    /// (with shapes and counts) and transparent nodes as ellipses.
    ///
    /// ```
    /// use fusecu_ir::{MatMul, OpGraph};
    /// let mut g = OpGraph::new();
    /// let a = g.add_matmul("proj", MatMul::new(4, 4, 4), 2);
    /// let b = g.add_elementwise("gelu", 16, 2);
    /// g.connect(a, b);
    /// assert!(g.to_dot().contains("digraph"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph opgraph {\n  rankdir=TB;\n");
        for (id, n) in self.iter() {
            let (shape, label) = match n.kind {
                OpKind::MatMul(mm) => (
                    "box",
                    format!("{} x{}\\n{}x{}x{}", n.name, n.count, mm.m(), mm.k(), mm.l()),
                ),
                OpKind::Softmax { rows, cols } => {
                    ("ellipse", format!("{} x{}\\n[{rows},{cols}]", n.name, n.count))
                }
                OpKind::Elementwise { elems } => {
                    ("ellipse", format!("{} x{}\\n[{elems}]", n.name, n.count))
                }
            };
            let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", id.0);
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -> n{};", e.from.0, e.to.0);
        }
        out.push_str("}\n");
        out
    }

    /// Extracts the maximal fusable matmul chains of the graph.
    ///
    /// A chain extends from matmul `p` to matmul `q` when:
    /// * `p` reaches `q` through zero or more fan-out-1 transparent nodes,
    /// * `p`'s output shape matches `q`'s left-operand shape
    ///   (`q.m == p.m && q.k == p.l`),
    /// * both have equal instance counts (instances pair up one-to-one).
    ///
    /// Every matmul appears in exactly one returned chain (possibly of
    /// length 1). Chains are maximal: they cannot be extended in either
    /// direction. Returned order follows node insertion order of the chain
    /// heads.
    ///
    /// When several producers could claim the same consumer (a fan-in
    /// site, e.g. two matmul outputs meeting in a residual add that feeds
    /// a third matmul), the claim is resolved by a deterministic
    /// *structural* rule — the candidate with the smallest reduction
    /// dimension `k`, then the lexicographically smallest name, then the
    /// smallest node id — rather than by insertion order. Callers that
    /// hold a cost model should not rely on this heuristic: use
    /// [`OpGraph::mm_chains_by`] with a cost-aware chooser (as
    /// `fusecu-fusion`'s planner does) to pick the minimum-memory-access
    /// pairing.
    pub fn mm_chains(&self) -> Vec<(Vec<NodeId>, MmChain, u64)> {
        self.mm_chains_by(|g, _consumer, candidates| {
            *candidates
                .iter()
                .min_by_key(|&&id| {
                    let n = g.node(id);
                    let k = n.kind.as_matmul().map_or(u64::MAX, |mm| mm.k());
                    (k, n.name.clone(), id.0)
                })
                .expect("chooser called with at least one candidate")
        })
    }

    /// [`OpGraph::mm_chains`] with an explicit fan-in chooser: whenever
    /// more than one shape- and count-compatible producer could chain into
    /// the same consumer, `choose` picks the winner from the (non-empty,
    /// node-id-ordered) candidate list. Losing producers end their chains
    /// before the consumer.
    pub fn mm_chains_by<F>(&self, mut choose: F) -> Vec<(Vec<NodeId>, MmChain, u64)>
    where
        F: FnMut(&OpGraph, NodeId, &[NodeId]) -> NodeId,
    {
        let mms: Vec<(NodeId, MatMul, u64)> = self.matmuls().collect();
        // Candidate producers per consumer, in node-id order.
        let mut claims: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for (id, mm, count) in &mms {
            if let Some(succ) = self.next_matmul(*id) {
                let snode = self.node(succ);
                if let Some(smm) = snode.kind.as_matmul() {
                    let shape_ok = smm.m() == mm.m() && smm.k() == mm.l();
                    let count_ok = snode.count == *count;
                    if shape_ok && count_ok {
                        match claims.iter_mut().find(|(c, _)| *c == succ) {
                            Some((_, cands)) => cands.push(*id),
                            None => claims.push((succ, vec![*id])),
                        }
                    }
                }
            }
        }
        // successor (next chained matmul) for each matmul node
        let mut next: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut has_pred: Vec<bool> = vec![false; self.nodes.len()];
        for (consumer, candidates) in &claims {
            let winner = if candidates.len() == 1 {
                candidates[0]
            } else {
                let picked = choose(self, *consumer, candidates);
                assert!(
                    candidates.contains(&picked),
                    "fan-in chooser must pick one of the candidates"
                );
                picked
            };
            next[winner.0] = Some(*consumer);
            has_pred[consumer.0] = true;
        }
        let mut chains = Vec::new();
        for (id, _, count) in &mms {
            if has_pred[id.0] {
                continue; // not a chain head
            }
            let mut ids = vec![*id];
            let mut cur = *id;
            while let Some(succ) = next[cur.0] {
                ids.push(succ);
                cur = succ;
            }
            chains.extend(self.chains_from_ids(ids, *count));
        }
        chains
    }

    /// Materializes validated [`MmChain`]s from a node-id path. The shapes
    /// were checked while chaining, so this normally yields one chain; if
    /// validation fails anyway (a defensive impossibility), the path
    /// degrades to per-node solo chains instead of panicking — the graceful
    /// fallback every planner entry point above this expects.
    fn chains_from_ids(&self, ids: Vec<NodeId>, count: u64) -> Vec<(Vec<NodeId>, MmChain, u64)> {
        let shapes: Vec<MatMul> = ids
            .iter()
            .filter_map(|id| self.node(*id).kind.as_matmul())
            .collect();
        if shapes.len() == ids.len() {
            if let Ok(chain) = MmChain::try_new(shapes) {
                return vec![(ids, chain, count)];
            }
        }
        ids.into_iter()
            .filter_map(|id| {
                let mm = self.node(id).kind.as_matmul()?;
                Some((vec![id], MmChain::single(mm), count))
            })
            .collect()
    }
}

impl fmt::Display for OpGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OpGraph ({} nodes, {} edges)", self.nodes.len(), self.edges.len())?;
        for (id, n) in self.iter() {
            write!(f, "  [{}] {} x{}: ", id.0, n.name, n.count)?;
            match n.kind {
                OpKind::MatMul(mm) => write!(f, "{mm}")?,
                OpKind::Softmax { rows, cols } => write!(f, "softmax[{rows},{cols}]")?,
                OpKind::Elementwise { elems } => write!(f, "elementwise[{elems}]")?,
            }
            let succs: Vec<String> = self.successors(id).map(|s| s.0.to_string()).collect();
            if !succs.is_empty() {
                write!(f, "  -> {}", succs.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One attention head group: qk^T -> softmax -> pv.
    fn attention_graph() -> (OpGraph, NodeId, NodeId) {
        let mut g = OpGraph::new();
        let qk = g.add_matmul("qk^T", MatMul::new(1024, 64, 1024), 192);
        let sm = g.add_softmax("softmax", 1024, 1024, 192);
        let pv = g.add_matmul("pv", MatMul::new(1024, 1024, 64), 192);
        g.connect(qk, sm);
        g.connect(sm, pv);
        (g, qk, pv)
    }

    #[test]
    fn chain_through_softmax() {
        let (g, qk, pv) = attention_graph();
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 1);
        let (ids, chain, count) = &chains[0];
        assert_eq!(ids, &vec![qk, pv]);
        assert_eq!(chain.len(), 2);
        assert_eq!(*count, 192);
    }

    #[test]
    fn mismatched_shapes_break_chain() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 1);
        let b = g.add_matmul("b", MatMul::new(8, 15, 4), 1); // k != 16
        g.connect(a, b);
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 2);
        assert!(chains.iter().all(|(ids, ..)| ids.len() == 1));
    }

    #[test]
    fn mismatched_counts_break_chain() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 2);
        let b = g.add_matmul("b", MatMul::new(8, 16, 4), 1);
        g.connect(a, b);
        assert_eq!(g.mm_chains().len(), 2);
    }

    #[test]
    fn fan_out_blocks_fusion() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 1);
        let b = g.add_matmul("b", MatMul::new(8, 16, 4), 1);
        let c = g.add_elementwise("residual", 8 * 16, 1);
        g.connect(a, b);
        g.connect(a, c); // a's output also consumed elsewhere
        assert_eq!(g.mm_chains().len(), 2, "fan-out > 1 must not fuse");
    }

    #[test]
    fn three_matmul_chain_and_totals() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 3);
        let b = g.add_matmul("b", MatMul::new(8, 16, 32), 3);
        let c = g.add_matmul("c", MatMul::new(8, 32, 4), 3);
        g.connect(a, b);
        g.connect(b, c);
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].1.len(), 3);
        assert_eq!(
            g.total_macs(),
            3 * (8 * 4 * 16 + 8 * 16 * 32 + 8 * 32 * 4)
        );
    }

    #[test]
    fn consumer_claimed_once() {
        // Two producers feeding one consumer: only one may chain into it.
        let mut g = OpGraph::new();
        let p1 = g.add_matmul("p1", MatMul::new(8, 4, 16), 1);
        let p2 = g.add_matmul("p2", MatMul::new(8, 4, 16), 1);
        let q = g.add_matmul("q", MatMul::new(8, 16, 4), 1);
        g.connect(p1, q);
        g.connect(p2, q);
        let chains = g.mm_chains();
        let chained: usize = chains.iter().map(|(ids, ..)| ids.len()).sum();
        assert_eq!(chained, 3, "every matmul appears exactly once");
        assert_eq!(chains.len(), 2);
    }

    /// Two fan-in graphs differing only in producer insertion order must
    /// decompose into the same chains (up to node renaming): the claim is
    /// structural, not first-come. The producers differ in `k`, so the
    /// structural rule has something to distinguish them by.
    #[test]
    fn fan_in_claim_is_insertion_order_independent() {
        let build = |big_first: bool| {
            let mut g = OpGraph::new();
            let shapes = if big_first {
                [("big", 64u64), ("small", 4u64)]
            } else {
                [("small", 4), ("big", 64)]
            };
            let ps: Vec<NodeId> = shapes
                .iter()
                .map(|(name, k)| g.add_matmul(*name, MatMul::new(8, *k, 16), 1))
                .collect();
            let add = g.add_elementwise("residual", 8 * 16, 1);
            let q = g.add_matmul("q", MatMul::new(8, 16, 4), 1);
            for p in &ps {
                g.connect(*p, add);
            }
            g.connect(add, q);
            g
        };
        for big_first in [true, false] {
            let g = build(big_first);
            let chains = g.mm_chains();
            assert_eq!(chains.len(), 2);
            let claimed = chains
                .iter()
                .find(|(ids, ..)| ids.len() == 2)
                .expect("one producer chains into q");
            // The small-k producer wins regardless of insertion order.
            assert_eq!(g.node(claimed.0[0]).name, "small");
        }
    }

    #[test]
    fn fan_in_chooser_overrides_the_default() {
        let mut g = OpGraph::new();
        let p1 = g.add_matmul("p1", MatMul::new(8, 4, 16), 1);
        let p2 = g.add_matmul("p2", MatMul::new(8, 64, 16), 1);
        let add = g.add_elementwise("add", 8 * 16, 1);
        let q = g.add_matmul("q", MatMul::new(8, 16, 4), 1);
        g.connect(p1, add);
        g.connect(p2, add);
        g.connect(add, q);
        // Default picks the small-k p1; an explicit chooser can force p2.
        let chains = g.mm_chains_by(|_, consumer, cands| {
            assert_eq!(consumer, q);
            assert_eq!(cands, &[p1, p2]);
            p2
        });
        let claimed = chains.iter().find(|(ids, ..)| ids.len() == 2).unwrap();
        assert_eq!(claimed.0, vec![p2, q]);
    }

    #[test]
    fn adjacency_matches_edge_list() {
        let (g, qk, pv) = attention_graph();
        // The indexed views agree with a scan of the raw edge list.
        for (id, _) in g.iter() {
            let scan_succ: Vec<NodeId> =
                g.edges().filter(|(f, _)| *f == id).map(|(_, t)| t).collect();
            let scan_pred: Vec<NodeId> =
                g.edges().filter(|(_, t)| *t == id).map(|(f, _)| f).collect();
            assert_eq!(g.successors(id).collect::<Vec<_>>(), scan_succ);
            assert_eq!(g.predecessors(id).collect::<Vec<_>>(), scan_pred);
            assert_eq!(g.fan_out(id), scan_succ.len());
            assert_eq!(g.fan_in(id), scan_pred.len());
        }
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.fan_in(pv), 1);
        assert_eq!(g.fan_in(qk), 0);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let (g, qk, pv) = attention_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains(&format!("n{} ", qk.0)));
        assert!(dot.contains(&format!("-> n{};", pv.0)));
        assert!(dot.contains("1024x64x1024"));
        assert!(dot.contains("shape=ellipse")); // softmax
    }

    #[test]
    fn display_lists_nodes() {
        let (g, ..) = attention_graph();
        let s = g.to_string();
        assert!(s.contains("qk^T") && s.contains("softmax[1024,1024]"), "{s}");
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = OpGraph::new();
        let a = g.add_elementwise("a", 4, 1);
        let b = g.add_elementwise("b", 4, 1);
        g.connect(a, b);
        g.connect(a, b);
    }
}
