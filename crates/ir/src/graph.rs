//! Operator graphs: matmuls plus transparent (softmax / elementwise) nodes.
//!
//! The workload models in `fusecu-models` are expressed as [`OpGraph`]s. For
//! dataflow purposes only matmuls matter; softmax, bias, activation and
//! residual nodes are *transparent* — FuseCU computes them on the fly in the
//! PE array's post-processing path (the paper's PE keeps the softmax unit of
//! the baseline design), so they neither block fusion nor add DRAM traffic
//! of their own beyond the tensors already flowing between matmuls.
//!
//! [`OpGraph::mm_chains`] extracts the maximal producer→consumer matmul
//! chains on which Principle 4 decides fusion.

use std::collections::HashMap;
use std::fmt;

use crate::chain::MmChain;
use crate::matmul::MatMul;

/// Index of a node within an [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of an edge within an [`OpGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

/// The operator performed by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A matrix multiplication.
    MatMul(MatMul),
    /// Row-wise softmax over an `[rows, cols]` tensor. Transparent for
    /// dataflow; executed by the softmax unit.
    Softmax {
        /// Number of rows the softmax normalizes independently.
        rows: u64,
        /// Row length.
        cols: u64,
    },
    /// Any elementwise map (bias add, GELU, residual add, layernorm scale…)
    /// over `elems` elements. Transparent for dataflow.
    Elementwise {
        /// Element count of the mapped tensor.
        elems: u64,
    },
}

impl OpKind {
    /// Whether the node is transparent for fusion purposes.
    pub fn is_transparent(&self) -> bool {
        !matches!(self, OpKind::MatMul(_))
    }

    /// The matmul, if this node is one.
    pub fn as_matmul(&self) -> Option<MatMul> {
        match self {
            OpKind::MatMul(mm) => Some(*mm),
            _ => None,
        }
    }

    /// Elements produced by the node.
    pub fn output_elems(&self) -> u64 {
        match self {
            OpKind::MatMul(mm) => mm.tensor_elems(crate::Operand::Out),
            OpKind::Softmax { rows, cols } => rows * cols,
            OpKind::Elementwise { elems } => *elems,
        }
    }
}

/// A node of an [`OpGraph`]: an operator plus an instance count.
///
/// `count` is the number of independent instances of the operator in one
/// forward pass — e.g. `batch × heads` for the per-head attention matmuls.
/// Every instance runs the same dataflow, so costs scale linearly with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNode {
    /// Human-readable name (`"q_proj"`, `"qk^T"`, …).
    pub name: String,
    /// The operator.
    pub kind: OpKind,
    /// Number of independent instances per forward pass.
    pub count: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    from: NodeId,
    to: NodeId,
}

/// A directed operator graph.
///
/// Edges mean "the producer's output tensor is (one of) the consumer's
/// input(s)". For matmul consumers the convention is that chained
/// intermediates arrive as the **left** operand (`A`); weight-style inputs
/// (`B`) come from memory and are not modeled as graph edges.
#[derive(Debug, Clone, Default)]
pub struct OpGraph {
    nodes: Vec<OpNode>,
    edges: Vec<Edge>,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> OpGraph {
        OpGraph::default()
    }

    /// Adds a matmul node with an instance count; returns its id.
    pub fn add_matmul(&mut self, name: impl Into<String>, mm: MatMul, count: u64) -> NodeId {
        self.add_node(name, OpKind::MatMul(mm), count)
    }

    /// Adds a softmax node.
    pub fn add_softmax(&mut self, name: impl Into<String>, rows: u64, cols: u64, count: u64) -> NodeId {
        self.add_node(name, OpKind::Softmax { rows, cols }, count)
    }

    /// Adds an elementwise node.
    pub fn add_elementwise(&mut self, name: impl Into<String>, elems: u64, count: u64) -> NodeId {
        self.add_node(name, OpKind::Elementwise { elems }, count)
    }

    fn add_node(&mut self, name: impl Into<String>, kind: OpKind, count: u64) -> NodeId {
        assert!(count > 0, "node instance count must be non-zero");
        let id = NodeId(self.nodes.len());
        self.nodes.push(OpNode {
            name: name.into(),
            kind,
            count,
        });
        id
    }

    /// Connects `from`'s output to `to`'s input.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or the edge would duplicate an
    /// existing one.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len(), "node id out of range");
        assert!(
            !self.edges.iter().any(|e| e.from == from && e.to == to),
            "duplicate edge {from:?} -> {to:?}"
        );
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to });
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &OpNode {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &OpNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n))
    }

    /// All matmul nodes with their ids.
    pub fn matmuls(&self) -> impl Iterator<Item = (NodeId, MatMul, u64)> + '_ {
        self.iter()
            .filter_map(|(id, n)| n.kind.as_matmul().map(|mm| (id, mm, n.count)))
    }

    /// Total MACs per forward pass (all instances).
    pub fn total_macs(&self) -> u64 {
        self.matmuls().map(|(_, mm, c)| mm.macs() * c).sum()
    }

    /// Out-degree of a node.
    pub fn fan_out(&self, id: NodeId) -> usize {
        self.edges.iter().filter(|e| e.from == id).count()
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.from == id)
            .map(|e| e.to)
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.to == id)
            .map(|e| e.from)
    }

    /// Follows transparent nodes downstream from `id` until reaching a
    /// matmul; returns it if the path is a chain of fan-out-1 transparent
    /// nodes each with exactly that single consumer.
    fn next_matmul(&self, id: NodeId) -> Option<NodeId> {
        if self.fan_out(id) != 1 {
            return None;
        }
        let mut cur = self.successors(id).next()?;
        loop {
            let node = self.node(cur);
            match node.kind {
                OpKind::MatMul(_) => return Some(cur),
                _ => {
                    // Transparent: must itself forward to exactly one node.
                    if self.fan_out(cur) != 1 {
                        return None;
                    }
                    cur = self.successors(cur).next()?;
                }
            }
        }
    }

    /// Renders the graph in Graphviz DOT syntax, marking matmuls as boxes
    /// (with shapes and counts) and transparent nodes as ellipses.
    ///
    /// ```
    /// use fusecu_ir::{MatMul, OpGraph};
    /// let mut g = OpGraph::new();
    /// let a = g.add_matmul("proj", MatMul::new(4, 4, 4), 2);
    /// let b = g.add_elementwise("gelu", 16, 2);
    /// g.connect(a, b);
    /// assert!(g.to_dot().contains("digraph"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph opgraph {\n  rankdir=TB;\n");
        for (id, n) in self.iter() {
            let (shape, label) = match n.kind {
                OpKind::MatMul(mm) => (
                    "box",
                    format!("{} x{}\\n{}x{}x{}", n.name, n.count, mm.m(), mm.k(), mm.l()),
                ),
                OpKind::Softmax { rows, cols } => {
                    ("ellipse", format!("{} x{}\\n[{rows},{cols}]", n.name, n.count))
                }
                OpKind::Elementwise { elems } => {
                    ("ellipse", format!("{} x{}\\n[{elems}]", n.name, n.count))
                }
            };
            let _ = writeln!(out, "  n{} [shape={shape}, label=\"{label}\"];", id.0);
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -> n{};", e.from.0, e.to.0);
        }
        out.push_str("}\n");
        out
    }

    /// Extracts the maximal fusable matmul chains of the graph.
    ///
    /// A chain extends from matmul `p` to matmul `q` when:
    /// * `p` reaches `q` through zero or more fan-out-1 transparent nodes,
    /// * `p`'s output shape matches `q`'s left-operand shape
    ///   (`q.m == p.m && q.k == p.l`),
    /// * both have equal instance counts (instances pair up one-to-one).
    ///
    /// Every matmul appears in exactly one returned chain (possibly of
    /// length 1). Chains are maximal: they cannot be extended in either
    /// direction. Returned order follows node insertion order of the chain
    /// heads.
    pub fn mm_chains(&self) -> Vec<(Vec<NodeId>, MmChain, u64)> {
        // successor (next chained matmul) for each matmul node
        let mut next: HashMap<NodeId, NodeId> = HashMap::new();
        let mut has_pred: HashMap<NodeId, bool> = HashMap::new();
        let mms: Vec<(NodeId, MatMul, u64)> = self.matmuls().collect();
        for (id, mm, count) in &mms {
            if let Some(succ) = self.next_matmul(*id) {
                let snode = self.node(succ);
                if let Some(smm) = snode.kind.as_matmul() {
                    let shape_ok = smm.m() == mm.m() && smm.k() == mm.l();
                    let count_ok = snode.count == *count;
                    // The consumer must not already be claimed by another
                    // producer (a matmul has one left operand).
                    if shape_ok && count_ok && !has_pred.get(&succ).copied().unwrap_or(false) {
                        next.insert(*id, succ);
                        has_pred.insert(succ, true);
                    }
                }
            }
        }
        let mut chains = Vec::new();
        for (id, _, count) in &mms {
            if has_pred.get(id).copied().unwrap_or(false) {
                continue; // not a chain head
            }
            let mut ids = vec![*id];
            let mut shapes = vec![self.node(*id).kind.as_matmul().expect("matmul node")];
            let mut cur = *id;
            while let Some(&succ) = next.get(&cur) {
                ids.push(succ);
                shapes.push(self.node(succ).kind.as_matmul().expect("matmul node"));
                cur = succ;
            }
            let chain = MmChain::try_new(shapes).expect("shape-checked while chaining");
            chains.push((ids, chain, *count));
        }
        chains
    }
}

impl fmt::Display for OpGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "OpGraph ({} nodes, {} edges)", self.nodes.len(), self.edges.len())?;
        for (id, n) in self.iter() {
            write!(f, "  [{}] {} x{}: ", id.0, n.name, n.count)?;
            match n.kind {
                OpKind::MatMul(mm) => write!(f, "{mm}")?,
                OpKind::Softmax { rows, cols } => write!(f, "softmax[{rows},{cols}]")?,
                OpKind::Elementwise { elems } => write!(f, "elementwise[{elems}]")?,
            }
            let succs: Vec<String> = self.successors(id).map(|s| s.0.to_string()).collect();
            if !succs.is_empty() {
                write!(f, "  -> {}", succs.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One attention head group: qk^T -> softmax -> pv.
    fn attention_graph() -> (OpGraph, NodeId, NodeId) {
        let mut g = OpGraph::new();
        let qk = g.add_matmul("qk^T", MatMul::new(1024, 64, 1024), 192);
        let sm = g.add_softmax("softmax", 1024, 1024, 192);
        let pv = g.add_matmul("pv", MatMul::new(1024, 1024, 64), 192);
        g.connect(qk, sm);
        g.connect(sm, pv);
        (g, qk, pv)
    }

    #[test]
    fn chain_through_softmax() {
        let (g, qk, pv) = attention_graph();
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 1);
        let (ids, chain, count) = &chains[0];
        assert_eq!(ids, &vec![qk, pv]);
        assert_eq!(chain.len(), 2);
        assert_eq!(*count, 192);
    }

    #[test]
    fn mismatched_shapes_break_chain() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 1);
        let b = g.add_matmul("b", MatMul::new(8, 15, 4), 1); // k != 16
        g.connect(a, b);
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 2);
        assert!(chains.iter().all(|(ids, ..)| ids.len() == 1));
    }

    #[test]
    fn mismatched_counts_break_chain() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 2);
        let b = g.add_matmul("b", MatMul::new(8, 16, 4), 1);
        g.connect(a, b);
        assert_eq!(g.mm_chains().len(), 2);
    }

    #[test]
    fn fan_out_blocks_fusion() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 1);
        let b = g.add_matmul("b", MatMul::new(8, 16, 4), 1);
        let c = g.add_elementwise("residual", 8 * 16, 1);
        g.connect(a, b);
        g.connect(a, c); // a's output also consumed elsewhere
        assert_eq!(g.mm_chains().len(), 2, "fan-out > 1 must not fuse");
    }

    #[test]
    fn three_matmul_chain_and_totals() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 3);
        let b = g.add_matmul("b", MatMul::new(8, 16, 32), 3);
        let c = g.add_matmul("c", MatMul::new(8, 32, 4), 3);
        g.connect(a, b);
        g.connect(b, c);
        let chains = g.mm_chains();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].1.len(), 3);
        assert_eq!(
            g.total_macs(),
            3 * (8 * 4 * 16 + 8 * 16 * 32 + 8 * 32 * 4)
        );
    }

    #[test]
    fn consumer_claimed_once() {
        // Two producers feeding one consumer: only one may chain into it.
        let mut g = OpGraph::new();
        let p1 = g.add_matmul("p1", MatMul::new(8, 4, 16), 1);
        let p2 = g.add_matmul("p2", MatMul::new(8, 4, 16), 1);
        let q = g.add_matmul("q", MatMul::new(8, 16, 4), 1);
        g.connect(p1, q);
        g.connect(p2, q);
        let chains = g.mm_chains();
        let chained: usize = chains.iter().map(|(ids, ..)| ids.len()).sum();
        assert_eq!(chained, 3, "every matmul appears exactly once");
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let (g, qk, pv) = attention_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains(&format!("n{} ", qk.0)));
        assert!(dot.contains(&format!("-> n{};", pv.0)));
        assert!(dot.contains("1024x64x1024"));
        assert!(dot.contains("shape=ellipse")); // softmax
    }

    #[test]
    fn display_lists_nodes() {
        let (g, ..) = attention_graph();
        let s = g.to_string();
        assert!(s.contains("qk^T") && s.contains("softmax[1024,1024]"), "{s}");
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = OpGraph::new();
        let a = g.add_elementwise("a", 4, 1);
        let b = g.add_elementwise("b", 4, 1);
        g.connect(a, b);
        g.connect(a, b);
    }
}
