//! The fusable-link DAG of an operator graph — the structural side of
//! whole-graph fusion planning.
//!
//! [`OpGraph::mm_chains`] decomposes a graph into linear chains, claiming
//! fan-in consumers greedily, which silently drops fusion candidates on
//! branchy graphs (Q/K/V fan-out, residual adds). [`MmDag`] instead keeps
//! *every* fusable producer→consumer link:
//!
//! * the producer reaches the consumer through zero or more fan-out-1
//!   transparent nodes (its full output is consumed there and nowhere
//!   else, so the intermediate can stay on chip),
//! * the producer's output shape matches the consumer's left operand
//!   (`q.m == p.m && q.k == p.l`),
//! * instance counts match (instances pair one-to-one).
//!
//! At a fan-in site several links target one consumer; at most one can be
//! realized (a matmul has a single left operand), and FuseCU's hardware
//! fuses two operators at a time, so a *fusion structure* is a matching on
//! the link set. Choosing the minimum-memory-access matching requires a
//! cost model and lives in `fusecu-fusion`'s planner; this module provides
//! the enumeration, the connected components the search decomposes over,
//! and a hashable identity for plan caching.

use crate::graph::{NodeId, OpGraph};
use crate::matmul::MatMul;

/// One fusable producer→consumer link of an operator graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuseLink {
    /// Index into [`MmDag::mms`] of the producer matmul.
    pub producer: usize,
    /// Index into [`MmDag::mms`] of the consumer matmul.
    pub consumer: usize,
}

/// The matmul-contracted view of an [`OpGraph`]: every matmul node (with
/// its id, shape, and instance count) plus every fusable link between
/// them. Transparent nodes are folded into the links.
///
/// `MmDag` is `Hash`/`Eq` on exactly the inputs fusion planning depends
/// on — shapes, counts, node identities, and link structure — making it
/// the natural memoization key for whole-graph plans.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct MmDag {
    mms: Vec<(NodeId, MatMul, u64)>,
    links: Vec<FuseLink>,
}

impl MmDag {
    /// Rebuilds a DAG from its parts, re-checking every link invariant
    /// (valid indices, no self-links, producer/consumer shape agreement,
    /// equal instance counts, distinct node ids). The reconstruction entry
    /// point for the disk persistence layer; `None` on any violation.
    /// In-process construction always goes through [`OpGraph::mm_dag`].
    pub fn from_parts(mms: Vec<(NodeId, MatMul, u64)>, links: Vec<FuseLink>) -> Option<MmDag> {
        for (i, (id, ..)) in mms.iter().enumerate() {
            if mms[..i].iter().any(|(other, ..)| other == id) {
                return None;
            }
        }
        for l in &links {
            let (_, pmm, pcount) = mms.get(l.producer)?;
            let (_, cmm, ccount) = mms.get(l.consumer)?;
            if l.producer == l.consumer
                || cmm.m() != pmm.m()
                || cmm.k() != pmm.l()
                || ccount != pcount
            {
                return None;
            }
        }
        Some(MmDag { mms, links })
    }

    /// The matmul nodes: `(graph node id, shape, instance count)`, in node
    /// insertion order.
    pub fn mms(&self) -> &[(NodeId, MatMul, u64)] {
        &self.mms
    }

    /// The fusable links, ordered by producer.
    pub fn links(&self) -> &[FuseLink] {
        &self.links
    }

    /// Number of matmuls.
    pub fn mm_count(&self) -> usize {
        self.mms.len()
    }

    /// Number of fusable links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Index into [`MmDag::mms`] of a graph node id, if it is a matmul.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.mms.iter().position(|(n, ..)| *n == id)
    }

    /// Whether any consumer has more than one incoming link (a fan-in
    /// site, where greedy chain claiming is lossy).
    pub fn has_fan_in(&self) -> bool {
        let mut seen = vec![false; self.mms.len()];
        self.links.iter().any(|l| {
            let dup = seen[l.consumer];
            seen[l.consumer] = true;
            dup
        })
    }

    /// Connected components of the link graph, each a sorted list of
    /// matmul indices. Isolated matmuls (no links) form singleton
    /// components. Components are ordered by their smallest member.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.mms.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for l in &self.links {
            let (a, b) = (find(&mut parent, l.producer), find(&mut parent, l.consumer));
            if a != b {
                parent[a.max(b)] = a.min(b);
            }
        }
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut comp_of_root: Vec<Option<usize>> = vec![None; n];
        for i in 0..n {
            let root = find(&mut parent, i);
            match comp_of_root[root] {
                Some(c) => comps[c].push(i),
                None => {
                    comp_of_root[root] = Some(comps.len());
                    comps.push(vec![i]);
                }
            }
        }
        comps
    }

    /// Every simple directed path of `2..=max_len` matmuls through the
    /// fusable links, as producer-to-consumer index sequences — the
    /// candidate set of depth-weighted path-cover planning.
    ///
    /// Link construction gives every producer at most one outgoing link
    /// (fan-out blocks fusion), so the link graph is a forest of in-trees
    /// and each path is a contiguous run: enumeration walks the unique
    /// successor from every start, emitting each prefix of length ≥ 2.
    /// Paths start in matmul order and grow shortest-first, so depth-2
    /// paths from one start precede its deeper extensions.
    pub fn simple_paths(&self, max_len: usize) -> Vec<Vec<usize>> {
        let mut succ: Vec<Option<usize>> = vec![None; self.mms.len()];
        for l in &self.links {
            succ[l.producer] = Some(l.consumer);
        }
        let mut paths = Vec::new();
        for start in 0..self.mms.len() {
            let mut path = vec![start];
            while path.len() < max_len {
                let Some(next) = succ[*path.last().expect("path is non-empty")] else {
                    break;
                };
                if path.contains(&next) {
                    break; // cycle guard; unreachable on a DAG
                }
                path.push(next);
                paths.push(path.clone());
            }
        }
        paths
    }

    /// The links whose endpoints both lie in `component` (a member list as
    /// returned by [`MmDag::components`]), in link order.
    pub fn component_links(&self, component: &[usize]) -> Vec<FuseLink> {
        self.links
            .iter()
            .filter(|l| component.contains(&l.producer) && component.contains(&l.consumer))
            .copied()
            .collect()
    }
}

impl OpGraph {
    /// Builds the fusable-link DAG of this graph: every matmul plus every
    /// producer→consumer link a fused pair could realize. See the module
    /// docs for the link conditions.
    pub fn mm_dag(&self) -> MmDag {
        let mms: Vec<(NodeId, MatMul, u64)> = self.matmuls().collect();
        let mut links = Vec::new();
        for (pi, (id, mm, count)) in mms.iter().enumerate() {
            let Some(succ) = self.next_matmul(*id) else {
                continue;
            };
            let snode = self.node(succ);
            let Some(smm) = snode.kind.as_matmul() else {
                continue;
            };
            if smm.m() == mm.m() && smm.k() == mm.l() && snode.count == *count {
                let ci = mms
                    .iter()
                    .position(|(n, ..)| *n == succ)
                    .expect("successor is a matmul of this graph");
                links.push(FuseLink {
                    producer: pi,
                    consumer: ci,
                });
            }
        }
        MmDag { mms, links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// p1 and p2 meet in a residual add that feeds q: a fan-in site with
    /// two candidate links.
    fn fan_in_graph() -> (OpGraph, [NodeId; 3]) {
        let mut g = OpGraph::new();
        let p1 = g.add_matmul("p1", MatMul::new(8, 4, 16), 1);
        let p2 = g.add_matmul("p2", MatMul::new(8, 64, 16), 1);
        let add = g.add_elementwise("add", 8 * 16, 1);
        let q = g.add_matmul("q", MatMul::new(8, 16, 4), 1);
        g.connect(p1, add);
        g.connect(p2, add);
        g.connect(add, q);
        (g, [p1, p2, q])
    }

    #[test]
    fn fan_in_keeps_every_candidate_link() {
        let (g, [p1, p2, q]) = fan_in_graph();
        let dag = g.mm_dag();
        assert_eq!(dag.mm_count(), 3);
        assert_eq!(dag.link_count(), 2, "both producers stay candidates");
        assert!(dag.has_fan_in());
        let qi = dag.index_of(q).unwrap();
        for (p, l) in [(p1, dag.links()[0]), (p2, dag.links()[1])] {
            assert_eq!(l.producer, dag.index_of(p).unwrap());
            assert_eq!(l.consumer, qi);
        }
        // mm_chains, by contrast, keeps only one of the two.
        assert_eq!(g.mm_chains().len(), 2);
    }

    #[test]
    fn chain_graph_links_mirror_the_chain() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 3);
        let s = g.add_softmax("sm", 8, 16, 3);
        let b = g.add_matmul("b", MatMul::new(8, 16, 32), 3);
        let c = g.add_matmul("c", MatMul::new(8, 32, 4), 3);
        g.connect(a, s);
        g.connect(s, b);
        g.connect(b, c);
        let dag = g.mm_dag();
        assert_eq!(dag.mm_count(), 3);
        assert_eq!(dag.link_count(), 2);
        assert!(!dag.has_fan_in());
        assert_eq!(dag.components(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn simple_paths_enumerate_every_run() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 3);
        let s = g.add_softmax("sm", 8, 16, 3);
        let b = g.add_matmul("b", MatMul::new(8, 16, 32), 3);
        let c = g.add_matmul("c", MatMul::new(8, 32, 4), 3);
        g.connect(a, s);
        g.connect(s, b);
        g.connect(b, c);
        let dag = g.mm_dag();
        // Runs of the 3-chain: ab, abc, bc.
        assert_eq!(
            dag.simple_paths(4),
            vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]]
        );
        // Depth cap 2 keeps exactly the links.
        let pairs: Vec<Vec<usize>> = dag
            .links()
            .iter()
            .map(|l| vec![l.producer, l.consumer])
            .collect();
        let mut capped = dag.simple_paths(2);
        capped.sort();
        let mut pairs_sorted = pairs;
        pairs_sorted.sort();
        assert_eq!(capped, pairs_sorted);
    }

    #[test]
    fn simple_paths_respect_fan_in() {
        let (g, _) = fan_in_graph();
        let dag = g.mm_dag();
        // Two producers into one consumer: two depth-2 paths, nothing
        // deeper (the consumer has no successor).
        let mut paths = dag.simple_paths(8);
        paths.sort();
        assert_eq!(paths, vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn fan_out_and_count_mismatch_block_links() {
        let mut g = OpGraph::new();
        let a = g.add_matmul("a", MatMul::new(8, 4, 16), 1);
        let b = g.add_matmul("b", MatMul::new(8, 16, 4), 1);
        let r = g.add_elementwise("residual", 8 * 16, 1);
        g.connect(a, b);
        g.connect(a, r); // fan-out > 1: a's output is needed elsewhere
        let c = g.add_matmul("c", MatMul::new(8, 4, 16), 2);
        let d = g.add_matmul("d", MatMul::new(8, 16, 4), 1); // count mismatch
        g.connect(c, d);
        let dag = g.mm_dag();
        assert_eq!(dag.link_count(), 0);
        // Four isolated matmuls, four singleton components.
        assert_eq!(dag.components().len(), 4);
    }

    #[test]
    fn components_split_on_link_connectivity() {
        let (g, _) = fan_in_graph();
        let mut g = g;
        let lone = g.add_matmul("lone", MatMul::new(4, 4, 4), 1);
        let dag = g.mm_dag();
        let comps = dag.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![dag.index_of(lone).unwrap()]);
        assert_eq!(dag.component_links(&comps[0]).len(), 2);
        assert!(dag.component_links(&comps[1]).is_empty());
    }

    #[test]
    fn dag_is_a_stable_cache_identity() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |dag: &MmDag| {
            let mut h = DefaultHasher::new();
            dag.hash(&mut h);
            h.finish()
        };
        let (g, _) = fan_in_graph();
        assert_eq!(g.mm_dag(), g.mm_dag());
        assert_eq!(hash(&g.mm_dag()), hash(&g.mm_dag()));
        // A shape change is a different identity.
        let mut g2 = OpGraph::new();
        let p1 = g2.add_matmul("p1", MatMul::new(8, 4, 16), 1);
        let p2 = g2.add_matmul("p2", MatMul::new(8, 32, 16), 1); // k differs
        let add = g2.add_elementwise("add", 8 * 16, 1);
        let q = g2.add_matmul("q", MatMul::new(8, 16, 4), 1);
        g2.connect(p1, add);
        g2.connect(p2, add);
        g2.connect(add, q);
        assert_ne!(g.mm_dag(), g2.mm_dag());
    }
}
