//! # fusecu-ir — tensor and operator intermediate representation
//!
//! This crate defines the small IR that every other crate in the FuseCU
//! reproduction consumes:
//!
//! * [`MatMul`] — a matrix-multiplication operator `C[M,L] = A[M,K] × B[K,L]`,
//!   the tensor operator the paper's principles are derived on;
//! * [`MmDim`] / [`Operand`] — the dimension and tensor roles of a matmul;
//! * [`MmChain`] — a producer→consumer chain of matmuls sharing intermediate
//!   tensors, the unit on which operator fusion is decided (Principle 4);
//! * [`graph::OpGraph`] — an operator graph with matmul and "transparent"
//!   (softmax / elementwise) nodes, from which fusable chains are extracted.
//!
//! All sizes are in *elements*. The evaluated accelerators are INT8 engines
//! (TPUv4i-class), so one element is one byte and buffer capacities quoted in
//! bytes can be compared to element counts directly; a different element
//! width only rescales buffer sizes and never reorders dataflow choices.
//!
//! ```
//! use fusecu_ir::{MatMul, MmDim, Operand};
//!
//! // The BERT projection matmul from the paper's §III-A example.
//! let mm = MatMul::new(1024, 768, 768);
//! assert_eq!(mm.min_dim(), 768);
//! assert_eq!(mm.tensor_elems(Operand::Rhs), 768 * 768);
//! assert_eq!(mm.smallest_tensor(), Operand::Rhs);
//! assert_eq!(mm.macs(), 1024 * 768 * 768);
//! assert_eq!(mm.dim(MmDim::M), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod conv;
pub mod graph;
pub mod graph_plan;
pub mod matmul;

pub use chain::{ChainError, MmChain};
pub use conv::Conv2d;
pub use graph::{EdgeId, NodeId, OpGraph, OpKind, OpNode};
pub use graph_plan::{FuseLink, MmDag};
pub use matmul::{MatMul, MmDim, Operand, ShapeError};
