//! Convolution as a tensor operator.
//!
//! The paper notes (§III-B end) that "Principle 1–4 can be extended to
//! other tensor operators, as all tensor operators can be represented as
//! for-loops". This module provides the standard bridge for convolutions:
//! a [`Conv2d`] lowers to the im2col matmul whose dimensions are
//!
//! * `M = N · H_out · W_out` (output pixels),
//! * `K = C_in · R · S` (receptive field),
//! * `L = C_out` (filters),
//!
//! after which every principle, searcher, and platform model in this
//! workspace applies unchanged. (The im2col expansion itself re-reads input
//! halo pixels; the returned matmul models the post-lowering operator, the
//! same granularity DAT/MAESTRO-style models use.)

use std::fmt;

use crate::matmul::{MatMul, ShapeError};

/// A 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2d {
    /// Batch size.
    pub batch: u64,
    /// Input channels.
    pub in_channels: u64,
    /// Input height.
    pub height: u64,
    /// Input width.
    pub width: u64,
    /// Output channels (filter count).
    pub out_channels: u64,
    /// Kernel height.
    pub kernel_h: u64,
    /// Kernel width.
    pub kernel_w: u64,
    /// Stride (same for both axes).
    pub stride: u64,
    /// Symmetric zero padding (same for both axes).
    pub padding: u64,
}

impl Conv2d {
    /// A square-kernel convolution with stride 1 and "same"-style padding
    /// `kernel / 2`.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn same(batch: u64, in_channels: u64, hw: u64, out_channels: u64, kernel: u64) -> Conv2d {
        let conv = Conv2d {
            batch,
            in_channels,
            height: hw,
            width: hw,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: kernel / 2,
        };
        assert!(conv.output_h() > 0 && conv.output_w() > 0, "degenerate convolution");
        conv
    }

    /// Output height.
    pub fn output_h(&self) -> u64 {
        (self.height + 2 * self.padding).saturating_sub(self.kernel_h) / self.stride + 1
    }

    /// Output width.
    pub fn output_w(&self) -> u64 {
        (self.width + 2 * self.padding).saturating_sub(self.kernel_w) / self.stride + 1
    }

    /// Multiply-accumulate count.
    pub fn macs(&self) -> u64 {
        self.batch
            * self.out_channels
            * self.output_h()
            * self.output_w()
            * self.in_channels
            * self.kernel_h
            * self.kernel_w
    }

    /// Lowers to the im2col matmul `[M, K] × [K, L]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] when the output extent collapses to zero.
    pub fn to_matmul(&self) -> Result<MatMul, ShapeError> {
        MatMul::try_new(
            self.batch * self.output_h() * self.output_w(),
            self.in_channels * self.kernel_h * self.kernel_w,
            self.out_channels,
        )
    }
}

impl fmt::Display for Conv2d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conv {}x{}x{}x{} -> {} ch, {}x{} kernel, stride {}, pad {}",
            self.batch,
            self.in_channels,
            self.height,
            self.width,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_convolution_keeps_extent() {
        let c = Conv2d::same(1, 64, 56, 128, 3);
        assert_eq!(c.output_h(), 56);
        assert_eq!(c.output_w(), 56);
    }

    #[test]
    fn im2col_dimensions() {
        // ResNet-style 3x3: N=8, 64ch 56x56 -> 64ch.
        let c = Conv2d::same(8, 64, 56, 64, 3);
        let mm = c.to_matmul().unwrap();
        assert_eq!(mm.m(), 8 * 56 * 56);
        assert_eq!(mm.k(), 64 * 9);
        assert_eq!(mm.l(), 64);
        assert_eq!(mm.macs(), c.macs());
    }

    #[test]
    fn strided_convolution_shrinks_output() {
        let c = Conv2d {
            batch: 1,
            in_channels: 3,
            height: 224,
            width: 224,
            out_channels: 64,
            kernel_h: 7,
            kernel_w: 7,
            stride: 2,
            padding: 3,
        };
        assert_eq!(c.output_h(), 112);
        let mm = c.to_matmul().unwrap();
        assert_eq!(mm.m(), 112 * 112);
        assert_eq!(mm.k(), 3 * 49);
    }

    #[test]
    fn pointwise_convolution_is_a_plain_matmul() {
        let c = Conv2d::same(4, 256, 14, 512, 1);
        let mm = c.to_matmul().unwrap();
        assert_eq!(mm.k(), 256);
        assert_eq!(mm.l(), 512);
    }

    #[test]
    fn principles_apply_to_lowered_convolutions() {
        // The point of the extension: the regime table and optimality carry
        // over to conv operators once lowered.
        let mm = Conv2d::same(8, 64, 56, 64, 3).to_matmul().unwrap();
        assert!(mm.min_dim() > 0);
        assert!(mm.ideal_ma() < mm.macs());
    }

    #[test]
    fn display_renders() {
        let s = Conv2d::same(1, 3, 32, 16, 3).to_string();
        assert!(s.contains("3x3 kernel"), "{s}");
    }
}
