//! The matrix-multiplication operator and its dimension / operand roles.
//!
//! The paper derives all four principles on the canonical matmul
//! `C[M,L] = A[M,K] × B[K,L]` and notes (§III-B end) that the derivation
//! carries to any tensor operator expressible as a loop nest. Everything in
//! this reproduction is therefore phrased in terms of the three matmul
//! dimensions [`MmDim`] and three operand tensors [`Operand`].

use std::fmt;

/// One of the three loop dimensions of a matmul `C[M,L] = A[M,K] × B[K,L]`.
///
/// * `M` — rows of the left operand and of the output;
/// * `K` — the contraction (reduction) dimension;
/// * `L` — columns of the right operand and of the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MmDim {
    /// Rows of `A` and `C`.
    M,
    /// The reduction dimension shared by `A` and `B`.
    K,
    /// Columns of `B` and `C`.
    L,
}

impl MmDim {
    /// All three dimensions, in canonical `M, K, L` order.
    pub const ALL: [MmDim; 3] = [MmDim::M, MmDim::K, MmDim::L];

    /// The two operand tensors whose footprint contains this dimension.
    ///
    /// ```
    /// use fusecu_ir::{MmDim, Operand};
    /// assert_eq!(MmDim::K.tensors(), [Operand::Lhs, Operand::Rhs]);
    /// ```
    pub fn tensors(self) -> [Operand; 2] {
        match self {
            MmDim::M => [Operand::Lhs, Operand::Out],
            MmDim::K => [Operand::Lhs, Operand::Rhs],
            MmDim::L => [Operand::Rhs, Operand::Out],
        }
    }

    /// The unique operand tensor that does **not** contain this dimension.
    ///
    /// In the Two-NRA analysis this is the *redundant-access* tensor when
    /// `self` is the dimension kept untiled's complement; see
    /// `fusecu-dataflow`.
    pub fn absent_tensor(self) -> Operand {
        match self {
            MmDim::M => Operand::Rhs,
            MmDim::K => Operand::Out,
            MmDim::L => Operand::Lhs,
        }
    }

    /// The remaining dimension given two distinct dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, since then the "third" dimension is ambiguous.
    pub fn other(a: MmDim, b: MmDim) -> MmDim {
        assert_ne!(a, b, "MmDim::other requires two distinct dimensions");
        *MmDim::ALL
            .iter()
            .find(|d| **d != a && **d != b)
            .expect("three dims, two excluded, one remains")
    }

    /// Short lowercase name used in rendered dataflow descriptors.
    pub fn name(self) -> &'static str {
        match self {
            MmDim::M => "m",
            MmDim::K => "k",
            MmDim::L => "l",
        }
    }
}

impl fmt::Display for MmDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One of the three operand tensors of a matmul.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// The left input `A[M,K]`.
    Lhs,
    /// The right input `B[K,L]`.
    Rhs,
    /// The output `C[M,L]`.
    Out,
}

impl Operand {
    /// All three operands, in `A, B, C` order.
    pub const ALL: [Operand; 3] = [Operand::Lhs, Operand::Rhs, Operand::Out];

    /// The two dimensions spanned by this operand's footprint.
    pub fn dims(self) -> [MmDim; 2] {
        match self {
            Operand::Lhs => [MmDim::M, MmDim::K],
            Operand::Rhs => [MmDim::K, MmDim::L],
            Operand::Out => [MmDim::M, MmDim::L],
        }
    }

    /// The unique dimension **not** in this operand's footprint.
    ///
    /// When this operand is held stationary, iteration over the missing
    /// dimension is what forces the other two tensors to be re-streamed.
    pub fn missing_dim(self) -> MmDim {
        match self {
            Operand::Lhs => MmDim::L,
            Operand::Rhs => MmDim::M,
            Operand::Out => MmDim::K,
        }
    }

    /// Whether this operand's footprint contains `dim`.
    pub fn contains(self, dim: MmDim) -> bool {
        self.dims().contains(&dim)
    }

    /// Conventional single-letter name (`A`, `B`, `C`).
    pub fn name(self) -> &'static str {
        match self {
            Operand::Lhs => "A",
            Operand::Rhs => "B",
            Operand::Out => "C",
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when constructing a matmul with a zero-sized dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeError {
    dim: MmDim,
}

impl ShapeError {
    /// The offending dimension.
    pub fn dim(&self) -> MmDim {
        self.dim
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matmul dimension {} must be non-zero", self.dim)
    }
}

impl std::error::Error for ShapeError {}

/// A matrix multiplication `C[M,L] = A[M,K] × B[K,L]`.
///
/// Dimension sizes are in elements and are strictly positive. Batched
/// occurrences (per attention head, per layer, per batch element) are
/// represented by repeating the operator at the workload level
/// (`fusecu-models`), not inside this type, because dataflow decisions are
/// made per matmul instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatMul {
    m: u64,
    k: u64,
    l: u64,
}

impl MatMul {
    /// Creates a matmul with the given `M, K, L` dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`MatMul::try_new`] for a
    /// fallible constructor.
    pub fn new(m: u64, k: u64, l: u64) -> MatMul {
        MatMul::try_new(m, k, l).expect("matmul dimensions must be non-zero")
    }

    /// Fallible constructor; returns [`ShapeError`] on a zero dimension.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first dimension (in `M, K, L` order) that
    /// is zero.
    pub fn try_new(m: u64, k: u64, l: u64) -> Result<MatMul, ShapeError> {
        for (dim, size) in [(MmDim::M, m), (MmDim::K, k), (MmDim::L, l)] {
            if size == 0 {
                return Err(ShapeError { dim });
            }
        }
        Ok(MatMul { m, k, l })
    }

    /// Size of one dimension.
    pub fn dim(&self, dim: MmDim) -> u64 {
        match dim {
            MmDim::M => self.m,
            MmDim::K => self.k,
            MmDim::L => self.l,
        }
    }

    /// The `M` dimension size.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// The `K` (reduction) dimension size.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The `L` dimension size.
    pub fn l(&self) -> u64 {
        self.l
    }

    /// Footprint of one operand tensor in elements.
    pub fn tensor_elems(&self, op: Operand) -> u64 {
        let [a, b] = op.dims();
        self.dim(a) * self.dim(b)
    }

    /// Total multiply-accumulate count `M·K·L`.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.l
    }

    /// The smallest of the three dimension sizes (`D_min` in the paper).
    pub fn min_dim(&self) -> u64 {
        self.m.min(self.k).min(self.l)
    }

    /// A dimension of minimal size (ties broken in `M, K, L` order).
    pub fn min_dim_role(&self) -> MmDim {
        *MmDim::ALL
            .iter()
            .min_by_key(|d| self.dim(**d))
            .expect("ALL is non-empty")
    }

    /// The operand with the smallest footprint (`Tensor_min`'s owner), ties
    /// broken in `A, B, C` order.
    pub fn smallest_tensor(&self) -> Operand {
        *Operand::ALL
            .iter()
            .min_by_key(|t| self.tensor_elems(**t))
            .expect("ALL is non-empty")
    }

    /// Footprint of the smallest tensor in elements (`Tensor_min`).
    pub fn min_tensor_elems(&self) -> u64 {
        self.tensor_elems(self.smallest_tensor())
    }

    /// Sum of all three tensor footprints: the ideal (infinite-buffer)
    /// memory access, i.e. the communication lower bound for an unfused
    /// matmul.
    pub fn ideal_ma(&self) -> u64 {
        Operand::ALL.iter().map(|t| self.tensor_elems(*t)).sum()
    }

    /// The matmul with `A` and `B` swapped (`Cᵀ = Bᵀ × Aᵀ`). Dataflow
    /// analyses are symmetric under this transposition, which tests exploit.
    pub fn transposed(&self) -> MatMul {
        MatMul {
            m: self.l,
            k: self.k,
            l: self.m,
        }
    }
}

impl fmt::Display for MatMul {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C[{m},{l}] = A[{m},{k}] x B[{k},{l}]",
            m = self.m,
            k = self.k,
            l = self.l
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_tensors_are_consistent() {
        for dim in MmDim::ALL {
            // A dim's two containing tensors plus its absent tensor cover all.
            let mut ts = dim.tensors().to_vec();
            ts.push(dim.absent_tensor());
            ts.sort();
            assert_eq!(ts, Operand::ALL.to_vec());
            for t in dim.tensors() {
                assert!(t.contains(dim));
            }
            assert!(!dim.absent_tensor().contains(dim));
        }
        for op in Operand::ALL {
            assert!(!op.contains(op.missing_dim()));
        }
    }

    #[test]
    fn other_dim_is_the_third() {
        assert_eq!(MmDim::other(MmDim::M, MmDim::K), MmDim::L);
        assert_eq!(MmDim::other(MmDim::K, MmDim::M), MmDim::L);
        assert_eq!(MmDim::other(MmDim::M, MmDim::L), MmDim::K);
        assert_eq!(MmDim::other(MmDim::K, MmDim::L), MmDim::M);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn other_dim_rejects_equal_inputs() {
        let _ = MmDim::other(MmDim::M, MmDim::M);
    }

    #[test]
    fn footprints_match_definition() {
        let mm = MatMul::new(4, 5, 6);
        assert_eq!(mm.tensor_elems(Operand::Lhs), 20);
        assert_eq!(mm.tensor_elems(Operand::Rhs), 30);
        assert_eq!(mm.tensor_elems(Operand::Out), 24);
        assert_eq!(mm.macs(), 120);
        assert_eq!(mm.ideal_ma(), 74);
        assert_eq!(mm.min_dim(), 4);
        assert_eq!(mm.min_dim_role(), MmDim::M);
        assert_eq!(mm.smallest_tensor(), Operand::Lhs);
        assert_eq!(mm.min_tensor_elems(), 20);
    }

    #[test]
    fn bert_example_from_paper() {
        // §III-A example: A(1024,768) x B(768,768); Dmin²/2 = 294 912 and
        // Tensor_min = 589 824 bound the Two-NRA regime for BS = 512 KiB.
        let mm = MatMul::new(1024, 768, 768);
        assert_eq!(mm.min_dim() * mm.min_dim() / 2, 294_912);
        assert_eq!(mm.min_tensor_elems(), 589_824);
        assert_eq!(mm.smallest_tensor(), Operand::Rhs);
    }

    #[test]
    fn zero_dim_rejected() {
        assert_eq!(MatMul::try_new(1, 0, 3).unwrap_err().dim(), MmDim::K);
        assert_eq!(
            MatMul::try_new(0, 0, 3).unwrap_err().to_string(),
            "matmul dimension m must be non-zero"
        );
        assert!(MatMul::try_new(1, 1, 1).is_ok());
    }

    #[test]
    fn transposed_swaps_m_and_l() {
        let mm = MatMul::new(4, 5, 6);
        let t = mm.transposed();
        assert_eq!((t.m(), t.k(), t.l()), (6, 5, 4));
        assert_eq!(t.transposed(), mm);
        assert_eq!(t.macs(), mm.macs());
        assert_eq!(t.ideal_ma(), mm.ideal_ma());
    }

    #[test]
    fn display_formats() {
        let mm = MatMul::new(2, 3, 4);
        assert_eq!(mm.to_string(), "C[2,4] = A[2,3] x B[3,4]");
        assert_eq!(MmDim::K.to_string(), "k");
        assert_eq!(Operand::Out.to_string(), "C");
    }
}
