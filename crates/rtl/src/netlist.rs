//! Hierarchical structural netlists with exact area rollup.

use std::collections::BTreeMap;
use std::fmt;

use crate::cells::Cell;

/// A module: a named bag of leaf cells plus counted sub-module instances.
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    cells: Vec<(Cell, u64)>,
    children: Vec<(Module, u64)>,
}

impl Module {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            cells: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `count` leaf cells; returns `self` for chaining.
    pub fn cell(mut self, cell: Cell, count: u64) -> Module {
        self.cells.push((cell, count));
        self
    }

    /// Adds `count` instances of a sub-module; returns `self` for chaining.
    pub fn child(mut self, module: Module, count: u64) -> Module {
        self.children.push((module, count));
        self
    }

    /// Total gate equivalents, exact rollup over the hierarchy.
    pub fn gate_equivalents(&self) -> f64 {
        let leaf: f64 = self
            .cells
            .iter()
            .map(|(c, n)| c.gate_equivalents() * *n as f64)
            .sum();
        let sub: f64 = self
            .children
            .iter()
            .map(|(m, n)| m.gate_equivalents() * *n as f64)
            .sum();
        leaf + sub
    }

    /// Total area in µm².
    pub fn area_um2(&self) -> f64 {
        self.gate_equivalents() * crate::cells::UM2_PER_GE
    }

    /// Area of every direct child (instances multiplied), for breakdowns.
    pub fn child_areas(&self) -> Vec<(&str, f64)> {
        self.children
            .iter()
            .map(|(m, n)| (m.name(), m.area_um2() * *n as f64))
            .collect()
    }

    /// Flattened leaf-cell census over the whole hierarchy.
    pub fn cell_census(&self) -> BTreeMap<&'static str, u64> {
        let mut census = BTreeMap::new();
        self.census_into(1, &mut census);
        census
    }

    fn census_into(&self, mult: u64, census: &mut BTreeMap<&'static str, u64>) {
        for (c, n) in &self.cells {
            *census.entry(c.name()).or_insert(0) += n * mult;
        }
        for (m, n) in &self.children {
            m.census_into(mult * n, census);
        }
    }

    /// Finds the total area contributed by all instances of a (deeply
    /// nested) child module with the given name.
    pub fn area_of(&self, name: &str) -> f64 {
        let mut total = 0.0;
        self.area_of_into(1.0, name, &mut total);
        total
    }

    fn area_of_into(&self, mult: f64, name: &str, total: &mut f64) {
        for (m, n) in &self.children {
            if m.name() == name {
                *total += m.area_um2() * *n as f64 * mult;
            } else {
                m.area_of_into(mult * *n as f64, name, total);
            }
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {:.1} um2", self.name, self.area_um2())?;
        for (m, n) in &self.children {
            writeln!(f, "  {} x{}: {:.1} um2", m.name(), n, m.area_um2() * *n as f64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_is_linear() {
        let leaf = Module::new("leaf").cell(Cell::Gate, 10);
        let mid = Module::new("mid").child(leaf.clone(), 3);
        let top = Module::new("top").child(mid, 2).cell(Cell::Gate, 5);
        assert!((top.gate_equivalents() - (2.0 * 30.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn census_multiplies_instances() {
        let pe = Module::new("pe").cell(Cell::Mult8, 1).cell(Cell::RegBit, 48);
        let array = Module::new("array").child(pe, 16);
        let census = array.cell_census();
        assert_eq!(census["mult8"], 16);
        assert_eq!(census["reg_bit"], 16 * 48);
    }

    #[test]
    fn area_of_finds_nested_instances() {
        let mux = Module::new("portmux").cell(Cell::Mux2Bit, 8);
        let cu = Module::new("cu").child(mux.clone(), 4);
        let top = Module::new("top").child(cu, 2);
        let direct = mux.area_um2();
        assert!((top.area_of("portmux") - 8.0 * direct).abs() < 1e-9);
        assert_eq!(top.area_of("absent"), 0.0);
    }

    #[test]
    fn display_lists_children() {
        let top = Module::new("top").child(Module::new("pe").cell(Cell::Gate, 1), 4);
        let s = top.to_string();
        assert!(s.contains("top:") && s.contains("pe x4"), "{s}");
    }
}
