//! The 28 nm leaf-cell library.
//!
//! Areas are expressed in **gate equivalents** (GE, the footprint of one
//! 2-input NAND) and converted to µm² with the 28 nm HKMG NAND2 footprint
//! of ≈ 0.49 µm². GE counts for arithmetic blocks follow standard synthesis
//! results: an 8×8 Booth multiplier ≈ 420 GE, a 32-bit carry-lookahead
//! adder ≈ 230 GE, a scan flop ≈ 5 GE/bit, a 2:1 mux ≈ 2.1 GE/bit.
//! Absolute numbers matter less than their ratios — Fig 12 reports
//! *relative* overheads, which depend only on the structure and these
//! ratios.

use std::fmt;

/// Area of one gate equivalent at 28 nm, in µm².
pub const UM2_PER_GE: f64 = 0.49;

/// A leaf standard-cell block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cell {
    /// 8×8-bit signed multiplier (Booth, Wallace tree).
    Mult8,
    /// 32-bit carry-lookahead adder.
    Add32,
    /// One register bit (scan flop).
    RegBit,
    /// One 2:1 mux bit.
    Mux2Bit,
    /// One exponent/LUT slice of the softmax unit datapath.
    SoftmaxSlice,
    /// Miscellaneous control logic, counted per NAND2-equivalent gate.
    Gate,
}

impl Cell {
    /// Gate-equivalent count of the cell.
    pub fn gate_equivalents(self) -> f64 {
        match self {
            Cell::Mult8 => 420.0,
            Cell::Add32 => 230.0,
            Cell::RegBit => 5.0,
            Cell::Mux2Bit => 2.1,
            Cell::SoftmaxSlice => 1_200.0,
            Cell::Gate => 1.0,
        }
    }

    /// Cell area in µm² at 28 nm.
    pub fn area_um2(self) -> f64 {
        self.gate_equivalents() * UM2_PER_GE
    }

    /// Library name.
    pub fn name(self) -> &'static str {
        match self {
            Cell::Mult8 => "mult8",
            Cell::Add32 => "add32",
            Cell::RegBit => "reg_bit",
            Cell::Mux2Bit => "mux2_bit",
            Cell::SoftmaxSlice => "softmax_slice",
            Cell::Gate => "gate",
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_sane() {
        // A multiplier dwarfs a mux bit; a flop costs a few gates.
        assert!(Cell::Mult8.gate_equivalents() > 100.0 * Cell::Mux2Bit.gate_equivalents());
        assert!(Cell::RegBit.gate_equivalents() > Cell::Mux2Bit.gate_equivalents());
        assert!(Cell::Add32.gate_equivalents() < Cell::Mult8.gate_equivalents());
    }

    #[test]
    fn area_conversion() {
        assert!((Cell::Gate.area_um2() - UM2_PER_GE).abs() < 1e-12);
        assert!(Cell::Mult8.area_um2() > 200.0);
    }

    #[test]
    fn names_are_unique() {
        let all = [
            Cell::Mult8,
            Cell::Add32,
            Cell::RegBit,
            Cell::Mux2Bit,
            Cell::SoftmaxSlice,
            Cell::Gate,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
