//! Elaboration of the evaluated designs: the TPUv4i-style baseline fabric
//! and FuseCU.
//!
//! Component inventory follows §IV-B and Fig 12's caption: multipliers,
//! adders, accumulators, base PE registers, control logic and the softmax
//! unit are *unchanged* from the baseline systolic array; FuseCU adds the
//! XS-PE datapath muxes, the inter-CU resize/fusion port muxes, and the
//! configuration control — and nothing else (no extra buffers or
//! registers).

use crate::cells::Cell;
use crate::netlist::Module;

/// The baseline systolic PE: INT8 multiplier, 32-bit accumulate path,
/// activation/weight/partial-sum registers, and a little local control.
pub fn base_pe() -> Module {
    Module::new("base_pe")
        .cell(Cell::Mult8, 1)
        .cell(Cell::Add32, 1)
        .cell(Cell::RegBit, 32) // accumulator / psum pipeline register
        .cell(Cell::RegBit, 8) // activation forwarding register
        .cell(Cell::RegBit, 8) // weight / stationary register
        .cell(Cell::Gate, 40) // local sequencing
}

/// The X-Stationary PE additions (Fig 6): two 8-bit datapath muxes (operand
/// steering for IS/OS/WS), one 32-bit partial-sum path mux, the
/// activation-output mux bit-slice shared with it, and the two mode
/// configuration flops.
pub fn xs_overhead() -> Module {
    Module::new("xs_pe_logic")
        .cell(Cell::Mux2Bit, 2 * 8) // operand steering
        .cell(Cell::Mux2Bit, 32) // partial-sum / activation-output path
        .cell(Cell::RegBit, 2) // XS mode configuration
}

/// An X-Stationary PE: the base PE plus the mux overhead.
pub fn xs_pe() -> Module {
    Module::new("xs_pe")
        .child(base_pe(), 1)
        .child(xs_overhead(), 1)
}

/// The per-CU softmax unit (unchanged from the baseline; Fig 12 counts it
/// as base logic).
pub fn softmax_unit(n: u64) -> Module {
    // One exponent/normalize slice per array column.
    Module::new("softmax_unit").cell(Cell::SoftmaxSlice, n)
}

/// Per-CU sequencing control of the baseline array.
pub fn cu_control() -> Module {
    Module::new("cu_control")
        .cell(Cell::Gate, 8_000)
        .cell(Cell::RegBit, 256)
}

/// One baseline compute unit: `n × n` base PEs + softmax + control.
pub fn base_cu(n: u64) -> Module {
    Module::new("base_cu")
        .child(base_pe(), n * n)
        .child(softmax_unit(n), 1)
        .child(cu_control(), 1)
}

/// One FuseCU compute unit: `n × n` XS PEs + softmax + control.
pub fn fusecu_cu(n: u64) -> Module {
    Module::new("fusecu_cu")
        .child(xs_pe(), n * n)
        .child(softmax_unit(n), 1)
        .child(cu_control(), 1)
}

/// The inter-CU resize/fusion interconnect: edge-port muxes letting each
/// CU's boundary PEs select between memory and the neighboring CU (Fig 7),
/// 8-bit operand wide on both axes of each of the four CUs.
pub fn resize_interconnect(n: u64, cus: u64) -> Module {
    Module::new("fusecu_interconnect").cell(Cell::Mux2Bit, cus * 2 * n * 8)
}

/// The fusion/resize configuration controller: FU configuration registers
/// plus a small FSM sequencing phase switches.
pub fn fusion_control(cus: u64) -> Module {
    Module::new("fusion_control")
        .cell(Cell::RegBit, cus * 16)
        .cell(Cell::Gate, 600)
}

/// The full baseline design: `cus` compute units of `n × n` base PEs.
pub fn tpu_like(n: u64, cus: u64) -> Module {
    Module::new("tpu_like").child(base_cu(n), cus)
}

/// Planaria-style omni-directional fission interconnect, per PE: the
/// published design threads bidirectional bypass links and steering
/// through *every* PE so sub-arrays can be carved at a 16-PE granularity —
/// two extra 8-bit operand muxes, a 32-bit partial-sum steering mux, and
/// the bypass pipeline registers. This is what the paper contrasts against
/// FuseCU's boundary-only muxes ("significantly lower than the 12.6 %
/// incurred by Planaria").
pub fn planaria_pe_interconnect() -> Module {
    Module::new("planaria_pe_interconnect")
        .cell(Cell::Mux2Bit, 2 * 8) // omni-directional operand steering
        .cell(Cell::Mux2Bit, 32) // partial-sum steering
        .cell(Cell::RegBit, 6) // bypass pipeline registers
        .cell(Cell::Gate, 10) // per-PE fission control decode
}

/// A Planaria-like design: base PEs each wrapped with the fission
/// interconnect, plus per-CU control.
pub fn planaria_like(n: u64, cus: u64) -> Module {
    let pe = Module::new("planaria_pe")
        .child(base_pe(), 1)
        .child(planaria_pe_interconnect(), 1);
    let cu = Module::new("planaria_cu")
        .child(pe, n * n)
        .child(softmax_unit(n), 1)
        .child(cu_control(), 1);
    Module::new("planaria_like").child(cu, cus)
}

/// The full FuseCU design: `cus` XS compute units plus the resize
/// interconnect and fusion control.
pub fn fusecu(n: u64, cus: u64) -> Module {
    Module::new("fusecu")
        .child(fusecu_cu(n), cus)
        .child(resize_interconnect(n, cus), 1)
        .child(fusion_control(cus), 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xs_pe_is_base_plus_overhead() {
        let delta = xs_pe().gate_equivalents() - base_pe().gate_equivalents();
        assert!((delta - xs_overhead().gate_equivalents()).abs() < 1e-9);
    }

    #[test]
    fn per_pe_overhead_is_about_twelve_percent() {
        let ratio = xs_overhead().gate_equivalents() / base_pe().gate_equivalents();
        assert!(
            (0.10..=0.14).contains(&ratio),
            "XS overhead ratio {ratio:.4}"
        );
    }

    #[test]
    fn fusecu_has_the_same_arithmetic_as_baseline() {
        // "does not modify any existing logic within the PE array": the
        // multiplier/adder census must match exactly.
        let base = tpu_like(128, 4).cell_census();
        let fuse = fusecu(128, 4).cell_census();
        assert_eq!(base["mult8"], fuse["mult8"]);
        assert_eq!(base["add32"], fuse["add32"]);
        assert_eq!(base["softmax_slice"], fuse["softmax_slice"]);
    }

    #[test]
    fn interconnect_is_negligible() {
        let total = fusecu(128, 4).area_um2();
        let ic = fusecu(128, 4).area_of("fusecu_interconnect")
            + fusecu(128, 4).area_of("fusion_control");
        assert!(ic / total < 0.001, "interconnect share {:.5}", ic / total);
    }

    #[test]
    fn planaria_interconnect_costs_what_the_paper_says() {
        // Paper (§V-C, Fig 12 discussion): Planaria's flexible interconnect
        // costs 12.6% of its design; FuseCU's boundary muxes < 0.1%.
        let base = tpu_like(128, 4).area_um2();
        let planaria = planaria_like(128, 4);
        let ic = planaria.area_of("planaria_pe_interconnect");
        let share = ic / planaria.area_um2();
        assert!(
            (0.10..=0.15).contains(&share),
            "Planaria interconnect share {share:.4}"
        );
        assert!(planaria.area_um2() > base);
        // FuseCU's interconnect is orders of magnitude cheaper.
        let fuse = fusecu(128, 4);
        let fuse_ic = fuse.area_of("fusecu_interconnect") + fuse.area_of("fusion_control");
        assert!(fuse_ic / fuse.area_um2() < 0.001);
        assert!(ic / fuse_ic > 100.0);
    }

    #[test]
    fn elaboration_scales_with_array_size() {
        let small = fusecu(16, 4).area_um2();
        let large = fusecu(32, 4).area_um2();
        assert!(large > 3.5 * small && large < 4.5 * small);
    }
}
