//! The Fig 12 area breakdown: FuseCU overheads over the TPUv4i baseline.

use std::fmt;

use crate::designs;

/// Fig 12's numbers: absolute areas (µm² at 28 nm) of the base logic and
/// each overhead component, with the paper's two headline ratios.
#[derive(Debug, Clone, Copy)]
pub struct Fig12Breakdown {
    /// Area of the unchanged baseline design (multipliers, adders,
    /// accumulators, base PE registers, control, softmax units).
    pub base_um2: f64,
    /// Added XS-PE datapath logic across all PEs.
    pub xs_pe_logic_um2: f64,
    /// Added inter-CU resize/fusion interconnect.
    pub interconnect_um2: f64,
    /// Added fusion/resize configuration control.
    pub control_um2: f64,
}

impl Fig12Breakdown {
    /// Total FuseCU area.
    pub fn total_um2(&self) -> f64 {
        self.base_um2 + self.overhead_um2()
    }

    /// Total added area.
    pub fn overhead_um2(&self) -> f64 {
        self.xs_pe_logic_um2 + self.interconnect_um2 + self.control_um2
    }

    /// The paper's headline: overhead relative to the TPUv4i baseline
    /// (12.0 % in Fig 12).
    pub fn overhead_ratio(&self) -> f64 {
        self.overhead_um2() / self.base_um2
    }

    /// Interconnect + control share of the total (< 0.1 % in Fig 12,
    /// versus Planaria's reported 12.6 % interconnect cost).
    pub fn interconnect_share(&self) -> f64 {
        (self.interconnect_um2 + self.control_um2) / self.total_um2()
    }
}

impl fmt::Display for Fig12Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FuseCU area breakdown (28 nm):")?;
        writeln!(f, "  base logic        {:>14.0} um2", self.base_um2)?;
        writeln!(f, "  XS PE logic       {:>14.0} um2", self.xs_pe_logic_um2)?;
        writeln!(f, "  resize interconnect{:>13.0} um2", self.interconnect_um2)?;
        writeln!(f, "  fusion control    {:>14.0} um2", self.control_um2)?;
        writeln!(
            f,
            "  total overhead    {:>13.1} %  (paper: 12.0 %)",
            100.0 * self.overhead_ratio()
        )?;
        write!(
            f,
            "  interconnect+ctrl {:>13.3} %  (paper: < 0.1 %)",
            100.0 * self.interconnect_share()
        )
    }
}

/// Elaborates both designs at the given fabric size and extracts the
/// Fig 12 breakdown.
pub fn fig12_breakdown(n: u64, cus: u64) -> Fig12Breakdown {
    let base = designs::tpu_like(n, cus);
    let fuse = designs::fusecu(n, cus);
    let xs = fuse.area_of("xs_pe_logic");
    let interconnect = fuse.area_of("fusecu_interconnect");
    let control = fuse.area_of("fusion_control");
    let breakdown = Fig12Breakdown {
        base_um2: base.area_um2(),
        xs_pe_logic_um2: xs,
        interconnect_um2: interconnect,
        control_um2: control,
    };
    debug_assert!(
        (breakdown.total_um2() - fuse.area_um2()).abs() < 1.0,
        "breakdown must account for the whole design"
    );
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_overheads() {
        let b = fig12_breakdown(128, 4);
        // Fig 12: 12.0 % total overhead over TPUv4i.
        assert!(
            (0.10..=0.14).contains(&b.overhead_ratio()),
            "overhead {:.4}",
            b.overhead_ratio()
        );
        // Fig 12: interconnect + control < 0.1 %.
        assert!(
            b.interconnect_share() < 0.001,
            "interconnect share {:.5}",
            b.interconnect_share()
        );
    }

    #[test]
    fn breakdown_sums_to_design_area() {
        let b = fig12_breakdown(64, 4);
        let fuse = designs::fusecu(64, 4);
        assert!((b.total_um2() - fuse.area_um2()).abs() < 1.0);
    }

    #[test]
    fn overhead_ratio_stable_across_sizes() {
        // The XS overhead is per-PE, so the ratio barely moves with N.
        let small = fig12_breakdown(32, 4).overhead_ratio();
        let large = fig12_breakdown(256, 4).overhead_ratio();
        assert!((small - large).abs() < 0.01);
    }

    #[test]
    fn display_reports_percentages() {
        let s = fig12_breakdown(128, 4).to_string();
        assert!(s.contains("XS PE logic") && s.contains("paper: 12.0 %"), "{s}");
    }
}
