//! # fusecu-rtl — structural netlists and the 28 nm area model (Fig 12)
//!
//! The paper implements FuseCU in Chisel and synthesizes it with Design
//! Compiler at 28 nm to obtain Fig 12's area breakdown. This crate replaces
//! that flow with a structural elaboration: every design is a [`netlist`]
//! module tree bottoming out in standard-cell-calibrated leaf [`cells`]
//! (gate-equivalent counts at a 28 nm NAND2 footprint), and area is an
//! exact rollup over the tree — the same additive accounting synthesis
//! reports, minus placement effects, which cancel in the *relative*
//! overheads Fig 12 reports.
//!
//! [`designs`] elaborates the baseline TPUv4i-style fabric and FuseCU
//! (XS PEs + inter-CU resize muxes + fusion control) and [`report`]
//! produces the Fig 12 breakdown: XS-PE logic, resize interconnect, and
//! control overheads over the unchanged base logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod designs;
pub mod netlist;
pub mod report;

pub use cells::Cell;
pub use netlist::Module;
pub use report::{fig12_breakdown, Fig12Breakdown};
