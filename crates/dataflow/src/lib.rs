//! # fusecu-dataflow — intra-operator dataflow: cost model and principles
//!
//! This crate reproduces §III-A of the paper. It contains two layers:
//!
//! 1. **A generic loop-nest memory-access (MA) model** ([`loopnest`]) in the
//!    MAESTRO/Timeloop tradition: given a tiled, ordered 3-loop nest for a
//!    matmul and a buffer size, it computes the exact per-tensor DRAM traffic
//!    using trailing-loop temporal-reuse analysis. *Every* dataflow — the
//!    principle-derived ones and every point a searcher visits — is scored by
//!    this one model, so the comparison in Fig 9 is apples to apples.
//!
//! 2. **The principle-based optimizer** ([`principles`]): closed-form optima
//!    for the three non-redundant-access classes
//!    ([`NraClass::Single`], [`NraClass::Two`], [`NraClass::Three`]) and the
//!    buffer-size [`regime`] table that selects among them in O(1), with no
//!    search.
//!
//! ```
//! use fusecu_ir::MatMul;
//! use fusecu_dataflow::principles::optimize;
//!
//! // §III-A worked example: BERT matmul, 512 KiB buffer -> Two-NRA with the
//! // K dimension untiled and B accessed exactly twice (MA(B) = 2KL).
//! let mm = MatMul::new(1024, 768, 768);
//! let best = optimize(mm, 512 * 1024);
//! assert_eq!(best.class(), Some(fusecu_dataflow::NraClass::Two));
//! assert_eq!(best.ma().of(fusecu_ir::Operand::Rhs), 2 * 768 * 768);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod einsum;
pub mod hierarchy;
pub mod loopnest;
pub mod memo;
pub mod persist;
pub mod principles;
pub mod regime;
pub mod reuse;
pub mod tiling;

pub use einsum::{EinsumNest, EinsumSpec, EinsumTensor};
pub use hierarchy::{optimize_two_level, TwoLevelDataflow, TwoLevelNest};
pub use loopnest::{CostModel, Dataflow, LoopNest, MemoryAccess, NraClass, PartialSumPolicy};
pub use memo::{CacheStats, MemoCache, SectionCounters};
pub use regime::BufferRegime;
pub use tiling::Tiling;
