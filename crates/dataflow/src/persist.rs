//! The versioned, fingerprinted, corruption-tolerant cache-file format
//! shared by every disk-persisted memo cache in the workspace.
//!
//! This machinery started life in `fusecu_search::persist`; it lives in
//! this bottom-of-the-stack crate so that both the search-level sweep
//! caches (`fusecu-search`) and the arch-level operator/fusion caches
//! (`fusecu-arch`) can persist through one format without a dependency
//! cycle — which is also what lets `fusecu-search` call down into the
//! cycle-level simulator for its simulated fitness backend. The historical
//! `fusecu_search::persist` paths re-export everything here.
//!
//! ## Format
//!
//! A cache file is line-oriented UTF-8 so it diffs and greps cleanly:
//!
//! ```text
//! fusecu-cache v1
//! fingerprint 0.1.0-f2-03ab…   (crate version, format version, model digests)
//! checksum 79b2…               (hash of everything below this line)
//! section principle 33
//! 1024 768 768 32768 0 1 …     (one record per line, u64 tokens)
//! section exhaustive 33
//! …
//! ```
//!
//! Records hold only *reconstruction inputs* (shapes, loop orders, tile
//! sizes); derived quantities (memory accesses, NRA classes) are recomputed
//! through the cost model on load, so a loaded entry is bit-identical to a
//! freshly computed one by construction. Serialization is hand-rolled —
//! the workspace vendors dependency stubs and has no serde.
//!
//! ## Fingerprints and model digests
//!
//! The base [`fingerprint`] covers the crate version, [`FORMAT_VERSION`],
//! and a **behavioral digest of the cost model**: the evaluated memory
//! accesses of both [`CostModel`] policies over a fixed probe grid of
//! nests. If the cost model's equations change — even without a crate
//! version bump — the digest changes, every cache file goes stale, and the
//! next run is a cold start instead of silently serving entries scored by
//! the old model. Layers whose cached values depend on *more* than the
//! cost model (the arch crate's operator cache stores mapping-searched
//! compute cycles verbatim) stamp their files with
//! [`fingerprint_with`]`(their_digest)` so their model drift invalidates
//! too.
//!
//! ## Invalidation and robustness
//!
//! Every anomaly is a cold start, never an error: a missing file, a magic
//! or fingerprint mismatch, a checksum mismatch, a malformed token, or a
//! record that fails semantic validation all make the loader return
//! nothing and leave the cache untouched. Loading is all-or-nothing per
//! file: one bad record discards the whole file, since a file that fails
//! validation anywhere is not trusted anywhere. Saving writes to a
//! temporary sibling and renames, so a crashed writer can at worst leave a
//! stale temp file, never a torn cache file. Temp names are unique per
//! writer (`.tmp.<pid>.<seq>`), so two processes — or two threads of one
//! daemon — snapshotting the same path concurrently each rename a
//! complete file into place instead of interleaving writes into a shared
//! `.tmp`; readers racing either writer see the old file or a new one,
//! never a mix.

use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};

use crate::loopnest::{CostModel, Dataflow, LoopNest, PartialSumPolicy};
use crate::tiling::Tiling;
use fusecu_ir::{MatMul, MmDim};

/// Bumped whenever the record layout or fingerprint scheme changes; part
/// of the fingerprint, so old files become cold starts instead of
/// misparses. (v2: the fingerprint gained the behavioral cost-model
/// digest and moved to `fusecu-dataflow`.)
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: &str = "fusecu-cache v1";

/// A behavioral digest of the cost model: both partial-sum policies
/// evaluated over a fixed probe grid of shapes, orders, and tilings. Any
/// change to the memory-access equations changes this value.
pub fn cost_model_digest() -> u64 {
    let mut h = DefaultHasher::new();
    // Schema first (field/variant additions change the Debug rendering)…
    format!("{:?}|{:?}", CostModel::paper(), CostModel::read_write()).hash(&mut h);
    // …then behavior: evaluated traffic over probes exercising every
    // reuse regime (untiled, streamed, revisited) on awkward shapes.
    for model in [CostModel::paper(), CostModel::read_write()] {
        for mm in [MatMul::new(13, 7, 29), MatMul::new(64, 64, 64), MatMul::new(5, 100, 3)] {
            for order in LoopNest::orders() {
                for tiling in [Tiling::new(1, 1, 1), Tiling::new(4, 7, 3), Tiling::new(13, 7, 29)] {
                    model.evaluate(mm, &LoopNest::new(order, tiling)).total().hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// The base fingerprint every cache file is stamped with: crate version,
/// format version, and the behavioral [`cost_model_digest`]. A file whose
/// fingerprint differs from the running binary's is treated as stale and
/// ignored.
pub fn fingerprint() -> String {
    format!(
        "{}-f{}-{:016x}",
        env!("CARGO_PKG_VERSION"),
        FORMAT_VERSION,
        cost_model_digest()
    )
}

/// A fingerprint extended with a caller-supplied model digest, for cache
/// layers whose stored values depend on more than the cost model (e.g.
/// the arch crate's mapping/cycle model). Different digests never
/// collide with each other or with the base [`fingerprint`].
pub fn fingerprint_with(extra_digest: &str) -> String {
    let mut h = DefaultHasher::new();
    extra_digest.hash(&mut h);
    format!("{}-x{:016x}", fingerprint(), h.finish())
}

/// Where cache files live: `$FUSECU_CACHE_DIR` if set, else
/// `target/fusecu-cache` relative to the working directory (the figure
/// binaries run from the workspace root, so this lands next to the build
/// artifacts and is cleaned by `cargo clean`).
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("FUSECU_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => Path::new("target").join("fusecu-cache"),
    }
}

/// An in-memory cache file: named sections of fixed-width-free u64
/// records. The codec layer above decides what the tokens mean.
#[derive(Debug, Default)]
pub struct CacheFile {
    sections: Vec<(String, Vec<Vec<u64>>)>,
}

impl CacheFile {
    /// An empty file.
    pub fn new() -> CacheFile {
        CacheFile::default()
    }

    /// Appends a section. Records are sorted so the on-disk bytes are
    /// deterministic regardless of cache iteration order.
    pub fn push_section(&mut self, name: &str, mut records: Vec<Vec<u64>>) {
        records.sort_unstable();
        self.sections.push((name.to_string(), records));
    }

    /// The records of `name`, or an empty slice if the section is absent.
    pub fn section(&self, name: &str) -> &[Vec<u64>] {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, recs)| recs.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of records across all sections.
    pub fn records(&self) -> usize {
        self.sections.iter().map(|(_, r)| r.len()).sum()
    }

    fn body(&self) -> String {
        let mut body = String::new();
        for (name, records) in &self.sections {
            let _ = writeln!(body, "section {} {}", name, records.len());
            for record in records {
                let tokens: Vec<String> = record.iter().map(u64::to_string).collect();
                let _ = writeln!(body, "{}", tokens.join(" "));
            }
        }
        body
    }

    /// [`CacheFile::save_with`] under the base [`fingerprint`].
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with(path, &fingerprint())
    }

    /// Writes the file atomically under an explicit fingerprint:
    /// serialize to a writer-unique temp sibling, then rename over
    /// `path`. Creates the parent directory if needed. Because the temp
    /// name carries the process id and a per-process sequence number,
    /// concurrent writers never share a temp file: the last rename wins
    /// whole, and a concurrent reader observes either the previous
    /// complete file or a new complete file.
    pub fn save_with(&self, path: &Path, fingerprint: &str) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let body = self.body();
        let mut h = DefaultHasher::new();
        body.hash(&mut h);
        let text = format!(
            "{MAGIC}\nfingerprint {fingerprint}\nchecksum {:016x}\n{body}",
            h.finish()
        );
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, path).inspect_err(|_| {
            // Renaming failed (e.g. the directory vanished): don't leave
            // the orphaned temp behind.
            let _ = fs::remove_file(&tmp);
        })
    }

    /// [`CacheFile::load_with`] under the base [`fingerprint`].
    pub fn load(path: &Path) -> Option<CacheFile> {
        CacheFile::load_with(path, &fingerprint())
    }

    /// Parses a file previously written by [`CacheFile::save_with`] under
    /// the same fingerprint. Returns `None` — a cold start — on a missing
    /// file, wrong magic, a fingerprint that differs from `fingerprint`
    /// (stale model digest, crate version, or format version), checksum
    /// mismatch, or any malformed line.
    pub fn load_with(path: &Path, fingerprint: &str) -> Option<CacheFile> {
        let text = fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let fp = lines.next()?.strip_prefix("fingerprint ")?;
        if fp != fingerprint {
            return None;
        }
        let want: u64 = u64::from_str_radix(lines.next()?.strip_prefix("checksum ")?, 16).ok()?;
        let body_start = text.match_indices('\n').nth(2)?.0 + 1;
        let mut h = DefaultHasher::new();
        text[body_start..].hash(&mut h);
        if h.finish() != want {
            return None;
        }

        let mut file = CacheFile::new();
        let mut lines = lines.peekable();
        while let Some(header) = lines.next() {
            let rest = header.strip_prefix("section ")?;
            let (name, count) = rest.split_once(' ')?;
            let count: usize = count.parse().ok()?;
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines.next()?;
                let record: Option<Vec<u64>> =
                    line.split(' ').map(|tok| tok.parse().ok()).collect();
                records.push(record?);
            }
            file.sections.push((name.to_string(), records));
        }
        Some(file)
    }
}

/// Cursor over one record's tokens; decoding fails (`None`) on underrun,
/// and [`RecordReader::finish`] fails on leftover tokens, so a record with
/// the wrong shape is rejected rather than misread.
pub struct RecordReader<'a> {
    fields: &'a [u64],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    /// A reader over `fields`.
    pub fn new(fields: &'a [u64]) -> RecordReader<'a> {
        RecordReader { fields, pos: 0 }
    }

    /// The next token.
    pub fn u64(&mut self) -> Option<u64> {
        let v = *self.fields.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// The next token as a strict boolean (only 0 or 1 accepted).
    pub fn bool(&mut self) -> Option<bool> {
        match self.u64()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Succeeds only if every token was consumed.
    pub fn finish(self) -> Option<()> {
        (self.pos == self.fields.len()).then_some(())
    }
}

/// Appends a matmul shape (3 tokens).
pub fn encode_mm(mm: MatMul, out: &mut Vec<u64>) {
    out.extend([mm.m(), mm.k(), mm.l()]);
}

/// Decodes a matmul shape; rejects zero dimensions.
pub fn decode_mm(r: &mut RecordReader<'_>) -> Option<MatMul> {
    let (m, k, l) = (r.u64()?, r.u64()?, r.u64()?);
    MatMul::try_new(m, k, l).ok()
}

/// Appends a cost model (1 token: the partial-sum policy discriminant).
pub fn encode_model(model: &CostModel, out: &mut Vec<u64>) {
    out.push(match model.partial_sums {
        PartialSumPolicy::PerVisit => 0,
        PartialSumPolicy::ReadWrite => 1,
    });
}

/// Decodes a cost model.
pub fn decode_model(r: &mut RecordReader<'_>) -> Option<CostModel> {
    let partial_sums = match r.u64()? {
        0 => PartialSumPolicy::PerVisit,
        1 => PartialSumPolicy::ReadWrite,
        _ => return None,
    };
    Some(CostModel { partial_sums })
}

fn encode_dim(d: MmDim) -> u64 {
    match d {
        MmDim::M => 0,
        MmDim::K => 1,
        MmDim::L => 2,
    }
}

fn decode_dim(v: u64) -> Option<MmDim> {
    match v {
        0 => Some(MmDim::M),
        1 => Some(MmDim::K),
        2 => Some(MmDim::L),
        _ => None,
    }
}

/// Appends a dataflow's reconstruction inputs (9 tokens: shape, loop
/// order, tile sizes). Derived costs are recomputed on decode.
pub fn encode_dataflow(df: &Dataflow, out: &mut Vec<u64>) {
    encode_mm(df.mm(), out);
    out.extend(df.nest().order.map(encode_dim));
    out.extend(MmDim::ALL.map(|d| df.tiling().tile(d)));
}

/// Decodes and re-scores a dataflow under `model`. Rejects non-permutation
/// orders and tiles outside `[1, dim]`, so a tampered record can never
/// reach the panicking constructors.
pub fn decode_dataflow(model: &CostModel, r: &mut RecordReader<'_>) -> Option<Dataflow> {
    let mm = decode_mm(r)?;
    let order = [decode_dim(r.u64()?)?, decode_dim(r.u64()?)?, decode_dim(r.u64()?)?];
    if order[0] == order[1] || order[0] == order[2] || order[1] == order[2] {
        return None;
    }
    let tiles = [r.u64()?, r.u64()?, r.u64()?];
    for (d, t) in MmDim::ALL.into_iter().zip(tiles) {
        if t == 0 || t > mm.dim(d) {
            return None;
        }
    }
    let nest = LoopNest::new(order, Tiling::new(tiles[0], tiles[1], tiles[2]));
    Some(model.dataflow(mm, nest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-tmp")
            .join(name)
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(fingerprint(), fingerprint());
        assert!(fingerprint().contains("-f2-"));
        assert_eq!(cost_model_digest(), cost_model_digest());
    }

    #[test]
    fn extended_fingerprints_are_distinct_and_stable() {
        assert_eq!(fingerprint_with("arch-v1"), fingerprint_with("arch-v1"));
        assert_ne!(fingerprint_with("arch-v1"), fingerprint_with("arch-v2"));
        assert_ne!(fingerprint_with("arch-v1"), fingerprint());
        assert!(fingerprint_with("arch-v1").starts_with(&fingerprint()));
    }

    #[test]
    fn digest_change_forces_a_cold_start() {
        // The ROADMAP's invalidation requirement: a file written under one
        // model digest must be invisible to a binary running another.
        let dir = test_dir("persist-digest");
        let path = dir.join("digest.cache");
        let mut file = CacheFile::new();
        file.push_section("s", vec![vec![1, 2, 3]]);
        file.save_with(&path, &fingerprint_with("model-digest-A")).unwrap();
        assert!(CacheFile::load_with(&path, &fingerprint_with("model-digest-A")).is_some());
        assert!(
            CacheFile::load_with(&path, &fingerprint_with("model-digest-B")).is_none(),
            "stale digest must cold-start"
        );
        assert!(
            CacheFile::load(&path).is_none(),
            "digest-stamped file must be invisible to the base fingerprint"
        );
    }

    #[test]
    fn dataflow_codec_round_trips() {
        let model = CostModel::read_write();
        let mm = MatMul::new(64, 32, 48);
        let df = model.dataflow(
            mm,
            LoopNest::new([MmDim::K, MmDim::M, MmDim::L], Tiling::new(8, 32, 6)),
        );
        let mut rec = Vec::new();
        encode_dataflow(&df, &mut rec);
        let mut r = RecordReader::new(&rec);
        let back = decode_dataflow(&model, &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, df);
    }

    #[test]
    fn dataflow_codec_rejects_tampered_records() {
        let model = CostModel::paper();
        let mm = MatMul::new(64, 32, 48);
        let df = model.dataflow(
            mm,
            LoopNest::new([MmDim::M, MmDim::K, MmDim::L], Tiling::new(8, 32, 6)),
        );
        let mut rec = Vec::new();
        encode_dataflow(&df, &mut rec);
        for (idx, bad) in [
            (0usize, 0u64),    // zero dimension
            (3, 1),            // repeated loop dim (order becomes [K, K, L])
            (6, 0),            // zero tile
            (6, 65),           // tile exceeds its dimension
            (5, 9),            // out-of-range dim discriminant
        ] {
            let mut tampered = rec.clone();
            tampered[idx] = bad;
            let mut r = RecordReader::new(&tampered);
            assert!(
                decode_dataflow(&model, &mut r).is_none(),
                "token {idx} <- {bad} accepted"
            );
        }
    }

    #[test]
    fn cache_file_round_trips_and_sorts() {
        let dir = test_dir("persist-unit");
        let path = dir.join("file.cache");
        let mut file = CacheFile::new();
        file.push_section("alpha", vec![vec![9, 9], vec![1, 2], vec![3]]);
        file.push_section("beta", vec![]);
        file.save(&path).unwrap();
        let loaded = CacheFile::load(&path).unwrap();
        assert_eq!(loaded.section("alpha"), &[vec![1, 2], vec![3], vec![9, 9]]);
        assert!(loaded.section("beta").is_empty());
        assert!(loaded.section("missing").is_empty());
        assert_eq!(loaded.records(), 3);
        // Saving twice produces identical bytes (deterministic format).
        let first = fs::read(&path).unwrap();
        file.save(&path).unwrap();
        assert_eq!(fs::read(&path).unwrap(), first);
    }

    #[test]
    fn cache_file_rejects_anomalies() {
        let dir = test_dir("persist-unit");
        let path = dir.join("anomalies.cache");
        let mut file = CacheFile::new();
        file.push_section("s", vec![vec![1, 2, 3]]);
        file.save(&path).unwrap();
        let good = fs::read_to_string(&path).unwrap();

        assert!(CacheFile::load(&dir.join("missing.cache")).is_none());
        for bad in [
            good.replacen("fusecu-cache v1", "fusecu-cache v0", 1),
            good.replacen("fingerprint ", "fingerprint stale-", 1),
            good.replacen("1 2 3", "1 2 4", 1), // checksum catches content flips
            good.replacen("1 2 3", "1 x 3", 1), // non-numeric token
            good.replacen("section s 1", "section s 2", 1), // count overrun
            format!("{good}trailing garbage\n"),
        ] {
            fs::write(&path, &bad).unwrap();
            assert!(CacheFile::load(&path).is_none(), "accepted: {bad:?}");
        }
    }
}
