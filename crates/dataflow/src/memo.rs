//! Generic concurrent memoization, shared by every layer that caches
//! optimization results.
//!
//! [`MemoCache`] lives in this bottom-of-the-stack crate so that both the
//! searching baseline (`fusecu-search`, which depends on `fusecu-fusion`)
//! and the fusion planner (`fusecu-fusion`) can memoize without a
//! dependency cycle. `fusecu_search::cache` re-exports these types, so the
//! historical import path keeps working.
//!
//! Beyond in-process memoization, [`MemoCache::snapshot`] and
//! [`MemoCache::preload`] expose the completed entries for the disk
//! persistence layer (`fusecu_search::persist`): a figure binary snapshots
//! its caches on exit and preloads them on the next launch, so repeated
//! *processes* — not just repeated points within one process — skip
//! recomputation.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss counters of a cache, taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (including waits on a concurrent
    /// computation of the same key).
    pub hits: u64,
    /// Lookups that ran the underlying computation.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference, for measuring one phase of a run.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Counter-wise sum, for aggregating several caches into one summary.
    pub fn plus(&self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate()
        )
    }
}

/// One named cache's counters at one instant, for machine-readable stats
/// (`--stats-json`, the serve daemon's `stats` verb): lifetime hit/miss
/// counters, the current entry count, and lifetime evictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionCounters {
    /// The cache section's name (e.g. `"principle"`, `"operators"`).
    pub name: &'static str,
    /// Lifetime hit/miss counters.
    pub stats: CacheStats,
    /// Entries currently cached.
    pub entries: usize,
    /// Lifetime entries dropped by [`MemoCache::evict_all`].
    pub evictions: u64,
}

impl SectionCounters {
    /// One JSON object (no trailing newline) for this section, e.g.
    /// `{"hits":3,"misses":1,"entries":4,"evictions":0}`.
    pub fn json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"entries\":{},\"evictions\":{}}}",
            self.stats.hits, self.stats.misses, self.entries, self.evictions
        )
    }
}

/// Number of independently locked shards; a small power of two is plenty
/// for the worker counts `std::thread::scope` sweeps run with.
const SHARDS: usize = 16;

/// A sharded, thread-safe memoization map.
///
/// Each key owns a [`OnceLock`] cell, so concurrent lookups of the same
/// key serialize on that cell alone: exactly one caller computes, the rest
/// block and then read — the shard lock is never held during computation.
/// Values are cloned out, so `V` should be cheap to clone (the dataflow
/// results cached here are `Copy` or small `Vec`s).
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> MemoCache<K, V> {
    /// An empty cache.
    pub fn new() -> MemoCache<K, V> {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Arc<OnceLock<V>>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value for `key`, computing it with `f` on a miss.
    ///
    /// A key being computed by another thread counts as a hit: the caller
    /// waits for that computation instead of duplicating it.
    pub fn get_or_compute(&self, key: K, f: impl FnOnce() -> V) -> V {
        let cell = {
            let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
            Arc::clone(shard.entry(key).or_default())
        };
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                f()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drops all entries while *keeping* the hit/miss counters, recording
    /// the removed entries as evictions. This is the long-running daemon's
    /// memory-cap escape hatch ([`MemoCache::evictions`] feeds the
    /// per-section cache stats): unlike [`MemoCache::clear`], the
    /// lifetime counters keep accumulating across the eviction. Returns
    /// the number of entries evicted.
    pub fn evict_all(&self) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut guard = shard.lock().expect("cache shard poisoned");
            evicted += guard.len();
            guard.clear();
        }
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Lifetime count of entries dropped by [`MemoCache::evict_all`]
    /// (reset only by [`MemoCache::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// This cache's [`SectionCounters`] under `name`.
    pub fn counters(&self, name: &'static str) -> SectionCounters {
        SectionCounters {
            name,
            stats: self.stats(),
            entries: self.len(),
            evictions: self.evictions(),
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Every completed `(key, value)` entry, for the disk persistence
    /// layer. Cells still being computed by another thread are skipped;
    /// iteration order is unspecified (persistence sorts its own records).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("cache shard poisoned");
            for (key, cell) in guard.iter() {
                if let Some(value) = cell.get() {
                    out.push((key.clone(), value.clone()));
                }
            }
        }
        out
    }

    /// Inserts pre-computed entries (a disk snapshot from an earlier
    /// process) without touching the hit/miss counters. Keys already
    /// present keep their existing value. Returns the number of entries
    /// actually inserted.
    pub fn preload(&self, entries: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut inserted = 0;
        for (key, value) in entries {
            let cell = {
                let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
                Arc::clone(shard.entry(key).or_default())
            };
            if cell.set(value).is_ok() {
                inserted += 1;
            }
        }
        inserted
    }
}

impl<K: Eq + Hash, V: Clone> Default for MemoCache<K, V> {
    fn default() -> MemoCache<K, V> {
        MemoCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn memo_computes_once_and_counts() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v = cache.get_or_compute(7, || {
                calls.fetch_add(1, Ordering::Relaxed);
                49
            });
            assert_eq!(v, 49);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().lookups(), 0);
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_compute(42, || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        1
                    })
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "raced key computed twice");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn snapshot_and_preload_round_trip() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        for k in 0..40u64 {
            cache.get_or_compute(k, || k * k);
        }
        let mut snap = cache.snapshot();
        snap.sort_unstable();
        assert_eq!(snap.len(), 40);
        assert_eq!(snap[7], (7, 49));

        let warm: MemoCache<u64, u64> = MemoCache::new();
        assert_eq!(warm.preload(snap.clone()), 40);
        assert_eq!(warm.len(), 40);
        // Preloading does not perturb the counters...
        assert_eq!(warm.stats(), CacheStats::default());
        // ...and every preloaded key is now a hit, never recomputed.
        for k in 0..40u64 {
            let v = warm.get_or_compute(k, || unreachable!("preloaded key recomputed"));
            assert_eq!(v, k * k);
        }
        assert_eq!(warm.stats(), CacheStats { hits: 40, misses: 0 });
        // Re-preloading the same entries is a no-op.
        assert_eq!(warm.preload(snap), 0);
    }

    #[test]
    fn preload_does_not_overwrite_existing_values() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        cache.get_or_compute(1, || 10);
        assert_eq!(cache.preload([(1, 99)]), 0);
        assert_eq!(cache.get_or_compute(1, || 99), 10);
    }

    #[test]
    fn evict_all_keeps_counters_and_counts_evictions() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        for k in 0..5u64 {
            cache.get_or_compute(k, || k + 1);
        }
        cache.get_or_compute(0, || unreachable!());
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 5 });
        assert_eq!(cache.evict_all(), 5);
        assert!(cache.is_empty());
        // Hit/miss history survives the eviction; the drop is counted.
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 5 });
        assert_eq!(cache.evictions(), 5);
        // An evicted key recomputes (a miss), it does not resurrect.
        assert_eq!(cache.get_or_compute(0, || 77), 77);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 6 });
        let c = cache.counters("unit");
        assert_eq!((c.name, c.entries, c.evictions), ("unit", 1, 5));
        assert_eq!(c.json(), "{\"hits\":1,\"misses\":6,\"entries\":1,\"evictions\":5}");
        // `clear` resets everything, including the eviction counter.
        cache.clear();
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn stats_arithmetic() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.to_string(), "3 hits / 1 misses (75.0% hit rate)");
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let t = CacheStats { hits: 2, misses: 2 };
        assert_eq!(s.plus(t), CacheStats { hits: 5, misses: 3 });
        assert_eq!(s.plus(t).since(t), s);
    }
}
