//! Tile-size assignment for the three matmul dimensions.

use std::fmt;

use fusecu_ir::{MatMul, MmDim, Operand};

/// Ceiling division for positive operands.
pub(crate) fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// Balanced tile representatives for a dimension of size `d`, ascending and
/// deduplicated: `{ceil(d / n) : n ∈ [1, d]}`.
///
/// Memory access under the loop-nest model depends only on iteration counts
/// `N_d = ceil(D / T_d)`, while buffer footprint grows with tile size; the
/// smallest tile achieving a given count is `ceil(D / n)`. Optimizing over
/// these `O(2·√D)` representatives is therefore lossless with respect to
/// the full tile range `[1, D]`.
///
/// ```
/// use fusecu_dataflow::tiling::balanced_tiles;
/// assert_eq!(balanced_tiles(6), vec![1, 2, 3, 6]);
/// assert_eq!(balanced_tiles(1), vec![1]);
/// ```
pub fn balanced_tiles(d: u64) -> Vec<u64> {
    assert!(d > 0, "dimension size must be non-zero");
    let mut out = Vec::new();
    let mut n = d; // iteration count, descending => tiles ascending
    while n >= 1 {
        let t = d.div_ceil(n);
        out.push(t);
        // Skip to the next iteration count that changes the tile.
        let same_tile_min_n = d.div_ceil(t);
        if same_tile_min_n == 1 {
            break;
        }
        n = same_tile_min_n - 1;
    }
    out
}

/// Tile sizes `(T_M, T_K, T_L)` held in the buffer for one matmul.
///
/// A dimension is *untiled* when its tile equals the full dimension size,
/// making its tile loop a single iteration — the mechanism behind the
/// Two-/Three-NRA dataflows (§III-A2/A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tiling {
    t: [u64; 3], // indexed by MmDim order M, K, L
}

fn idx(dim: MmDim) -> usize {
    match dim {
        MmDim::M => 0,
        MmDim::K => 1,
        MmDim::L => 2,
    }
}

impl Tiling {
    /// Creates a tiling from `(T_M, T_K, T_L)`.
    ///
    /// # Panics
    ///
    /// Panics if any tile size is zero.
    pub fn new(t_m: u64, t_k: u64, t_l: u64) -> Tiling {
        assert!(t_m > 0 && t_k > 0 && t_l > 0, "tile sizes must be non-zero");
        Tiling { t: [t_m, t_k, t_l] }
    }

    /// The tiling in which every dimension is fully resident (all untiled).
    pub fn full(mm: MatMul) -> Tiling {
        Tiling::new(mm.m(), mm.k(), mm.l())
    }

    /// Tile size of one dimension.
    pub fn tile(&self, dim: MmDim) -> u64 {
        self.t[idx(dim)]
    }

    /// Returns a copy with one dimension's tile replaced.
    #[must_use]
    pub fn with(&self, dim: MmDim, tile: u64) -> Tiling {
        assert!(tile > 0, "tile sizes must be non-zero");
        let mut t = self.t;
        t[idx(dim)] = tile;
        Tiling { t }
    }

    /// Clamps every tile to its dimension size (tiles larger than the
    /// dimension waste no buffer in practice, so they are normalized away).
    #[must_use]
    pub fn clamped(&self, mm: MatMul) -> Tiling {
        Tiling {
            t: [
                self.t[0].min(mm.m()),
                self.t[1].min(mm.k()),
                self.t[2].min(mm.l()),
            ],
        }
    }

    /// Number of tile-loop iterations along `dim`: `ceil(D / T_d)`.
    pub fn iterations(&self, mm: MatMul, dim: MmDim) -> u64 {
        div_ceil(mm.dim(dim), self.tile(dim))
    }

    /// Whether `dim` is untiled (single tile covering the whole dimension).
    pub fn is_untiled(&self, mm: MatMul, dim: MmDim) -> bool {
        self.iterations(mm, dim) == 1
    }

    /// Buffer footprint in elements of one operand's tile.
    pub fn tensor_tile_elems(&self, mm: MatMul, op: Operand) -> u64 {
        let [a, b] = op.dims();
        self.tile(a).min(mm.dim(a)) * self.tile(b).min(mm.dim(b))
    }

    /// Total buffer footprint: one live tile per operand (Eq. 2 / Eq. 4 of
    /// the paper generalized to arbitrary tilings).
    pub fn buffer_elems(&self, mm: MatMul) -> u64 {
        Operand::ALL
            .iter()
            .map(|op| self.tensor_tile_elems(mm, *op))
            .sum()
    }

    /// Whether the tiling's live tiles fit in `buffer` elements.
    pub fn fits(&self, mm: MatMul, buffer: u64) -> bool {
        self.buffer_elems(mm) <= buffer
    }

    /// Balances tile sizes so tiles along each dimension are as even as
    /// possible without increasing the iteration count: `T_d ←
    /// ceil(D / ceil(D / T_d))`.
    ///
    /// This mirrors the paper's §III-A example, where the analytic maximum
    /// `T_M = 680` is reported as the balanced `T_M = 512` (both give two
    /// iterations over `M = 1024`). Memory access is unchanged; the buffer
    /// footprint shrinks or stays equal.
    #[must_use]
    pub fn balanced(&self, mm: MatMul) -> Tiling {
        let bal = |dim: MmDim| {
            let d = mm.dim(dim);
            let t = self.tile(dim).min(d);
            div_ceil(d, div_ceil(d, t))
        };
        Tiling {
            t: [bal(MmDim::M), bal(MmDim::K), bal(MmDim::L)],
        }
    }
}

impl fmt::Display for Tiling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T(m={}, k={}, l={})", self.t[0], self.t[1], self.t[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_eq2() {
        // Paper Eq. 2: T_M T_K + T_K T_L + T_M T_L <= BS.
        let mm = MatMul::new(100, 100, 100);
        let t = Tiling::new(8, 2, 16);
        assert_eq!(t.buffer_elems(mm), 8 * 2 + 2 * 16 + 8 * 16);
        assert!(t.fits(mm, 176));
        assert!(!t.fits(mm, 175));
    }

    #[test]
    fn untiled_detection() {
        let mm = MatMul::new(8, 16, 4);
        let t = Tiling::new(8, 4, 4);
        assert!(t.is_untiled(mm, MmDim::M));
        assert!(!t.is_untiled(mm, MmDim::K));
        assert!(t.is_untiled(mm, MmDim::L));
        assert_eq!(t.iterations(mm, MmDim::K), 4);
    }

    #[test]
    fn iterations_use_ceiling() {
        let mm = MatMul::new(10, 1, 1);
        let t = Tiling::new(3, 1, 1);
        assert_eq!(t.iterations(mm, MmDim::M), 4);
    }

    #[test]
    fn clamp_limits_to_dims() {
        let mm = MatMul::new(4, 4, 4);
        let t = Tiling::new(100, 2, 100).clamped(mm);
        assert_eq!(t.tile(MmDim::M), 4);
        assert_eq!(t.tile(MmDim::K), 2);
        // Oversized tiles also never inflate footprints even unclamped.
        let big = Tiling::new(100, 100, 100);
        assert_eq!(big.buffer_elems(mm), 3 * 16);
    }

    #[test]
    fn balanced_preserves_iteration_counts() {
        let mm = MatMul::new(1024, 768, 768);
        let t = Tiling::new(680, 768, 1);
        let b = t.balanced(mm);
        assert_eq!(b.tile(MmDim::M), 512); // paper's reported T_M
        for d in MmDim::ALL {
            assert_eq!(b.iterations(mm, d), t.iterations(mm, d));
        }
        assert!(b.buffer_elems(mm) <= t.buffer_elems(mm));
    }

    #[test]
    fn with_replaces_one_dim() {
        let t = Tiling::new(1, 2, 3).with(MmDim::K, 9);
        assert_eq!(t, Tiling::new(1, 9, 3));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_tile_panics() {
        let _ = Tiling::new(1, 0, 1);
    }
}
